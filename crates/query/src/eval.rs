//! Exact cardinality evaluation.
//!
//! [`evaluate_cardinality`] computes `Card(q)` — the number of tuples in the
//! (inner) join of the query's table closure that satisfy all predicates —
//! in `O(rows)` per involved table via a bottom-up weighted count along the
//! join tree, without materialising the join. A naive nested-loop reference
//! ([`evaluate_naive`]) backs the property tests.

#![allow(clippy::needless_range_loop, clippy::only_used_in_recursion)]
use crate::predicate::CodeSet;
use crate::query::{LabeledQuery, Query, Workload};
use sam_storage::{Database, StorageError, Table, Value, NULL_CODE};
use std::collections::HashMap;

/// Per-row boolean mask of rows satisfying a query's predicates on `table`.
fn predicate_mask(table: &Table, query: &Query) -> Result<Vec<bool>, StorageError> {
    let mut mask = vec![true; table.num_rows()];
    for p in query.predicates_on(table.name()) {
        let col_idx = table
            .schema()
            .column_index(&p.column)
            .ok_or_else(|| StorageError::UnknownColumn(p.table.clone(), p.column.clone()))?;
        let column = table.column(col_idx);
        let codes = p.code_set(column.domain());
        // Fast path: contiguous range test on raw codes.
        match codes {
            CodeSet::Range(r) => {
                for (row, m) in mask.iter_mut().enumerate() {
                    let c = column.code(row);
                    *m &= c != NULL_CODE && r.contains(&c);
                }
            }
            CodeSet::Set(s) => {
                for (row, m) in mask.iter_mut().enumerate() {
                    let c = column.code(row);
                    *m &= c != NULL_CODE && s.binary_search(&c).is_ok();
                }
            }
        }
    }
    Ok(mask)
}

/// Exact `Card(q)` on `db`.
///
/// Inner-join semantics over the query's table closure: a row of the closure
/// root contributes the product over closure children of the summed weights
/// of matching child rows (zero when a required child has no match).
pub fn evaluate_cardinality(db: &Database, query: &Query) -> Result<u64, StorageError> {
    let graph = db.graph();
    let closure = query
        .table_closure(graph)
        .ok_or_else(|| StorageError::UnknownTable(query.tables.join(",")))?;
    let in_closure = |t: usize| closure.contains(&t);

    // Bottom-up weights, children before parents.
    let mut weights: HashMap<usize, Vec<u64>> = HashMap::new();
    for &t in graph.topo_order().iter().rev() {
        if !in_closure(t) {
            continue;
        }
        let table = db.table(t);
        let mask = predicate_mask(table, query)?;
        let mut w: Vec<u64> = mask.iter().map(|&m| m as u64).collect();
        let closure_children: Vec<usize> = graph
            .children(t)
            .iter()
            .copied()
            .filter(|&c| in_closure(c))
            .collect();
        if !closure_children.is_empty() {
            let pk_idx = table.schema().pk_index().ok_or_else(|| {
                StorageError::SchemaViolation(format!("{} lacks a pk", table.name()))
            })?;
            for c in closure_children {
                let fk_name = graph.fk_column(c).expect("closure child has fk");
                let child = db.table(c);
                let fk_idx = child.schema().column_index(fk_name).ok_or_else(|| {
                    StorageError::UnknownColumn(child.name().into(), fk_name.into())
                })?;
                let child_w = &weights[&c];
                let mut sums: HashMap<Value, u64> = HashMap::new();
                for (r, &wc) in child_w.iter().enumerate() {
                    if wc > 0 {
                        *sums.entry(child.value(r, fk_idx)).or_insert(0) += wc;
                    }
                }
                for (r, wt) in w.iter_mut().enumerate() {
                    if *wt > 0 {
                        let key = table.value(r, pk_idx);
                        *wt *= sums.get(&key).copied().unwrap_or(0);
                    }
                }
            }
        }
        weights.insert(t, w);
    }

    // The closure root: the unique closure table whose parent is outside it.
    let root = closure
        .iter()
        .copied()
        .find(|&t| graph.parent(t).is_none_or(|p| !in_closure(p)))
        .expect("closure is non-empty");
    Ok(weights[&root].iter().sum())
}

/// Naive reference evaluator: materialises the inner join by nested loops.
/// Exponential in the worst case — test-scale only.
pub fn evaluate_naive(db: &Database, query: &Query) -> Result<u64, StorageError> {
    let graph = db.graph();
    let closure = query
        .table_closure(graph)
        .ok_or_else(|| StorageError::UnknownTable(query.tables.join(",")))?;
    // Recursive expansion mirroring evaluate_cardinality's semantics.
    fn expand(
        db: &Database,
        query: &Query,
        closure: &[usize],
        t: usize,
        masks: &HashMap<usize, Vec<bool>>,
    ) -> HashMap<Value, u64> {
        let graph = db.graph();
        let table = db.table(t);
        let children: Vec<usize> = graph
            .children(t)
            .iter()
            .copied()
            .filter(|c| closure.contains(c))
            .collect();
        let child_maps: Vec<HashMap<Value, u64>> = children
            .iter()
            .map(|&c| expand(db, query, closure, c, masks))
            .collect();
        let mut out: HashMap<Value, u64> = HashMap::new();
        for r in 0..table.num_rows() {
            if !masks[&t][r] {
                continue;
            }
            let mut w = 1u64;
            if !children.is_empty() {
                let pk_idx = table.schema().pk_index().expect("pk");
                let key = table.value(r, pk_idx);
                for m in &child_maps {
                    w *= m.get(&key).copied().unwrap_or(0);
                }
            }
            if w == 0 {
                continue;
            }
            let key = match graph.fk_column(t) {
                Some(fk) => {
                    let idx = table.schema().column_index(fk).expect("fk col");
                    table.value(r, idx)
                }
                None => Value::Null,
            };
            *out.entry(key).or_insert(0) += w;
        }
        out
    }

    let mut masks = HashMap::new();
    for &t in &closure {
        masks.insert(t, predicate_mask(db.table(t), query)?);
    }
    let root = closure
        .iter()
        .copied()
        .find(|&t| graph.parent(t).is_none_or(|p| !closure.contains(&p)))
        .expect("closure non-empty");
    Ok(expand(db, query, &closure, root, &masks).values().sum())
}

/// Label a set of queries with their true cardinalities on `db`.
pub fn label_workload(db: &Database, queries: Vec<Query>) -> Result<Workload, StorageError> {
    let labelled = queries
        .into_iter()
        .map(|q| {
            let cardinality = evaluate_cardinality(db, &q)?;
            Ok(LabeledQuery {
                query: q,
                cardinality,
            })
        })
        .collect::<Result<Vec<_>, StorageError>>()?;
    Ok(Workload::new(labelled))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CompareOp, Predicate};
    use sam_storage::paper_example;

    fn db() -> Database {
        paper_example::figure3_database()
    }

    #[test]
    fn single_table_counts() {
        let db = db();
        let q = Query::single("A", vec![Predicate::compare("A", "a", CompareOp::Eq, "m")]);
        assert_eq!(evaluate_cardinality(&db, &q).unwrap(), 2);
        let all = Query::single("A", vec![]);
        assert_eq!(evaluate_cardinality(&db, &all).unwrap(), 4);
    }

    #[test]
    fn two_way_join() {
        let db = db();
        // A ⋈ B: every B row matches (fk integrity) → 3.
        let q = Query::join(vec!["A".into(), "B".into()], vec![]);
        assert_eq!(evaluate_cardinality(&db, &q).unwrap(), 3);
        // Filter A.a = 'm': all B rows have fk 1 or 2, both 'm' → 3.
        let q = Query::join(
            vec!["A".into(), "B".into()],
            vec![Predicate::compare("A", "a", CompareOp::Eq, "m")],
        );
        assert_eq!(evaluate_cardinality(&db, &q).unwrap(), 3);
        // Filter B.b = 'a' → only the fk-1 row.
        let q = Query::join(
            vec!["A".into(), "B".into()],
            vec![Predicate::compare("B", "b", CompareOp::Eq, "a")],
        );
        assert_eq!(evaluate_cardinality(&db, &q).unwrap(), 1);
    }

    #[test]
    fn three_way_join_through_closure() {
        let db = db();
        // B ⋈ C joins through A: (1: 1×2) + (2: 2×2) = 6.
        let q = Query::join(vec!["B".into(), "C".into()], vec![]);
        assert_eq!(evaluate_cardinality(&db, &q).unwrap(), 6);
        // Restrict C.c = 'i': fanouts become 1 per key → 1 + 2 = 3.
        let q = Query::join(
            vec!["B".into(), "C".into()],
            vec![Predicate::compare("C", "c", CompareOp::Eq, "i")],
        );
        assert_eq!(evaluate_cardinality(&db, &q).unwrap(), 3);
    }

    #[test]
    fn inner_join_excludes_unmatched_pk_rows() {
        let db = db();
        // A ⋈ C with A.a = 'n': tuples 3 and 4 join no C rows → 0.
        let q = Query::join(
            vec!["A".into(), "C".into()],
            vec![Predicate::compare("A", "a", CompareOp::Eq, "n")],
        );
        assert_eq!(evaluate_cardinality(&db, &q).unwrap(), 0);
    }

    #[test]
    fn naive_agrees_with_fast() {
        let db = db();
        let queries = vec![
            Query::single("A", vec![]),
            Query::single("C", vec![Predicate::compare("C", "c", CompareOp::Ge, "j")]),
            Query::join(vec!["A".into(), "B".into()], vec![]),
            Query::join(vec!["B".into(), "C".into()], vec![]),
            Query::join(
                vec!["A".into(), "B".into(), "C".into()],
                vec![
                    Predicate::compare("A", "a", CompareOp::Eq, "m"),
                    Predicate::compare("B", "b", CompareOp::Ge, "b"),
                ],
            ),
        ];
        for q in queries {
            assert_eq!(
                evaluate_cardinality(&db, &q).unwrap(),
                evaluate_naive(&db, &q).unwrap(),
                "query {q}"
            );
        }
    }

    #[test]
    fn label_workload_attaches_cards() {
        let db = db();
        let w = label_workload(&db, vec![Query::single("A", vec![])]).unwrap();
        assert_eq!(w.queries[0].cardinality, 4);
    }

    #[test]
    fn join_cardinality_matches_foj_restriction() {
        // Card(A ⋈ B ⋈ C) must equal the number of FOJ rows where both
        // indicators are 1.
        let db = db();
        let foj = sam_storage::materialize_foj(&db);
        let g = db.graph();
        let ib = foj
            .schema
            .indicator_index(g.index_of("B").unwrap())
            .unwrap();
        let ic = foj
            .schema
            .indicator_index(g.index_of("C").unwrap())
            .unwrap();
        let expected = (0..foj.num_rows())
            .filter(|&r| foj.value(r, ib) == Value::Int(1) && foj.value(r, ic) == Value::Int(1))
            .count() as u64;
        let q = Query::join(vec!["A".into(), "B".into(), "C".into()], vec![]);
        assert_eq!(evaluate_cardinality(&db, &q).unwrap(), expected);
    }
}
