//! # sam-query — queries, workloads, and exact cardinality evaluation
//!
//! The query class of the paper (§2.2): conjunctions of range / equality /
//! IN predicates on content columns, over single relations or foreign-key
//! joins along an acyclic schema. Provides the exact evaluator used both to
//! label training workloads on the target database and to measure Q-Error of
//! generated databases, plus the §5.1 workload generators.

#![warn(missing_docs)]

pub mod dnf;
pub mod eval;
pub mod io;
pub mod predicate;
pub mod query;
pub mod sql;
pub mod workload;

pub use dnf::DnfQuery;
pub use eval::{evaluate_cardinality, evaluate_naive, label_workload};
pub use io::{
    format_workload, read_labeled_workload, read_queries, read_workload_entries, write_workload,
    WorkloadIoError,
};
pub use predicate::{CodeSet, CompareOp, Constraint, Predicate};
pub use query::{LabeledQuery, Query, Workload};
pub use sql::{parse_query, ParseError};
pub use workload::{dedup_queries, CoverageWindows, WorkloadGenerator};
