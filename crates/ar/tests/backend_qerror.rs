//! End-to-end Q-Error parity between the quantised `Int8Blocked` kernel
//! and the `ReferenceF32` baseline on the committed fixture model.
//!
//! Per-block int8 quantisation perturbs logits by at most ~1e-1 relative
//! (see the `backend_parity` proptest in `sam-nn`), which can flip a few
//! discrete sampling choices — but the progressive-sampling estimate must
//! stay within a small Q-Error of the full-precision run, or the fast
//! kernel is not a drop-in replacement for estimation workloads.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sam_ar::{estimate_cardinality, load_model};
use sam_nn::BackendKind;
use sam_query::Query;

const V1_FIXTURE: &str = include_str!("fixtures/model_v1.json");

/// Q-Error between two positive estimates: max(a/b, b/a). Estimates of 0
/// on both sides count as perfect parity; 0 on one side only is maximal.
fn q_error(a: f64, b: f64) -> f64 {
    if a == 0.0 && b == 0.0 {
        1.0
    } else if a == 0.0 || b == 0.0 {
        f64::INFINITY
    } else {
        (a / b).max(b / a)
    }
}

#[test]
fn int8_estimates_match_f32_within_q_error_bound() {
    let (f32_model, _) = load_model(V1_FIXTURE).unwrap();
    let int8_model = load_model(V1_FIXTURE)
        .unwrap()
        .0
        .with_backend(BackendKind::Int8Blocked);
    assert_eq!(int8_model.backend_kind(), BackendKind::Int8Blocked);

    let queries = [
        Query::join(vec!["A".into()], vec![]),
        Query::join(vec!["A".into(), "B".into()], vec![]),
        Query::join(vec!["A".into(), "B".into(), "C".into()], vec![]),
    ];
    for (qi, q) in queries.iter().enumerate() {
        for seed in [1u64, 7, 42] {
            let full =
                estimate_cardinality(&f32_model, q, 128, &mut StdRng::seed_from_u64(seed)).unwrap();
            let quant = estimate_cardinality(&int8_model, q, 128, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            let qe = q_error(full, quant);
            assert!(
                qe <= 1.25,
                "query {qi} seed {seed}: f32 {full} vs int8 {quant} (q-error {qe})"
            );
        }
    }
}

#[test]
fn int8_estimates_are_deterministic_per_seed() {
    let model = load_model(V1_FIXTURE)
        .unwrap()
        .0
        .with_backend(BackendKind::Int8Blocked);
    let q = Query::join(vec!["A".into(), "B".into()], vec![]);
    let a = estimate_cardinality(&model, &q, 64, &mut StdRng::seed_from_u64(3)).unwrap();
    let b = estimate_cardinality(&model, &q, 64, &mut StdRng::seed_from_u64(3)).unwrap();
    assert_eq!(a, b);
}
