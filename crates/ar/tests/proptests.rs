//! Property-based tests for encodings and query-rule translation.

use proptest::prelude::*;
use sam_ar::{ArSchema, ColumnEncoding, EncodingOptions, StepRule};
use sam_query::{CodeSet, CompareOp, Predicate, Query, WorkloadGenerator};
use sam_storage::{paper_example, DatabaseStats, Domain, Value};

fn int_domain(n: usize) -> std::sync::Arc<Domain> {
    Domain::new((0..n as i64).map(Value::Int).collect()).shared()
}

proptest! {
    /// Bins always partition the code space: complete, ordered, disjoint.
    #[test]
    fn bins_partition_code_space(
        n in 1usize..60,
        boundaries in prop::collection::vec(0u32..80, 0..12),
    ) {
        let enc = ColumnEncoding::intervalized(int_domain(n), boundaries);
        let mut expected_start = 0u32;
        for b in 0..enc.num_bins() {
            let bin = enc.bin(b);
            prop_assert_eq!(bin.start, expected_start);
            prop_assert!(bin.end > bin.start);
            expected_start = bin.end;
        }
        prop_assert_eq!(expected_start as usize, n);
        // bin_of_code inverts bin membership.
        for code in 0..n as u32 {
            let b = enc.bin_of_code(code);
            prop_assert!(enc.bin(b).contains(&code));
        }
    }

    /// frac_weights times bin sizes recovers the exact code-set size.
    #[test]
    fn frac_weights_conserve_mass(
        n in 1usize..60,
        boundaries in prop::collection::vec(0u32..80, 0..10),
        lo in 0u32..60,
        len in 0u32..60,
    ) {
        let enc = ColumnEncoding::intervalized(int_domain(n), boundaries);
        let hi = (lo + len).min(n as u32);
        let lo = lo.min(hi);
        let set = CodeSet::Range(lo..hi);
        let w = enc.frac_weights(&set);
        let mass: f64 = (0..enc.num_bins())
            .map(|b| w[b] as f64 * enc.bin(b).len() as f64)
            .sum();
        prop_assert!((mass - set.len() as f64).abs() < 1e-3,
            "mass {} vs |set| {}", mass, set.len());
    }

    /// Training predicates (whose boundaries induced the bins) always align:
    /// every frac weight is exactly 0 or 1.
    #[test]
    fn training_predicates_align_with_bins(
        n in 2usize..60,
        cut_points in prop::collection::vec(0u32..60, 1..8),
    ) {
        let sets: Vec<CodeSet> = cut_points
            .iter()
            .map(|&c| CodeSet::Range(0..c.min(n as u32)))
            .collect();
        let enc = ColumnEncoding::from_code_sets(int_domain(n), &sets);
        for set in &sets {
            for w in enc.frac_weights(set) {
                prop_assert!(w == 0.0 || w == 1.0, "partial weight {}", w);
            }
        }
    }

    /// Query rules for random workloads on the Figure-3 schema are total:
    /// every column gets a rule, and content rules only appear on filtered
    /// columns.
    #[test]
    fn query_rules_are_total(seed in 0u64..300) {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let ar = ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let mut gen = WorkloadGenerator::new(&db, seed);
        for q in gen.multi_workload(10, 2) {
            let rules = ar.query_rules(&q).unwrap();
            prop_assert_eq!(rules.len(), ar.num_columns());
            // In-range content rules only where the query filters.
            let filtered: Vec<(&str, &str)> =
                q.filtered_columns().into_iter().collect();
            for (pos, rule) in rules.iter().enumerate() {
                if let (StepRule::InRange(_), sam_ar::ArColumnKind::Content { table, column }) =
                    (rule, ar.columns()[pos].kind)
                {
                    let tname = &ar.graph().tables()[table];
                    let cname = &db.table(table).schema().columns[column].name;
                    prop_assert!(
                        filtered.iter().any(|(t, c)| t == tname && c == cname),
                        "unfiltered column {}.{} got a range rule", tname, cname
                    );
                }
            }
        }
    }

    /// Eq predicates with out-of-domain literals translate to all-zero
    /// weights (impossible queries), never panics.
    #[test]
    fn out_of_domain_literal_is_impossible(lit in 100i64..10_000) {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let ar = ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let q = Query::single(
            "A",
            vec![Predicate::compare("A", "a", CompareOp::Eq, lit)],
        );
        let rules = ar.query_rules(&q).unwrap();
        if let StepRule::InRange(w) = &rules[0] {
            prop_assert!(w.iter().all(|&x| x == 0.0));
        } else {
            prop_assert!(false, "expected an in-range rule");
        }
    }
}
