//! Acceptance lock for the shared prefix trie: estimating a workload over
//! a trie that already saw it must be *strictly cheaper* than per-batch
//! exact-prefix dedup, while returning bit-identical estimates.
//!
//! This is the only test in this binary on purpose: it asserts on the
//! process-global `sam_obs` counters, which other tests would contaminate.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sam_ar::{
    estimate_cardinality_batch_shared, ArModel, ArModelConfig, ArSchema, EncodingOptions,
    PrefixTrie,
};
use sam_query::Query;
use sam_storage::{paper_example, DatabaseStats};

#[test]
fn shared_trie_strictly_reduces_forward_count() {
    let db = paper_example::figure3_database();
    let stats = DatabaseStats::from_database(&db);
    let schema = ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
    let model = ArModel::new(schema, &ArModelConfig::default()).freeze();

    let queries = [
        Query::join(vec!["A".into(), "B".into()], vec![]),
        Query::join(vec!["A".into(), "B".into(), "C".into()], vec![]),
        Query::single("A", vec![]),
    ];
    let counts = [16usize, 48, 7];
    let seeds = [101u64, 7, 3];
    let requests: Vec<(&Query, usize)> = queries.iter().zip(counts).collect();
    let fresh_rngs =
        || -> Vec<StdRng> { seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect() };

    let forward_counter = sam_obs::counter("sam_forward_total");
    let trie_hit_counter = sam_obs::counter("sam_trie_hits_total");
    let mut trie = PrefixTrie::new();

    // Round 1: cold trie — every distinct prefix pays a forward row.
    let before = forward_counter.get();
    let first = estimate_cardinality_batch_shared(&model, &requests, &mut fresh_rngs(), &mut trie);
    let cold_forwards = forward_counter.get() - before;
    let cold_stats = trie.stats();
    assert!(cold_forwards > 0, "cold batch must run forward passes");
    assert_eq!(cold_stats.cached_hits, 0, "nothing cached before round 1");

    // Round 2, same workload and seeds on the warm trie: identical sample
    // paths, so every conditional is served from the cache — zero forwards,
    // a strict reduction over within-batch dedup (which would pay
    // `cold_forwards` again).
    let before = forward_counter.get();
    let hits_before = trie_hit_counter.get();
    let second = estimate_cardinality_batch_shared(&model, &requests, &mut fresh_rngs(), &mut trie);
    let warm_forwards = forward_counter.get() - before;
    assert!(
        warm_forwards < cold_forwards,
        "warm trie must strictly reduce forwards ({warm_forwards} vs {cold_forwards})"
    );
    assert_eq!(
        warm_forwards, 0,
        "identical workload should be fully cached"
    );
    assert!(
        trie_hit_counter.get() > hits_before,
        "cache hits must surface on the obs registry"
    );
    assert_eq!(
        trie.stats().forward_rows,
        cold_stats.forward_rows,
        "round 2 added no forward rows"
    );
    assert!(trie.stats().cached_hits > 0);

    // Cached conditionals are bit-preserving: identical RNG streams over a
    // warm trie reproduce the cold estimates exactly.
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(
            a.as_ref().unwrap(),
            b.as_ref().unwrap(),
            "warm-trie estimate diverged"
        );
    }
}
