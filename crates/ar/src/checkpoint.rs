//! Crash-safe training checkpoints.
//!
//! [`crate::train()`] can periodically snapshot *everything* the training
//! loop mutates — parameter values, Adam moments and step counter, the
//! shuffle/noise RNG state, the completed-epoch count and per-epoch losses
//! — so that a run killed at any instant resumes **bit-for-bit identical**
//! to the uninterrupted run. Three choices make that exactness hold:
//!
//! 1. All `f32` data is stored as raw `u32` bit patterns, never as decimal
//!    floats, so no JSON round-trip can perturb a single ULP.
//! 2. Checkpoints are written with the tmp+fsync+rename commit protocol
//!    ([`sam_fault::write_atomic`]) — a crash leaves either the previous
//!    checkpoint or the new one, never a torn mix — and the whole file is
//!    framed with a CRC-32 so silent corruption is detected, not loaded.
//! 3. A config **fingerprint** (seed, batch size, hyperparameter bit
//!    patterns, workload size, parameter count — everything that shapes
//!    the training trajectory *except* `epochs`, so a resumed run may
//!    extend training) is stored and verified on resume; a checkpoint from
//!    a different run is rejected loudly instead of silently diverging.

use crate::error::ArError;
use sam_fault::{crash_point, crc32, write_atomic, FaultFs, RealFs};
use sam_nn::Matrix;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// First line of a checkpoint file: magic, then the CRC-32 of the JSON body.
const MAGIC: &str = "SAMCKPT1";
/// Checkpoint file name inside the checkpoint directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.json";

/// Where and how often [`crate::train()`] checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory holding `checkpoint.json` (created if missing).
    pub dir: PathBuf,
    /// Snapshot every `every` completed epochs (a final snapshot is always
    /// written when training finishes). Clamped to at least 1.
    pub every: usize,
    /// Filesystem to write through — [`RealFs`] in production, a
    /// [`sam_fault::FaultyFs`] under test.
    pub fs: Arc<dyn FaultFs>,
}

impl CheckpointConfig {
    /// Checkpoint into `dir` every `every` epochs on the real filesystem.
    pub fn new(dir: impl Into<PathBuf>, every: usize) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            every: every.max(1),
            fs: Arc::new(RealFs),
        }
    }

    /// Swap in a different (typically fault-injecting) filesystem.
    pub fn with_fs(mut self, fs: Arc<dyn FaultFs>) -> Self {
        self.fs = fs;
        self
    }

    /// Path of the checkpoint file.
    pub fn path(&self) -> PathBuf {
        self.dir.join(CHECKPOINT_FILE)
    }
}

/// A matrix stored as raw bit patterns (lossless across JSON).
#[derive(Debug, Serialize, Deserialize, PartialEq, Eq)]
pub(crate) struct MatrixBits {
    rows: usize,
    cols: usize,
    bits: Vec<u32>,
}

impl MatrixBits {
    pub(crate) fn from_matrix(m: &Matrix) -> Self {
        MatrixBits {
            rows: m.rows(),
            cols: m.cols(),
            bits: m.data().iter().map(|f| f.to_bits()).collect(),
        }
    }

    pub(crate) fn to_matrix(&self) -> Result<Matrix, ArError> {
        if self.bits.len() != self.rows * self.cols {
            return Err(ArError::Invalid(format!(
                "checkpoint matrix {}x{} carries {} scalars",
                self.rows,
                self.cols,
                self.bits.len()
            )));
        }
        Ok(Matrix::from_vec(
            self.rows,
            self.cols,
            self.bits.iter().map(|&b| f32::from_bits(b)).collect(),
        ))
    }
}

/// Everything that shapes the training trajectory except `epochs`.
/// Hyperparameter floats are compared by bit pattern.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub(crate) struct Fingerprint {
    pub seed: u64,
    pub batch_size: usize,
    pub lr_bits: u32,
    pub temperature_bits: u32,
    pub eps_bits: u32,
    pub straight_through: bool,
    pub samples_per_query: usize,
    pub workload_len: usize,
    pub num_scalars: usize,
}

/// The full on-disk snapshot of the training loop's mutable state.
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct CheckpointState {
    pub version: u32,
    pub fingerprint: Fingerprint,
    /// Epochs fully completed before this snapshot.
    pub epochs_done: usize,
    /// Per-epoch mean losses, as bit patterns.
    pub epoch_loss_bits: Vec<u32>,
    /// xoshiro256** state of the shuffle/noise RNG (4 words).
    pub rng_state: Vec<u64>,
    /// The query visit order as left by the last epoch's shuffle. Shuffles
    /// permute in place, so epoch N's order depends on epoch N-1's — it is
    /// part of the trajectory and must survive a restart.
    pub order: Vec<u64>,
    /// Adam step counter.
    pub adam_t: u64,
    /// Parameter values, in `ParamStore` order.
    pub params: Vec<MatrixBits>,
    /// Adam first moments.
    pub adam_m: Vec<MatrixBits>,
    /// Adam second moments.
    pub adam_v: Vec<MatrixBits>,
}

/// Serialise and durably write a snapshot. Crash points on the way:
/// `train.ckpt.pre_write` (nothing written yet), the generic
/// `atomic.tmp_written` / `atomic.pre_rename` inside the commit protocol,
/// and `train.ckpt.saved` (snapshot committed, training not yet resumed).
pub(crate) fn save(cfg: &CheckpointConfig, state: &CheckpointState) -> Result<(), ArError> {
    let json = serde_json::to_string(state).expect("checkpoint serialises");
    let framed = format!("{MAGIC} {:08x}\n{json}", crc32(json.as_bytes()));
    crash_point("train.ckpt.pre_write");
    cfg.fs.create_dir_all(&cfg.dir)?;
    write_atomic(&*cfg.fs, &cfg.path(), framed.as_bytes())?;
    crash_point("train.ckpt.saved");
    Ok(())
}

/// Load the snapshot from `cfg.dir`, if one exists. A missing file is
/// `Ok(None)` (fresh run); a file that fails magic/CRC/JSON validation is
/// an error — the atomic commit protocol means a valid run never produces
/// one, so it signals real corruption and must not be silently ignored.
pub(crate) fn load(cfg: &CheckpointConfig) -> Result<Option<CheckpointState>, ArError> {
    let path = cfg.path();
    if !cfg.fs.exists(&path) {
        return Ok(None);
    }
    let bytes = cfg.fs.read(&path)?;
    parse(&bytes, &path).map(Some)
}

fn parse(bytes: &[u8], path: &Path) -> Result<CheckpointState, ArError> {
    let corrupt =
        |what: &str| ArError::Invalid(format!("corrupt checkpoint {}: {what}", path.display()));
    let text = std::str::from_utf8(bytes).map_err(|_| corrupt("not UTF-8"))?;
    let (header, body) = text
        .split_once('\n')
        .ok_or_else(|| corrupt("no header line"))?;
    let crc_hex = header
        .strip_prefix(MAGIC)
        .and_then(|rest| rest.strip_prefix(' '))
        .ok_or_else(|| corrupt("bad magic"))?;
    let expected = u32::from_str_radix(crc_hex.trim(), 16).map_err(|_| corrupt("bad CRC field"))?;
    let actual = crc32(body.as_bytes());
    if actual != expected {
        return Err(corrupt(&format!(
            "CRC mismatch {actual:08x} != {expected:08x}"
        )));
    }
    let state: CheckpointState =
        serde_json::from_str(body).map_err(|e| corrupt(&format!("bad JSON: {e}")))?;
    if state.rng_state.len() != 4 {
        return Err(corrupt("rng state must be 4 words"));
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_state() -> CheckpointState {
        CheckpointState {
            version: 1,
            fingerprint: Fingerprint {
                seed: 7,
                batch_size: 4,
                lr_bits: 0.01f32.to_bits(),
                temperature_bits: 1.0f32.to_bits(),
                eps_bits: 1e-6f32.to_bits(),
                straight_through: true,
                samples_per_query: 1,
                workload_len: 8,
                num_scalars: 2,
            },
            epochs_done: 3,
            epoch_loss_bits: vec![1.5f32.to_bits(), 0.7f32.to_bits(), f32::NAN.to_bits()],
            rng_state: vec![1, 2, 3, 4],
            order: vec![3, 0, 2, 1],
            adam_t: 12,
            params: vec![MatrixBits::from_matrix(&Matrix::from_vec(
                1,
                2,
                vec![0.1, -0.2],
            ))],
            adam_m: vec![MatrixBits::from_matrix(&Matrix::zeros(1, 2))],
            adam_v: vec![MatrixBits::from_matrix(&Matrix::zeros(1, 2))],
        }
    }

    #[test]
    fn round_trip_is_bit_exact_including_nan() {
        let dir = std::env::temp_dir().join(format!("sam_ckpt_rt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = CheckpointConfig::new(&dir, 1);
        let state = tiny_state();
        save(&cfg, &state).unwrap();
        let loaded = load(&cfg).unwrap().unwrap();
        assert_eq!(loaded.epochs_done, 3);
        assert_eq!(loaded.epoch_loss_bits, state.epoch_loss_bits);
        assert_eq!(loaded.rng_state, state.rng_state);
        assert_eq!(loaded.adam_t, 12);
        assert_eq!(loaded.params, state.params);
        assert_eq!(loaded.fingerprint, state.fingerprint);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_is_none_and_corruption_is_loud() {
        let dir = std::env::temp_dir().join(format!("sam_ckpt_corrupt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = CheckpointConfig::new(&dir, 1);
        assert!(load(&cfg).unwrap().is_none());
        save(&cfg, &tiny_state()).unwrap();
        // Flip one byte in the body: CRC must catch it.
        let path = cfg.path();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&cfg), Err(ArError::Invalid(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
