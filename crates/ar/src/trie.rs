//! Prefix trie over sampled-code prefixes with cached conditionals.
//!
//! Progressive sampling evaluates the network on *prefixes* of sampled
//! codes, and the conditional distribution at a prefix is a pure function
//! of that prefix — the same one-hot input always yields the same logits.
//! The trie exploits this twice:
//!
//! 1. **Within a batch**: paths holding identical prefixes land on the same
//!    trie node, so the batch runs one forward row per *distinct* prefix
//!    (subsuming the exact-prefix hash dedup the estimator used to do).
//! 2. **Across batches**: a trie kept alive between calls (see
//!    [`crate::infer::estimate_cardinality_batch_shared`]) caches each
//!    node's conditional-probability row the first time it is computed, so
//!    later batches that revisit a prefix skip its forward row entirely.
//!    This is what makes shared estimation *strictly cheaper* than
//!    per-batch dedup: repeated workloads (DNF inclusion–exclusion terms,
//!    serving traffic against one model version) re-walk the hot prefixes.
//!
//! Because per-row forward arithmetic is row-independent in both backbones,
//! a cached row is bit-identical to the row a fresh forward would produce —
//! caching changes cost, never values.
//!
//! Memory is bounded by a node cap: once reached, paths fall off the trie
//! (`OFF_TRIE`) and are deduped per batch by their raw code prefix instead.

use std::collections::HashMap;

/// Sentinel node id for paths that fell off the trie (node cap reached).
pub(crate) const OFF_TRIE: usize = usize::MAX;

/// Default maximum node count (~a few hundred MB worst case at serving
/// domain sizes; real workloads share prefixes heavily and stay far below).
pub const DEFAULT_NODE_CAP: usize = 1 << 17;

#[derive(Debug, Default)]
struct TrieNode {
    children: HashMap<u32, usize>,
    /// Conditional probabilities of column `depth(node)` given this prefix,
    /// cached after the first forward pass that visits the node.
    probs: Option<Box<[f32]>>,
}

/// Cost accounting for one or more estimation calls over a trie.
///
/// All counts are cumulative; diff two [`PrefixTrie::stats`] snapshots to
/// measure a single call. `cached_hits` is the across-batch win; the sum
/// `forward_rows + cached_hits + dedup_hits` equals the number of live
/// (path, column) steps taken.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TrieStats {
    /// Network forward launches (one per column with ≥1 uncached prefix).
    pub forwards: u64,
    /// Rows pushed through the network (distinct uncached prefixes).
    pub forward_rows: u64,
    /// Live path-steps served from a node's cached conditionals.
    pub cached_hits: u64,
    /// Live path-steps deduped within the current batch (prefix already
    /// queued for this forward).
    pub dedup_hits: u64,
}

/// A trie over sampled-code prefixes; see the module docs.
#[derive(Debug)]
pub struct PrefixTrie {
    nodes: Vec<TrieNode>,
    cap: usize,
    stats: TrieStats,
}

impl Default for PrefixTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefixTrie {
    /// An empty trie (root only) with the default node cap.
    pub fn new() -> Self {
        Self::with_node_cap(DEFAULT_NODE_CAP)
    }

    /// An empty trie whose node count never exceeds `cap` (min 1: the root).
    pub fn with_node_cap(cap: usize) -> Self {
        PrefixTrie {
            nodes: vec![TrieNode::default()],
            cap: cap.max(1),
            stats: TrieStats::default(),
        }
    }

    /// The root node (empty prefix).
    pub(crate) fn root(&self) -> usize {
        0
    }

    /// Node count (root included).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Cumulative cost counters.
    pub fn stats(&self) -> TrieStats {
        self.stats
    }

    /// Drop all cached prefixes and counters (keeps the cap).
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.nodes.push(TrieNode::default());
        self.stats = TrieStats::default();
    }

    pub(crate) fn stats_mut(&mut self) -> &mut TrieStats {
        &mut self.stats
    }

    /// Step from `node` along `code`, creating the child if the cap allows;
    /// `OFF_TRIE` when the path falls off the trie.
    pub(crate) fn child(&mut self, node: usize, code: u32) -> usize {
        if node == OFF_TRIE {
            return OFF_TRIE;
        }
        if let Some(&c) = self.nodes[node].children.get(&code) {
            return c;
        }
        if self.nodes.len() >= self.cap {
            return OFF_TRIE;
        }
        let c = self.nodes.len();
        self.nodes.push(TrieNode::default());
        self.nodes[node].children.insert(code, c);
        c
    }

    /// Cached conditionals at `node`, if a forward pass already visited it.
    pub(crate) fn probs(&self, node: usize) -> Option<&[f32]> {
        if node == OFF_TRIE {
            return None;
        }
        self.nodes[node].probs.as_deref()
    }

    /// Cache `probs` at `node` (first writer wins; later writes of the same
    /// prefix would be bit-identical anyway).
    pub(crate) fn set_probs(&mut self, node: usize, probs: &[f32]) {
        if node != OFF_TRIE && self.nodes[node].probs.is_none() {
            self.nodes[node].probs = Some(probs.into());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descend_creates_and_reuses_nodes() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        let a = t.child(t.root(), 3);
        let b = t.child(t.root(), 3);
        assert_eq!(a, b);
        let c = t.child(a, 1);
        assert_ne!(c, a);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn cap_sends_paths_off_trie() {
        let mut t = PrefixTrie::with_node_cap(2);
        let a = t.child(t.root(), 0);
        assert_ne!(a, OFF_TRIE);
        // Cap reached: new prefixes fall off, existing ones still resolve.
        assert_eq!(t.child(t.root(), 1), OFF_TRIE);
        assert_eq!(t.child(t.root(), 0), a);
        assert_eq!(t.child(OFF_TRIE, 0), OFF_TRIE);
    }

    #[test]
    fn probs_cache_first_writer_wins() {
        let mut t = PrefixTrie::new();
        let n = t.child(t.root(), 0);
        assert!(t.probs(n).is_none());
        t.set_probs(n, &[0.25, 0.75]);
        t.set_probs(n, &[1.0, 0.0]);
        assert_eq!(t.probs(n).unwrap(), &[0.25, 0.75]);
        assert!(t.probs(OFF_TRIE).is_none());
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.stats(), TrieStats::default());
    }
}
