//! Prefix trie over sampled-code prefixes with cached conditionals.
//!
//! Progressive sampling evaluates the network on *prefixes* of sampled
//! codes, and the conditional distribution at a prefix is a pure function
//! of that prefix — the same one-hot input always yields the same logits.
//! The trie exploits this twice:
//!
//! 1. **Within a batch**: paths holding identical prefixes land on the same
//!    trie node, so the batch runs one forward row per *distinct* prefix
//!    (subsuming the exact-prefix hash dedup the estimator used to do).
//! 2. **Across batches**: a trie kept alive between calls (see
//!    [`crate::infer::estimate_cardinality_batch_shared`]) caches each
//!    node's conditional-probability row the first time it is computed, so
//!    later batches that revisit a prefix skip its forward row entirely.
//!    This is what makes shared estimation *strictly cheaper* than
//!    per-batch dedup: repeated workloads (DNF inclusion–exclusion terms,
//!    serving traffic against one model version) re-walk the hot prefixes.
//!
//! Because per-row forward arithmetic is row-independent in both backbones,
//! a cached row is bit-identical to the row a fresh forward would produce —
//! caching changes cost, never values.
//!
//! Memory is bounded by a node cap: once reached, paths fall off the trie
//! (`OFF_TRIE`) and are deduped per batch by their raw code prefix instead.

use std::collections::HashMap;

/// Sentinel node id for paths that fell off the trie (node cap reached).
pub(crate) const OFF_TRIE: usize = usize::MAX;

/// Default maximum node count (~a few hundred MB worst case at serving
/// domain sizes; real workloads share prefixes heavily and stay far below).
pub const DEFAULT_NODE_CAP: usize = 1 << 17;

#[derive(Debug, Default)]
struct TrieNode {
    children: HashMap<u32, usize>,
    /// Conditional probabilities of column `depth(node)` given this prefix,
    /// cached after the first forward pass that visits the node.
    probs: Option<Box<[f32]>>,
}

/// Cost accounting for one or more estimation calls over a trie.
///
/// All counts are cumulative; diff two [`PrefixTrie::stats`] snapshots to
/// measure a single call. `cached_hits` is the across-batch win; the sum
/// `forward_rows + cached_hits + dedup_hits` equals the number of live
/// (path, column) steps taken.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TrieStats {
    /// Network forward launches (one per column with ≥1 uncached prefix).
    pub forwards: u64,
    /// Rows pushed through the network (distinct uncached prefixes).
    pub forward_rows: u64,
    /// Live path-steps served from a node's cached conditionals.
    pub cached_hits: u64,
    /// Live path-steps deduped within the current batch (prefix already
    /// queued for this forward).
    pub dedup_hits: u64,
}

/// A trie over sampled-code prefixes; see the module docs.
#[derive(Debug)]
pub struct PrefixTrie {
    nodes: Vec<TrieNode>,
    cap: usize,
    stats: TrieStats,
}

impl Default for PrefixTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefixTrie {
    /// The root node id (empty prefix); node ids index the node vector.
    pub(crate) const ROOT: usize = 0;

    /// An empty trie (root only) with the default node cap.
    pub fn new() -> Self {
        Self::with_node_cap(DEFAULT_NODE_CAP)
    }

    /// An empty trie whose node count never exceeds `cap` (min 1: the root).
    pub fn with_node_cap(cap: usize) -> Self {
        PrefixTrie {
            nodes: vec![TrieNode::default()],
            cap: cap.max(1),
            stats: TrieStats::default(),
        }
    }

    /// The root node (empty prefix).
    #[cfg(test)]
    pub(crate) fn root(&self) -> usize {
        Self::ROOT
    }

    /// Node count (root included).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Cumulative cost counters.
    pub fn stats(&self) -> TrieStats {
        self.stats
    }

    /// Drop all cached prefixes and counters (keeps the cap).
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.nodes.push(TrieNode::default());
        self.stats = TrieStats::default();
    }

    pub(crate) fn stats_mut(&mut self) -> &mut TrieStats {
        &mut self.stats
    }

    /// Step from `node` along `code`, creating the child if the cap allows;
    /// `OFF_TRIE` when the path falls off the trie.
    pub(crate) fn child(&mut self, node: usize, code: u32) -> usize {
        if node == OFF_TRIE {
            return OFF_TRIE;
        }
        if let Some(&c) = self.nodes[node].children.get(&code) {
            return c;
        }
        if self.nodes.len() >= self.cap {
            return OFF_TRIE;
        }
        let c = self.nodes.len();
        self.nodes.push(TrieNode::default());
        self.nodes[node].children.insert(code, c);
        c
    }

    /// Cached conditionals at `node`, if a forward pass already visited it.
    pub(crate) fn probs(&self, node: usize) -> Option<&[f32]> {
        if node == OFF_TRIE {
            return None;
        }
        self.nodes[node].probs.as_deref()
    }

    /// Cache `probs` at `node` (first writer wins; later writes of the same
    /// prefix would be bit-identical anyway).
    pub(crate) fn set_probs(&mut self, node: usize, probs: &[f32]) {
        if node != OFF_TRIE && self.nodes[node].probs.is_none() {
            self.nodes[node].probs = Some(probs.into());
        }
    }

    /// Classify every live batch row for one column in a single pass,
    /// expressing trie hits and within-batch dedup as row masks over the
    /// batch (see [`ColumnMasks`]) instead of scatter/gather index vectors.
    /// Rows whose node already carries cached conditionals are marked
    /// `cached`; the first live row of each remaining prefix group becomes
    /// its `fresh` representative (taking the forward row), and every later
    /// member points at it through `rep`. On-trie groups key by node id,
    /// off-trie ones by their raw code prefix. Trie-level cost counters are
    /// updated here; the summary carries the same counts back to the caller
    /// for process-wide metrics.
    pub(crate) fn classify_column(
        &mut self,
        factors: &[f64],
        node: &[usize],
        codes: &[Vec<u32>],
        masks: &mut ColumnMasks,
    ) -> ColumnSummary {
        masks.reset(factors.len());
        let mut uniq_node: HashMap<usize, usize> = HashMap::new();
        let mut uniq_codes: HashMap<&[u32], usize> = HashMap::new();
        let mut summary = ColumnSummary::default();
        for r in 0..factors.len() {
            if factors[r] == 0.0 {
                continue;
            }
            summary.any_live = true;
            if self.probs(node[r]).is_some() {
                masks.cached[r] = true;
                summary.cached_hits += 1;
                continue;
            }
            let rep = if node[r] != OFF_TRIE {
                *uniq_node.entry(node[r]).or_insert(r)
            } else {
                *uniq_codes.entry(codes[r].as_slice()).or_insert(r)
            };
            masks.rep[r] = rep;
            if rep == r {
                masks.fresh[r] = true;
                summary.fresh_rows += 1;
            } else {
                summary.dedup_hits += 1;
            }
        }
        self.stats.dedup_hits += summary.dedup_hits;
        self.stats.cached_hits += summary.cached_hits;
        summary
    }
}

/// Row-mask view of one column's batch classification, refilled in place by
/// [`PrefixTrie::classify_column`] each column. The buffers live in a
/// `SampleBatch` and are reused across columns and calls — the batch-major
/// replacement for the per-column scatter/gather vectors the estimator used
/// to rebuild.
#[derive(Debug, Default)]
pub(crate) struct ColumnMasks {
    /// `fresh[r]`: row `r` represents its prefix group this column and
    /// takes a forward row.
    pub(crate) fresh: Vec<bool>,
    /// `cached[r]`: row `r` reads conditionals an earlier batch cached on
    /// its trie node.
    pub(crate) cached: Vec<bool>,
    /// `rep[r]`: the batch row whose freshly computed conditionals row `r`
    /// reads (`rep[r] == r` for representatives; meaningful only for live,
    /// uncached rows).
    pub(crate) rep: Vec<usize>,
}

impl ColumnMasks {
    fn reset(&mut self, rows: usize) {
        self.fresh.clear();
        self.fresh.resize(rows, false);
        self.cached.clear();
        self.cached.resize(rows, false);
        self.rep.clear();
        self.rep.resize(rows, 0);
    }
}

/// Counts from one [`PrefixTrie::classify_column`] pass.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ColumnSummary {
    /// At least one row still has non-zero factor.
    pub(crate) any_live: bool,
    /// Rows marked fresh (the forward row count for this column).
    pub(crate) fresh_rows: u64,
    /// Live rows served from trie-cached conditionals.
    pub(crate) cached_hits: u64,
    /// Live rows deduped onto an in-batch representative.
    pub(crate) dedup_hits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descend_creates_and_reuses_nodes() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        let a = t.child(t.root(), 3);
        let b = t.child(t.root(), 3);
        assert_eq!(a, b);
        let c = t.child(a, 1);
        assert_ne!(c, a);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn cap_sends_paths_off_trie() {
        let mut t = PrefixTrie::with_node_cap(2);
        let a = t.child(t.root(), 0);
        assert_ne!(a, OFF_TRIE);
        // Cap reached: new prefixes fall off, existing ones still resolve.
        assert_eq!(t.child(t.root(), 1), OFF_TRIE);
        assert_eq!(t.child(t.root(), 0), a);
        assert_eq!(t.child(OFF_TRIE, 0), OFF_TRIE);
    }

    #[test]
    fn probs_cache_first_writer_wins() {
        let mut t = PrefixTrie::new();
        let n = t.child(t.root(), 0);
        assert!(t.probs(n).is_none());
        t.set_probs(n, &[0.25, 0.75]);
        t.set_probs(n, &[1.0, 0.0]);
        assert_eq!(t.probs(n).unwrap(), &[0.25, 0.75]);
        assert!(t.probs(OFF_TRIE).is_none());
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.stats(), TrieStats::default());
    }
}
