//! Model persistence: save a trained [`FrozenModel`] to JSON and load it
//! back — train once, generate many times (or ship the model instead of
//! the workload).
//!
//! The file carries everything generation needs: the database schema (for
//! the join graph), the model columns with their base domains and interval
//! bins, table sizes, the normaliser, and the MADE's *effective* (masked)
//! weights.

use crate::encoding::ColumnEncoding;
use crate::error::ArError;
use crate::model::FrozenModel;
use crate::model_schema::{ArColumn, ArColumnKind, ArSchema};
use sam_fault::FaultFs;
use sam_nn::{BackendKind, FrozenMade, Matrix};
use sam_storage::{
    ColumnDef, ColumnRole, DataType, DatabaseSchema, Domain, ForeignKeyEdge, TableSchema, Value,
};
use serde::{Deserialize, Serialize};

/// Current format version. Version 2 added the [`LayoutDto`] weight-layout
/// section; files from every version in [`MIN_VERSION`]`..=VERSION` load.
const VERSION: u32 = 2;
/// Oldest format version [`load_model`] still accepts.
const MIN_VERSION: u32 = 1;

#[derive(Debug, Serialize, Deserialize)]
enum ValueDto {
    #[serde(rename = "null")]
    Null,
    #[serde(rename = "i")]
    Int(i64),
    #[serde(rename = "f")]
    Float(f64),
    #[serde(rename = "s")]
    Str(String),
}

impl From<&Value> for ValueDto {
    fn from(v: &Value) -> Self {
        match v {
            Value::Null => ValueDto::Null,
            Value::Int(x) => ValueDto::Int(*x),
            Value::Float(x) => ValueDto::Float(*x),
            Value::Str(s) => ValueDto::Str(s.to_string()),
        }
    }
}

impl From<&ValueDto> for Value {
    fn from(v: &ValueDto) -> Self {
        match v {
            ValueDto::Null => Value::Null,
            ValueDto::Int(x) => Value::Int(*x),
            ValueDto::Float(x) => Value::Float(*x),
            ValueDto::Str(s) => Value::str(s),
        }
    }
}

#[derive(Debug, Serialize, Deserialize)]
struct ColumnDefDto {
    name: String,
    dtype: String,
    role: String,
    references: Option<String>,
}

#[derive(Debug, Serialize, Deserialize)]
struct TableDto {
    name: String,
    columns: Vec<ColumnDefDto>,
}

#[derive(Debug, Serialize, Deserialize)]
struct EdgeDto {
    pk_table: String,
    fk_table: String,
    fk_column: String,
}

#[derive(Debug, Serialize, Deserialize)]
struct ArColumnDto {
    /// `content` / `indicator` / `fanout`.
    kind: String,
    table: usize,
    column: usize,
    name: String,
    base_values: Vec<ValueDto>,
    /// Bin start codes (ends implied by the next start / domain length).
    bin_starts: Vec<u32>,
}

#[derive(Debug, Serialize, Deserialize)]
struct MatrixDto {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Weight-layout section (format v2+). On-disk weights are always the
/// canonical row-major `f32` layout — quantised/blocked layouts are an
/// *inference-time* repacking, so checkpoints stay lossless and portable —
/// and `backend` records which kernel the model ran on when saved, restored
/// as the default on load.
#[derive(Debug, Serialize, Deserialize)]
struct LayoutDto {
    /// On-disk weight element encoding; `"f32"` is the only value written.
    weights: String,
    /// Preferred inference backend (`"f32"` / `"f16"` / `"int8"`).
    backend: String,
}

#[derive(Debug, Serialize, Deserialize)]
struct ModelFile {
    version: u32,
    tables: Vec<TableDto>,
    edges: Vec<EdgeDto>,
    columns: Vec<ArColumnDto>,
    table_sizes: Vec<u64>,
    normalizer: f64,
    domain_sizes: Vec<usize>,
    /// (effective weights, bias) per layer.
    layers: Vec<(MatrixDto, MatrixDto)>,
    /// Per-layer ResMADE residual flags (absent in plain MADE files).
    #[serde(default)]
    residual: Vec<bool>,
    /// Weight layout + preferred backend (absent in v1 files ⇒ reference
    /// `f32`).
    #[serde(default)]
    layout: Option<LayoutDto>,
}

fn schema_to_dto(schema: &DatabaseSchema) -> (Vec<TableDto>, Vec<EdgeDto>) {
    let tables = schema
        .tables()
        .iter()
        .map(|t| TableDto {
            name: t.name.clone(),
            columns: t
                .columns
                .iter()
                .map(|c| {
                    let (role, references) = match &c.role {
                        ColumnRole::Content => ("content", None),
                        ColumnRole::PrimaryKey => ("pk", None),
                        ColumnRole::ForeignKey { references } => ("fk", Some(references.clone())),
                    };
                    ColumnDefDto {
                        name: c.name.clone(),
                        dtype: match c.dtype {
                            DataType::Int => "int".into(),
                            DataType::Float => "float".into(),
                            DataType::Str => "text".into(),
                        },
                        role: role.into(),
                        references,
                    }
                })
                .collect(),
        })
        .collect();
    let edges = schema
        .edges()
        .iter()
        .map(|e| EdgeDto {
            pk_table: e.pk_table.clone(),
            fk_table: e.fk_table.clone(),
            fk_column: e.fk_column.clone(),
        })
        .collect();
    (tables, edges)
}

fn schema_from_dto(tables: &[TableDto], edges: &[EdgeDto]) -> Result<DatabaseSchema, ArError> {
    let tables = tables
        .iter()
        .map(|t| {
            let columns = t
                .columns
                .iter()
                .map(|c| {
                    let dtype = match c.dtype.as_str() {
                        "int" => DataType::Int,
                        "float" => DataType::Float,
                        _ => DataType::Str,
                    };
                    let role = match c.role.as_str() {
                        "pk" => ColumnRole::PrimaryKey,
                        "fk" => ColumnRole::ForeignKey {
                            references: c.references.clone().unwrap_or_default(),
                        },
                        _ => ColumnRole::Content,
                    };
                    ColumnDef {
                        name: c.name.clone(),
                        dtype,
                        role,
                    }
                })
                .collect();
            TableSchema::new(t.name.clone(), columns)
        })
        .collect();
    let edges = edges
        .iter()
        .map(|e| ForeignKeyEdge {
            pk_table: e.pk_table.clone(),
            fk_table: e.fk_table.clone(),
            fk_column: e.fk_column.clone(),
        })
        .collect();
    DatabaseSchema::new(tables, edges).map_err(ArError::Storage)
}

/// Serialise a trained model to JSON.
pub fn save_model(model: &FrozenModel, db_schema: &DatabaseSchema) -> String {
    let (tables, edges) = schema_to_dto(db_schema);
    let columns = model
        .schema
        .columns()
        .iter()
        .map(|c| {
            let (kind, table, column) = match c.kind {
                ArColumnKind::Content { table, column } => ("content", table, column),
                ArColumnKind::Indicator { table } => ("indicator", table, 0),
                ArColumnKind::Fanout { table } => ("fanout", table, 0),
            };
            ArColumnDto {
                kind: kind.into(),
                table,
                column,
                name: c.name.clone(),
                base_values: c
                    .encoding
                    .base_domain()
                    .values()
                    .iter()
                    .map(ValueDto::from)
                    .collect(),
                bin_starts: (0..c.encoding.num_bins())
                    .map(|b| c.encoding.bin(b).start)
                    .collect(),
            }
        })
        .collect();
    let made = model
        .net
        .as_made()
        .expect("save_model currently supports the MADE backbone only");
    let layers = made
        .layers()
        .iter()
        .map(|(w, b)| {
            (
                MatrixDto {
                    rows: w.rows(),
                    cols: w.cols(),
                    data: w.data().to_vec(),
                },
                MatrixDto {
                    rows: b.rows(),
                    cols: b.cols(),
                    data: b.data().to_vec(),
                },
            )
        })
        .collect();
    let file = ModelFile {
        version: VERSION,
        tables,
        edges,
        columns,
        table_sizes: (0..model.schema.graph().len())
            .map(|t| model.schema.table_size(t))
            .collect(),
        normalizer: model.schema.normalizer(),
        domain_sizes: model.schema.domain_sizes(),
        layers,
        residual: made.residual_flags().to_vec(),
        layout: Some(LayoutDto {
            weights: "f32".into(),
            backend: made.backend_kind().name().into(),
        }),
    };
    serde_json::to_string(&file).expect("model serialises")
}

/// Durably write a trained model to `path` through a [`FaultFs`], using the
/// tmp+fsync+rename commit protocol: a crash at any instant leaves either
/// the previous file (or nothing) or the complete new model — never a torn
/// JSON. Crash points: `model.save.pre_write` plus the generic
/// `atomic.tmp_written` / `atomic.pre_rename` inside the commit.
pub fn save_model_file(
    model: &FrozenModel,
    db_schema: &DatabaseSchema,
    path: &std::path::Path,
    fs: &dyn FaultFs,
) -> Result<(), ArError> {
    let json = save_model(model, db_schema);
    sam_fault::crash_point("model.save.pre_write");
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs.create_dir_all(parent)?;
    }
    sam_fault::write_atomic(fs, path, json.as_bytes())?;
    Ok(())
}

/// Load a model from `path` through a [`FaultFs`].
pub fn load_model_file(
    path: &std::path::Path,
    fs: &dyn FaultFs,
) -> Result<(FrozenModel, DatabaseSchema), ArError> {
    let bytes = fs.read(path)?;
    let json = std::str::from_utf8(&bytes)
        .map_err(|_| ArError::Invalid(format!("model file {} is not UTF-8", path.display())))?;
    load_model(json)
}

/// Load a model saved by [`save_model`], returning it with its schema.
///
/// Accepts every format version in `MIN_VERSION..=VERSION`: v1 files
/// (pre-layout) load onto the reference `f32` backend, v2 files restore the
/// backend recorded at save time. Either way the loaded model can be
/// re-targeted afterwards with [`FrozenModel::with_backend`].
pub fn load_model(json: &str) -> Result<(FrozenModel, DatabaseSchema), ArError> {
    let file: ModelFile =
        serde_json::from_str(json).map_err(|e| ArError::Invalid(format!("model JSON: {e}")))?;
    if !(MIN_VERSION..=VERSION).contains(&file.version) {
        return Err(ArError::Invalid(format!(
            "unsupported model version {} (supported: {MIN_VERSION}..={VERSION})",
            file.version
        )));
    }
    let backend = match &file.layout {
        None => BackendKind::ReferenceF32,
        Some(layout) => {
            if layout.weights != "f32" {
                return Err(ArError::Invalid(format!(
                    "unsupported on-disk weight layout {:?} (expected \"f32\")",
                    layout.weights
                )));
            }
            layout
                .backend
                .parse::<BackendKind>()
                .map_err(ArError::Invalid)?
        }
    };
    let db_schema = schema_from_dto(&file.tables, &file.edges)?;

    let columns = file
        .columns
        .iter()
        .map(|c| {
            let base = Domain::new(c.base_values.iter().map(Value::from).collect()).shared();
            let encoding = ColumnEncoding::intervalized(base, c.bin_starts.clone());
            let kind = match c.kind.as_str() {
                "content" => ArColumnKind::Content {
                    table: c.table,
                    column: c.column,
                },
                "indicator" => ArColumnKind::Indicator { table: c.table },
                "fanout" => ArColumnKind::Fanout { table: c.table },
                other => return Err(ArError::Invalid(format!("bad column kind {other:?}"))),
            };
            Ok(ArColumn {
                kind,
                name: c.name.clone(),
                encoding,
            })
        })
        .collect::<Result<Vec<_>, ArError>>()?;

    let schema = ArSchema::from_parts(&db_schema, columns, file.table_sizes, file.normalizer)?;
    if schema.domain_sizes() != file.domain_sizes {
        return Err(ArError::Invalid(
            "encoding bins do not match recorded domain sizes".into(),
        ));
    }
    let layers = file
        .layers
        .into_iter()
        .map(|(w, b)| {
            (
                Matrix::from_vec(w.rows, w.cols, w.data),
                Matrix::from_vec(b.rows, b.cols, b.data),
            )
        })
        .collect();
    let made = if file.residual.is_empty() {
        FrozenMade::from_parts(layers, file.domain_sizes)
    } else {
        FrozenMade::from_parts_residual(layers, file.residual, file.domain_sizes)
    }
    .with_backend(backend);
    Ok((
        FrozenModel {
            schema,
            net: made.into(),
        },
        db_schema,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::estimate_cardinality;
    use crate::model::{ArModel, ArModelConfig};
    use crate::model_schema::EncodingOptions;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sam_query::Query;
    use sam_storage::{paper_example, DatabaseStats};

    #[test]
    fn save_load_round_trip_preserves_estimates_and_samples() {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let schema =
            ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let model = ArModel::new(
            schema,
            &ArModelConfig {
                hidden: vec![16],
                seed: 4,
                residual: false,
                transformer: None,
            },
        )
        .freeze();

        let json = save_model(&model, db.schema());
        let (loaded, loaded_schema) = load_model(&json).unwrap();
        assert_eq!(&loaded_schema, db.schema());
        assert_eq!(loaded.schema.domain_sizes(), model.schema.domain_sizes());
        assert_eq!(loaded.schema.normalizer(), model.schema.normalizer());

        // Identical estimates under the same RNG stream.
        let q = Query::join(vec!["A".into(), "B".into()], vec![]);
        let a = estimate_cardinality(&model, &q, 64, &mut StdRng::seed_from_u64(1)).unwrap();
        let b = estimate_cardinality(&loaded, &q, 64, &mut StdRng::seed_from_u64(1)).unwrap();
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");

        // Identical samples under the same seed.
        let s1 = crate::sample::sample_model_rows(&model, 32, 8, 9);
        let s2 = crate::sample::sample_model_rows(&loaded, 32, 8, 9);
        assert_eq!(s1, s2);
    }

    #[test]
    fn rejects_bad_version_and_garbage() {
        assert!(load_model("not json").is_err());
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let schema =
            ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let model = ArModel::new(schema, &ArModelConfig::default()).freeze();
        let json = save_model(&model, db.schema());
        let bad = json.replace("\"version\":2", "\"version\":99");
        assert!(load_model(&bad).is_err());
        let bad_layout = json.replace("\"weights\":\"f32\"", "\"weights\":\"f64\"");
        assert!(load_model(&bad_layout).is_err());
    }

    #[test]
    fn backend_choice_survives_the_round_trip() {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let schema =
            ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let model = ArModel::new(schema, &ArModelConfig::default())
            .freeze()
            .with_backend(sam_nn::BackendKind::BlockedF16);

        let json = save_model(&model, db.schema());
        assert!(json.contains("\"backend\":\"f16\""));
        let (loaded, _) = load_model(&json).unwrap();
        assert_eq!(loaded.backend_kind(), sam_nn::BackendKind::BlockedF16);
        // Weights on disk stay f32, so hopping back to the reference
        // backend restores bit-exact estimates.
        let q = Query::single("A", vec![]);
        let reference = model.with_backend(sam_nn::BackendKind::ReferenceF32);
        let a = estimate_cardinality(&reference, &q, 32, &mut StdRng::seed_from_u64(3)).unwrap();
        let b = estimate_cardinality(
            &loaded.with_backend(sam_nn::BackendKind::ReferenceF32),
            &q,
            32,
            &mut StdRng::seed_from_u64(3),
        )
        .unwrap();
        assert_eq!(a, b);

        // The quantised kernel round-trips the same way: weights on disk
        // stay f32, only the preferred-backend tag changes.
        let int8 = load_model(&json)
            .unwrap()
            .0
            .with_backend(sam_nn::BackendKind::Int8Blocked);
        let json = save_model(&int8, db.schema());
        assert!(json.contains("\"backend\":\"int8\""));
        let (reloaded, _) = load_model(&json).unwrap();
        assert_eq!(reloaded.backend_kind(), sam_nn::BackendKind::Int8Blocked);
    }
}
