//! The AR model: a MADE or causal-Transformer backbone bound to an
//! [`ArSchema`] (paper §4.1: "SAM can be instantiated by any learning-based
//! AR architecture (e.g., MADE and Transformer)").

use crate::model_schema::ArSchema;
use sam_nn::{
    BackendKind, BoundMade, BoundTransformer, FrozenMade, FrozenTransformer, Made, MadeConfig,
    Matrix, ParamStore, Tape, TransformerAr, TransformerConfig, Var,
};

/// Transformer sizing (used when [`ArModelConfig::transformer`] is set).
#[derive(Debug, Clone)]
pub struct TransformerDims {
    /// Model / embedding width.
    pub d_model: usize,
    /// Attention + FFN blocks.
    pub blocks: usize,
    /// FFN width multiplier.
    pub ff_mult: usize,
}

impl Default for TransformerDims {
    fn default() -> Self {
        TransformerDims {
            d_model: 32,
            blocks: 2,
            ff_mult: 2,
        }
    }
}

/// Model hyperparameters.
#[derive(Debug, Clone)]
pub struct ArModelConfig {
    /// Hidden layer widths of the MADE backbone.
    pub hidden: Vec<usize>,
    /// Weight-init / mask seed.
    pub seed: u64,
    /// Use ResMADE residual blocks between equal-width hidden layers.
    pub residual: bool,
    /// Use a causal Transformer backbone instead of MADE (the `hidden` and
    /// `residual` fields are then ignored).
    pub transformer: Option<TransformerDims>,
}

impl Default for ArModelConfig {
    fn default() -> Self {
        ArModelConfig {
            hidden: vec![64, 64],
            seed: 0,
            residual: false,
            transformer: None,
        }
    }
}

/// The trainable backbone network.
pub enum Net {
    /// Masked autoencoder.
    Made(Made),
    /// Causal Transformer.
    Transformer(TransformerAr),
}

impl Net {
    /// Number of modelled columns.
    pub fn num_columns(&self) -> usize {
        match self {
            Net::Made(m) => m.num_columns(),
            Net::Transformer(t) => t.num_columns(),
        }
    }

    /// Domain size of column `i`.
    pub fn domain_size(&self, i: usize) -> usize {
        match self {
            Net::Made(m) => m.domain_size(i),
            Net::Transformer(t) => t.domain_size(i),
        }
    }

    /// One-hot block offset of column `i`.
    pub fn offset(&self, i: usize) -> usize {
        match self {
            Net::Made(m) => m.offset(i),
            Net::Transformer(t) => t.offset(i),
        }
    }

    /// Input/logits width.
    pub fn total_width(&self) -> usize {
        match self {
            Net::Made(m) => m.total_width(),
            Net::Transformer(t) => t.total_width(),
        }
    }

    /// Bind parameters to a tape for one training step.
    pub fn bind<'m>(&'m self, tape: &mut Tape, store: &ParamStore) -> BoundNet<'m> {
        match self {
            Net::Made(m) => BoundNet::Made(m.bind(tape, store)),
            Net::Transformer(t) => BoundNet::Transformer(t.bind(tape, store)),
        }
    }

    /// Snapshot for inference and sampling.
    pub fn freeze(&self, store: &ParamStore) -> FrozenNet {
        match self {
            Net::Made(m) => FrozenNet::Made(m.freeze(store)),
            Net::Transformer(t) => FrozenNet::Transformer(t.freeze(store)),
        }
    }
}

/// A backbone bound to a tape for one step.
pub enum BoundNet<'m> {
    /// Bound MADE.
    Made(BoundMade<'m>),
    /// Bound Transformer.
    Transformer(BoundTransformer<'m>),
}

impl<'m> BoundNet<'m> {
    /// Forward pass (B × total_width one-hots → B × total_width logits).
    pub fn forward(&self, tape: &mut Tape, input: Var) -> Var {
        match self {
            BoundNet::Made(m) => m.forward(tape, input),
            BoundNet::Transformer(t) => t.forward(tape, input),
        }
    }

    /// Logit block of column `i`.
    pub fn logits_of(&self, tape: &mut Tape, logits: Var, i: usize) -> Var {
        match self {
            BoundNet::Made(m) => m.logits_of(tape, logits, i),
            BoundNet::Transformer(t) => t.logits_of(tape, logits, i),
        }
    }

    /// Fold parameter gradients back into the store.
    pub fn apply_grads(&self, tape: &Tape, store: &mut ParamStore) {
        match self {
            BoundNet::Made(m) => m.apply_grads(tape, store),
            BoundNet::Transformer(t) => t.apply_grads(tape, store),
        }
    }
}

/// An immutable trained backbone (the sampling/estimation interface).
///
/// Cloning is cheap for MADE (weights are `Arc`-shared) and copies weights
/// for the Transformer; it exists so a serving tier can derive a
/// reference-backend shadow copy of a loaded model (see
/// [`FrozenModel::reference_clone`]).
#[derive(Clone)]
pub enum FrozenNet {
    /// Frozen MADE.
    Made(FrozenMade),
    /// Frozen Transformer.
    Transformer(FrozenTransformer),
}

impl FrozenNet {
    /// Number of modelled columns.
    pub fn num_columns(&self) -> usize {
        match self {
            FrozenNet::Made(m) => m.num_columns(),
            FrozenNet::Transformer(t) => t.num_columns(),
        }
    }

    /// Domain size of column `i`.
    pub fn domain_size(&self, i: usize) -> usize {
        match self {
            FrozenNet::Made(m) => m.domain_size(i),
            FrozenNet::Transformer(t) => t.domain_size(i),
        }
    }

    /// One-hot block offset of column `i`.
    pub fn offset(&self, i: usize) -> usize {
        match self {
            FrozenNet::Made(m) => m.offset(i),
            FrozenNet::Transformer(t) => t.offset(i),
        }
    }

    /// Input/logits width.
    pub fn total_width(&self) -> usize {
        match self {
            FrozenNet::Made(m) => m.total_width(),
            FrozenNet::Transformer(t) => t.total_width(),
        }
    }

    /// Forward pass.
    pub fn forward(&self, input: &Matrix) -> Matrix {
        match self {
            FrozenNet::Made(m) => m.forward(input),
            FrozenNet::Transformer(t) => t.forward(input),
        }
    }

    /// Forward pass into a caller-provided logits buffer (hot sampling
    /// loops reuse one buffer across columns instead of allocating per
    /// forward). The Transformer backbone falls back to an allocating
    /// forward moved into the buffer.
    pub fn forward_into(&self, input: &Matrix, out: &mut Matrix) {
        match self {
            FrozenNet::Made(m) => m.forward_into(input, out),
            FrozenNet::Transformer(t) => *out = t.forward(input),
        }
    }

    /// Batch-major forward with an optional row-liveness mask: only rows
    /// with `live[r] == true` are forwarded and written in `out`;
    /// masked-out rows are left untouched. Per-row results are bit-identical
    /// to an unmasked forward (rows are independent in both backbones). The
    /// Transformer backbone has no masked kernels and falls back to
    /// gather→forward→scatter.
    pub fn forward_batch_into(&self, input: &Matrix, live: Option<&[bool]>, out: &mut Matrix) {
        match self {
            FrozenNet::Made(m) => m.forward_batch_into(input, live, out),
            FrozenNet::Transformer(t) => match live {
                None => *out = t.forward(input),
                Some(mask) => {
                    let rows: Vec<usize> = mask
                        .iter()
                        .enumerate()
                        .filter_map(|(r, &m)| m.then_some(r))
                        .collect();
                    if rows.is_empty() {
                        return;
                    }
                    let mut compact = Matrix::zeros(rows.len(), input.cols());
                    for (c, &r) in rows.iter().enumerate() {
                        compact.row_mut(c).copy_from_slice(input.row(r));
                    }
                    let compact_out = t.forward(&compact);
                    for (c, &r) in rows.iter().enumerate() {
                        out.row_mut(r).copy_from_slice(compact_out.row(c));
                    }
                }
            },
        }
    }

    /// Row-wise softmax of column `i`'s logit block.
    pub fn conditional_probs(&self, logits: &Matrix, i: usize) -> Matrix {
        match self {
            FrozenNet::Made(m) => m.conditional_probs(logits, i),
            FrozenNet::Transformer(t) => t.conditional_probs(logits, i),
        }
    }

    /// Row-wise softmax of column `i`'s logit block for masked rows only,
    /// written into the leading `domain_size(i)` columns of the same rows
    /// of `out` (a `rows × max_domain` buffer). Masked-out rows are left
    /// untouched. The per-row arithmetic is exactly that of
    /// [`conditional_probs`](Self::conditional_probs) — both backbones use
    /// the identical softmax loop — so masked rows are bit-identical to an
    /// unmasked call.
    pub fn conditional_probs_masked_into(
        &self,
        logits: &Matrix,
        i: usize,
        live: &[bool],
        out: &mut Matrix,
    ) {
        let off = self.offset(i);
        let d = self.domain_size(i);
        debug_assert!(out.cols() >= d);
        for (r, &row_live) in live.iter().enumerate().take(logits.rows()) {
            if !row_live {
                continue;
            }
            let row = &logits.row(r)[off..off + d];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            let dst = &mut out.row_mut(r)[..d];
            for (o, &v) in dst.iter_mut().zip(row) {
                let e = (v - m).exp();
                *o = e;
                sum += e;
            }
            let inv = 1.0 / sum.max(f32::MIN_POSITIVE);
            dst.iter_mut().for_each(|o| *o *= inv);
        }
    }

    /// The underlying MADE, if that is the backbone (persistence supports
    /// MADE only).
    pub fn as_made(&self) -> Option<&FrozenMade> {
        match self {
            FrozenNet::Made(m) => Some(m),
            FrozenNet::Transformer(_) => None,
        }
    }

    /// Rebuild over the given inference backend. The frozen weights are
    /// shared, not copied; only the execution kernel changes. The
    /// Transformer backbone has no alternative kernels yet and always runs
    /// its reference path.
    pub fn with_backend(self, kind: BackendKind) -> FrozenNet {
        match self {
            FrozenNet::Made(m) => FrozenNet::Made(m.with_backend(kind)),
            other => other,
        }
    }

    /// The active inference backend (Transformer reports the reference
    /// path).
    pub fn backend_kind(&self) -> BackendKind {
        match self {
            FrozenNet::Made(m) => m.backend_kind(),
            FrozenNet::Transformer(_) => BackendKind::ReferenceF32,
        }
    }
}

impl From<FrozenMade> for FrozenNet {
    fn from(m: FrozenMade) -> Self {
        FrozenNet::Made(m)
    }
}

/// A trainable AR model of a database's (full-outer-join) distribution.
pub struct ArModel {
    schema: ArSchema,
    net: Net,
    store: ParamStore,
}

impl ArModel {
    /// Instantiate with freshly initialised weights.
    pub fn new(schema: ArSchema, config: &ArModelConfig) -> Self {
        let mut store = ParamStore::new();
        let net = match &config.transformer {
            Some(dims) => Net::Transformer(TransformerAr::new(
                TransformerConfig {
                    domain_sizes: schema.domain_sizes(),
                    d_model: dims.d_model,
                    blocks: dims.blocks,
                    ff_mult: dims.ff_mult,
                    seed: config.seed,
                },
                &mut store,
            )),
            None => Net::Made(Made::new(
                MadeConfig {
                    domain_sizes: schema.domain_sizes(),
                    hidden: config.hidden.clone(),
                    seed: config.seed,
                    residual: config.residual,
                },
                &mut store,
            )),
        };
        ArModel { schema, net, store }
    }

    /// The model schema.
    pub fn schema(&self) -> &ArSchema {
        &self.schema
    }

    /// The backbone network (training needs direct access).
    pub fn net(&self) -> &Net {
        &self.net
    }

    /// The parameter store.
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable parameter store (optimiser steps).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Disjoint borrows of the schema, network, and mutable parameter store
    /// (the training loop needs the store mutably while the network is
    /// borrowed).
    pub fn split_mut(&mut self) -> (&ArSchema, &Net, &mut ParamStore) {
        (&self.schema, &self.net, &mut self.store)
    }

    /// Total scalar parameter count.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// Snapshot for inference and sampling (`Send + Sync`).
    pub fn freeze(&self) -> FrozenModel {
        FrozenModel {
            schema: self.schema.clone(),
            net: self.net.freeze(&self.store),
        }
    }
}

/// An immutable trained model: the sampling/estimation interface handed to
/// the generation stage.
#[derive(Clone)]
pub struct FrozenModel {
    /// The model schema (column order, encodings, normaliser).
    pub schema: ArSchema,
    /// The frozen backbone.
    pub net: FrozenNet,
}

impl FrozenModel {
    /// Rebuild over the given inference backend (weights shared, kernel
    /// swapped) — see [`FrozenNet::with_backend`].
    pub fn with_backend(self, kind: BackendKind) -> FrozenModel {
        FrozenModel {
            schema: self.schema,
            net: self.net.with_backend(kind),
        }
    }

    /// The active inference backend.
    pub fn backend_kind(&self) -> BackendKind {
        self.net.backend_kind()
    }

    /// A shadow copy of this model running on the bit-exact f32 reference
    /// backend, leaving `self` untouched. Serving-tier quality monitors use
    /// this to re-score sampled estimates: any divergence between the live
    /// backend and the reference clone (same query, samples, and seed) is a
    /// backend-parity defect, not model drift. Cheap for MADE (weights are
    /// `Arc`-shared); copies weights for the Transformer backbone.
    pub fn reference_clone(&self) -> FrozenModel {
        self.clone().with_backend(BackendKind::ReferenceF32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_schema::EncodingOptions;
    use sam_storage::{paper_example, DatabaseStats};

    fn schema() -> ArSchema {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap()
    }

    #[test]
    fn made_model_shapes_follow_schema() {
        let schema = schema();
        let total: usize = schema.domain_sizes().iter().sum();
        let model = ArModel::new(schema, &ArModelConfig::default());
        assert_eq!(model.net().total_width(), total);
        assert!(model.num_parameters() > 0);
        let frozen = model.freeze();
        assert_eq!(frozen.net.num_columns(), 7);
        assert!(frozen.net.as_made().is_some());
    }

    #[test]
    fn transformer_model_shapes_follow_schema() {
        let schema = schema();
        let total: usize = schema.domain_sizes().iter().sum();
        let model = ArModel::new(
            schema,
            &ArModelConfig {
                transformer: Some(TransformerDims::default()),
                ..Default::default()
            },
        );
        assert_eq!(model.net().total_width(), total);
        let frozen = model.freeze();
        assert_eq!(frozen.net.num_columns(), 7);
        assert!(frozen.net.as_made().is_none());
    }
}
