//! Differentiable Progressive Sampling training (paper §4.1, UAE \[34\]).
//!
//! Each training step replays progressive sampling on the tape: column by
//! column in autoregressive order, the model predicts `P(X_i | x_{<i})`, the
//! step's factor (in-range mass, forced indicator, or sampled inverse
//! fanout) is multiplied into the running selectivity estimate, and a
//! Gumbel-Softmax sample of the column is fed back as input for the next
//! column. Because the samples are relaxed (straight-through by default),
//! gradients flow from the cardinality loss through every sampled step.
//! The loss is the squared error of log-cardinalities — the smooth surrogate
//! of Q-Error used by learned estimators.

#![allow(clippy::needless_range_loop)]
use crate::checkpoint::{self, CheckpointConfig};
use crate::error::ArError;
use crate::model::ArModel;
use crate::model_schema::StepRule;
use rand::prelude::*;
use rand::rngs::StdRng;
use sam_fault::{crash_point, sweep_tmp_files};
use sam_nn::{gumbel_softmax, Adam, Matrix, ParamId, ParamStore, Tape, NEG_LARGE};
use sam_query::Workload;
use std::rc::Rc;
use std::time::Instant;

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Passes over the workload.
    pub epochs: usize,
    /// Queries per gradient step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Gumbel-Softmax temperature.
    pub temperature: f32,
    /// Hard forward samples with soft gradients.
    pub straight_through: bool,
    /// Progressive samples drawn per query per step (each becomes a row).
    pub samples_per_query: usize,
    /// Log-domain fuzz.
    pub eps: f32,
    /// Shuffling / noise seed.
    pub seed: u64,
    /// Crash-safe checkpointing: where and how often to snapshot the full
    /// training state (weights, optimiser, RNG, epoch). `None` disables
    /// checkpointing. When set and a valid checkpoint for the same
    /// fingerprint exists, training auto-resumes from it, bit-for-bit
    /// identical to an uninterrupted run.
    pub checkpoint: Option<CheckpointConfig>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            batch_size: 32,
            lr: 5e-3,
            temperature: 1.0,
            straight_through: true,
            samples_per_query: 1,
            eps: 1e-6,
            seed: 0,
            checkpoint: None,
        }
    }
}

/// Summary of one training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Constraints processed (queries × epochs).
    pub constraints_processed: usize,
    /// Wall-clock seconds spent in training.
    pub wall_seconds: f64,
}

/// Per-epoch progress snapshot handed to a [`train_observed`] observer.
#[derive(Debug, Clone, Copy)]
pub struct TrainProgress {
    /// Epochs completed so far (1-based: the first callback reports 1, or
    /// more when the run auto-resumed from a checkpoint).
    pub epoch: usize,
    /// Total epochs the run will perform.
    pub total_epochs: usize,
    /// Mean loss of the epoch that just finished.
    pub loss: f32,
    /// Epochs restored from a checkpoint before this run started (0 for a
    /// fresh run). Restored epochs do not produce callbacks.
    pub resumed_from: usize,
}

/// Observer verdict after each epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainControl {
    /// Keep training.
    Continue,
    /// Stop cooperatively: [`train_observed`] returns an
    /// [`ArError::Invalid`] whose message contains `"cancelled"`. Any
    /// checkpoint written for the finished epochs stays valid, so a later
    /// run with the same config resumes where the stop happened.
    Stop,
}

/// Train `model` on a labelled workload with DPS.
pub fn train(
    model: &mut ArModel,
    workload: &Workload,
    config: &TrainConfig,
) -> Result<TrainReport, ArError> {
    train_observed(model, workload, config, &mut |_| TrainControl::Continue)
}

/// [`train`], reporting progress after every epoch through `observe` and
/// honouring its [`TrainControl`] verdict. The callback fires *after* the
/// epoch's checkpoint (if due) is committed, so an external controller —
/// e.g. a serving tier journalling training lifecycle events — sees only
/// epochs that are safe to resume from.
pub fn train_observed(
    model: &mut ArModel,
    workload: &Workload,
    config: &TrainConfig,
    observe: &mut dyn FnMut(TrainProgress) -> TrainControl,
) -> Result<TrainReport, ArError> {
    if workload.is_empty() {
        return Err(ArError::Invalid("empty workload".into()));
    }
    let start = Instant::now();
    let (schema, net, store) = model.split_mut();
    let n_cols = schema.num_columns();
    let total_width = net.total_width();
    let normalizer = schema.normalizer();
    let log_norm = normalizer.max(1.0).ln() as f32;

    // Pre-translate every query once.
    let rules: Vec<Vec<StepRule>> = workload
        .iter()
        .map(|lq| schema.query_rules(&lq.query))
        .collect::<Result<_, _>>()?;
    let targets: Vec<f32> = workload
        .iter()
        .map(|lq| (lq.cardinality.max(1) as f32).ln() - log_norm)
        .collect();

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..workload.len()).collect();
    let mut adam = Adam::new(store, config.lr);
    let mut epoch_losses = Vec::with_capacity(config.epochs);

    // Crash-safe checkpointing: sweep orphaned tmp files, then resume from
    // a committed snapshot if one exists for this exact training setup.
    let fingerprint = checkpoint::Fingerprint {
        seed: config.seed,
        batch_size: config.batch_size,
        lr_bits: config.lr.to_bits(),
        temperature_bits: config.temperature.to_bits(),
        eps_bits: config.eps.to_bits(),
        straight_through: config.straight_through,
        samples_per_query: config.samples_per_query,
        workload_len: workload.len(),
        num_scalars: store.num_scalars(),
    };
    let mut start_epoch = 0usize;
    if let Some(ckpt) = &config.checkpoint {
        ckpt.fs.create_dir_all(&ckpt.dir)?;
        sweep_tmp_files(&*ckpt.fs, &ckpt.dir)?;
        if let Some(saved) = checkpoint::load(ckpt)? {
            if saved.fingerprint != fingerprint {
                return Err(ArError::Invalid(format!(
                    "checkpoint in {} was written by a different training setup; \
                     refusing to resume (delete it to start fresh)",
                    ckpt.dir.display()
                )));
            }
            restore_params(store, &saved.params)?;
            let m = restore_matrices(&saved.adam_m)?;
            let v = restore_matrices(&saved.adam_v)?;
            adam.import_state(saved.adam_t, m, v);
            rng = StdRng::from_state([
                saved.rng_state[0],
                saved.rng_state[1],
                saved.rng_state[2],
                saved.rng_state[3],
            ]);
            if saved.order.len() != order.len() {
                return Err(ArError::Invalid(
                    "checkpoint visit order does not match workload size".into(),
                ));
            }
            order = saved.order.iter().map(|&i| i as usize).collect();
            epoch_losses = saved
                .epoch_loss_bits
                .iter()
                .map(|&b| f32::from_bits(b))
                .collect();
            start_epoch = saved.epochs_done;
            crash_point("train.ckpt.resumed");
        }
    }

    // Observability: one span per training run and per epoch, with the
    // epoch's mean loss / last grad norm / constraint throughput exported
    // as gauges on the global registry.
    let mut train_span = sam_obs::span!(
        "train",
        epochs = config.epochs,
        queries = workload.len(),
        params = store.num_scalars()
    );
    let loss_gauge = sam_obs::gauge("sam_train_loss");
    let grad_gauge = sam_obs::gauge("sam_train_grad_norm");
    let throughput_gauge = sam_obs::gauge("sam_train_constraints_per_sec");
    let epochs_counter = sam_obs::counter("sam_train_epochs_total");

    for epoch in start_epoch..config.epochs {
        let mut epoch_span = sam_obs::span!("epoch", epoch = epoch);
        let mut last_grad_norm = 0.0f32;
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut steps = 0usize;
        for chunk in order.chunks(config.batch_size) {
            let s = config.samples_per_query.max(1);
            let rows = chunk.len() * s;
            // Row r corresponds to query chunk[r / s].
            let row_query: Vec<usize> = chunk
                .iter()
                .flat_map(|&q| std::iter::repeat_n(q, s))
                .collect();
            let batch_targets: Rc<Vec<f32>> =
                Rc::new(row_query.iter().map(|&q| targets[q]).collect());

            let mut tape = Tape::new();
            let bound = net.bind(&mut tape, store);
            let mut input = tape.leaf(Matrix::zeros(rows, total_width));
            let mut logp: Option<sam_nn::Var> = None;

            for i in 0..n_cols {
                let d = net.domain_size(i);
                let offset = net.offset(i);
                let logits_full = bound.forward(&mut tape, input);
                let block = bound.logits_of(&mut tape, logits_full, i);

                // Assemble the per-row mask and factor weights.
                let mut mask = Matrix::zeros(rows, d);
                let mut w_prob: Option<Matrix> = None;
                let mut w_samp: Option<Matrix> = None;
                for (r, &q) in row_query.iter().enumerate() {
                    match &rules[q][i] {
                        StepRule::Free => {}
                        StepRule::InRange(frac) => {
                            let wp = w_prob.get_or_insert_with(|| Matrix::full(rows, d, 1.0));
                            for (c, &f) in frac.iter().enumerate() {
                                wp.set(r, c, f);
                                if f <= 0.0 {
                                    mask.set(r, c, NEG_LARGE);
                                }
                            }
                        }
                        StepRule::WeightBySampled(w) => {
                            let ws = w_samp.get_or_insert_with(|| Matrix::full(rows, d, 1.0));
                            for (c, &f) in w.iter().enumerate() {
                                ws.set(r, c, f);
                            }
                        }
                    }
                }

                if let Some(wp) = w_prob {
                    let probs = tape.softmax_rows(block, 1.0);
                    let f = tape.row_dot_rows(probs, Rc::new(wp));
                    let lf = tape.log(f, config.eps);
                    logp = Some(match logp {
                        Some(acc) => tape.add(acc, lf),
                        None => lf,
                    });
                }

                let y = gumbel_softmax(
                    &mut tape,
                    block,
                    Rc::new(mask),
                    config.temperature,
                    config.straight_through,
                    &mut rng,
                );
                if let Some(ws) = w_samp {
                    let f = tape.row_dot_rows(y, Rc::new(ws));
                    let lf = tape.log(f, config.eps);
                    logp = Some(match logp {
                        Some(acc) => tape.add(acc, lf),
                        None => lf,
                    });
                }

                let padded = tape.pad_cols(y, offset, total_width);
                input = tape.add(input, padded);
            }

            let logp = match logp {
                Some(v) => v,
                // Degenerate workload (no constrained column anywhere):
                // nothing to learn from this batch.
                None => continue,
            };
            let loss = tape.sq_err_mean(logp, batch_targets);
            epoch_loss += tape.value(loss).get(0, 0) as f64;
            steps += 1;
            tape.backward(loss);
            bound.apply_grads(&tape, store);
            last_grad_norm = store.grad_norm();
            adam.step(store);
        }
        let mean_loss = if steps > 0 {
            (epoch_loss / steps as f64) as f32
        } else {
            f32::NAN
        };
        epoch_losses.push(mean_loss);

        epochs_counter.inc();
        loss_gauge.set(mean_loss as f64);
        grad_gauge.set(last_grad_norm as f64);
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            throughput_gauge.set(((epoch + 1) * workload.len()) as f64 / elapsed);
        }
        epoch_span.record("loss", mean_loss);
        epoch_span.record("grad_norm", last_grad_norm);

        if let Some(ckpt) = &config.checkpoint {
            let done = epoch + 1;
            if done % ckpt.every == 0 || done == config.epochs {
                let (t, m, v) = adam.export_state();
                let state = checkpoint::CheckpointState {
                    version: 1,
                    fingerprint: fingerprint.clone(),
                    epochs_done: done,
                    epoch_loss_bits: epoch_losses.iter().map(|l| l.to_bits()).collect(),
                    rng_state: rng.state().to_vec(),
                    order: order.iter().map(|&i| i as u64).collect(),
                    adam_t: t,
                    params: (0..store.len())
                        .map(|i| checkpoint::MatrixBits::from_matrix(store.value(ParamId(i))))
                        .collect(),
                    adam_m: m.iter().map(checkpoint::MatrixBits::from_matrix).collect(),
                    adam_v: v.iter().map(checkpoint::MatrixBits::from_matrix).collect(),
                };
                checkpoint::save(ckpt, &state)?;
            }
        }

        let verdict = observe(TrainProgress {
            epoch: epoch + 1,
            total_epochs: config.epochs,
            loss: mean_loss,
            resumed_from: start_epoch,
        });
        if verdict == TrainControl::Stop {
            return Err(ArError::Invalid(format!(
                "training cancelled by observer after epoch {} of {}",
                epoch + 1,
                config.epochs
            )));
        }
    }
    train_span.record(
        "wall_seconds",
        format!("{:.3}", start.elapsed().as_secs_f64()),
    );

    Ok(TrainReport {
        epoch_losses,
        constraints_processed: workload.len() * config.epochs,
        wall_seconds: start.elapsed().as_secs_f64(),
    })
}

/// Overwrite every parameter in `store` with checkpointed bit patterns.
fn restore_params(
    store: &mut ParamStore,
    saved: &[crate::checkpoint::MatrixBits],
) -> Result<(), ArError> {
    if saved.len() != store.len() {
        return Err(ArError::Invalid(format!(
            "checkpoint has {} parameter tensors, model has {}",
            saved.len(),
            store.len()
        )));
    }
    for (i, bits) in saved.iter().enumerate() {
        let m = bits.to_matrix()?;
        let current = store.value(ParamId(i));
        if m.rows() != current.rows() || m.cols() != current.cols() {
            return Err(ArError::Invalid(format!(
                "checkpoint tensor {i} is {}x{}, model expects {}x{}",
                m.rows(),
                m.cols(),
                current.rows(),
                current.cols()
            )));
        }
        *store.value_mut(ParamId(i)) = m;
    }
    Ok(())
}

fn restore_matrices(saved: &[crate::checkpoint::MatrixBits]) -> Result<Vec<Matrix>, ArError> {
    saved.iter().map(|b| b.to_matrix()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::estimate_cardinality;
    use crate::model::{ArModel, ArModelConfig};
    use crate::model_schema::{ArSchema, EncodingOptions};
    use sam_query::{label_workload, WorkloadGenerator};
    use sam_storage::{paper_example, DatabaseStats};

    /// Train on the Figure-3 single relation A and check that the model's
    /// estimates move toward the workload cardinalities.
    #[test]
    fn training_reduces_loss_and_fits_cardinalities() {
        let db = paper_example::figure3_database();
        let single = sam_storage::Database::single(db.table_by_name("A").unwrap().clone());
        let stats = DatabaseStats::from_database(&single);

        let mut gen = WorkloadGenerator::new(&single, 1);
        let queries = gen.single_workload("A", 64);
        let workload = label_workload(&single, queries).unwrap();

        let schema = ArSchema::build(
            single.schema(),
            &stats,
            &workload
                .queries
                .iter()
                .map(|q| q.query.clone())
                .collect::<Vec<_>>(),
            &EncodingOptions::default(),
        )
        .unwrap();
        let mut model = ArModel::new(
            schema,
            &ArModelConfig {
                hidden: vec![16],
                seed: 7,
                residual: false,
                transformer: None,
            },
        );
        let report = train(
            &mut model,
            &workload,
            &TrainConfig {
                epochs: 40,
                batch_size: 16,
                lr: 2e-2,
                ..TrainConfig::default()
            },
        )
        .unwrap();

        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(
            last < first * 0.5,
            "loss should drop substantially: {first} -> {last}"
        );

        // Estimates should be in the right ballpark for the trained queries.
        let frozen = model.freeze();
        let mut rng = StdRng::seed_from_u64(3);
        let mut ok = 0;
        for lq in workload.iter().take(16) {
            let est = estimate_cardinality(&frozen, &lq.query, 128, &mut rng).unwrap();
            let truth = lq.cardinality.max(1) as f64;
            let q_err = (est.max(1.0) / truth).max(truth / est.max(1.0));
            if q_err < 3.0 {
                ok += 1;
            }
        }
        assert!(ok >= 12, "only {ok}/16 estimates within 3x");
    }

    /// The checkpoint acceptance bar: a run interrupted at a checkpoint
    /// boundary and resumed must produce a final model and final
    /// checkpoint file *byte-identical* to the uninterrupted run.
    #[test]
    fn checkpoint_resume_is_bit_for_bit_identical() {
        let db = paper_example::figure3_database();
        let single = sam_storage::Database::single(db.table_by_name("A").unwrap().clone());
        let stats = DatabaseStats::from_database(&single);
        let mut gen = WorkloadGenerator::new(&single, 5);
        let workload = label_workload(&single, gen.single_workload("A", 24)).unwrap();
        let schema = ArSchema::build(
            single.schema(),
            &stats,
            &workload
                .queries
                .iter()
                .map(|q| q.query.clone())
                .collect::<Vec<_>>(),
            &EncodingOptions::default(),
        )
        .unwrap();
        let model_cfg = ArModelConfig {
            hidden: vec![8],
            seed: 11,
            residual: false,
            transformer: None,
        };
        let base = std::env::temp_dir().join(format!("sam_train_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let dir_a = base.join("uninterrupted");
        let dir_b = base.join("interrupted");
        let cfg = |dir: &std::path::Path, epochs: usize| TrainConfig {
            epochs,
            batch_size: 8,
            lr: 1e-2,
            seed: 21,
            checkpoint: Some(crate::checkpoint::CheckpointConfig::new(dir, 2)),
            ..TrainConfig::default()
        };

        // Run A: 5 epochs straight through.
        let mut model_a = ArModel::new(schema.clone(), &model_cfg);
        let report_a = train(&mut model_a, &workload, &cfg(&dir_a, 5)).unwrap();

        // Run B: killed after 2 epochs (simulated by a short first run),
        // then restarted with the full epoch budget — auto-resumes.
        let mut model_b1 = ArModel::new(schema.clone(), &model_cfg);
        train(&mut model_b1, &workload, &cfg(&dir_b, 2)).unwrap();
        let mut model_b2 = ArModel::new(schema, &model_cfg);
        let report_b = train(&mut model_b2, &workload, &cfg(&dir_b, 5)).unwrap();

        assert_eq!(
            report_a
                .epoch_losses
                .iter()
                .map(|l| l.to_bits())
                .collect::<Vec<_>>(),
            report_b
                .epoch_losses
                .iter()
                .map(|l| l.to_bits())
                .collect::<Vec<_>>(),
            "per-epoch losses must match to the bit"
        );
        let json_a = crate::persist::save_model(&model_a.freeze(), single.schema());
        let json_b = crate::persist::save_model(&model_b2.freeze(), single.schema());
        assert_eq!(json_a, json_b, "final saved models must be byte-identical");
        let ckpt_a = std::fs::read(dir_a.join(crate::checkpoint::CHECKPOINT_FILE)).unwrap();
        let ckpt_b = std::fs::read(dir_b.join(crate::checkpoint::CHECKPOINT_FILE)).unwrap();
        assert_eq!(ckpt_a, ckpt_b, "final checkpoints must be byte-identical");
        let _ = std::fs::remove_dir_all(&base);
    }

    /// A checkpoint from a different training setup must be refused, not
    /// silently (and wrongly) resumed.
    #[test]
    fn checkpoint_fingerprint_mismatch_is_refused() {
        let db = paper_example::figure3_database();
        let single = sam_storage::Database::single(db.table_by_name("A").unwrap().clone());
        let stats = DatabaseStats::from_database(&single);
        let mut gen = WorkloadGenerator::new(&single, 6);
        let workload = label_workload(&single, gen.single_workload("A", 8)).unwrap();
        let schema = ArSchema::build(
            single.schema(),
            &stats,
            &workload
                .queries
                .iter()
                .map(|q| q.query.clone())
                .collect::<Vec<_>>(),
            &EncodingOptions::default(),
        )
        .unwrap();
        let dir = std::env::temp_dir().join(format!("sam_train_fpr_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mk = || ArModel::new(schema.clone(), &ArModelConfig::default());
        let cfg = |seed| TrainConfig {
            epochs: 1,
            batch_size: 4,
            seed,
            checkpoint: Some(crate::checkpoint::CheckpointConfig::new(&dir, 1)),
            ..TrainConfig::default()
        };
        train(&mut mk(), &workload, &cfg(1)).unwrap();
        let err = train(&mut mk(), &workload, &cfg(2)).unwrap_err();
        assert!(matches!(err, ArError::Invalid(m) if m.contains("different training setup")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_workload_is_rejected() {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let schema =
            ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let mut model = ArModel::new(schema, &ArModelConfig::default());
        let err = train(&mut model, &Workload::default(), &TrainConfig::default());
        assert!(err.is_err());
    }
}

#[cfg(test)]
mod transformer_tests {
    use super::*;
    use crate::infer::estimate_cardinality;
    use crate::model::{ArModel, ArModelConfig, TransformerDims};
    use crate::model_schema::{ArSchema, EncodingOptions};
    use sam_query::{label_workload, WorkloadGenerator};
    use sam_storage::{paper_example, DatabaseStats};

    /// The Transformer backbone trains with the SAME DPS loop and reaches a
    /// usable fit on the toy relation — the paper's "any AR architecture"
    /// claim, exercised.
    #[test]
    fn transformer_backbone_trains_with_dps() {
        let db = paper_example::figure3_database();
        let single = sam_storage::Database::single(db.table_by_name("A").unwrap().clone());
        let stats = DatabaseStats::from_database(&single);
        let mut gen = WorkloadGenerator::new(&single, 2);
        let workload = label_workload(&single, gen.single_workload("A", 48)).unwrap();
        let schema = ArSchema::build(
            single.schema(),
            &stats,
            &workload
                .queries
                .iter()
                .map(|q| q.query.clone())
                .collect::<Vec<_>>(),
            &EncodingOptions::default(),
        )
        .unwrap();
        let mut model = ArModel::new(
            schema,
            &ArModelConfig {
                transformer: Some(TransformerDims {
                    d_model: 16,
                    blocks: 1,
                    ff_mult: 2,
                }),
                seed: 3,
                ..Default::default()
            },
        );
        let report = train(
            &mut model,
            &workload,
            &TrainConfig {
                epochs: 40,
                batch_size: 16,
                lr: 5e-3,
                ..Default::default()
            },
        )
        .unwrap();
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(
            last < first * 0.6,
            "transformer loss should drop: {first} -> {last}"
        );

        let frozen = model.freeze();
        let mut rng = StdRng::seed_from_u64(4);
        let mut ok = 0;
        for lq in workload.iter().take(12) {
            let est = estimate_cardinality(&frozen, &lq.query, 128, &mut rng).unwrap();
            let truth = lq.cardinality.max(1) as f64;
            if (est.max(1.0) / truth).max(truth / est.max(1.0)) < 3.0 {
                ok += 1;
            }
        }
        assert!(ok >= 8, "only {ok}/12 estimates within 3x");
    }
}
