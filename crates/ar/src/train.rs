//! Differentiable Progressive Sampling training (paper §4.1, UAE \[34\]).
//!
//! Each training step replays progressive sampling on the tape: column by
//! column in autoregressive order, the model predicts `P(X_i | x_{<i})`, the
//! step's factor (in-range mass, forced indicator, or sampled inverse
//! fanout) is multiplied into the running selectivity estimate, and a
//! Gumbel-Softmax sample of the column is fed back as input for the next
//! column. Because the samples are relaxed (straight-through by default),
//! gradients flow from the cardinality loss through every sampled step.
//! The loss is the squared error of log-cardinalities — the smooth surrogate
//! of Q-Error used by learned estimators.

#![allow(clippy::needless_range_loop)]
use crate::error::ArError;
use crate::model::ArModel;
use crate::model_schema::StepRule;
use rand::prelude::*;
use rand::rngs::StdRng;
use sam_nn::{gumbel_softmax, Adam, Matrix, Tape, NEG_LARGE};
use sam_query::Workload;
use std::rc::Rc;
use std::time::Instant;

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Passes over the workload.
    pub epochs: usize,
    /// Queries per gradient step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Gumbel-Softmax temperature.
    pub temperature: f32,
    /// Hard forward samples with soft gradients.
    pub straight_through: bool,
    /// Progressive samples drawn per query per step (each becomes a row).
    pub samples_per_query: usize,
    /// Log-domain fuzz.
    pub eps: f32,
    /// Shuffling / noise seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            batch_size: 32,
            lr: 5e-3,
            temperature: 1.0,
            straight_through: true,
            samples_per_query: 1,
            eps: 1e-6,
            seed: 0,
        }
    }
}

/// Summary of one training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Constraints processed (queries × epochs).
    pub constraints_processed: usize,
    /// Wall-clock seconds spent in training.
    pub wall_seconds: f64,
}

/// Train `model` on a labelled workload with DPS.
pub fn train(
    model: &mut ArModel,
    workload: &Workload,
    config: &TrainConfig,
) -> Result<TrainReport, ArError> {
    if workload.is_empty() {
        return Err(ArError::Invalid("empty workload".into()));
    }
    let start = Instant::now();
    let (schema, net, store) = model.split_mut();
    let n_cols = schema.num_columns();
    let total_width = net.total_width();
    let normalizer = schema.normalizer();
    let log_norm = normalizer.max(1.0).ln() as f32;

    // Pre-translate every query once.
    let rules: Vec<Vec<StepRule>> = workload
        .iter()
        .map(|lq| schema.query_rules(&lq.query))
        .collect::<Result<_, _>>()?;
    let targets: Vec<f32> = workload
        .iter()
        .map(|lq| (lq.cardinality.max(1) as f32).ln() - log_norm)
        .collect();

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..workload.len()).collect();
    let mut adam = Adam::new(store, config.lr);
    let mut epoch_losses = Vec::with_capacity(config.epochs);

    // Observability: one span per training run and per epoch, with the
    // epoch's mean loss / last grad norm / constraint throughput exported
    // as gauges on the global registry.
    let mut train_span = sam_obs::span!(
        "train",
        epochs = config.epochs,
        queries = workload.len(),
        params = store.num_scalars()
    );
    let loss_gauge = sam_obs::gauge("sam_train_loss");
    let grad_gauge = sam_obs::gauge("sam_train_grad_norm");
    let throughput_gauge = sam_obs::gauge("sam_train_constraints_per_sec");
    let epochs_counter = sam_obs::counter("sam_train_epochs_total");

    for epoch in 0..config.epochs {
        let mut epoch_span = sam_obs::span!("epoch", epoch = epoch);
        let mut last_grad_norm = 0.0f32;
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut steps = 0usize;
        for chunk in order.chunks(config.batch_size) {
            let s = config.samples_per_query.max(1);
            let rows = chunk.len() * s;
            // Row r corresponds to query chunk[r / s].
            let row_query: Vec<usize> = chunk
                .iter()
                .flat_map(|&q| std::iter::repeat_n(q, s))
                .collect();
            let batch_targets: Rc<Vec<f32>> =
                Rc::new(row_query.iter().map(|&q| targets[q]).collect());

            let mut tape = Tape::new();
            let bound = net.bind(&mut tape, store);
            let mut input = tape.leaf(Matrix::zeros(rows, total_width));
            let mut logp: Option<sam_nn::Var> = None;

            for i in 0..n_cols {
                let d = net.domain_size(i);
                let offset = net.offset(i);
                let logits_full = bound.forward(&mut tape, input);
                let block = bound.logits_of(&mut tape, logits_full, i);

                // Assemble the per-row mask and factor weights.
                let mut mask = Matrix::zeros(rows, d);
                let mut w_prob: Option<Matrix> = None;
                let mut w_samp: Option<Matrix> = None;
                for (r, &q) in row_query.iter().enumerate() {
                    match &rules[q][i] {
                        StepRule::Free => {}
                        StepRule::InRange(frac) => {
                            let wp = w_prob.get_or_insert_with(|| Matrix::full(rows, d, 1.0));
                            for (c, &f) in frac.iter().enumerate() {
                                wp.set(r, c, f);
                                if f <= 0.0 {
                                    mask.set(r, c, NEG_LARGE);
                                }
                            }
                        }
                        StepRule::WeightBySampled(w) => {
                            let ws = w_samp.get_or_insert_with(|| Matrix::full(rows, d, 1.0));
                            for (c, &f) in w.iter().enumerate() {
                                ws.set(r, c, f);
                            }
                        }
                    }
                }

                if let Some(wp) = w_prob {
                    let probs = tape.softmax_rows(block, 1.0);
                    let f = tape.row_dot_rows(probs, Rc::new(wp));
                    let lf = tape.log(f, config.eps);
                    logp = Some(match logp {
                        Some(acc) => tape.add(acc, lf),
                        None => lf,
                    });
                }

                let y = gumbel_softmax(
                    &mut tape,
                    block,
                    Rc::new(mask),
                    config.temperature,
                    config.straight_through,
                    &mut rng,
                );
                if let Some(ws) = w_samp {
                    let f = tape.row_dot_rows(y, Rc::new(ws));
                    let lf = tape.log(f, config.eps);
                    logp = Some(match logp {
                        Some(acc) => tape.add(acc, lf),
                        None => lf,
                    });
                }

                let padded = tape.pad_cols(y, offset, total_width);
                input = tape.add(input, padded);
            }

            let logp = match logp {
                Some(v) => v,
                // Degenerate workload (no constrained column anywhere):
                // nothing to learn from this batch.
                None => continue,
            };
            let loss = tape.sq_err_mean(logp, batch_targets);
            epoch_loss += tape.value(loss).get(0, 0) as f64;
            steps += 1;
            tape.backward(loss);
            bound.apply_grads(&tape, store);
            last_grad_norm = store.grad_norm();
            adam.step(store);
        }
        let mean_loss = if steps > 0 {
            (epoch_loss / steps as f64) as f32
        } else {
            f32::NAN
        };
        epoch_losses.push(mean_loss);

        epochs_counter.inc();
        loss_gauge.set(mean_loss as f64);
        grad_gauge.set(last_grad_norm as f64);
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            throughput_gauge.set(((epoch + 1) * workload.len()) as f64 / elapsed);
        }
        epoch_span.record("loss", mean_loss);
        epoch_span.record("grad_norm", last_grad_norm);
    }
    train_span.record(
        "wall_seconds",
        format!("{:.3}", start.elapsed().as_secs_f64()),
    );

    Ok(TrainReport {
        epoch_losses,
        constraints_processed: workload.len() * config.epochs,
        wall_seconds: start.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::estimate_cardinality;
    use crate::model::{ArModel, ArModelConfig};
    use crate::model_schema::{ArSchema, EncodingOptions};
    use sam_query::{label_workload, WorkloadGenerator};
    use sam_storage::{paper_example, DatabaseStats};

    /// Train on the Figure-3 single relation A and check that the model's
    /// estimates move toward the workload cardinalities.
    #[test]
    fn training_reduces_loss_and_fits_cardinalities() {
        let db = paper_example::figure3_database();
        let single = sam_storage::Database::single(db.table_by_name("A").unwrap().clone());
        let stats = DatabaseStats::from_database(&single);

        let mut gen = WorkloadGenerator::new(&single, 1);
        let queries = gen.single_workload("A", 64);
        let workload = label_workload(&single, queries).unwrap();

        let schema = ArSchema::build(
            single.schema(),
            &stats,
            &workload
                .queries
                .iter()
                .map(|q| q.query.clone())
                .collect::<Vec<_>>(),
            &EncodingOptions::default(),
        )
        .unwrap();
        let mut model = ArModel::new(
            schema,
            &ArModelConfig {
                hidden: vec![16],
                seed: 7,
                residual: false,
                transformer: None,
            },
        );
        let report = train(
            &mut model,
            &workload,
            &TrainConfig {
                epochs: 40,
                batch_size: 16,
                lr: 2e-2,
                ..TrainConfig::default()
            },
        )
        .unwrap();

        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(
            last < first * 0.5,
            "loss should drop substantially: {first} -> {last}"
        );

        // Estimates should be in the right ballpark for the trained queries.
        let frozen = model.freeze();
        let mut rng = StdRng::seed_from_u64(3);
        let mut ok = 0;
        for lq in workload.iter().take(16) {
            let est = estimate_cardinality(&frozen, &lq.query, 128, &mut rng).unwrap();
            let truth = lq.cardinality.max(1) as f64;
            let q_err = (est.max(1.0) / truth).max(truth / est.max(1.0));
            if q_err < 3.0 {
                ok += 1;
            }
        }
        assert!(ok >= 12, "only {ok}/16 estimates within 3x");
    }

    #[test]
    fn empty_workload_is_rejected() {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let schema =
            ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let mut model = ArModel::new(schema, &ArModelConfig::default());
        let err = train(&mut model, &Workload::default(), &TrainConfig::default());
        assert!(err.is_err());
    }
}

#[cfg(test)]
mod transformer_tests {
    use super::*;
    use crate::infer::estimate_cardinality;
    use crate::model::{ArModel, ArModelConfig, TransformerDims};
    use crate::model_schema::{ArSchema, EncodingOptions};
    use sam_query::{label_workload, WorkloadGenerator};
    use sam_storage::{paper_example, DatabaseStats};

    /// The Transformer backbone trains with the SAME DPS loop and reaches a
    /// usable fit on the toy relation — the paper's "any AR architecture"
    /// claim, exercised.
    #[test]
    fn transformer_backbone_trains_with_dps() {
        let db = paper_example::figure3_database();
        let single = sam_storage::Database::single(db.table_by_name("A").unwrap().clone());
        let stats = DatabaseStats::from_database(&single);
        let mut gen = WorkloadGenerator::new(&single, 2);
        let workload = label_workload(&single, gen.single_workload("A", 48)).unwrap();
        let schema = ArSchema::build(
            single.schema(),
            &stats,
            &workload
                .queries
                .iter()
                .map(|q| q.query.clone())
                .collect::<Vec<_>>(),
            &EncodingOptions::default(),
        )
        .unwrap();
        let mut model = ArModel::new(
            schema,
            &ArModelConfig {
                transformer: Some(TransformerDims {
                    d_model: 16,
                    blocks: 1,
                    ff_mult: 2,
                }),
                seed: 3,
                ..Default::default()
            },
        );
        let report = train(
            &mut model,
            &workload,
            &TrainConfig {
                epochs: 40,
                batch_size: 16,
                lr: 5e-3,
                ..Default::default()
            },
        )
        .unwrap();
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(
            last < first * 0.6,
            "transformer loss should drop: {first} -> {last}"
        );

        let frozen = model.freeze();
        let mut rng = StdRng::seed_from_u64(4);
        let mut ok = 0;
        for lq in workload.iter().take(12) {
            let est = estimate_cardinality(&frozen, &lq.query, 128, &mut rng).unwrap();
            let truth = lq.cardinality.max(1) as f64;
            if (est.max(1.0) / truth).max(truth / est.max(1.0)) < 3.0 {
                ok += 1;
            }
        }
        assert!(ok >= 8, "only {ok}/12 estimates within 3x");
    }
}
