//! Unconditional tuple sampling from a trained model (Algorithm 1).
//!
//! Sequentially samples every model column from its predicted conditional,
//! batched; the paper notes the process is *embarrassingly parallel* (GPU
//! batching in the original) — here batches run across CPU cores via rayon.

use crate::batch::SampleBatch;
use crate::infer::sample_weighted;
use crate::model::FrozenModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// One sampled full-outer-join row: a model bin code per model column.
pub type ModelRow = Vec<u32>;

/// Sample `count` rows in batches of `batch` (rows of one forward pass).
/// Deterministic given `seed`; batches are processed in parallel.
pub fn sample_model_rows(
    model: &FrozenModel,
    count: usize,
    batch: usize,
    seed: u64,
) -> Vec<ModelRow> {
    let batch = batch.max(1);
    let n_batches = count.div_ceil(batch);
    sample_model_rows_range(model, count, batch, seed, 0..n_batches)
}

/// Sample only batches `batches` of the run that [`sample_model_rows`]
/// would perform with the same `(count, batch, seed)`. Each batch draws
/// from an RNG seeded by the *global* batch index, so concatenating
/// consecutive ranges reproduces the full run bit-for-bit — this is what
/// lets callers (e.g. cancellable generation jobs) sample in chunks with
/// progress checks in between without changing the output.
pub fn sample_model_rows_range(
    model: &FrozenModel,
    count: usize,
    batch: usize,
    seed: u64,
    batches: std::ops::Range<usize>,
) -> Vec<ModelRow> {
    let batch = batch.max(1);
    let n_batches = count.div_ceil(batch);
    let batches = batches.start.min(n_batches)..batches.end.min(n_batches);
    // One `SampleBatch` per rayon worker: steady-state generation reuses its
    // activation/logits/probability buffers across every batch the worker
    // draws instead of allocating three matrices per batch.
    batches
        .into_par_iter()
        .map_init(SampleBatch::new, |scratch, b| {
            let rows = batch.min(count - b * batch);
            let mut rng =
                StdRng::seed_from_u64(seed ^ (b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            sample_batch_with(model, rows, &mut rng, scratch)
        })
        .flatten_iter()
        .collect()
}

/// Sample one batch of rows sequentially (used directly by tests and by the
/// parallel driver above).
pub fn sample_batch(model: &FrozenModel, rows: usize, rng: &mut StdRng) -> Vec<ModelRow> {
    sample_batch_with(model, rows, rng, &mut SampleBatch::new())
}

/// [`sample_batch`] against caller-owned [`SampleBatch`] scratch, so a
/// driver looping over many batches reuses the matrix buffers. Output is
/// independent of the scratch's history (it is fully reset per call).
pub fn sample_batch_with(
    model: &FrozenModel,
    rows: usize,
    rng: &mut StdRng,
    scratch: &mut SampleBatch,
) -> Vec<ModelRow> {
    let n_cols = model.net.num_columns();
    scratch.reset_dense(model, rows);
    let mut out = vec![vec![0u32; n_cols]; rows];
    for i in 0..n_cols {
        scratch.forward_column_dense(model, i);
        let d = model.net.domain_size(i);
        let offset = model.net.offset(i);
        for (r, row) in out.iter_mut().enumerate() {
            let code = sample_weighted(scratch.dense_probs_row(r, d), rng).unwrap_or(0);
            row[i] = code as u32;
            scratch.set_input_onehot(r, offset + code);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ArModel, ArModelConfig};
    use crate::model_schema::{ArSchema, EncodingOptions};
    use sam_storage::{paper_example, DatabaseStats};

    fn model() -> FrozenModel {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let schema =
            ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        ArModel::new(schema, &ArModelConfig::default()).freeze()
    }

    #[test]
    fn samples_have_right_shape_and_ranges() {
        let m = model();
        let rows = sample_model_rows(&m, 100, 32, 1);
        assert_eq!(rows.len(), 100);
        let sizes = m.schema.domain_sizes();
        for row in &rows {
            assert_eq!(row.len(), sizes.len());
            for (c, &code) in row.iter().enumerate() {
                assert!((code as usize) < sizes[c], "col {c} code {code}");
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = model();
        let a = sample_model_rows(&m, 64, 16, 9);
        let b = sample_model_rows(&m, 64, 16, 9);
        assert_eq!(a, b);
        let c = sample_model_rows(&m, 64, 16, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn ranged_sampling_composes_to_the_full_run() {
        let m = model();
        let full = sample_model_rows(&m, 70, 16, 3);
        let mut chunked = Vec::new();
        // 70 rows at batch 16 → 5 batches; stitch from uneven ranges.
        for range in [0..2, 2..3, 3..5] {
            chunked.extend(sample_model_rows_range(&m, 70, 16, 3, range));
        }
        assert_eq!(full, chunked);
        // Out-of-range requests clamp instead of panicking.
        assert!(sample_model_rows_range(&m, 70, 16, 3, 5..9).is_empty());
    }

    #[test]
    fn exact_count_even_with_ragged_last_batch() {
        let m = model();
        assert_eq!(sample_model_rows(&m, 7, 3, 0).len(), 7);
        assert_eq!(sample_model_rows(&m, 1, 64, 0).len(), 1);
    }
}
