//! Per-column encodings, including intervalization (paper §4.3.2).
//!
//! The AR model sees every column as a small categorical distribution over
//! *bins*. A categorical column has one bin per dictionary code. A numeric
//! column with a large domain is **intervalized**: the distinct constants
//! appearing in the workload's predicates induce cut points, and the model
//! learns a distribution over the resulting code intervals instead of the
//! raw values — shrinking the model and letting Group-and-Merge match rows
//! at interval granularity. Decoding draws uniformly from the distinct base
//! values inside the sampled bin.

use rand::Rng;
use sam_query::CodeSet;
use sam_storage::{Domain, Value};
use std::ops::Range;
use std::sync::Arc;

/// A column encoding: the base dictionary plus a partition of its code space
/// into contiguous bins. The model's domain for the column is the bin list.
#[derive(Debug, Clone)]
pub struct ColumnEncoding {
    base: Arc<Domain>,
    /// Contiguous, complete, ordered partition of `0..base.len()`.
    bins: Vec<Range<u32>>,
}

impl ColumnEncoding {
    /// One bin per base code (no intervalization).
    pub fn categorical(base: Arc<Domain>) -> Self {
        let bins = (0..base.len() as u32).map(|c| c..c + 1).collect();
        ColumnEncoding { base, bins }
    }

    /// Intervalize from boundary codes. `boundaries` are cut positions in
    /// code space; 0 and `base.len()` are added automatically. With no
    /// boundaries the whole domain is a single bin.
    pub fn intervalized(base: Arc<Domain>, mut boundaries: Vec<u32>) -> Self {
        let d = base.len() as u32;
        boundaries.push(0);
        boundaries.push(d);
        boundaries.retain(|&b| b <= d);
        boundaries.sort_unstable();
        boundaries.dedup();
        let bins = boundaries
            .windows(2)
            .map(|w| w[0]..w[1])
            .filter(|r| !r.is_empty())
            .collect();
        ColumnEncoding { base, bins }
    }

    /// Intervalize a column from the workload's predicate [`CodeSet`]s: every
    /// range endpoint (and every IN-list member, as a singleton) becomes a
    /// cut point — so every *training* predicate is a union of whole bins.
    pub fn from_code_sets(base: Arc<Domain>, sets: &[CodeSet]) -> Self {
        let mut boundaries = Vec::new();
        for s in sets {
            match s {
                CodeSet::Range(r) => {
                    boundaries.push(r.start);
                    boundaries.push(r.end);
                }
                CodeSet::Set(codes) => {
                    for &c in codes {
                        boundaries.push(c);
                        boundaries.push(c + 1);
                    }
                }
            }
        }
        Self::intervalized(base, boundaries)
    }

    /// The base dictionary.
    pub fn base_domain(&self) -> &Arc<Domain> {
        &self.base
    }

    /// Number of model bins (the model's domain size for this column).
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// The code range of bin `b`.
    pub fn bin(&self, b: usize) -> &Range<u32> {
        &self.bins[b]
    }

    /// Bin index containing base code `code`.
    pub fn bin_of_code(&self, code: u32) -> usize {
        debug_assert!((code as usize) < self.base.len());
        self.bins
            .partition_point(|r| r.end <= code)
            .min(self.bins.len() - 1)
    }

    /// Per-bin fractional overlap with a [`CodeSet`]: `|bin ∩ set| / |bin|`.
    /// Training predicates align with bins (entries are 0 or 1); unseen test
    /// predicates may overlap partially (uniform-within-bin assumption).
    pub fn frac_weights(&self, set: &CodeSet) -> Vec<f32> {
        self.bins
            .iter()
            .map(|bin| {
                if bin.is_empty() {
                    return 0.0;
                }
                let hits = match set {
                    CodeSet::Range(r) => {
                        let lo = bin.start.max(r.start);
                        let hi = bin.end.min(r.end);
                        hi.saturating_sub(lo)
                    }
                    CodeSet::Set(codes) => {
                        codes.iter().filter(|&&c| bin.contains(&c)).count() as u32
                    }
                };
                hits as f32 / bin.len() as f32
            })
            .collect()
    }

    /// Decode bin `b` to a base code, drawing uniformly from the bin
    /// (paper §4.3.2: "uniform random sampling from distinct values in the
    /// interval").
    pub fn decode(&self, b: usize, rng: &mut impl Rng) -> u32 {
        let bin = &self.bins[b];
        if bin.len() == 1 {
            bin.start
        } else {
            rng.gen_range(bin.start..bin.end)
        }
    }

    /// Decode bin `b` to its first base value without randomness (used for
    /// deterministic round-trips in tests).
    pub fn representative(&self, b: usize) -> &Value {
        self.base.value(self.bins[b].start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base() -> Arc<Domain> {
        Domain::new((0..10).map(Value::Int).collect()).shared()
    }

    #[test]
    fn categorical_has_one_bin_per_code() {
        let e = ColumnEncoding::categorical(base());
        assert_eq!(e.num_bins(), 10);
        for c in 0..10u32 {
            assert_eq!(e.bin_of_code(c), c as usize);
        }
    }

    #[test]
    fn intervalized_partitions_code_space() {
        let e = ColumnEncoding::intervalized(base(), vec![3, 7]);
        assert_eq!(e.num_bins(), 3);
        assert_eq!(e.bin(0), &(0..3));
        assert_eq!(e.bin(1), &(3..7));
        assert_eq!(e.bin(2), &(7..10));
        assert_eq!(e.bin_of_code(0), 0);
        assert_eq!(e.bin_of_code(2), 0);
        assert_eq!(e.bin_of_code(3), 1);
        assert_eq!(e.bin_of_code(9), 2);
    }

    #[test]
    fn from_code_sets_aligns_training_predicates() {
        // Predicates: x <= 4 (codes 0..5), x >= 7 (codes 7..10).
        let sets = vec![CodeSet::Range(0..5), CodeSet::Range(7..10)];
        let e = ColumnEncoding::from_code_sets(base(), &sets);
        // Every training predicate must be a union of whole bins.
        for s in &sets {
            for w in e.frac_weights(s) {
                assert!(w == 0.0 || w == 1.0, "partial overlap {w}");
            }
        }
    }

    #[test]
    fn frac_weights_partial_overlap() {
        let e = ColumnEncoding::intervalized(base(), vec![4]);
        // Bins: 0..4, 4..10. Unseen predicate codes 2..6.
        let w = e.frac_weights(&CodeSet::Range(2..6));
        assert!((w[0] - 0.5).abs() < 1e-6);
        assert!((w[1] - 2.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn frac_weights_in_list() {
        let e = ColumnEncoding::intervalized(base(), vec![5]);
        let w = e.frac_weights(&CodeSet::Set(vec![1, 2, 7]));
        assert!((w[0] - 2.0 / 5.0).abs() < 1e-6);
        assert!((w[1] - 1.0 / 5.0).abs() < 1e-6);
    }

    #[test]
    fn decode_draws_within_bin() {
        let e = ColumnEncoding::intervalized(base(), vec![4]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let c = e.decode(0, &mut rng);
            assert!(c < 4);
            let c = e.decode(1, &mut rng);
            assert!((4..10).contains(&c));
        }
        assert_eq!(e.representative(1), &Value::Int(4));
    }

    #[test]
    fn empty_boundaries_give_single_bin() {
        let e = ColumnEncoding::intervalized(base(), vec![]);
        assert_eq!(e.num_bins(), 1);
        assert_eq!(e.bin(0), &(0..10));
    }
}
