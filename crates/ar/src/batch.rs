//! Batch-major sample state: every live sample path of a micro-batch as an
//! explicit, typed batch dimension.
//!
//! Progressive sampling (estimation) and unconditional sampling (tuple
//! generation) both advance a batch of sample paths column by column. The
//! historical estimator treated that batch as an incidental row dimension,
//! re-assembling a compact one-hot input matrix from each path's sampled
//! codes at every column. [`SampleBatch`] makes the batch first-class
//! instead: one persistent row-per-path activation matrix maintained
//! incrementally (sampling a code sets a single element), one persistent
//! logits buffer, and one persistent conditional-probability buffer. Each
//! column step is then a single matrix–matrix forward over the batch, with
//! trie hits and within-batch dedup expressed as row masks
//! (`ColumnMasks` in the trie module) consumed natively by the blocked kernels
//! — no per-column scatter/gather vectors and no per-column allocation.
//!
//! All buffers are reusable across calls: a serving tier keeps one
//! `SampleBatch` per model version next to its shared [`PrefixTrie`], and
//! the generation pipeline keeps one per rayon worker, so steady-state
//! sampling performs no matrix allocations at all.
//!
//! Everything here is value-preserving: per-row forward arithmetic is
//! row-independent in both backbones, so masked batch-major forwards are
//! bit-identical, row for row, to the compact per-column forwards they
//! replace (locked by `batched_estimates_are_bit_identical_to_sequential`
//! and the determinism tests in [`crate::sample`]).

use crate::model::FrozenModel;
use crate::trie::{ColumnMasks, ColumnSummary, PrefixTrie};
use rayon::prelude::*;
use sam_nn::Matrix;

/// Rows per rayon task when a column's fresh rows are forwarded in
/// parallel. Small enough that a default-sized micro-batch (8 × 64 paths)
/// spans many cores, large enough that per-task overhead stays negligible.
const PAR_FORWARD_ROWS: usize = 64;

/// Reusable batch-major state for one micro-batch of sample paths; see the
/// module docs. Construct once (or keep one per model version / worker) and
/// let the per-call `reset` size it — buffers are only
/// reallocated when the batch shape grows or the model changes width.
#[derive(Debug)]
pub struct SampleBatch {
    rows: usize,
    width: usize,
    /// One-hot activations, one row per sample path, maintained
    /// incrementally as codes are sampled.
    input: Matrix,
    /// Logits of the latest forward; only fresh rows of a column are
    /// written (masked rows keep stale values that are never read).
    logits: Matrix,
    /// Conditionals of the current column's fresh representative rows, in
    /// the leading `domain_size` columns of each row.
    probs: Matrix,
    /// Row masks of the current column (fresh / cached / representative).
    masks: ColumnMasks,
    /// Per-path factor product; `0.0` marks a dead path.
    factors: Vec<f64>,
    /// Sampled codes per path (the off-trie dedup key).
    codes: Vec<Vec<u32>>,
    /// Each path's trie node (depth == column index), or `OFF_TRIE`.
    node: Vec<usize>,
}

impl Default for SampleBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl SampleBatch {
    /// An empty batch; the first `reset` sizes it.
    pub fn new() -> SampleBatch {
        SampleBatch {
            rows: 0,
            width: 0,
            input: Matrix::zeros(0, 0),
            logits: Matrix::zeros(0, 0),
            probs: Matrix::zeros(0, 0),
            masks: ColumnMasks::default(),
            factors: Vec::new(),
            codes: Vec::new(),
            node: Vec::new(),
        }
    }

    /// Prepare for a fresh pass of `rows` sample paths against `model`:
    /// clear activations and factors, reset every path to the trie root.
    /// Reuses every buffer whose shape still fits.
    pub(crate) fn reset(&mut self, model: &FrozenModel, rows: usize) {
        let width = model.net.total_width();
        let max_domain = (0..model.net.num_columns())
            .map(|i| model.net.domain_size(i))
            .max()
            .unwrap_or(0);
        self.rows = rows;
        self.width = width;
        resize_or_clear(&mut self.input, rows, width, true);
        resize_or_clear(&mut self.logits, rows, width, false);
        resize_or_clear(&mut self.probs, rows, max_domain, false);
        self.factors.clear();
        self.factors.resize(rows, 1.0);
        self.codes.iter_mut().for_each(Vec::clear);
        self.codes.resize_with(rows, Vec::new);
        self.node.clear();
        self.node.resize(rows, PrefixTrie::ROOT); // every path starts at the root
    }

    /// Advance the batch to column `i`: classify rows against the trie into
    /// masks, run one masked batch forward over the fresh representatives,
    /// softmax their conditionals, and cache them on the trie. Returns the
    /// classification counts (the caller folds them into process metrics).
    pub(crate) fn begin_column(
        &mut self,
        model: &FrozenModel,
        i: usize,
        trie: &mut PrefixTrie,
    ) -> ColumnSummary {
        let summary = trie.classify_column(&self.factors, &self.node, &self.codes, &mut self.masks);
        if summary.fresh_rows == 0 {
            return summary;
        }
        self.forward_fresh(model, summary.fresh_rows as usize);
        model.net.conditional_probs_masked_into(
            &self.logits,
            i,
            &self.masks.fresh,
            &mut self.probs,
        );
        let d = model.net.domain_size(i);
        let stats = trie.stats_mut();
        stats.forwards += 1;
        stats.forward_rows += summary.fresh_rows;
        for r in 0..self.rows {
            if self.masks.fresh[r] {
                trie.set_probs(self.node[r], &self.probs.row(r)[..d]);
            }
        }
        summary
    }

    /// One batch forward over the fresh rows. Small fresh counts go through
    /// the backend's native masked path in place; large ones (many stacked
    /// requests) are gathered once and forwarded in parallel row chunks —
    /// per-row arithmetic is identical either way, so this is a pure
    /// throughput choice.
    fn forward_fresh(&mut self, model: &FrozenModel, n_fresh: usize) {
        if n_fresh <= PAR_FORWARD_ROWS {
            model
                .net
                .forward_batch_into(&self.input, Some(&self.masks.fresh), &mut self.logits);
            return;
        }
        let fresh_rows: Vec<usize> = (0..self.rows).filter(|&r| self.masks.fresh[r]).collect();
        let width = self.width;
        let input = &self.input;
        let n_chunks = n_fresh.div_ceil(PAR_FORWARD_ROWS);
        let blocks: Vec<(usize, Matrix)> = (0..n_chunks)
            .into_par_iter()
            .map(|c| {
                let start = c * PAR_FORWARD_ROWS;
                let end = (start + PAR_FORWARD_ROWS).min(n_fresh);
                let mut block = Matrix::zeros(end - start, width);
                for (bi, &r) in fresh_rows[start..end].iter().enumerate() {
                    block.row_mut(bi).copy_from_slice(input.row(r));
                }
                (start, model.net.forward(&block))
            })
            .collect();
        for (start, block) in blocks {
            for bi in 0..block.rows() {
                self.logits
                    .row_mut(fresh_rows[start + bi])
                    .copy_from_slice(block.row(bi));
            }
        }
    }

    /// Column `i` conditionals for live row `r` (`d` = the column's domain
    /// size): the trie's cached row when the mask says so, otherwise the
    /// freshly computed row of `r`'s representative.
    pub(crate) fn p_row<'a>(&'a self, trie: &'a PrefixTrie, r: usize, d: usize) -> &'a [f32] {
        if self.masks.cached[r] {
            trie.probs(self.node[r]).expect("classified as cached")
        } else {
            &self.probs.row(self.masks.rep[r])[..d]
        }
    }

    /// Record the sampled `code` for row `r` at column `i`: extend the code
    /// prefix, set the one-hot activation, and descend the trie.
    pub(crate) fn advance(
        &mut self,
        trie: &mut PrefixTrie,
        model: &FrozenModel,
        i: usize,
        r: usize,
        code: u32,
    ) {
        self.codes[r].push(code);
        self.input.set(r, model.net.offset(i) + code as usize, 1.0);
        self.node[r] = trie.child(self.node[r], code);
    }

    /// Whether path `r` is still alive (non-zero factor).
    pub(crate) fn is_live(&self, r: usize) -> bool {
        self.factors[r] != 0.0
    }

    /// Multiply path `r`'s factor by `by`.
    pub(crate) fn scale_factor(&mut self, r: usize, by: f64) {
        self.factors[r] *= by;
    }

    /// Kill path `r` (an empty conditional range).
    pub(crate) fn kill(&mut self, r: usize) {
        self.factors[r] = 0.0;
    }

    /// Mean factor over the row window `[start, start + rows)`.
    pub(crate) fn mean_factor(&self, start: usize, rows: usize) -> f64 {
        self.factors[start..start + rows].iter().sum::<f64>() / rows as f64
    }

    // ------------------------------------------------- dense (no-trie) path

    /// Prepare for unconditional sampling: like
    /// [`reset`](SampleBatch::reset), plus an all-live mask so every row is
    /// forwarded each column.
    pub(crate) fn reset_dense(&mut self, model: &FrozenModel, rows: usize) {
        self.reset(model, rows);
        self.masks.fresh.clear();
        self.masks.fresh.resize(rows, true);
    }

    /// Forward the whole batch and softmax column `i`'s conditionals into
    /// the probability buffer (unconditional sampling: every row is live
    /// and fresh every column).
    pub(crate) fn forward_column_dense(&mut self, model: &FrozenModel, i: usize) {
        model
            .net
            .forward_batch_into(&self.input, None, &mut self.logits);
        model.net.conditional_probs_masked_into(
            &self.logits,
            i,
            &self.masks.fresh,
            &mut self.probs,
        );
    }

    /// Row `r`'s conditionals after [`forward_column_dense`]
    /// (`d` = the column's domain size).
    pub(crate) fn dense_probs_row(&self, r: usize, d: usize) -> &[f32] {
        &self.probs.row(r)[..d]
    }

    /// Set one activation element directly (unconditional sampling records
    /// codes in its own output rows, not in the batch).
    pub(crate) fn set_input_onehot(&mut self, r: usize, pos: usize) {
        self.input.set(r, pos, 1.0);
    }
}

/// Give `m` the requested shape, reusing its allocation when it already
/// matches; `zero` additionally clears retained contents (buffers whose
/// stale values are never read skip the memset).
fn resize_or_clear(m: &mut Matrix, rows: usize, cols: usize, zero: bool) {
    if m.rows() != rows || m.cols() != cols {
        *m = Matrix::zeros(rows, cols);
    } else if zero {
        m.clear();
    }
}
