//! Error types for the AR-model layer.

use std::fmt;

/// Errors raised while building, training, or querying an AR model.
#[derive(Debug, Clone)]
pub enum ArError {
    /// A query referenced a table unknown to the model schema.
    UnknownTable(String),
    /// A query referenced an unknown column (table, column).
    UnknownColumn(String, String),
    /// An underlying storage/schema error.
    Storage(sam_storage::StorageError),
    /// The workload or configuration is unusable (message).
    Invalid(String),
    /// An I/O failure while persisting or restoring model state (message —
    /// the underlying `io::Error` is not `Clone`).
    Io(String),
}

impl fmt::Display for ArError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArError::UnknownTable(t) => write!(f, "unknown table in query: {t}"),
            ArError::UnknownColumn(t, c) => write!(f, "unknown column in query: {t}.{c}"),
            ArError::Storage(e) => write!(f, "storage error: {e}"),
            ArError::Invalid(m) => write!(f, "invalid input: {m}"),
            ArError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for ArError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sam_storage::StorageError> for ArError {
    fn from(e: sam_storage::StorageError) -> Self {
        ArError::Storage(e)
    }
}

impl From<std::io::Error> for ArError {
    fn from(e: std::io::Error) -> Self {
        ArError::Io(e.to_string())
    }
}
