//! The AR model's view of a database: ordered model columns with encodings,
//! and the translation of queries into per-column progressive-sampling rules.

use crate::encoding::ColumnEncoding;
use crate::error::ArError;
use sam_query::{CodeSet, Query};
use sam_storage::{DataType, DatabaseSchema, DatabaseStats, Domain, JoinGraph};
use std::collections::HashMap;

/// What a model column refers to (mirrors
/// [`sam_storage::FojColumnKind`], but carries encodings and is built from
/// metadata only — never from the data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArColumnKind {
    /// Content column `column` (base-schema index) of table `table`.
    Content {
        /// Join-graph table index.
        table: usize,
        /// Column index within the base table schema.
        column: usize,
    },
    /// Indicator `I_T` of non-root table `table` (domain `{0, 1}`).
    Indicator {
        /// Join-graph table index.
        table: usize,
    },
    /// Fanout `F_T` of non-root table `table` (domain `0..=max_fanout`).
    Fanout {
        /// Join-graph table index.
        table: usize,
    },
}

/// One model column.
#[derive(Debug, Clone)]
pub struct ArColumn {
    /// Reference into the database schema.
    pub kind: ArColumnKind,
    /// Display name (`A.a`, `I_B`, `F_B.x`).
    pub name: String,
    /// Bin encoding.
    pub encoding: ColumnEncoding,
}

/// Encoding policy knobs.
#[derive(Debug, Clone)]
pub struct EncodingOptions {
    /// Columns with more distinct values than this are intervalized using
    /// the workload's predicate constants (paper §4.3.2). Columns at or
    /// below the threshold stay categorical.
    pub intervalize_threshold: usize,
}

impl Default for EncodingOptions {
    fn default() -> Self {
        EncodingOptions {
            intervalize_threshold: 64,
        }
    }
}

/// Per-column rule for one progressive-sampling / DPS step.
#[derive(Debug, Clone, PartialEq)]
pub enum StepRule {
    /// Sample unconstrained; the column contributes no factor.
    Free,
    /// Multiply the estimate by the in-range mass `Σ_bin P(bin)·frac[bin]`
    /// and restrict the sample to bins with positive weight.
    InRange(Vec<f32>),
    /// Sample unconstrained, multiply by the sampled bin's weight — used for
    /// fanout scaling (`w[bin] = E[1/max(F,1)]` within the bin).
    WeightBySampled(Vec<f32>),
}

/// The model schema: ordered columns (FOJ layout: tables in topological
/// order, per non-root table `I_T`, `F_T`, then its content columns),
/// encodings, and normalisation constants.
#[derive(Debug, Clone)]
pub struct ArSchema {
    columns: Vec<ArColumn>,
    graph: JoinGraph,
    table_sizes: Vec<u64>,
    /// `|T|` (single relation) or `|FOJ|` — the cardinality normaliser.
    normalizer: f64,
    content_pos: Vec<Vec<(usize, usize)>>,
    indicator_pos: Vec<Option<usize>>,
    fanout_pos: Vec<Option<usize>>,
    /// Base-schema content column name → model column index, per table.
    by_name: HashMap<(usize, String), usize>,
}

impl ArSchema {
    /// Build the model schema from metadata and a workload (whose predicate
    /// constants drive intervalization). The target data itself is never
    /// consulted.
    pub fn build(
        schema: &DatabaseSchema,
        stats: &DatabaseStats,
        workload: &[Query],
        options: &EncodingOptions,
    ) -> Result<Self, ArError> {
        let graph = JoinGraph::new(schema).map_err(ArError::Storage)?;
        let n = graph.len();

        // Collect, per (table, column name), the code sets of all workload
        // predicates for intervalization.
        let mut predicate_sets: HashMap<(usize, String), Vec<CodeSet>> = HashMap::new();
        for q in workload {
            for p in &q.predicates {
                let t = graph
                    .index_of(&p.table)
                    .ok_or_else(|| ArError::UnknownTable(p.table.clone()))?;
                let col_stats = stats
                    .table(t)
                    .columns
                    .iter()
                    .find(|c| c.name == p.column)
                    .ok_or_else(|| ArError::UnknownColumn(p.table.clone(), p.column.clone()))?;
                predicate_sets
                    .entry((t, p.column.clone()))
                    .or_default()
                    .push(p.code_set(&col_stats.domain));
            }
        }

        let mut columns = Vec::new();
        let mut content_pos = vec![Vec::new(); n];
        let mut indicator_pos = vec![None; n];
        let mut fanout_pos = vec![None; n];
        let mut by_name = HashMap::new();

        for &t in graph.topo_order() {
            let tname = &graph.tables()[t];
            let tschema = schema.table(tname).expect("graph tables come from schema");
            if graph.parent(t).is_some() {
                indicator_pos[t] = Some(columns.len());
                columns.push(ArColumn {
                    kind: ArColumnKind::Indicator { table: t },
                    name: format!("I_{tname}"),
                    encoding: ColumnEncoding::categorical(Domain::int_range(0, 1).shared()),
                });
                fanout_pos[t] = Some(columns.len());
                let max_fanout = stats.table(t).max_fanout.max(1) as i64;
                let fk = graph.fk_column(t).expect("non-root fk");
                columns.push(ArColumn {
                    kind: ArColumnKind::Fanout { table: t },
                    name: format!("F_{tname}.{fk}"),
                    encoding: ColumnEncoding::categorical(
                        Domain::int_range(0, max_fanout).shared(),
                    ),
                });
            }
            for (stat_idx, ci) in tschema.content_indices().into_iter().enumerate() {
                let col_stats = &stats.table(t).columns[stat_idx];
                debug_assert_eq!(col_stats.name, tschema.columns[ci].name);
                let base = col_stats.domain.clone();
                if base.is_empty() {
                    // Column with no observed values (empty relation):
                    // nothing to model or decode — leave it out; generated
                    // rows emit NULL for it.
                    continue;
                }
                let numeric = matches!(col_stats.dtype, DataType::Int | DataType::Float);
                let encoding = if numeric && base.len() > options.intervalize_threshold {
                    let sets = predicate_sets
                        .get(&(t, col_stats.name.clone()))
                        .map(Vec::as_slice)
                        .unwrap_or(&[]);
                    ColumnEncoding::from_code_sets(base, sets)
                } else {
                    ColumnEncoding::categorical(base)
                };
                let pos = columns.len();
                content_pos[t].push((ci, pos));
                by_name.insert((t, col_stats.name.clone()), pos);
                columns.push(ArColumn {
                    kind: ArColumnKind::Content {
                        table: t,
                        column: ci,
                    },
                    name: format!("{tname}.{}", col_stats.name),
                    encoding,
                });
            }
        }

        let normalizer = if n == 1 {
            stats.table(0).num_rows as f64
        } else {
            stats.foj_size as f64
        };

        Ok(ArSchema {
            columns,
            graph,
            table_sizes: stats.tables.iter().map(|t| t.num_rows).collect(),
            normalizer,
            content_pos,
            indicator_pos,
            fanout_pos,
            by_name,
        })
    }

    /// Reassemble a schema from its parts (model deserialisation): the
    /// database schema (for the join graph and column names), the model
    /// columns in order, per-table sizes, and the normaliser.
    pub fn from_parts(
        db_schema: &DatabaseSchema,
        columns: Vec<ArColumn>,
        table_sizes: Vec<u64>,
        normalizer: f64,
    ) -> Result<Self, ArError> {
        let graph = JoinGraph::new(db_schema).map_err(ArError::Storage)?;
        let n = graph.len();
        let mut content_pos = vec![Vec::new(); n];
        let mut indicator_pos = vec![None; n];
        let mut fanout_pos = vec![None; n];
        let mut by_name = HashMap::new();
        for (pos, col) in columns.iter().enumerate() {
            match col.kind {
                ArColumnKind::Content { table, column } => {
                    let tname = &graph.tables()[table];
                    let tschema = db_schema
                        .table(tname)
                        .ok_or_else(|| ArError::UnknownTable(tname.clone()))?;
                    let cname = tschema
                        .columns
                        .get(column)
                        .ok_or_else(|| ArError::UnknownColumn(tname.clone(), format!("#{column}")))?
                        .name
                        .clone();
                    content_pos[table].push((column, pos));
                    by_name.insert((table, cname), pos);
                }
                ArColumnKind::Indicator { table } => indicator_pos[table] = Some(pos),
                ArColumnKind::Fanout { table } => fanout_pos[table] = Some(pos),
            }
        }
        if table_sizes.len() != n {
            return Err(ArError::Invalid(format!(
                "expected {n} table sizes, got {}",
                table_sizes.len()
            )));
        }
        Ok(ArSchema {
            columns,
            graph,
            table_sizes,
            normalizer,
            content_pos,
            indicator_pos,
            fanout_pos,
            by_name,
        })
    }

    /// Number of model columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The model columns in autoregressive order.
    pub fn columns(&self) -> &[ArColumn] {
        &self.columns
    }

    /// Per-column model domain sizes (bin counts), for the MADE config.
    pub fn domain_sizes(&self) -> Vec<usize> {
        self.columns.iter().map(|c| c.encoding.num_bins()).collect()
    }

    /// The validated join graph.
    pub fn graph(&self) -> &JoinGraph {
        &self.graph
    }

    /// `|T_t|` for each table.
    pub fn table_size(&self, t: usize) -> u64 {
        self.table_sizes[t]
    }

    /// The cardinality normaliser (`|T|` or `|FOJ|`).
    pub fn normalizer(&self) -> f64 {
        self.normalizer
    }

    /// Model position of `I_t` (non-root only).
    pub fn indicator_pos(&self, t: usize) -> Option<usize> {
        self.indicator_pos[t]
    }

    /// Model position of `F_t` (non-root only).
    pub fn fanout_pos(&self, t: usize) -> Option<usize> {
        self.fanout_pos[t]
    }

    /// Model positions of table `t`'s content columns as
    /// `(base column index, model position)` pairs.
    pub fn content_pos(&self, t: usize) -> &[(usize, usize)] {
        &self.content_pos[t]
    }

    /// The Theorem-2 identifier columns of `t.pk` as model positions:
    /// indicators and contents of `{t} ∪ Ancestors(t)`, plus fanouts of fk
    /// tables joining into that set.
    pub fn identifier_columns(&self, t: usize) -> Vec<usize> {
        let mut closure = self.graph.ancestors(t);
        closure.push(t);
        let mut out = Vec::new();
        for &s in &closure {
            if let Some(i) = self.indicator_pos[s] {
                out.push(i);
            }
            out.extend(self.content_pos[s].iter().map(|&(_, pos)| pos));
        }
        for other in 0..self.graph.len() {
            if let Some(p) = self.graph.parent(other) {
                if closure.contains(&p) {
                    if let Some(i) = self.fanout_pos[other] {
                        out.push(i);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Per-bin weights `E[1 / max(F, 1)]` for a fanout column's encoding
    /// (uniform within bins; exact for categorical fanout encodings).
    fn inverse_fanout_weights(&self, pos: usize) -> Vec<f32> {
        let enc = &self.columns[pos].encoding;
        (0..enc.num_bins())
            .map(|b| {
                let bin = enc.bin(b);
                let mut sum = 0.0f64;
                for code in bin.clone() {
                    let v = enc
                        .base_domain()
                        .value(code)
                        .as_int()
                        .expect("fanout domains are integer");
                    sum += 1.0 / (v.max(1) as f64);
                }
                (sum / bin.len() as f64) as f32
            })
            .collect()
    }

    /// Translate a query into one [`StepRule`] per model column:
    ///
    /// * content columns of involved tables with predicates → [`StepRule::InRange`];
    /// * indicators of involved non-root tables → forced to 1 ([`StepRule::InRange`]);
    /// * fanouts of fk tables outside the closure and outside the closure
    ///   root's ancestor chain → [`StepRule::WeightBySampled`] (fanout
    ///   scaling, §4.1);
    /// * everything else → [`StepRule::Free`].
    pub fn query_rules(&self, query: &Query) -> Result<Vec<StepRule>, ArError> {
        let closure = query
            .table_closure(&self.graph)
            .ok_or_else(|| ArError::UnknownTable(query.tables.join(",")))?;
        let root = closure
            .iter()
            .copied()
            .find(|&t| self.graph.parent(t).is_none_or(|p| !closure.contains(&p)))
            .expect("closure non-empty");
        let root_ancestors = self.graph.ancestors(root);

        // Combine multiple predicates on the same column by intersection.
        let mut per_column: HashMap<usize, CodeSet> = HashMap::new();
        for p in &query.predicates {
            let t = self
                .graph
                .index_of(&p.table)
                .ok_or_else(|| ArError::UnknownTable(p.table.clone()))?;
            let &pos = self
                .by_name
                .get(&(t, p.column.clone()))
                .ok_or_else(|| ArError::UnknownColumn(p.table.clone(), p.column.clone()))?;
            let set = p.code_set(self.columns[pos].encoding.base_domain());
            per_column
                .entry(pos)
                .and_modify(|existing| *existing = existing.intersect(&set))
                .or_insert(set);
        }

        let rules = self
            .columns
            .iter()
            .enumerate()
            .map(|(pos, col)| match col.kind {
                ArColumnKind::Content { .. } => match per_column.get(&pos) {
                    Some(set) => StepRule::InRange(col.encoding.frac_weights(set)),
                    None => StepRule::Free,
                },
                ArColumnKind::Indicator { table } => {
                    if closure.contains(&table) {
                        StepRule::InRange(vec![0.0, 1.0])
                    } else {
                        StepRule::Free
                    }
                }
                ArColumnKind::Fanout { table } => {
                    if closure.contains(&table) || root_ancestors.contains(&table) {
                        StepRule::Free
                    } else {
                        StepRule::WeightBySampled(self.inverse_fanout_weights(pos))
                    }
                }
            })
            .collect();
        Ok(rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_query::{CompareOp, Predicate};
    use sam_storage::paper_example;
    use sam_storage::DatabaseStats;

    fn schema() -> ArSchema {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap()
    }

    #[test]
    fn layout_mirrors_foj_schema() {
        let s = schema();
        let names: Vec<&str> = s.columns().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["A.a", "I_B", "F_B.x", "B.b", "I_C", "F_C.x", "C.c"]
        );
        // Fanout domain: 0..=max_fanout(=2) → 3 bins.
        assert_eq!(s.domain_sizes(), vec![2, 2, 3, 3, 2, 3, 2]);
        assert_eq!(s.normalizer(), 8.0);
    }

    #[test]
    fn identifier_columns_match_storage() {
        let db = paper_example::figure3_database();
        let foj_schema = sam_storage::FojSchema::new(&db);
        let s = schema();
        for t in 0..3 {
            assert_eq!(
                s.identifier_columns(t),
                foj_schema.identifier_columns(db.graph(), t),
                "table {t}"
            );
        }
    }

    #[test]
    fn rules_for_single_root_query() {
        let s = schema();
        let q = Query::single("A", vec![Predicate::compare("A", "a", CompareOp::Eq, "m")]);
        let rules = s.query_rules(&q).unwrap();
        // A.a filtered; both fanouts scale; indicators free.
        assert!(matches!(rules[0], StepRule::InRange(_)));
        assert_eq!(rules[1], StepRule::Free); // I_B
        assert!(matches!(rules[2], StepRule::WeightBySampled(_))); // F_B
        assert_eq!(rules[3], StepRule::Free); // B.b
        assert!(matches!(rules[5], StepRule::WeightBySampled(_))); // F_C
    }

    #[test]
    fn rules_for_fk_table_query() {
        let s = schema();
        // Query on B alone: closure {B}; A is B's ancestor → F_B free;
        // I_B forced to 1; F_C scales.
        let q = Query::single("B", vec![]);
        let rules = s.query_rules(&q).unwrap();
        assert_eq!(rules[1], StepRule::InRange(vec![0.0, 1.0])); // I_B = 1
        assert_eq!(rules[2], StepRule::Free); // F_B (ancestor chain)
        assert!(matches!(rules[5], StepRule::WeightBySampled(_))); // F_C
    }

    #[test]
    fn rules_for_join_query() {
        let s = schema();
        // B ⋈ C: closure {A, B, C} — nothing scales, both indicators forced.
        let q = Query::join(vec!["B".into(), "C".into()], vec![]);
        let rules = s.query_rules(&q).unwrap();
        assert_eq!(rules[1], StepRule::InRange(vec![0.0, 1.0]));
        assert_eq!(rules[2], StepRule::Free);
        assert_eq!(rules[4], StepRule::InRange(vec![0.0, 1.0]));
        assert_eq!(rules[5], StepRule::Free);
    }

    #[test]
    fn inverse_fanout_weights_are_correct() {
        let s = schema();
        let q = Query::single("A", vec![]);
        let rules = s.query_rules(&q).unwrap();
        let StepRule::WeightBySampled(w) = &rules[2] else {
            panic!("expected fanout scaling");
        };
        // Fanout domain {0, 1, 2} → weights 1/max(0,1)=1, 1, 1/2.
        assert_eq!(w.len(), 3);
        assert!((w[0] - 1.0).abs() < 1e-6);
        assert!((w[1] - 1.0).abs() < 1e-6);
        assert!((w[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn errors_on_unknown_names() {
        let s = schema();
        let q = Query::single("Z", vec![]);
        assert!(s.query_rules(&q).is_err());
        let q = Query::single(
            "A",
            vec![Predicate::compare("A", "zz", CompareOp::Eq, 1i64)],
        );
        assert!(s.query_rules(&q).is_err());
    }

    #[test]
    fn single_relation_schema_has_no_virtual_columns() {
        let db = paper_example::figure3_database();
        let single = sam_storage::Database::single(db.table_by_name("A").unwrap().clone());
        let stats = DatabaseStats::from_database(&single);
        let s = ArSchema::build(single.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        assert_eq!(s.num_columns(), 1);
        assert_eq!(s.normalizer(), 4.0);
    }
}
