//! Progressive-sampling cardinality inference (paper §4.1, Naru \[36\]).
//!
//! Hard (non-differentiable) progressive sampling from a [`FrozenModel`]:
//! per sample path, columns are drawn in autoregressive order; constrained
//! columns contribute their in-range conditional mass, fanout-scaled columns
//! contribute the sampled bin's inverse-fanout weight, and the estimate is
//! the normaliser times the mean path product.

#![allow(clippy::needless_range_loop)]
use crate::error::ArError;
use crate::model::FrozenModel;
use crate::model_schema::StepRule;
use rand::Rng;
use sam_nn::Matrix;
use sam_query::Query;

/// Draw a category from an unnormalised weight row; returns `None` if the
/// total mass is not positive.
pub(crate) fn sample_weighted(weights: &[f32], rng: &mut impl Rng) -> Option<usize> {
    let total: f32 = weights.iter().sum();
    if total <= 0.0 || total.is_nan() {
        return None;
    }
    let mut u = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        if u < w {
            return Some(i);
        }
        u -= w;
    }
    // Floating-point slack: return the last positive-weight bin.
    weights.iter().rposition(|&w| w > 0.0)
}

/// Estimate `Card(q)` with `n_samples` progressive-sampling paths.
pub fn estimate_cardinality(
    model: &FrozenModel,
    query: &Query,
    n_samples: usize,
    rng: &mut impl Rng,
) -> Result<f64, ArError> {
    estimate_cardinality_batch(model, &[(query, n_samples)], std::slice::from_mut(rng))
        .pop()
        .expect("exactly one result for one request")
}

/// Inference counters on the global [`sam_obs::Registry`], resolved once.
/// `forwards` counts network forward passes, `requests`/`batch_rows` size
/// the micro-batches, and `dedup_hits` counts rows whose forward pass was
/// skipped because an identical sample-path prefix was already queued.
struct ObsCounters {
    forwards: std::sync::Arc<sam_obs::Counter>,
    requests: std::sync::Arc<sam_obs::Counter>,
    batch_rows: std::sync::Arc<sam_obs::Counter>,
    dedup_hits: std::sync::Arc<sam_obs::Counter>,
}

fn obs_counters() -> &'static ObsCounters {
    static COUNTERS: std::sync::OnceLock<ObsCounters> = std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| ObsCounters {
        forwards: sam_obs::counter("sam_forward_total"),
        requests: sam_obs::counter("sam_estimate_requests_total"),
        batch_rows: sam_obs::counter("sam_estimate_batch_rows_total"),
        dedup_hits: sam_obs::counter("sam_dedup_hits_total"),
    })
}

/// Per-request micro-batch state: resolved step rules plus the request's
/// row window inside the stacked input matrix.
struct BatchSlot {
    request: usize,
    rules: Vec<StepRule>,
    start: usize,
    rows: usize,
}

/// Rows per rayon task in [`forward_row_parallel`]. Small enough that a
/// default-sized micro-batch (8 × 64 paths) spans many cores, large enough
/// that per-task overhead stays negligible.
const PAR_FORWARD_ROWS: usize = 64;

/// Network forward split into row blocks evaluated in parallel.
///
/// Both backbones process rows (sample paths) independently — MADE is
/// row-wise matmul + activation, and the transformer attends only across
/// column positions *within* a row — so the per-row arithmetic is exactly
/// that of a single whole-matrix forward and the result is bit-identical.
/// This is where micro-batching buys throughput: stacking many requests
/// yields enough rows to occupy every core, which a lone low-path estimate
/// cannot.
fn forward_row_parallel(model: &FrozenModel, input: &Matrix) -> Matrix {
    use rayon::prelude::*;
    obs_counters().forwards.inc();
    let rows = input.rows();
    let width = input.cols();
    if rows <= PAR_FORWARD_ROWS {
        return model.net.forward(input);
    }
    let n_chunks = rows.div_ceil(PAR_FORWARD_ROWS);
    let blocks: Vec<Matrix> = (0..n_chunks)
        .into_par_iter()
        .map(|c| {
            let start = c * PAR_FORWARD_ROWS;
            let end = (start + PAR_FORWARD_ROWS).min(rows);
            let block = Matrix::from_vec(
                end - start,
                width,
                input.data()[start * width..end * width].to_vec(),
            );
            model.net.forward(&block)
        })
        .collect();
    let out_width = blocks[0].cols();
    let mut out = Matrix::zeros(rows, out_width);
    let mut at = 0usize;
    for block in blocks {
        let n = block.rows() * out_width;
        out.data_mut()[at..at + n].copy_from_slice(block.data());
        at += n;
    }
    out
}

/// Estimate several queries in one micro-batch, sharing each column's
/// forward pass across every request's sample paths.
///
/// `rngs[j]` drives request `j` alone, and rows are visited per request in
/// ascending order within each column — so every request consumes its RNG
/// stream exactly as a sequential [`estimate_cardinality`] call would, and
/// the returned estimates are bit-identical to sequential ones (the serving
/// layer's equality guarantee). The network forward pass is row-independent,
/// so stacking requests changes throughput, not values.
///
/// Requests whose predicates fail to resolve against the model schema get
/// their own `Err` slot without affecting the rest of the batch.
pub fn estimate_cardinality_batch<R: Rng>(
    model: &FrozenModel,
    requests: &[(&Query, usize)],
    rngs: &mut [R],
) -> Vec<Result<f64, ArError>> {
    assert_eq!(
        requests.len(),
        rngs.len(),
        "one RNG per batched request (got {} requests, {} rngs)",
        requests.len(),
        rngs.len()
    );
    let width = model.net.total_width();
    let n_cols = model.net.num_columns();

    let mut results: Vec<Option<Result<f64, ArError>>> = Vec::with_capacity(requests.len());
    let mut slots: Vec<BatchSlot> = Vec::with_capacity(requests.len());
    let mut total_rows = 0usize;
    for (request, (query, n_samples)) in requests.iter().enumerate() {
        match model.schema.query_rules(query) {
            Ok(rules) => {
                let rows = (*n_samples).max(1);
                slots.push(BatchSlot {
                    request,
                    rules,
                    start: total_rows,
                    rows,
                });
                total_rows += rows;
                results.push(None);
            }
            Err(e) => results.push(Some(Err(e))),
        }
    }

    if !slots.is_empty() {
        let obs = obs_counters();
        obs.requests.add(slots.len() as u64);
        obs.batch_rows.add(total_rows as u64);
        let mut factors = vec![1.0f64; total_rows];
        // Sampled codes per path so far — both the forward input (as one-hot)
        // and the dedup key.
        let mut codes: Vec<Vec<u32>> = vec![Vec::with_capacity(n_cols); total_rows];

        for i in 0..n_cols {
            // Paths with identical code prefixes have identical one-hot
            // inputs, hence identical conditionals: run the forward pass on
            // unique prefixes only. Co-batched requests share prefixes (every
            // path starts empty; similar queries stay overlapped for several
            // columns), so the shared forward work is paid once per batch —
            // the micro-batching throughput win. Values are unchanged: each
            // path reads the same conditionals a per-path forward would give.
            let (probs, path_slot) = {
                let mut uniq: std::collections::HashMap<&[u32], usize> =
                    std::collections::HashMap::new();
                let mut path_slot = vec![usize::MAX; total_rows];
                let mut reps: Vec<usize> = Vec::new();
                let mut live_rows = 0u64;
                for r in 0..total_rows {
                    if factors[r] == 0.0 {
                        continue;
                    }
                    live_rows += 1;
                    let next = reps.len();
                    let idx = *uniq.entry(codes[r].as_slice()).or_insert_with(|| {
                        reps.push(r);
                        next
                    });
                    path_slot[r] = idx;
                }
                obs.dedup_hits.add(live_rows - reps.len() as u64);
                if reps.is_empty() {
                    // Every path died on an empty range; all estimates are 0.
                    break;
                }
                let mut input = Matrix::zeros(reps.len(), width);
                for (u, &r) in reps.iter().enumerate() {
                    for (j, &code) in codes[r].iter().enumerate() {
                        input.set(u, model.net.offset(j) + code as usize, 1.0);
                    }
                }
                let logits = forward_row_parallel(model, &input);
                (model.net.conditional_probs(&logits, i), path_slot)
            };
            for slot in &slots {
                let rng = &mut rngs[slot.request];
                for r in slot.start..slot.start + slot.rows {
                    if factors[r] == 0.0 {
                        continue;
                    }
                    let p_row = probs.row(path_slot[r]);
                    let code = match &slot.rules[i] {
                        StepRule::Free => sample_weighted(p_row, rng).unwrap_or(0),
                        StepRule::InRange(frac) => {
                            let masked: Vec<f32> =
                                p_row.iter().zip(frac).map(|(p, f)| p * f).collect();
                            let mass: f32 = masked.iter().sum();
                            factors[r] *= mass as f64;
                            match sample_weighted(&masked, rng) {
                                Some(c) => c,
                                None => {
                                    factors[r] = 0.0;
                                    continue;
                                }
                            }
                        }
                        StepRule::WeightBySampled(w) => {
                            let code = sample_weighted(p_row, rng).unwrap_or(0);
                            factors[r] *= w[code] as f64;
                            code
                        }
                    };
                    codes[r].push(code as u32);
                }
            }
        }

        for slot in &slots {
            let window = &factors[slot.start..slot.start + slot.rows];
            let mean = window.iter().sum::<f64>() / slot.rows as f64;
            results[slot.request] = Some(Ok(mean * model.schema.normalizer()));
        }
    }

    results
        .into_iter()
        .map(|r| r.expect("every request resolved to a result"))
        .collect()
}

/// Estimate the cardinality of a disjunctive query via inclusion–exclusion
/// (paper §2.2): each conjunction term is estimated with progressive
/// sampling and combined with alternating signs. The result is clamped to
/// be non-negative (individual term noise can push the sum below zero).
pub fn estimate_dnf_cardinality(
    model: &FrozenModel,
    dnf: &sam_query::DnfQuery,
    n_samples: usize,
    rng: &mut impl Rng,
) -> Result<f64, ArError> {
    let mut total = 0.0f64;
    for (sign, q) in dnf.inclusion_exclusion_terms() {
        total += sign as f64 * estimate_cardinality(model, &q, n_samples, rng)?;
    }
    Ok(total.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ArModel, ArModelConfig};
    use crate::model_schema::{ArSchema, EncodingOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sam_query::Query;
    use sam_storage::{paper_example, DatabaseStats};

    #[test]
    fn sample_weighted_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = [0.0f32, 0.7, 0.3];
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[sample_weighted(&w, &mut rng).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let f1 = counts[1] as f32 / 5000.0;
        assert!((f1 - 0.7).abs() < 0.03, "freq {f1}");
    }

    #[test]
    fn sample_weighted_zero_mass() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_weighted(&[0.0, 0.0], &mut rng), None);
    }

    #[test]
    fn untrained_model_estimates_unfiltered_query_as_normalizer() {
        // With no predicates on a single relation, every path factor is 1, so
        // the estimate must equal |T| regardless of weights.
        let db = paper_example::figure3_database();
        let single = sam_storage::Database::single(db.table_by_name("A").unwrap().clone());
        let stats = DatabaseStats::from_database(&single);
        let schema =
            ArSchema::build(single.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let model = ArModel::new(schema, &ArModelConfig::default()).freeze();
        let mut rng = StdRng::seed_from_u64(2);
        let est = estimate_cardinality(&model, &Query::single("A", vec![]), 32, &mut rng).unwrap();
        assert!((est - 4.0).abs() < 1e-3);
    }

    #[test]
    fn batched_estimates_are_bit_identical_to_sequential() {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let schema =
            ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let model = ArModel::new(schema, &ArModelConfig::default()).freeze();

        let queries = [
            Query::join(vec!["A".into(), "B".into()], vec![]),
            Query::join(vec!["A".into(), "B".into(), "C".into()], vec![]),
            Query::single("A", vec![]),
        ];
        let counts = [16usize, 48, 7];
        let seeds = [101u64, 7, 3];

        let sequential: Vec<f64> = queries
            .iter()
            .zip(counts)
            .zip(seeds)
            .map(|((q, n), s)| {
                let mut rng = StdRng::seed_from_u64(s);
                estimate_cardinality(&model, q, n, &mut rng).unwrap()
            })
            .collect();

        let requests: Vec<(&Query, usize)> = queries.iter().zip(counts).collect();
        let mut rngs: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
        let batched = estimate_cardinality_batch(&model, &requests, &mut rngs);

        for (seq, got) in sequential.iter().zip(&batched) {
            let got = *got.as_ref().unwrap();
            assert_eq!(*seq, got, "batched estimate diverged from sequential");
        }
    }

    #[test]
    fn batched_estimate_isolates_bad_requests() {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let schema =
            ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let model = ArModel::new(schema, &ArModelConfig::default()).freeze();

        let good = Query::single("A", vec![]);
        let bad = Query::single("no_such_table", vec![]);
        let requests = vec![(&good, 8usize), (&bad, 8usize), (&good, 8usize)];
        let mut rngs: Vec<StdRng> = (0..3).map(StdRng::seed_from_u64).collect();
        let out = estimate_cardinality_batch(&model, &requests, &mut rngs);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
        assert!(out[2].is_ok());
    }

    #[test]
    fn join_estimate_is_bounded_by_foj_size() {
        // For any join query the per-path factor is ≤ 1, so the estimate is
        // ≤ |FOJ| even untrained.
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let schema =
            ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let model = ArModel::new(schema, &ArModelConfig::default()).freeze();
        let mut rng = StdRng::seed_from_u64(5);
        let q = Query::join(vec!["A".into(), "B".into(), "C".into()], vec![]);
        let est = estimate_cardinality(&model, &q, 64, &mut rng).unwrap();
        assert!(est <= 8.0 + 1e-6);
        assert!(est >= 0.0);
    }
}
