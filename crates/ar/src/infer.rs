//! Progressive-sampling cardinality inference (paper §4.1, Naru \[36\]).
//!
//! Hard (non-differentiable) progressive sampling from a [`FrozenModel`]:
//! per sample path, columns are drawn in autoregressive order; constrained
//! columns contribute their in-range conditional mass, fanout-scaled columns
//! contribute the sampled bin's inverse-fanout weight, and the estimate is
//! the normaliser times the mean path product.

#![allow(clippy::needless_range_loop)]
use crate::batch::SampleBatch;
use crate::error::ArError;
use crate::model::FrozenModel;
use crate::model_schema::StepRule;
use crate::trie::PrefixTrie;
use rand::Rng;
use rand::SeedableRng;
use sam_query::Query;

/// Draw a category from an unnormalised weight row; returns `None` if the
/// total mass is not positive.
pub(crate) fn sample_weighted(weights: &[f32], rng: &mut impl Rng) -> Option<usize> {
    let total: f32 = weights.iter().sum();
    if total <= 0.0 || total.is_nan() {
        return None;
    }
    let mut u = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        if u < w {
            return Some(i);
        }
        u -= w;
    }
    // Floating-point slack: return the last positive-weight bin.
    weights.iter().rposition(|&w| w > 0.0)
}

/// Estimate `Card(q)` with `n_samples` progressive-sampling paths.
pub fn estimate_cardinality(
    model: &FrozenModel,
    query: &Query,
    n_samples: usize,
    rng: &mut impl Rng,
) -> Result<f64, ArError> {
    estimate_cardinality_batch(model, &[(query, n_samples)], std::slice::from_mut(rng))
        .pop()
        .expect("exactly one result for one request")
}

/// Inference counters on the global [`sam_obs::Registry`], resolved once.
/// `forwards` counts network forward passes, `requests`/`batch_rows` size
/// the micro-batches, `dedup_hits` counts rows whose forward pass was
/// skipped because an identical sample-path prefix was already queued in
/// the same batch, and `trie_hits` counts rows served from conditionals a
/// *previous* batch cached on a shared [`PrefixTrie`].
struct ObsCounters {
    forwards: std::sync::Arc<sam_obs::Counter>,
    requests: std::sync::Arc<sam_obs::Counter>,
    batch_rows: std::sync::Arc<sam_obs::Counter>,
    dedup_hits: std::sync::Arc<sam_obs::Counter>,
    trie_hits: std::sync::Arc<sam_obs::Counter>,
}

fn obs_counters() -> &'static ObsCounters {
    static COUNTERS: std::sync::OnceLock<ObsCounters> = std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| ObsCounters {
        forwards: sam_obs::counter("sam_forward_total"),
        requests: sam_obs::counter("sam_estimate_requests_total"),
        batch_rows: sam_obs::counter("sam_estimate_batch_rows_total"),
        dedup_hits: sam_obs::counter("sam_dedup_hits_total"),
        trie_hits: sam_obs::counter("sam_trie_hits_total"),
    })
}

/// Per-request micro-batch state: resolved step rules plus the request's
/// row window inside the stacked sample batch.
struct BatchSlot {
    request: usize,
    rules: Vec<StepRule>,
    start: usize,
    rows: usize,
}

/// Estimate several queries in one micro-batch, sharing each column's
/// forward pass across every request's sample paths.
///
/// `rngs[j]` drives request `j` alone, and rows are visited per request in
/// ascending order within each column — so every request consumes its RNG
/// stream exactly as a sequential [`estimate_cardinality`] call would, and
/// the returned estimates are bit-identical to sequential ones (the serving
/// layer's equality guarantee). The network forward pass is row-independent,
/// so stacking requests changes throughput, not values.
///
/// Requests whose predicates fail to resolve against the model schema get
/// their own `Err` slot without affecting the rest of the batch.
///
/// Each call builds a private [`PrefixTrie`] that dedups identical prefixes
/// within the batch; to additionally reuse conditionals *across* calls,
/// keep a trie alive and use [`estimate_cardinality_batch_shared`].
pub fn estimate_cardinality_batch<R: Rng>(
    model: &FrozenModel,
    requests: &[(&Query, usize)],
    rngs: &mut [R],
) -> Vec<Result<f64, ArError>> {
    let mut trie = PrefixTrie::new();
    estimate_cardinality_batch_shared(model, requests, rngs, &mut trie)
}

/// [`estimate_cardinality_batch`] against a caller-owned [`PrefixTrie`].
///
/// The trie caches each visited prefix's conditional-probability row, so
/// repeated workloads against the same frozen model (DNF
/// inclusion–exclusion terms, a serving process handling many requests)
/// skip the forward rows of every previously-seen prefix. Conditionals are
/// a pure per-row function of the prefix, so cached reuse is bit-preserving
/// — only cost changes, never estimates. The trie must only ever be shared
/// across calls with the *same* model (serving keys tries by model
/// version).
pub fn estimate_cardinality_batch_shared<R: Rng>(
    model: &FrozenModel,
    requests: &[(&Query, usize)],
    rngs: &mut [R],
    trie: &mut PrefixTrie,
) -> Vec<Result<f64, ArError>> {
    let mut batch = SampleBatch::new();
    estimate_cardinality_batch_with(model, requests, rngs, trie, &mut batch)
}

/// [`estimate_cardinality_batch_shared`] against a caller-owned
/// [`SampleBatch`] as well: the batch's activation/logits/probability
/// buffers are reused across calls, so a steady-state serving loop performs
/// no matrix allocations per request. The serving tier keeps one
/// `SampleBatch` per model version alongside that version's shared trie.
pub fn estimate_cardinality_batch_with<R: Rng>(
    model: &FrozenModel,
    requests: &[(&Query, usize)],
    rngs: &mut [R],
    trie: &mut PrefixTrie,
    batch: &mut SampleBatch,
) -> Vec<Result<f64, ArError>> {
    assert_eq!(
        requests.len(),
        rngs.len(),
        "one RNG per batched request (got {} requests, {} rngs)",
        requests.len(),
        rngs.len()
    );
    let n_cols = model.net.num_columns();

    let mut results: Vec<Option<Result<f64, ArError>>> = Vec::with_capacity(requests.len());
    let mut slots: Vec<BatchSlot> = Vec::with_capacity(requests.len());
    let mut total_rows = 0usize;
    for (request, (query, n_samples)) in requests.iter().enumerate() {
        match model.schema.query_rules(query) {
            Ok(rules) => {
                let rows = (*n_samples).max(1);
                slots.push(BatchSlot {
                    request,
                    rules,
                    start: total_rows,
                    rows,
                });
                total_rows += rows;
                results.push(None);
            }
            Err(e) => results.push(Some(Err(e))),
        }
    }

    if !slots.is_empty() {
        let obs = obs_counters();
        obs.requests.add(slots.len() as u64);
        obs.batch_rows.add(total_rows as u64);
        batch.reset(model, total_rows);

        for i in 0..n_cols {
            // Paths with identical code prefixes sit on the same trie node
            // and have identical one-hot inputs, hence identical
            // conditionals: the forward pass runs on distinct *uncached*
            // prefixes only, selected by a batch row mask. Co-batched
            // requests share prefixes (every path starts empty; similar
            // queries stay overlapped for several columns) — the
            // micro-batching throughput win — and prefixes cached by
            // earlier batches on a shared trie skip the forward entirely.
            // Values are unchanged either way: each path reads the same
            // conditionals a per-path forward would give.
            let summary = batch.begin_column(model, i, trie);
            obs.dedup_hits.add(summary.dedup_hits);
            obs.trie_hits.add(summary.cached_hits);
            if summary.fresh_rows > 0 {
                obs.forwards.inc();
            }
            if !summary.any_live {
                // Every path died on an empty range; all estimates are 0.
                break;
            }

            let d = model.net.domain_size(i);
            for slot in &slots {
                let rng = &mut rngs[slot.request];
                for r in slot.start..slot.start + slot.rows {
                    if !batch.is_live(r) {
                        continue;
                    }
                    let code = match &slot.rules[i] {
                        StepRule::Free => {
                            sample_weighted(batch.p_row(trie, r, d), rng).unwrap_or(0)
                        }
                        StepRule::InRange(frac) => {
                            let masked: Vec<f32> = batch
                                .p_row(trie, r, d)
                                .iter()
                                .zip(frac)
                                .map(|(p, f)| p * f)
                                .collect();
                            let mass: f32 = masked.iter().sum();
                            batch.scale_factor(r, mass as f64);
                            match sample_weighted(&masked, rng) {
                                Some(c) => c,
                                None => {
                                    batch.kill(r);
                                    continue;
                                }
                            }
                        }
                        StepRule::WeightBySampled(w) => {
                            let code = sample_weighted(batch.p_row(trie, r, d), rng).unwrap_or(0);
                            batch.scale_factor(r, w[code] as f64);
                            code
                        }
                    };
                    batch.advance(trie, model, i, r, code as u32);
                }
            }
        }

        for slot in &slots {
            let mean = batch.mean_factor(slot.start, slot.rows);
            results[slot.request] = Some(Ok(mean * model.schema.normalizer()));
        }
    }

    results
        .into_iter()
        .map(|r| r.expect("every request resolved to a result"))
        .collect()
}

/// Estimate the cardinality of a disjunctive query via inclusion–exclusion
/// (paper §2.2): each conjunction term is estimated with progressive
/// sampling and combined with alternating signs. The result is clamped to
/// be non-negative (individual term noise can push the sum below zero).
///
/// All inclusion–exclusion terms go through one
/// [`estimate_cardinality_batch_shared`] call: the terms of a DNF differ
/// only in which predicates constrain them, so their sample paths overlap
/// heavily and the shared prefix trie collapses the overlapping forward
/// rows. Each term gets an independent RNG stream seeded from the caller's
/// RNG, so every term's estimate is exactly what a standalone call with
/// that stream would return.
pub fn estimate_dnf_cardinality(
    model: &FrozenModel,
    dnf: &sam_query::DnfQuery,
    n_samples: usize,
    rng: &mut impl Rng,
) -> Result<f64, ArError> {
    let terms = dnf.inclusion_exclusion_terms();
    if terms.is_empty() {
        return Ok(0.0);
    }
    let mut rngs: Vec<rand::rngs::StdRng> = terms
        .iter()
        .map(|_| rand::rngs::StdRng::seed_from_u64(rng.gen()))
        .collect();
    let requests: Vec<(&Query, usize)> = terms.iter().map(|(_, q)| (q, n_samples)).collect();
    let mut trie = PrefixTrie::new();
    let estimates = estimate_cardinality_batch_shared(model, &requests, &mut rngs, &mut trie);
    let mut total = 0.0f64;
    for ((sign, _), est) in terms.iter().zip(estimates) {
        total += *sign as f64 * est?;
    }
    Ok(total.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ArModel, ArModelConfig};
    use crate::model_schema::{ArSchema, EncodingOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sam_query::Query;
    use sam_storage::{paper_example, DatabaseStats};

    #[test]
    fn sample_weighted_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = [0.0f32, 0.7, 0.3];
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[sample_weighted(&w, &mut rng).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let f1 = counts[1] as f32 / 5000.0;
        assert!((f1 - 0.7).abs() < 0.03, "freq {f1}");
    }

    #[test]
    fn sample_weighted_zero_mass() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_weighted(&[0.0, 0.0], &mut rng), None);
    }

    #[test]
    fn untrained_model_estimates_unfiltered_query_as_normalizer() {
        // With no predicates on a single relation, every path factor is 1, so
        // the estimate must equal |T| regardless of weights.
        let db = paper_example::figure3_database();
        let single = sam_storage::Database::single(db.table_by_name("A").unwrap().clone());
        let stats = DatabaseStats::from_database(&single);
        let schema =
            ArSchema::build(single.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let model = ArModel::new(schema, &ArModelConfig::default()).freeze();
        let mut rng = StdRng::seed_from_u64(2);
        let est = estimate_cardinality(&model, &Query::single("A", vec![]), 32, &mut rng).unwrap();
        assert!((est - 4.0).abs() < 1e-3);
    }

    #[test]
    fn batched_estimates_are_bit_identical_to_sequential() {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let schema =
            ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let model = ArModel::new(schema, &ArModelConfig::default()).freeze();

        let queries = [
            Query::join(vec!["A".into(), "B".into()], vec![]),
            Query::join(vec!["A".into(), "B".into(), "C".into()], vec![]),
            Query::single("A", vec![]),
        ];
        let counts = [16usize, 48, 7];
        let seeds = [101u64, 7, 3];

        let sequential: Vec<f64> = queries
            .iter()
            .zip(counts)
            .zip(seeds)
            .map(|((q, n), s)| {
                let mut rng = StdRng::seed_from_u64(s);
                estimate_cardinality(&model, q, n, &mut rng).unwrap()
            })
            .collect();

        let requests: Vec<(&Query, usize)> = queries.iter().zip(counts).collect();
        let mut rngs: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
        let batched = estimate_cardinality_batch(&model, &requests, &mut rngs);

        for (seq, got) in sequential.iter().zip(&batched) {
            let got = *got.as_ref().unwrap();
            assert_eq!(*seq, got, "batched estimate diverged from sequential");
        }
    }

    #[test]
    fn batched_estimate_isolates_bad_requests() {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let schema =
            ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let model = ArModel::new(schema, &ArModelConfig::default()).freeze();

        let good = Query::single("A", vec![]);
        let bad = Query::single("no_such_table", vec![]);
        let requests = vec![(&good, 8usize), (&bad, 8usize), (&good, 8usize)];
        let mut rngs: Vec<StdRng> = (0..3).map(StdRng::seed_from_u64).collect();
        let out = estimate_cardinality_batch(&model, &requests, &mut rngs);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
        assert!(out[2].is_ok());
    }

    #[test]
    fn join_estimate_is_bounded_by_foj_size() {
        // For any join query the per-path factor is ≤ 1, so the estimate is
        // ≤ |FOJ| even untrained.
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let schema =
            ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let model = ArModel::new(schema, &ArModelConfig::default()).freeze();
        let mut rng = StdRng::seed_from_u64(5);
        let q = Query::join(vec!["A".into(), "B".into(), "C".into()], vec![]);
        let est = estimate_cardinality(&model, &q, 64, &mut rng).unwrap();
        assert!(est <= 8.0 + 1e-6);
        assert!(est >= 0.0);
    }
}
