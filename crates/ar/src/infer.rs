//! Progressive-sampling cardinality inference (paper §4.1, Naru \[36\]).
//!
//! Hard (non-differentiable) progressive sampling from a [`FrozenModel`]:
//! per sample path, columns are drawn in autoregressive order; constrained
//! columns contribute their in-range conditional mass, fanout-scaled columns
//! contribute the sampled bin's inverse-fanout weight, and the estimate is
//! the normaliser times the mean path product.

#![allow(clippy::needless_range_loop)]
use crate::error::ArError;
use crate::model::FrozenModel;
use crate::model_schema::StepRule;
use rand::Rng;
use sam_nn::Matrix;
use sam_query::Query;

/// Draw a category from an unnormalised weight row; returns `None` if the
/// total mass is not positive.
pub(crate) fn sample_weighted(weights: &[f32], rng: &mut impl Rng) -> Option<usize> {
    let total: f32 = weights.iter().sum();
    if total <= 0.0 || total.is_nan() {
        return None;
    }
    let mut u = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        if u < w {
            return Some(i);
        }
        u -= w;
    }
    // Floating-point slack: return the last positive-weight bin.
    weights.iter().rposition(|&w| w > 0.0)
}

/// Estimate `Card(q)` with `n_samples` progressive-sampling paths.
pub fn estimate_cardinality(
    model: &FrozenModel,
    query: &Query,
    n_samples: usize,
    rng: &mut impl Rng,
) -> Result<f64, ArError> {
    let rules = model.schema.query_rules(query)?;
    let n = n_samples.max(1);
    let width = model.net.total_width();
    let n_cols = model.net.num_columns();

    let mut input = Matrix::zeros(n, width);
    let mut factors = vec![1.0f64; n];

    for i in 0..n_cols {
        let logits = model.net.forward(&input);
        let probs = model.net.conditional_probs(&logits, i);
        let offset = model.net.offset(i);
        for r in 0..n {
            if factors[r] == 0.0 {
                continue;
            }
            let p_row = probs.row(r);
            let code = match &rules[i] {
                StepRule::Free => sample_weighted(p_row, rng).unwrap_or(0),
                StepRule::InRange(frac) => {
                    let masked: Vec<f32> = p_row.iter().zip(frac).map(|(p, f)| p * f).collect();
                    let mass: f32 = masked.iter().sum();
                    factors[r] *= mass as f64;
                    match sample_weighted(&masked, rng) {
                        Some(c) => c,
                        None => {
                            factors[r] = 0.0;
                            continue;
                        }
                    }
                }
                StepRule::WeightBySampled(w) => {
                    let code = sample_weighted(p_row, rng).unwrap_or(0);
                    factors[r] *= w[code] as f64;
                    code
                }
            };
            input.set(r, offset + code, 1.0);
        }
    }

    let mean = factors.iter().sum::<f64>() / n as f64;
    Ok(mean * model.schema.normalizer())
}

/// Estimate the cardinality of a disjunctive query via inclusion–exclusion
/// (paper §2.2): each conjunction term is estimated with progressive
/// sampling and combined with alternating signs. The result is clamped to
/// be non-negative (individual term noise can push the sum below zero).
pub fn estimate_dnf_cardinality(
    model: &FrozenModel,
    dnf: &sam_query::DnfQuery,
    n_samples: usize,
    rng: &mut impl Rng,
) -> Result<f64, ArError> {
    let mut total = 0.0f64;
    for (sign, q) in dnf.inclusion_exclusion_terms() {
        total += sign as f64 * estimate_cardinality(model, &q, n_samples, rng)?;
    }
    Ok(total.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ArModel, ArModelConfig};
    use crate::model_schema::{ArSchema, EncodingOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sam_query::Query;
    use sam_storage::{paper_example, DatabaseStats};

    #[test]
    fn sample_weighted_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = [0.0f32, 0.7, 0.3];
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[sample_weighted(&w, &mut rng).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let f1 = counts[1] as f32 / 5000.0;
        assert!((f1 - 0.7).abs() < 0.03, "freq {f1}");
    }

    #[test]
    fn sample_weighted_zero_mass() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_weighted(&[0.0, 0.0], &mut rng), None);
    }

    #[test]
    fn untrained_model_estimates_unfiltered_query_as_normalizer() {
        // With no predicates on a single relation, every path factor is 1, so
        // the estimate must equal |T| regardless of weights.
        let db = paper_example::figure3_database();
        let single = sam_storage::Database::single(db.table_by_name("A").unwrap().clone());
        let stats = DatabaseStats::from_database(&single);
        let schema =
            ArSchema::build(single.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let model = ArModel::new(schema, &ArModelConfig::default()).freeze();
        let mut rng = StdRng::seed_from_u64(2);
        let est = estimate_cardinality(&model, &Query::single("A", vec![]), 32, &mut rng).unwrap();
        assert!((est - 4.0).abs() < 1e-3);
    }

    #[test]
    fn join_estimate_is_bounded_by_foj_size() {
        // For any join query the per-path factor is ≤ 1, so the estimate is
        // ≤ |FOJ| even untrained.
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let schema =
            ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let model = ArModel::new(schema, &ArModelConfig::default()).freeze();
        let mut rng = StdRng::seed_from_u64(5);
        let q = Query::join(vec!["A".into(), "B".into(), "C".into()], vec![]);
        let est = estimate_cardinality(&model, &q, 64, &mut rng).unwrap();
        assert!(est <= 8.0 + 1e-6);
        assert!(est >= 0.0);
    }
}
