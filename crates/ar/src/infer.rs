//! Progressive-sampling cardinality inference (paper §4.1, Naru \[36\]).
//!
//! Hard (non-differentiable) progressive sampling from a [`FrozenModel`]:
//! per sample path, columns are drawn in autoregressive order; constrained
//! columns contribute their in-range conditional mass, fanout-scaled columns
//! contribute the sampled bin's inverse-fanout weight, and the estimate is
//! the normaliser times the mean path product.

#![allow(clippy::needless_range_loop)]
use crate::error::ArError;
use crate::model::FrozenModel;
use crate::model_schema::StepRule;
use crate::trie::{PrefixTrie, OFF_TRIE};
use rand::Rng;
use rand::SeedableRng;
use sam_nn::Matrix;
use sam_query::Query;

/// Draw a category from an unnormalised weight row; returns `None` if the
/// total mass is not positive.
pub(crate) fn sample_weighted(weights: &[f32], rng: &mut impl Rng) -> Option<usize> {
    let total: f32 = weights.iter().sum();
    if total <= 0.0 || total.is_nan() {
        return None;
    }
    let mut u = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        if u < w {
            return Some(i);
        }
        u -= w;
    }
    // Floating-point slack: return the last positive-weight bin.
    weights.iter().rposition(|&w| w > 0.0)
}

/// Estimate `Card(q)` with `n_samples` progressive-sampling paths.
pub fn estimate_cardinality(
    model: &FrozenModel,
    query: &Query,
    n_samples: usize,
    rng: &mut impl Rng,
) -> Result<f64, ArError> {
    estimate_cardinality_batch(model, &[(query, n_samples)], std::slice::from_mut(rng))
        .pop()
        .expect("exactly one result for one request")
}

/// Inference counters on the global [`sam_obs::Registry`], resolved once.
/// `forwards` counts network forward passes, `requests`/`batch_rows` size
/// the micro-batches, `dedup_hits` counts rows whose forward pass was
/// skipped because an identical sample-path prefix was already queued in
/// the same batch, and `trie_hits` counts rows served from conditionals a
/// *previous* batch cached on a shared [`PrefixTrie`].
struct ObsCounters {
    forwards: std::sync::Arc<sam_obs::Counter>,
    requests: std::sync::Arc<sam_obs::Counter>,
    batch_rows: std::sync::Arc<sam_obs::Counter>,
    dedup_hits: std::sync::Arc<sam_obs::Counter>,
    trie_hits: std::sync::Arc<sam_obs::Counter>,
}

fn obs_counters() -> &'static ObsCounters {
    static COUNTERS: std::sync::OnceLock<ObsCounters> = std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| ObsCounters {
        forwards: sam_obs::counter("sam_forward_total"),
        requests: sam_obs::counter("sam_estimate_requests_total"),
        batch_rows: sam_obs::counter("sam_estimate_batch_rows_total"),
        dedup_hits: sam_obs::counter("sam_dedup_hits_total"),
        trie_hits: sam_obs::counter("sam_trie_hits_total"),
    })
}

/// Per-request micro-batch state: resolved step rules plus the request's
/// row window inside the stacked input matrix.
struct BatchSlot {
    request: usize,
    rules: Vec<StepRule>,
    start: usize,
    rows: usize,
}

/// Rows per rayon task in [`forward_row_parallel`]. Small enough that a
/// default-sized micro-batch (8 × 64 paths) spans many cores, large enough
/// that per-task overhead stays negligible.
const PAR_FORWARD_ROWS: usize = 64;

/// Network forward split into row blocks evaluated in parallel.
///
/// Both backbones process rows (sample paths) independently — MADE is
/// row-wise matmul + activation, and the transformer attends only across
/// column positions *within* a row — so the per-row arithmetic is exactly
/// that of a single whole-matrix forward and the result is bit-identical.
/// This is where micro-batching buys throughput: stacking many requests
/// yields enough rows to occupy every core, which a lone low-path estimate
/// cannot.
fn forward_row_parallel(model: &FrozenModel, input: &Matrix) -> Matrix {
    use rayon::prelude::*;
    obs_counters().forwards.inc();
    let rows = input.rows();
    let width = input.cols();
    if rows <= PAR_FORWARD_ROWS {
        return model.net.forward(input);
    }
    let n_chunks = rows.div_ceil(PAR_FORWARD_ROWS);
    let blocks: Vec<Matrix> = (0..n_chunks)
        .into_par_iter()
        .map(|c| {
            let start = c * PAR_FORWARD_ROWS;
            let end = (start + PAR_FORWARD_ROWS).min(rows);
            let block = Matrix::from_vec(
                end - start,
                width,
                input.data()[start * width..end * width].to_vec(),
            );
            model.net.forward(&block)
        })
        .collect();
    let out_width = blocks[0].cols();
    let mut out = Matrix::zeros(rows, out_width);
    let mut at = 0usize;
    for block in blocks {
        let n = block.rows() * out_width;
        out.data_mut()[at..at + n].copy_from_slice(block.data());
        at += n;
    }
    out
}

/// Estimate several queries in one micro-batch, sharing each column's
/// forward pass across every request's sample paths.
///
/// `rngs[j]` drives request `j` alone, and rows are visited per request in
/// ascending order within each column — so every request consumes its RNG
/// stream exactly as a sequential [`estimate_cardinality`] call would, and
/// the returned estimates are bit-identical to sequential ones (the serving
/// layer's equality guarantee). The network forward pass is row-independent,
/// so stacking requests changes throughput, not values.
///
/// Requests whose predicates fail to resolve against the model schema get
/// their own `Err` slot without affecting the rest of the batch.
///
/// Each call builds a private [`PrefixTrie`] that dedups identical prefixes
/// within the batch; to additionally reuse conditionals *across* calls,
/// keep a trie alive and use [`estimate_cardinality_batch_shared`].
pub fn estimate_cardinality_batch<R: Rng>(
    model: &FrozenModel,
    requests: &[(&Query, usize)],
    rngs: &mut [R],
) -> Vec<Result<f64, ArError>> {
    let mut trie = PrefixTrie::new();
    estimate_cardinality_batch_shared(model, requests, rngs, &mut trie)
}

/// [`estimate_cardinality_batch`] against a caller-owned [`PrefixTrie`].
///
/// The trie caches each visited prefix's conditional-probability row, so
/// repeated workloads against the same frozen model (DNF
/// inclusion–exclusion terms, a serving process handling many requests)
/// skip the forward rows of every previously-seen prefix. Conditionals are
/// a pure per-row function of the prefix, so cached reuse is bit-preserving
/// — only cost changes, never estimates. The trie must only ever be shared
/// across calls with the *same* model (serving keys tries by model
/// version).
pub fn estimate_cardinality_batch_shared<R: Rng>(
    model: &FrozenModel,
    requests: &[(&Query, usize)],
    rngs: &mut [R],
    trie: &mut PrefixTrie,
) -> Vec<Result<f64, ArError>> {
    assert_eq!(
        requests.len(),
        rngs.len(),
        "one RNG per batched request (got {} requests, {} rngs)",
        requests.len(),
        rngs.len()
    );
    let width = model.net.total_width();
    let n_cols = model.net.num_columns();

    let mut results: Vec<Option<Result<f64, ArError>>> = Vec::with_capacity(requests.len());
    let mut slots: Vec<BatchSlot> = Vec::with_capacity(requests.len());
    let mut total_rows = 0usize;
    for (request, (query, n_samples)) in requests.iter().enumerate() {
        match model.schema.query_rules(query) {
            Ok(rules) => {
                let rows = (*n_samples).max(1);
                slots.push(BatchSlot {
                    request,
                    rules,
                    start: total_rows,
                    rows,
                });
                total_rows += rows;
                results.push(None);
            }
            Err(e) => results.push(Some(Err(e))),
        }
    }

    if !slots.is_empty() {
        let obs = obs_counters();
        obs.requests.add(slots.len() as u64);
        obs.batch_rows.add(total_rows as u64);
        let mut factors = vec![1.0f64; total_rows];
        // Sampled codes per path so far — the forward input (as one-hot) and
        // the off-trie dedup key.
        let mut codes: Vec<Vec<u32>> = vec![Vec::with_capacity(n_cols); total_rows];
        // Each path's trie node: always the node of its current code prefix
        // (depth == column index), or OFF_TRIE past the node cap.
        let mut node: Vec<usize> = vec![trie.root(); total_rows];

        /// Where a live path reads column `i`'s conditionals from.
        #[derive(Clone, Copy)]
        enum Src {
            /// Path already dead (or not yet classified).
            Dead,
            /// Served from the trie node's cached row (computed by an
            /// earlier batch sharing this trie).
            Cached,
            /// Row of this column's freshly computed probability matrix.
            Fresh(usize),
        }

        for i in 0..n_cols {
            // Paths with identical code prefixes sit on the same trie node
            // and have identical one-hot inputs, hence identical
            // conditionals: the forward pass runs on distinct *uncached*
            // prefixes only. Co-batched requests share prefixes (every path
            // starts empty; similar queries stay overlapped for several
            // columns) — the micro-batching throughput win — and prefixes
            // cached by earlier batches on a shared trie skip the forward
            // entirely. Values are unchanged either way: each path reads
            // the same conditionals a per-path forward would give.
            let (src, reps, any_live) = {
                let mut src = vec![Src::Dead; total_rows];
                let mut reps: Vec<usize> = Vec::new();
                let mut uniq_node: std::collections::HashMap<usize, usize> =
                    std::collections::HashMap::new();
                let mut uniq_codes: std::collections::HashMap<&[u32], usize> =
                    std::collections::HashMap::new();
                let mut any_live = false;
                let mut cached_hits = 0u64;
                let mut dedup_hits = 0u64;
                for r in 0..total_rows {
                    if factors[r] == 0.0 {
                        continue;
                    }
                    any_live = true;
                    if trie.probs(node[r]).is_some() {
                        src[r] = Src::Cached;
                        cached_hits += 1;
                        continue;
                    }
                    let next = reps.len();
                    let idx = if node[r] != OFF_TRIE {
                        *uniq_node.entry(node[r]).or_insert_with(|| {
                            reps.push(r);
                            next
                        })
                    } else {
                        *uniq_codes.entry(codes[r].as_slice()).or_insert_with(|| {
                            reps.push(r);
                            next
                        })
                    };
                    if idx != next {
                        dedup_hits += 1;
                    }
                    src[r] = Src::Fresh(idx);
                }
                obs.dedup_hits.add(dedup_hits);
                obs.trie_hits.add(cached_hits);
                let stats = trie.stats_mut();
                stats.dedup_hits += dedup_hits;
                stats.cached_hits += cached_hits;
                (src, reps, any_live)
            };
            if !any_live {
                // Every path died on an empty range; all estimates are 0.
                break;
            }

            let probs = if reps.is_empty() {
                None
            } else {
                let mut input = Matrix::zeros(reps.len(), width);
                for (u, &r) in reps.iter().enumerate() {
                    for (j, &code) in codes[r].iter().enumerate() {
                        input.set(u, model.net.offset(j) + code as usize, 1.0);
                    }
                }
                let logits = forward_row_parallel(model, &input);
                let stats = trie.stats_mut();
                stats.forwards += 1;
                stats.forward_rows += reps.len() as u64;
                let p = model.net.conditional_probs(&logits, i);
                for (u, &r) in reps.iter().enumerate() {
                    trie.set_probs(node[r], p.row(u));
                }
                Some(p)
            };

            for slot in &slots {
                let rng = &mut rngs[slot.request];
                for r in slot.start..slot.start + slot.rows {
                    if factors[r] == 0.0 {
                        continue;
                    }
                    let p_row: &[f32] = match src[r] {
                        Src::Dead => unreachable!("live path classified above"),
                        Src::Cached => trie.probs(node[r]).expect("classified as cached"),
                        Src::Fresh(u) => probs
                            .as_ref()
                            .expect("fresh rows imply a forward ran")
                            .row(u),
                    };
                    let code = match &slot.rules[i] {
                        StepRule::Free => sample_weighted(p_row, rng).unwrap_or(0),
                        StepRule::InRange(frac) => {
                            let masked: Vec<f32> =
                                p_row.iter().zip(frac).map(|(p, f)| p * f).collect();
                            let mass: f32 = masked.iter().sum();
                            factors[r] *= mass as f64;
                            match sample_weighted(&masked, rng) {
                                Some(c) => c,
                                None => {
                                    factors[r] = 0.0;
                                    continue;
                                }
                            }
                        }
                        StepRule::WeightBySampled(w) => {
                            let code = sample_weighted(p_row, rng).unwrap_or(0);
                            factors[r] *= w[code] as f64;
                            code
                        }
                    };
                    codes[r].push(code as u32);
                    node[r] = trie.child(node[r], code as u32);
                }
            }
        }

        for slot in &slots {
            let window = &factors[slot.start..slot.start + slot.rows];
            let mean = window.iter().sum::<f64>() / slot.rows as f64;
            results[slot.request] = Some(Ok(mean * model.schema.normalizer()));
        }
    }

    results
        .into_iter()
        .map(|r| r.expect("every request resolved to a result"))
        .collect()
}

/// Estimate the cardinality of a disjunctive query via inclusion–exclusion
/// (paper §2.2): each conjunction term is estimated with progressive
/// sampling and combined with alternating signs. The result is clamped to
/// be non-negative (individual term noise can push the sum below zero).
///
/// All inclusion–exclusion terms go through one
/// [`estimate_cardinality_batch_shared`] call: the terms of a DNF differ
/// only in which predicates constrain them, so their sample paths overlap
/// heavily and the shared prefix trie collapses the overlapping forward
/// rows. Each term gets an independent RNG stream seeded from the caller's
/// RNG, so every term's estimate is exactly what a standalone call with
/// that stream would return.
pub fn estimate_dnf_cardinality(
    model: &FrozenModel,
    dnf: &sam_query::DnfQuery,
    n_samples: usize,
    rng: &mut impl Rng,
) -> Result<f64, ArError> {
    let terms = dnf.inclusion_exclusion_terms();
    if terms.is_empty() {
        return Ok(0.0);
    }
    let mut rngs: Vec<rand::rngs::StdRng> = terms
        .iter()
        .map(|_| rand::rngs::StdRng::seed_from_u64(rng.gen()))
        .collect();
    let requests: Vec<(&Query, usize)> = terms.iter().map(|(_, q)| (q, n_samples)).collect();
    let mut trie = PrefixTrie::new();
    let estimates = estimate_cardinality_batch_shared(model, &requests, &mut rngs, &mut trie);
    let mut total = 0.0f64;
    for ((sign, _), est) in terms.iter().zip(estimates) {
        total += *sign as f64 * est?;
    }
    Ok(total.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ArModel, ArModelConfig};
    use crate::model_schema::{ArSchema, EncodingOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sam_query::Query;
    use sam_storage::{paper_example, DatabaseStats};

    #[test]
    fn sample_weighted_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = [0.0f32, 0.7, 0.3];
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[sample_weighted(&w, &mut rng).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let f1 = counts[1] as f32 / 5000.0;
        assert!((f1 - 0.7).abs() < 0.03, "freq {f1}");
    }

    #[test]
    fn sample_weighted_zero_mass() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_weighted(&[0.0, 0.0], &mut rng), None);
    }

    #[test]
    fn untrained_model_estimates_unfiltered_query_as_normalizer() {
        // With no predicates on a single relation, every path factor is 1, so
        // the estimate must equal |T| regardless of weights.
        let db = paper_example::figure3_database();
        let single = sam_storage::Database::single(db.table_by_name("A").unwrap().clone());
        let stats = DatabaseStats::from_database(&single);
        let schema =
            ArSchema::build(single.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let model = ArModel::new(schema, &ArModelConfig::default()).freeze();
        let mut rng = StdRng::seed_from_u64(2);
        let est = estimate_cardinality(&model, &Query::single("A", vec![]), 32, &mut rng).unwrap();
        assert!((est - 4.0).abs() < 1e-3);
    }

    #[test]
    fn batched_estimates_are_bit_identical_to_sequential() {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let schema =
            ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let model = ArModel::new(schema, &ArModelConfig::default()).freeze();

        let queries = [
            Query::join(vec!["A".into(), "B".into()], vec![]),
            Query::join(vec!["A".into(), "B".into(), "C".into()], vec![]),
            Query::single("A", vec![]),
        ];
        let counts = [16usize, 48, 7];
        let seeds = [101u64, 7, 3];

        let sequential: Vec<f64> = queries
            .iter()
            .zip(counts)
            .zip(seeds)
            .map(|((q, n), s)| {
                let mut rng = StdRng::seed_from_u64(s);
                estimate_cardinality(&model, q, n, &mut rng).unwrap()
            })
            .collect();

        let requests: Vec<(&Query, usize)> = queries.iter().zip(counts).collect();
        let mut rngs: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
        let batched = estimate_cardinality_batch(&model, &requests, &mut rngs);

        for (seq, got) in sequential.iter().zip(&batched) {
            let got = *got.as_ref().unwrap();
            assert_eq!(*seq, got, "batched estimate diverged from sequential");
        }
    }

    #[test]
    fn batched_estimate_isolates_bad_requests() {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let schema =
            ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let model = ArModel::new(schema, &ArModelConfig::default()).freeze();

        let good = Query::single("A", vec![]);
        let bad = Query::single("no_such_table", vec![]);
        let requests = vec![(&good, 8usize), (&bad, 8usize), (&good, 8usize)];
        let mut rngs: Vec<StdRng> = (0..3).map(StdRng::seed_from_u64).collect();
        let out = estimate_cardinality_batch(&model, &requests, &mut rngs);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
        assert!(out[2].is_ok());
    }

    #[test]
    fn join_estimate_is_bounded_by_foj_size() {
        // For any join query the per-path factor is ≤ 1, so the estimate is
        // ≤ |FOJ| even untrained.
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let schema =
            ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
        let model = ArModel::new(schema, &ArModelConfig::default()).freeze();
        let mut rng = StdRng::seed_from_u64(5);
        let q = Query::join(vec!["A".into(), "B".into(), "C".into()], vec![]);
        let est = estimate_cardinality(&model, &q, 64, &mut rng).unwrap();
        assert!(est <= 8.0 + 1e-6);
        assert!(est >= 0.0);
    }
}
