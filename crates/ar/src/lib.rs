//! # sam-ar — the autoregressive model over database schemas
//!
//! Everything between the neural substrate and the SAM pipeline: per-column
//! encodings with intervalization (§4.3.2), the model schema mirroring the
//! full-outer-join virtual layout (§4.1), query → sampling-rule translation
//! with fanout scaling, Differentiable Progressive Sampling training from
//! (query, cardinality) pairs, progressive-sampling inference, and batched
//! unconditional tuple sampling (Algorithm 1's inner loop).

#![warn(missing_docs)]

pub mod batch;
pub mod checkpoint;
pub mod encoding;
pub mod error;
pub mod infer;
pub mod model;
pub mod model_schema;
pub mod persist;
pub mod sample;
pub mod train;
pub mod trie;

pub use batch::SampleBatch;
pub use checkpoint::CheckpointConfig;
pub use encoding::ColumnEncoding;
pub use error::ArError;
pub use infer::{
    estimate_cardinality, estimate_cardinality_batch, estimate_cardinality_batch_shared,
    estimate_cardinality_batch_with, estimate_dnf_cardinality,
};
pub use model::{ArModel, ArModelConfig, BoundNet, FrozenModel, FrozenNet, Net, TransformerDims};
pub use model_schema::{ArColumn, ArColumnKind, ArSchema, EncodingOptions, StepRule};
pub use persist::{load_model, load_model_file, save_model, save_model_file};
pub use sample::{
    sample_batch, sample_batch_with, sample_model_rows, sample_model_rows_range, ModelRow,
};
pub use train::{train, train_observed, TrainConfig, TrainControl, TrainProgress, TrainReport};
pub use trie::{PrefixTrie, TrieStats};
