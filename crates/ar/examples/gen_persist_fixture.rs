//! Regenerates the persistence-format compatibility fixture under
//! `tests/fixtures/`. Run manually when a *new* format version is
//! introduced; committed fixtures for old versions must never be
//! regenerated (they lock the backward-compatibility contract).
//!
//! ```sh
//! cargo run -p sam-ar --example gen_persist_fixture > crates/ar/tests/fixtures/model_vN.json
//! ```

use sam_ar::{save_model, ArModel, ArModelConfig, ArSchema, EncodingOptions};
use sam_storage::{paper_example, DatabaseStats};

fn main() {
    let db = paper_example::figure3_database();
    let stats = DatabaseStats::from_database(&db);
    let schema = ArSchema::build(db.schema(), &stats, &[], &EncodingOptions::default()).unwrap();
    let model = ArModel::new(
        schema,
        &ArModelConfig {
            hidden: vec![16],
            seed: 4,
            residual: false,
            transformer: None,
        },
    )
    .freeze();
    println!("{}", save_model(&model, db.schema()));
}
