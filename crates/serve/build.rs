//! Embed the git revision into the binary so `/debug/buildinfo` and the
//! `sam_build_info` metric can report exactly which build is serving.
//! Builds from a tarball (no `.git`) fall back to `"unknown"`.

use std::process::Command;

fn main() {
    let sha = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=SAM_GIT_SHA={sha}");
    // Re-run when HEAD moves so the embedded sha tracks the checkout.
    for p in [".git/HEAD", "../../.git/HEAD"] {
        if std::path::Path::new(p).exists() {
            println!("cargo:rerun-if-changed={p}");
        }
    }
}
