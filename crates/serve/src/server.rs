//! The HTTP server: accept loop, routing, and graceful shutdown.
//!
//! Built on `std::net::TcpListener` with one thread per connection (requests
//! are short; the expensive work happens in the batcher / job threads).
//! Endpoints:
//!
//! | Route | Effect |
//! |---|---|
//! | `GET /healthz` | liveness + model count |
//! | `GET /models` | registered models and versions |
//! | `POST /models` | load / hot-swap a persisted model from disk |
//! | `POST /estimate` | micro-batched cardinality estimate |
//! | `POST /generate` | start an async generation job (202) |
//! | `GET /jobs/{id}` | poll job state / stage / progress |
//! | `POST /jobs/{id}/cancel` | request cooperative cancellation |
//! | `GET /metrics` | counters + latency percentiles |
//!
//! Shutdown order matters: stop accepting, join connection handlers (they may
//! still be waiting on estimate replies), drain + stop the batcher, then join
//! all generation jobs (drain semantics — accepted jobs reach a terminal
//! state before [`Server::shutdown`] returns).

use crate::batcher::{Batcher, EstimateJob};
use crate::cache::{EstimateCache, EstimateKey};
use crate::error::ServeError;
use crate::http::{self, Request};
use crate::jobs::JobRegistry;
use crate::metrics::ServeMetrics;
use crate::registry::ModelRegistry;
use sam_core::{GenerationConfig, JoinKeyStrategy};
use sam_nn::BackendKind;
use sam_query::parse_query;
use serde_json::{json, Value};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bound on progressive-sampling paths per estimate request.
const MAX_SAMPLES: usize = 1_000_000;
/// Upper bound on FOJ samples per generation job.
const MAX_FOJ_SAMPLES: usize = 5_000_000;
/// Grace period past a request's deadline before the handler gives up
/// waiting for the worker's own 504 (avoids racing the worker).
const DEADLINE_GRACE: Duration = Duration::from_millis(100);

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Inference worker threads.
    pub workers: usize,
    /// Bounded estimate-queue capacity (full queue → 429).
    pub queue_capacity: usize,
    /// Max requests fused into one forward-pass batch.
    pub max_batch: usize,
    /// Progressive-sampling paths when the request omits `samples`.
    pub default_samples: usize,
    /// Per-request deadline when the request omits `timeout_ms`.
    pub default_timeout_ms: u64,
    /// LRU estimate-cache entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Force every model loaded over HTTP onto this inference backend;
    /// `None` honours each checkpoint's recorded backend.
    pub backend: Option<BackendKind>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            max_batch: 16,
            default_samples: 200,
            default_timeout_ms: 10_000,
            cache_capacity: 1024,
            backend: None,
        }
    }
}

struct ServerState {
    config: ServeConfig,
    registry: ModelRegistry,
    jobs: JobRegistry,
    metrics: Arc<ServeMetrics>,
    batcher: Batcher,
    /// Completed estimates keyed on (model, version, canonical query,
    /// samples, seed); consulted before the batcher.
    cache: EstimateCache,
    shutting_down: AtomicBool,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Monotonic per-request trace id, attached to span output (and the
    /// estimate response body) for request ↔ trace correlation.
    next_trace_id: AtomicU64,
}

/// A running server. Dropping it shuts it down gracefully.
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl Server {
    /// Bind and start serving in background threads.
    pub fn start(config: ServeConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError::Internal(format!("bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Internal(format!("local_addr: {e}")))?;
        let metrics = Arc::new(ServeMetrics::default());
        let batcher = Batcher::start(
            config.workers,
            config.queue_capacity,
            config.max_batch,
            Arc::clone(&metrics),
        );
        let cache = EstimateCache::new(config.cache_capacity);
        let registry = ModelRegistry::with_backend_override(config.backend);
        let state = Arc::new(ServerState {
            config,
            registry,
            jobs: JobRegistry::new(),
            metrics,
            batcher,
            cache,
            shutting_down: AtomicBool::new(false),
            conn_threads: Mutex::new(Vec::new()),
            next_trace_id: AtomicU64::new(0),
        });
        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::Builder::new()
            .name("sam-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_state))
            .map_err(|e| ServeError::Internal(format!("spawn accept loop: {e}")))?;
        Ok(Server {
            state,
            addr,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The model registry, for programmatic loading (CLI, tests).
    pub fn registry(&self) -> &ModelRegistry {
        &self.state.registry
    }

    /// The generation-job registry.
    pub fn jobs(&self) -> &JobRegistry {
        &self.state.jobs
    }

    /// Server metrics.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.state.metrics
    }

    /// Graceful shutdown: stop accepting connections, finish in-flight
    /// requests, drain the estimate queue, and join every generation job.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        self.state.shutting_down.store(true, Ordering::SeqCst);
        // Wake the blocking accept so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self
            .accept_thread
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            let _ = handle.join();
        }
        let conns: Vec<_> = self
            .state
            .conn_threads
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for handle in conns {
            let _ = handle.join();
        }
        self.state.batcher.shutdown();
        self.state.jobs.drain();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    for conn in listener.incoming() {
        if state.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let conn_state = Arc::clone(state);
        let spawned = std::thread::Builder::new()
            .name("sam-serve-conn".to_string())
            .spawn(move || handle_connection(&stream, &conn_state));
        if let Ok(handle) = spawned {
            let mut threads = state.conn_threads.lock().unwrap_or_else(|e| e.into_inner());
            // Reap finished handlers so the vec stays bounded on long runs.
            threads.retain(|h| !h.is_finished());
            threads.push(handle);
        }
    }
}

/// What a route handler produced: a JSON document or a preformatted text
/// body (the Prometheus exposition).
enum Reply {
    Json(u16, Value),
    Text(u16, String),
}

fn handle_connection(stream: &TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    state.metrics.http_requests.inc();
    let trace_id = state.next_trace_id.fetch_add(1, Ordering::Relaxed) + 1;
    sam_obs::set_trace_id(Some(trace_id));
    let mut reader = std::io::BufReader::new(stream);
    let reply = match http::read_request(&mut reader) {
        Ok(request) => {
            let _span = sam_obs::span!("request", method = request.method, path = request.path);
            route(&request, state)
        }
        Err(e) => Reply::Json(e.status(), json!({"error": e.to_string()})),
    };
    let mut writer = stream;
    match reply {
        Reply::Json(status, body) => {
            let text = serde_json::to_string(&body).unwrap_or_else(|_| "{}".to_string());
            let _ = http::write_json_response(&mut writer, status, &text);
        }
        Reply::Text(status, text) => {
            let _ = http::write_text_response(&mut writer, status, &text);
        }
    }
}

fn route(request: &Request, state: &Arc<ServerState>) -> Reply {
    // The request target may carry a query string (`/metrics?format=...`);
    // http.rs deliberately leaves the split to the router.
    let (path, query) = match request.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (request.path.as_str(), ""),
    };
    if request.method == "GET" && path == "/metrics" {
        return if query_param(query, "format") == Some("prometheus") {
            Reply::Text(200, state.metrics.render_prometheus())
        } else {
            Reply::Json(200, state.metrics.to_json())
        };
    }
    let result = match (request.method.as_str(), path) {
        ("GET", "/healthz") => Ok((
            200,
            json!({
                "status": "ok",
                "models": state.registry.len(),
                "shutting_down": state.shutting_down.load(Ordering::SeqCst),
            }),
        )),
        ("GET", "/models") => Ok((200, list_models(state))),
        ("POST", "/models") => load_model_route(state, &request.body),
        ("POST", "/estimate") => estimate_route(state, &request.body),
        ("POST", "/generate") => generate_route(state, &request.body),
        (method, path) if path.starts_with("/jobs/") => job_route(state, method, path),
        (_, path) => Err(ServeError::NotFound(format!("no route for {path}"))),
    };
    match result {
        Ok((status, body)) => Reply::Json(status, body),
        Err(e) => Reply::Json(e.status(), json!({"error": e.to_string()})),
    }
}

/// Value of `key` in a raw query string (`a=1&b=2`), if present.
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

fn list_models(state: &ServerState) -> Value {
    let models: Vec<Value> = state
        .registry
        .list()
        .iter()
        .map(|entry| {
            json!({
                "name": entry.name.clone(),
                "version": entry.version,
                "tables": entry.table_names(),
            })
        })
        .collect();
    json!({"models": Value::Array(models)})
}

fn load_model_route(state: &ServerState, body: &str) -> Result<(u16, Value), ServeError> {
    let doc = parse_body(body)?;
    let name = str_field(&doc, "name")?;
    let path = str_field(&doc, "path")?;
    let version = state.registry.load_file(name, path)?;
    Ok((200, json!({"name": name, "version": version})))
}

fn estimate_route(state: &ServerState, body: &str) -> Result<(u16, Value), ServeError> {
    let started = Instant::now();
    let result = run_estimate(state, body, started);
    match &result {
        Ok(_) => {
            state.metrics.estimates_ok.inc();
            state.metrics.estimate_latency.record(started.elapsed());
        }
        Err(ServeError::Overloaded) => state.metrics.rejected_overload.inc(),
        Err(ServeError::DeadlineExceeded) => state.metrics.deadline_exceeded.inc(),
        Err(_) => state.metrics.estimate_errors.inc(),
    }
    result
}

fn run_estimate(
    state: &ServerState,
    body: &str,
    started: Instant,
) -> Result<(u16, Value), ServeError> {
    let doc = parse_body(body)?;
    let model_name = str_field(&doc, "model")?;
    let sql = str_field(&doc, "sql")?;
    let samples = opt_u64(&doc, "samples")?
        .unwrap_or(state.config.default_samples as u64)
        .clamp(1, MAX_SAMPLES as u64) as usize;
    let seed = opt_u64(&doc, "seed")?.unwrap_or(0);
    let timeout_ms = opt_u64(&doc, "timeout_ms")?
        .unwrap_or(state.config.default_timeout_ms)
        .max(1);

    let entry = state
        .registry
        .get(model_name)
        .ok_or_else(|| ServeError::NotFound(format!("model '{model_name}'")))?;
    let query =
        parse_query(sql).map_err(|e| ServeError::BadRequest(format!("invalid SQL: {e}")))?;

    // Estimation is deterministic in this key, so a cached answer is the
    // answer; the version component makes hot swaps self-invalidating.
    let cache_key = EstimateKey {
        model: entry.name.clone(),
        version: entry.version,
        query: query.canonical_string(),
        samples,
        seed,
    };
    if let Some(estimate) = state.cache.get(&cache_key) {
        state.metrics.cache_hits.inc();
        let trace_id = sam_obs::current_trace_id().map_or(Value::Null, |id| json!(id));
        return Ok((
            200,
            json!({
                "model": entry.name.clone(),
                "model_version": entry.version,
                "estimate": estimate,
                "samples": samples,
                "batch_size": 0,
                "cached": true,
                "latency_ms": started.elapsed().as_secs_f64() * 1e3,
                "trace_id": trace_id,
            }),
        ));
    }
    state.metrics.cache_misses.inc();

    let deadline = started + Duration::from_millis(timeout_ms);
    let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
    state.batcher.submit(EstimateJob {
        entry: Arc::clone(&entry),
        query,
        samples,
        seed,
        deadline,
        reply: reply_tx,
    })?;
    let wait = deadline.saturating_duration_since(Instant::now()) + DEADLINE_GRACE;
    let reply = match reply_rx.recv_timeout(wait) {
        Ok(reply) => reply,
        Err(RecvTimeoutError::Timeout) => return Err(ServeError::DeadlineExceeded),
        Err(RecvTimeoutError::Disconnected) => {
            return Err(ServeError::Internal(
                "inference worker dropped request".into(),
            ))
        }
    };
    let estimate = reply.result?;
    state.cache.insert(cache_key, estimate);
    let trace_id = sam_obs::current_trace_id().map_or(Value::Null, |id| json!(id));
    Ok((
        200,
        json!({
            "model": entry.name.clone(),
            "model_version": entry.version,
            "estimate": estimate,
            "samples": samples,
            "batch_size": reply.batch_size,
            "cached": false,
            "latency_ms": started.elapsed().as_secs_f64() * 1e3,
            "trace_id": trace_id,
        }),
    ))
}

fn generate_route(state: &ServerState, body: &str) -> Result<(u16, Value), ServeError> {
    if state.shutting_down.load(Ordering::SeqCst) {
        return Err(ServeError::ShuttingDown);
    }
    let doc = parse_body(body)?;
    let model_name = str_field(&doc, "model")?;
    let foj_samples = opt_u64(&doc, "foj_samples")?
        .unwrap_or(2_000)
        .clamp(1, MAX_FOJ_SAMPLES as u64) as usize;
    let batch = opt_u64(&doc, "batch")?.unwrap_or(256).max(1) as usize;
    let seed = opt_u64(&doc, "seed")?.unwrap_or(0);
    let entry = state
        .registry
        .get(model_name)
        .ok_or_else(|| ServeError::NotFound(format!("model '{model_name}'")))?;
    let config = GenerationConfig {
        foj_samples,
        batch,
        seed,
        strategy: JoinKeyStrategy::GroupAndMerge,
    };
    let id = state.jobs.spawn(entry, config, Arc::clone(&state.metrics));
    Ok((
        202,
        json!({"job_id": id, "status_url": format!("/jobs/{id}")}),
    ))
}

fn job_route(state: &ServerState, method: &str, path: &str) -> Result<(u16, Value), ServeError> {
    let rest = &path["/jobs/".len()..];
    match method {
        "GET" => {
            let id = parse_job_id(rest)?;
            let record = state
                .jobs
                .get(id)
                .ok_or_else(|| ServeError::NotFound(format!("job {id}")))?;
            Ok((200, record.status_json()))
        }
        "POST" => {
            let id_part = rest
                .strip_suffix("/cancel")
                .ok_or_else(|| ServeError::NotFound(format!("no route for {path}")))?;
            let id = parse_job_id(id_part)?;
            if state.jobs.cancel(id) {
                Ok((200, json!({"job_id": id, "cancelled": true})))
            } else {
                Err(ServeError::NotFound(format!("job {id}")))
            }
        }
        _ => Err(ServeError::NotFound(format!("no route for {path}"))),
    }
}

fn parse_job_id(text: &str) -> Result<u64, ServeError> {
    text.parse::<u64>()
        .map_err(|_| ServeError::BadRequest(format!("invalid job id '{text}'")))
}

fn parse_body(body: &str) -> Result<Value, ServeError> {
    if body.trim().is_empty() {
        return Err(ServeError::BadRequest("missing JSON body".to_string()));
    }
    serde_json::parse_value(body).map_err(|e| ServeError::BadRequest(format!("invalid JSON: {e}")))
}

fn str_field<'a>(doc: &'a Value, key: &str) -> Result<&'a str, ServeError> {
    doc.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| ServeError::BadRequest(format!("missing string field '{key}'")))
}

fn opt_u64(doc: &Value, key: &str) -> Result<Option<u64>, ServeError> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) if v.is_null() => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            ServeError::BadRequest(format!("field '{key}' must be a non-negative integer"))
        }),
    }
}
