//! The HTTP server: accept loop, keep-alive connection handling, routing,
//! journal replay, and graceful shutdown.
//!
//! Built on `std::net::TcpListener` with one thread per connection. Each
//! connection serves **many requests** (HTTP/1.1 keep-alive): the handler
//! loops read → route → respond until the client sends
//! `Connection: close`, the idle timeout passes between requests, the
//! per-connection request cap is reached, or the server starts draining
//! (in-flight requests always finish; their response carries
//! `Connection: close`). Endpoints:
//!
//! | Route | Effect |
//! |---|---|
//! | `GET /healthz` | liveness + model count |
//! | `GET /models` | registered models and versions |
//! | `POST /models` | load / hot-swap a persisted model from disk |
//! | `POST /estimate` | micro-batched cardinality estimate |
//! | `POST /generate` | start an async generation job (202) |
//! | `POST /train` | start a training job from a streamed workload body (202) |
//! | `POST /models/{name}/rollback` | restore the previously promoted version |
//! | `GET /jobs/{id}` | poll job state / stage / progress (generation and training) |
//! | `GET /jobs/{id}/export` | stream a finished relation as chunked CSV/JSONL, gzip/deflate negotiated |
//! | `POST /jobs/{id}/cancel` | request cooperative cancellation |
//! | `GET /metrics` | counters + latency percentiles |
//! | `GET /quality` | per-model-version shadow-scored Q-Error drift stats |
//! | `GET /debug/buildinfo` | version, git sha, backend, uptime |
//! | `GET /debug/flight?last=N` | recent request events from the flight recorder |
//! | `GET /debug/slow` | slow-query log |
//! | `GET`/`PUT /debug/loglevel` | inspect / change the log level live |
//!
//! With [`ServeConfig::journal_dir`] set, accepted jobs are journaled to
//! disk and [`Server::replay_journal`] (call it after loading models)
//! restores them across restarts — completed jobs re-serve status and
//! export from persisted CSVs, interrupted ones re-run from their recorded
//! RNG seed. See [`crate::journal`].
//!
//! Shutdown order matters: stop accepting, join connection handlers (they
//! may still be waiting on estimate replies), drain + stop the batcher,
//! then join all generation jobs (drain semantics — accepted jobs reach a
//! terminal state before [`Server::shutdown`] returns).

use crate::batcher::{Batcher, EstimateJob};
use crate::cache::{EstimateCache, EstimateKey};
use crate::compress::{Coding, Encoder};
use crate::error::ServeError;
use crate::http::{self, ChunkedWriter, Request};
use crate::jobs::{JobRegistry, JobState};
use crate::journal::{Journal, ReplayState, ReplayedTrain, RollbackRecord, TrainReplayState};
use crate::metrics::ServeMetrics;
use crate::quality::{QualityConfig, QualityMonitor, QualityTask};
use crate::registry::{ModelEntry, ModelRegistry};
use crate::sync::Lock;
use crate::training::{self, TrainJob, TrainRegistry, TrainSpec, TrainState};
use sam_core::{GenerationConfig, JoinKeyStrategy};
use sam_nn::BackendKind;
use sam_obs::{CacheOutcome, Endpoint, FlightRecorder, SlowEntry, SlowLog};
use sam_query::parse_query;
use sam_storage::csv::write_csv;
use sam_storage::jsonl::write_jsonl;
use sam_storage::{csv::read_csv, Database, DatabaseStats, Table};
use serde_json::{json, Value};
use std::io::BufRead;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bound on progressive-sampling paths per estimate request.
const MAX_SAMPLES: usize = 1_000_000;
/// Upper bound on FOJ samples per generation job.
const MAX_FOJ_SAMPLES: usize = 5_000_000;
/// Grace period past a request's deadline before the handler gives up
/// waiting for the worker's own 504 (avoids racing the worker).
const DEADLINE_GRACE: Duration = Duration::from_millis(100);
/// Poll tick while waiting for the next request on an idle keep-alive
/// connection; bounds how long shutdown waits on idle connections.
const IDLE_POLL_TICK: Duration = Duration::from_millis(100);
/// Read timeout once a request has started arriving.
const REQUEST_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Inference worker threads.
    pub workers: usize,
    /// Bounded estimate-queue capacity (full queue → 429).
    pub queue_capacity: usize,
    /// Max requests fused into one forward-pass batch.
    pub max_batch: usize,
    /// Progressive-sampling paths when the request omits `samples`.
    pub default_samples: usize,
    /// Per-request deadline when the request omits `timeout_ms`.
    pub default_timeout_ms: u64,
    /// LRU estimate-cache entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Force every model loaded over HTTP onto this inference backend;
    /// `None` honours each checkpoint's recorded backend.
    pub backend: Option<BackendKind>,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout_ms: u64,
    /// Requests served per connection before the server closes it (the
    /// response to the last one carries `Connection: close`). Bounds the
    /// lifetime of any single connection for fair load balancing.
    pub max_conn_requests: usize,
    /// Directory for the on-disk job journal and persisted results;
    /// `None` disables journaling (jobs die with the process).
    pub journal_dir: Option<PathBuf>,
    /// Compact the journal during [`Server::replay_journal`] when the log
    /// exceeds this many bytes; `None` disables auto-compaction.
    pub journal_compact_bytes: Option<u64>,
    /// Fraction of answered `/estimate` requests shadow-scored by the
    /// quality drift monitor (`--quality-sample`; 0 disables it).
    pub quality_sample: f64,
    /// Sliding-window size per model version for quality statistics.
    pub quality_window: usize,
    /// Q-Error above which a shadow score raises an alert and is appended
    /// to the audit file (`--quality-alert-qerror`).
    pub quality_alert_qerror: f64,
    /// JSONL audit file for threshold-crossing estimates (consumable by
    /// `workgen mine` as seeds); `None` keeps alerts in metrics only.
    pub quality_audit: Option<PathBuf>,
    /// Flight-recorder ring size in events (`--flight-capacity`).
    pub flight_capacity: usize,
    /// Requests at or above this latency enter the slow-query log.
    pub slow_query_ms: u64,
    /// Absolute promotion gate for training jobs: a candidate is promoted
    /// only if its p95 holdout Q-Error is at or below this **and** does not
    /// regress the incumbent's (`--promote-max-qerror`; a `POST /train`
    /// request can tighten or loosen it with `max_qerror=`).
    pub promote_max_qerror: f64,
    /// First job id minus one: ids are minted from `job_id_base + 1`
    /// upward. A sharded router gives each worker slot a disjoint base so
    /// a job id alone identifies the shard that owns it (`--job-id-base`).
    pub job_id_base: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            max_batch: 16,
            default_samples: 200,
            default_timeout_ms: 10_000,
            cache_capacity: 1024,
            backend: None,
            idle_timeout_ms: 30_000,
            max_conn_requests: 1_000,
            journal_dir: None,
            journal_compact_bytes: Some(4 * 1024 * 1024),
            quality_sample: 0.01,
            quality_window: 256,
            quality_alert_qerror: 100.0,
            quality_audit: None,
            flight_capacity: 512,
            slow_query_ms: 250,
            promote_max_qerror: 1000.0,
            job_id_base: 0,
        }
    }
}

/// What [`Server::replay_journal`] restored.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Completed jobs whose results were reloaded from persisted CSVs.
    pub completed: usize,
    /// Interrupted jobs re-spawned from their recorded config/seed.
    pub resumed: usize,
    /// Jobs restored in a failed/cancelled terminal state, plus jobs that
    /// could not be restored (model gone, results missing).
    pub failed: usize,
}

struct ServerState {
    config: ServeConfig,
    registry: Arc<ModelRegistry>,
    jobs: JobRegistry,
    /// Background training jobs (`POST /train`); shares the job-id space
    /// with `jobs` via [`JobRegistry::allocate_id`].
    trains: TrainRegistry,
    metrics: Arc<ServeMetrics>,
    batcher: Batcher,
    /// Completed estimates keyed on (model, version, canonical query,
    /// samples, seed); consulted before the batcher.
    cache: EstimateCache,
    shutting_down: AtomicBool,
    /// Quiesced by a router rebalance (`POST /admin/drain`): new
    /// generate/train work answers 503 until `POST /admin/resume`, while
    /// reads keep working.
    draining: AtomicBool,
    conn_threads: Lock<Vec<JoinHandle<()>>>,
    /// Monotonic per-request trace id, attached to span output (and the
    /// estimate response body) for request ↔ trace correlation.
    next_trace_id: AtomicU64,
    /// Always-on ring of recent request events (`GET /debug/flight`).
    flight: Arc<FlightRecorder>,
    /// Requests above [`ServeConfig::slow_query_ms`] (`GET /debug/slow`).
    slow: SlowLog,
    /// Shadow-scoring quality drift monitor (`GET /quality`).
    quality: QualityMonitor,
}

/// A running server. Dropping it shuts it down gracefully.
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    accept_thread: Lock<Option<JoinHandle<()>>>,
}

impl Server {
    /// Bind and start serving in background threads.
    ///
    /// # Errors
    ///
    /// [`ServeError::Internal`] if the address cannot be bound or the
    /// journal directory (when configured) cannot be created.
    pub fn start(config: ServeConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError::Internal(format!("bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Internal(format!("local_addr: {e}")))?;
        let metrics = Arc::new(ServeMetrics::default());
        let journal = match &config.journal_dir {
            Some(dir) => Some(Arc::new(Journal::open_with(
                dir,
                metrics.journal_counters(),
                sam_fault::real_fs(),
            )?)),
            None => None,
        };
        let flight = Arc::new(FlightRecorder::new(config.flight_capacity));
        let batcher = Batcher::start(
            config.workers,
            config.queue_capacity,
            config.max_batch,
            Arc::clone(&metrics),
            Some(Arc::clone(&flight)),
        );
        let cache = EstimateCache::new(config.cache_capacity);
        let registry = Arc::new(ModelRegistry::with_backend_override(config.backend));
        let backend_label = config
            .backend
            .map_or_else(|| "per-model".to_string(), |b| b.to_string());
        metrics.set_build_info(
            env!("CARGO_PKG_VERSION"),
            env!("SAM_GIT_SHA"),
            &backend_label,
        );
        let quality = QualityMonitor::start(
            QualityConfig {
                sample: config.quality_sample,
                window: config.quality_window,
                alert_qerror: config.quality_alert_qerror,
                audit_path: config.quality_audit.clone(),
            },
            metrics.quality_counters(),
        );
        let slow = SlowLog::new(64);
        let jobs = JobRegistry::with_journal(journal);
        // Shard mode: mint every job id above this worker's range base so a
        // router can route /jobs/{id} by the id alone.
        jobs.reserve_through(config.job_id_base);
        let state = Arc::new(ServerState {
            config,
            registry,
            jobs,
            trains: TrainRegistry::new(),
            metrics,
            batcher,
            cache,
            shutting_down: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            conn_threads: Lock::new(Vec::new()),
            next_trace_id: AtomicU64::new(0),
            flight,
            slow,
            quality,
        });
        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::Builder::new()
            .name("sam-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_state))
            .map_err(|e| ServeError::Internal(format!("spawn accept loop: {e}")))?;
        Ok(Server {
            state,
            addr,
            accept_thread: Lock::new(Some(accept_thread)),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The model registry, for programmatic loading (CLI, tests).
    pub fn registry(&self) -> &ModelRegistry {
        &self.state.registry
    }

    /// The generation-job registry.
    pub fn jobs(&self) -> &JobRegistry {
        &self.state.jobs
    }

    /// The training-job registry.
    pub fn trains(&self) -> &TrainRegistry {
        &self.state.trains
    }

    /// Server metrics.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.state.metrics
    }

    /// Replay the on-disk journal: restore every journaled job to its last
    /// known state. Call **after** registering/loading models — replay
    /// binds each job to the model registered under its recorded name.
    ///
    /// Completed jobs reload their persisted CSVs (status and export are
    /// served as if the job had just finished); interrupted jobs re-run
    /// from their recorded config, whose seed makes the rerun bit-for-bit
    /// identical; failed/cancelled jobs are restored in that terminal
    /// state. Jobs whose model is no longer registered (or whose persisted
    /// results are unreadable) are restored as failed with an explanatory
    /// error rather than dropped.
    ///
    /// Training jobs and rollbacks replay the same way, **before** the
    /// generation jobs and in journal order: recorded promotions re-load
    /// the persisted candidate weights and hot-swap them back in, recorded
    /// rollbacks re-apply, and an interrupted training job re-spawns from
    /// its persisted workload split — auto-resuming from its last on-disk
    /// checkpoint, so the resumed run is bit-for-bit what the interrupted
    /// one would have produced. (Versions are re-minted during replay; they
    /// match the recorded ones whenever the models loaded before replay
    /// match the pre-restart loads.)
    ///
    /// No-op returning the default summary when journaling is off.
    ///
    /// # Errors
    ///
    /// [`ServeError::Internal`] if the journal log exists but cannot be
    /// read at all; per-job restore problems are folded into
    /// [`ReplaySummary::failed`] instead of aborting the replay.
    pub fn replay_journal(&self) -> Result<ReplaySummary, ServeError> {
        let Some(journal) = self.state.jobs.journal().cloned() else {
            return Ok(ReplaySummary::default());
        };
        let mut span = sam_obs::span!("journal_replay");
        let mut summary = ReplaySummary::default();
        let replay = journal.replay_full()?;

        // Registry history first: promotions and rollbacks re-apply in id
        // order (ids are minted monotonically, so id order is event order),
        // leaving the registry's current version and rollback history as
        // the journal last recorded them. Generation jobs then bind to the
        // restored registry state.
        enum RegistryEvent<'a> {
            Train(&'a ReplayedTrain),
            Roll(&'a RollbackRecord),
        }
        let mut events: Vec<(u64, RegistryEvent)> = replay
            .trains
            .iter()
            .map(|t| (t.id, RegistryEvent::Train(t)))
            .chain(
                replay
                    .rollbacks
                    .iter()
                    .map(|r| (r.id, RegistryEvent::Roll(r))),
            )
            .collect();
        events.sort_by_key(|(id, _)| *id);
        for (id, event) in events {
            self.state.jobs.reserve_through(id);
            match event {
                RegistryEvent::Roll(r) => {
                    // The model (or its history) may be gone after a
                    // restart with different loads; the rollback is then a
                    // no-op rather than a replay abort.
                    let _ = self.state.registry.rollback(&r.model);
                }
                RegistryEvent::Train(t) => self.replay_train(&journal, t, &mut summary),
            }
        }

        for job in replay.jobs {
            self.state.metrics.jobs_replayed.inc();
            let entry = self.state.registry.get(&job.model);
            match (job.state, entry) {
                (ReplayState::Completed(job_summary), Some(entry)) => {
                    match load_persisted_results(&journal, job.id, &entry.trained) {
                        Ok(db) => {
                            self.state.jobs.insert_terminal(
                                job.id,
                                &job.model,
                                entry.version,
                                JobState::Done {
                                    summary: job_summary,
                                    db: Arc::new(db),
                                },
                            );
                            summary.completed += 1;
                        }
                        Err(e) => {
                            self.state.jobs.insert_terminal(
                                job.id,
                                &job.model,
                                job.version,
                                JobState::Failed(format!(
                                    "completed before restart, but results unavailable: {e}"
                                )),
                            );
                            summary.failed += 1;
                        }
                    }
                }
                (ReplayState::Interrupted, Some(entry)) => {
                    self.state.jobs.respawn(
                        job.id,
                        entry,
                        job.config,
                        Arc::clone(&self.state.metrics),
                    );
                    summary.resumed += 1;
                }
                (ReplayState::Failed(msg), _) => {
                    self.state.jobs.insert_terminal(
                        job.id,
                        &job.model,
                        job.version,
                        JobState::Failed(msg),
                    );
                    summary.failed += 1;
                }
                (ReplayState::Cancelled, _) => {
                    self.state.jobs.insert_terminal(
                        job.id,
                        &job.model,
                        job.version,
                        JobState::Cancelled,
                    );
                    summary.failed += 1;
                }
                (_, None) => {
                    self.state.jobs.insert_terminal(
                        job.id,
                        &job.model,
                        job.version,
                        JobState::Failed(format!(
                            "model '{}' not registered after restart",
                            job.model
                        )),
                    );
                    summary.failed += 1;
                }
            }
        }
        span.record("completed", summary.completed);
        span.record("resumed", summary.resumed);
        span.record("failed", summary.failed);

        // Auto-compaction: replay already paid for the full fold, so this
        // is the natural moment to shrink an oversized log to a snapshot.
        if let Some(limit) = self.state.config.journal_compact_bytes {
            if journal.log_len() > limit {
                journal.compact()?;
            }
        }
        Ok(summary)
    }

    /// Restore one journaled training job: re-apply a promotion from its
    /// persisted candidate, re-insert terminal verdicts, or re-spawn an
    /// interrupted run from its persisted workload split (checkpoint
    /// auto-resume makes the rerun bit-for-bit).
    fn replay_train(&self, journal: &Arc<Journal>, t: &ReplayedTrain, summary: &mut ReplaySummary) {
        self.state.metrics.jobs_replayed.inc();
        let terminal = |state: TrainState, version: u64| {
            self.state
                .trains
                .insert_terminal(t.id, &t.model, version, state);
        };
        match &t.state {
            TrainReplayState::Promoted { summary: eval, .. } => {
                let path = journal.job_dir(t.id).join("model.json");
                match self.state.registry.promote_from_file(&t.model, &path) {
                    Ok(version) => {
                        terminal(
                            TrainState::Promoted {
                                version,
                                summary: eval.clone(),
                            },
                            version,
                        );
                        summary.completed += 1;
                    }
                    Err(e) => {
                        terminal(
                            TrainState::Failed(format!(
                                "promoted before restart, but candidate unavailable: {e}"
                            )),
                            0,
                        );
                        summary.failed += 1;
                    }
                }
            }
            TrainReplayState::Rejected(eval) => {
                terminal(
                    TrainState::Rejected {
                        summary: eval.clone(),
                    },
                    0,
                );
                summary.completed += 1;
            }
            TrainReplayState::Failed(msg) => {
                terminal(TrainState::Failed(msg.clone()), 0);
                summary.failed += 1;
            }
            TrainReplayState::Cancelled => {
                terminal(TrainState::Cancelled, 0);
                summary.failed += 1;
            }
            TrainReplayState::Interrupted => match self.respawn_train(journal, t) {
                Ok(()) => summary.resumed += 1,
                Err(e) => {
                    terminal(
                        TrainState::Failed(format!(
                            "interrupted before restart and not resumable: {e}"
                        )),
                        0,
                    );
                    summary.failed += 1;
                }
            },
        }
    }

    /// Re-spawn an interrupted training job under its original id, from the
    /// spec recorded at acceptance and the workload split persisted next to
    /// the journal.
    fn respawn_train(&self, journal: &Arc<Journal>, t: &ReplayedTrain) -> Result<(), ServeError> {
        let spec = TrainSpec::from_value(&t.spec)?;
        let incumbent = self.state.registry.get(&spec.model).ok_or_else(|| {
            ServeError::NotFound(format!(
                "model '{}' not registered after restart",
                spec.model
            ))
        })?;
        let split = training::load_persisted_workload(journal, t.id)?;
        let stats = resolve_stats(&spec, &incumbent)?;
        journal.resumed(t.id);
        self.state.trains.spawn(TrainJob {
            id: t.id,
            spec,
            incumbent,
            split,
            stats,
            registry: Arc::clone(&self.state.registry),
            metrics: Arc::clone(&self.state.metrics),
            journal: Some(Arc::clone(journal)),
            promote_max_qerror: self.state.config.promote_max_qerror,
        });
        Ok(())
    }

    /// Graceful shutdown: stop accepting connections, finish in-flight
    /// requests, drain the estimate queue, and join every generation and
    /// training job (for a long train, `POST /jobs/{id}/cancel` first — a
    /// SIGKILL instead leaves an `Interrupted` journal state that resumes
    /// from its checkpoint on the next replay). Idempotent; also runs on
    /// drop.
    pub fn shutdown(&self) {
        self.state.shutting_down.store(true, Ordering::SeqCst);
        // Wake the blocking accept so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.lock().take() {
            let _ = handle.join();
        }
        let conns: Vec<_> = self.state.conn_threads.lock().drain(..).collect();
        for handle in conns {
            let _ = handle.join();
        }
        self.state.batcher.shutdown();
        self.state.jobs.drain();
        self.state.trains.drain();
        self.state.quality.shutdown();
    }

    /// The flight recorder (programmatic access for tests and tools; HTTP
    /// clients use `GET /debug/flight`).
    pub fn flight(&self) -> &FlightRecorder {
        &self.state.flight
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Load a completed job's persisted CSVs back into a [`Database`], using
/// the model's target schema for typing.
fn load_persisted_results(
    journal: &Journal,
    id: u64,
    trained: &sam_core::TrainedSam,
) -> Result<Database, ServeError> {
    let dir = journal.job_dir(id);
    let schema = trained.db_schema();
    let mut tables: Vec<Table> = Vec::new();
    for table_schema in schema.tables() {
        let path = dir.join(format!("{}.csv", table_schema.name));
        let file = std::fs::File::open(&path)
            .map_err(|e| ServeError::Internal(format!("open {path:?}: {e}")))?;
        let table = read_csv(table_schema.clone(), std::io::BufReader::new(file))
            .map_err(|e| ServeError::Internal(format!("parse {path:?}: {e}")))?;
        tables.push(table);
    }
    // No integrity re-check: these are bytes we persisted ourselves, and
    // replay must stay cheap even for large results.
    Database::new(schema.clone(), tables, false)
        .map_err(|e| ServeError::Internal(format!("rebuild database for job {id}: {e}")))
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    for conn in listener.incoming() {
        if state.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let conn_state = Arc::clone(state);
        let spawned = std::thread::Builder::new()
            .name("sam-serve-conn".to_string())
            .spawn(move || handle_connection(&stream, &conn_state));
        if let Ok(handle) = spawned {
            let mut threads = state.conn_threads.lock();
            // Reap finished handlers so the vec stays bounded on long runs.
            threads.retain(|h| !h.is_finished());
            threads.push(handle);
        }
    }
}

/// Serialization of a streamed relation export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExportFormat {
    Csv,
    Jsonl,
}

impl ExportFormat {
    fn content_type(self) -> &'static str {
        match self {
            ExportFormat::Csv => "text/csv",
            ExportFormat::Jsonl => "application/jsonl",
        }
    }
}

/// Byte window of a ranged export: resume streaming at `start` of a
/// `total`-byte identity serialization.
struct ExportRange {
    start: u64,
    total: u64,
}

/// What a route handler produced: a JSON document, a preformatted text
/// body (the Prometheus exposition), or a streamed relation export.
enum Reply {
    Json(u16, Value),
    Text(u16, String),
    /// Stream one table of a job's result database as a chunked body in
    /// the given format, optionally compressed with the negotiated content
    /// coding. With `range` set, only the byte suffix from `range.start`
    /// goes out (206, identity-coded).
    Export {
        db: Arc<Database>,
        table_index: usize,
        format: ExportFormat,
        coding: Option<Coding>,
        range: Option<ExportRange>,
    },
    /// `Range` start at or past the end of the representation: 416 with
    /// the representation length in `Content-Range: bytes */total`.
    RangeNotSatisfiable {
        total: u64,
    },
}

/// Per-request telemetry the route handlers fill in and the connection
/// handler flushes into the flight recorder (and, for slow estimates, the
/// slow-query log) after the response is written.
struct Telemetry {
    endpoint: Endpoint,
    model_version: u64,
    batch_size: u64,
    cache: CacheOutcome,
    /// `(model, sql)` for estimates, so slow-log entries say what ran.
    slow_detail: Option<(String, String)>,
}

impl Telemetry {
    fn new() -> Telemetry {
        Telemetry {
            endpoint: Endpoint::Other,
            model_version: 0,
            batch_size: 0,
            cache: CacheOutcome::NotApplicable,
            slow_detail: None,
        }
    }
}

/// Why the connection loop stopped waiting for request bytes.
enum IdleOutcome {
    /// First byte of the next request is buffered.
    RequestReady,
    /// Client closed, idle deadline passed, server is draining, or the
    /// transport failed — close the connection.
    Close,
}

/// Wait (in short poll ticks, so shutdown is observed promptly) until the
/// next request starts arriving or the connection should close.
fn wait_for_request(
    stream: &TcpStream,
    reader: &mut std::io::BufReader<&TcpStream>,
    state: &ServerState,
    idle_timeout: Duration,
) -> IdleOutcome {
    let idle_deadline = Instant::now() + idle_timeout;
    let _ = stream.set_read_timeout(Some(IDLE_POLL_TICK));
    loop {
        if state.shutting_down.load(Ordering::SeqCst) {
            return IdleOutcome::Close;
        }
        match reader.fill_buf() {
            Ok([]) => return IdleOutcome::Close, // clean EOF
            Ok(_) => return IdleOutcome::RequestReady,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= idle_deadline {
                    return IdleOutcome::Close;
                }
            }
            Err(_) => return IdleOutcome::Close,
        }
    }
}

fn handle_connection(stream: &TcpStream, state: &Arc<ServerState>) {
    state.metrics.http_connections.inc();
    // Responses are written in several small pieces (status line, headers,
    // chunks); without TCP_NODELAY, Nagle holds each piece for the client's
    // delayed ACK (~40ms) on long-lived keep-alive connections.
    let _ = stream.set_nodelay(true);
    let idle_timeout = Duration::from_millis(state.config.idle_timeout_ms.max(1));
    let max_requests = state.config.max_conn_requests.max(1);
    let mut reader = std::io::BufReader::new(stream);
    let mut served = 0usize;
    while let IdleOutcome::RequestReady = wait_for_request(stream, &mut reader, state, idle_timeout)
    {
        let _ = stream.set_read_timeout(Some(REQUEST_READ_TIMEOUT));
        state.metrics.http_requests.inc();
        let trace_id = state.next_trace_id.fetch_add(1, Ordering::Relaxed) + 1;
        sam_obs::set_trace_id(Some(trace_id));
        served += 1;
        let started = Instant::now();
        let mut telemetry = Telemetry::new();
        let (reply, keep_alive) = match http::read_request(&mut reader) {
            Ok(Some(request)) => {
                let _span = sam_obs::span!("request", method = request.method, path = request.path);
                // The server may close even when the client asked to keep
                // the connection: request cap reached or drain started.
                let keep = request.keep_alive
                    && served < max_requests
                    && !state.shutting_down.load(Ordering::SeqCst);
                (route(&request, state, &mut telemetry), keep)
            }
            Ok(None) => break, // clean EOF mid-negotiation
            // Framing can't be trusted after a parse error: answer and close.
            Err(e) => (
                Reply::Json(e.status(), json!({"error": e.to_string()})),
                false,
            ),
        };
        let status = match &reply {
            Reply::Json(status, _) | Reply::Text(status, _) => *status,
            Reply::Export { range: None, .. } => 200,
            Reply::Export { range: Some(_), .. } => 206,
            Reply::RangeNotSatisfiable { .. } => 416,
        };
        let mut writer = stream;
        let io = match reply {
            Reply::Json(status, body) => {
                let text = serde_json::to_string(&body).unwrap_or_else(|_| "{}".to_string());
                http::write_json_response(&mut writer, status, &text, keep_alive)
            }
            Reply::Text(status, text) => {
                http::write_text_response(&mut writer, status, &text, keep_alive)
            }
            Reply::Export {
                db,
                table_index,
                format,
                coding,
                range,
            } => stream_export(
                &mut writer,
                &db,
                table_index,
                format,
                coding,
                range,
                keep_alive,
                state,
            ),
            Reply::RangeNotSatisfiable { total } => {
                let body = serde_json::to_string(&json!({
                    "error": format!("range start beyond representation end ({total} bytes)"),
                }))
                .unwrap_or_else(|_| "{}".to_string());
                http::write_json_response_with_headers(
                    &mut writer,
                    416,
                    &body,
                    &[("Content-Range", &format!("bytes */{total}"))],
                    keep_alive,
                )
            }
        };
        // Flight events include response-write time: that's the latency the
        // client saw, which is what a post-mortem cares about.
        let latency = started.elapsed();
        state.flight.record(
            trace_id,
            telemetry.endpoint,
            telemetry.model_version,
            telemetry.batch_size,
            telemetry.cache,
            latency.as_nanos() as u64,
            status,
        );
        if telemetry.endpoint == Endpoint::Estimate
            && latency >= Duration::from_millis(state.config.slow_query_ms.max(1))
        {
            let (model, detail) = telemetry.slow_detail.unwrap_or_default();
            state.slow.push(SlowEntry {
                ts_ms: sam_obs::flight::unix_ms(),
                trace_id,
                latency_ms: latency.as_secs_f64() * 1e3,
                model,
                detail,
            });
        }
        if io.is_err() || !keep_alive {
            break;
        }
    }
}

/// Stream one relation as a chunked body in the requested format, through
/// the negotiated content coding. All validation happened in the router;
/// from here on the status line is committed, so mid-stream errors can only
/// abort the connection (clients detect the missing terminal chunk as
/// truncation). Compression composes with the bounded-chunk writer: rows →
/// [`Encoder`] (64 KiB compression blocks) → [`ChunkedWriter`] (64 KiB
/// transfer chunks) → socket, so memory stays bounded either way.
#[allow(clippy::too_many_arguments)]
fn stream_export(
    writer: &mut &TcpStream,
    db: &Database,
    table_index: usize,
    format: ExportFormat,
    coding: Option<Coding>,
    range: Option<ExportRange>,
    keep_alive: bool,
    state: &ServerState,
) -> std::io::Result<()> {
    let table = &db.tables()[table_index];
    let mut span = sam_obs::span!("export", table = table.name(), rows = table.num_rows());
    let content_range = range
        .as_ref()
        .map(|r| format!("bytes {}-{}/{}", r.start, r.total - 1, r.total));
    http::write_chunked_headers(
        writer,
        if range.is_some() { 206 } else { 200 },
        format.content_type(),
        coding.map(Coding::token),
        content_range.as_deref(),
        keep_alive,
    )?;
    let mut chunked = ChunkedWriter::new(writer);
    match (coding, range) {
        (Some(coding), _) => {
            // The router never negotiates a coding for ranged requests.
            let mut encoder = Encoder::new(chunked, coding);
            write_rows(table, format, &mut encoder)?;
            chunked = encoder.finish()?;
        }
        (None, Some(r)) => {
            // Resume: re-serialize deterministically, dropping the bytes
            // the client already holds. Row serialization is a pure
            // function of the stored table, so the suffix lines up exactly
            // with the interrupted stream's.
            let mut skip = SkipWriter {
                inner: &mut chunked,
                remaining: r.start,
            };
            write_rows(table, format, &mut skip)?;
        }
        (None, None) => {
            write_rows(table, format, &mut chunked)?;
        }
    }
    // Count before the terminal chunk goes out: a client that observes the
    // end of the stream must also observe the bumped counter on its next
    // `/metrics` scrape, even over a different connection.
    state.metrics.exports_ok.inc();
    chunked.finish()?;
    span.record("ok", true);
    Ok(())
}

fn write_rows<W: std::io::Write>(
    table: &Table,
    format: ExportFormat,
    out: &mut W,
) -> std::io::Result<()> {
    match format {
        ExportFormat::Csv => write_csv(table, out),
        ExportFormat::Jsonl => write_jsonl(table, out),
    }
}

/// Byte length of `table`'s identity serialization in `format` — the
/// counting pre-pass a ranged export needs to validate the offset and fill
/// `Content-Range`, without buffering the representation.
fn serialized_len(table: &Table, format: ExportFormat) -> std::io::Result<u64> {
    let mut counter = CountingWriter(0);
    write_rows(table, format, &mut counter)?;
    Ok(counter.0)
}

/// [`Write`] sink that only counts.
struct CountingWriter(u64);

impl std::io::Write for CountingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0 += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// [`Write`] adapter that discards the first `remaining` bytes and forwards
/// the rest — how a ranged export resumes mid-representation while the rows
/// are re-serialized from the start.
struct SkipWriter<'a, W: std::io::Write> {
    inner: &'a mut W,
    remaining: u64,
}

impl<W: std::io::Write> std::io::Write for SkipWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let skip = self.remaining.min(buf.len() as u64) as usize;
        self.remaining -= skip as u64;
        if skip < buf.len() {
            self.inner.write_all(&buf[skip..])?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Classify a request path for the flight recorder. Coarse by design: the
/// recorder stores a `u64` per event, not a string.
fn classify_endpoint(path: &str) -> Endpoint {
    match path {
        "/estimate" => Endpoint::Estimate,
        "/generate" => Endpoint::Generate,
        "/metrics" => Endpoint::Metrics,
        "/healthz" => Endpoint::Health,
        "/models" => Endpoint::Models,
        "/quality" => Endpoint::Quality,
        p if p.ends_with("/export") && p.starts_with("/jobs/") => Endpoint::Export,
        p if p.starts_with("/jobs/") => Endpoint::Jobs,
        p if p.starts_with("/debug/") => Endpoint::Debug,
        _ => Endpoint::Other,
    }
}

fn route(request: &Request, state: &Arc<ServerState>, telemetry: &mut Telemetry) -> Reply {
    // The request target may carry a query string (`/metrics?format=...`);
    // http.rs deliberately leaves the split to the router.
    let (path, query) = match request.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (request.path.as_str(), ""),
    };
    telemetry.endpoint = classify_endpoint(path);
    if request.method == "GET" && path == "/metrics" {
        return if query_param(query, "format") == Some("prometheus") {
            Reply::Text(200, state.metrics.render_prometheus())
        } else {
            Reply::Json(200, state.metrics.to_json())
        };
    }
    if request.method == "GET" && path.starts_with("/jobs/") && path.ends_with("/export") {
        return match export_route(state, request, path, query) {
            Ok(reply) => reply,
            Err(e) => Reply::Json(e.status(), json!({"error": e.to_string()})),
        };
    }
    let result = match (request.method.as_str(), path) {
        ("GET", "/healthz") => Ok((
            200,
            json!({
                "status": "ok",
                "models": state.registry.len(),
                "shutting_down": state.shutting_down.load(Ordering::SeqCst),
                "draining": state.draining.load(Ordering::SeqCst),
            }),
        )),
        ("GET", "/models") => Ok((200, list_models(state))),
        ("POST", "/models") => load_model_route(state, &request.body),
        ("POST", "/estimate") => estimate_route(state, &request.body, telemetry),
        ("POST", "/generate") => generate_route(state, &request.body),
        ("POST", "/train") => train_route(state, &request.body, query),
        ("POST", p) if p.starts_with("/models/") && p.ends_with("/rollback") => {
            rollback_route(state, p)
        }
        ("GET", "/quality") => Ok((200, state.quality.report())),
        ("GET", "/debug/buildinfo") => Ok((200, buildinfo_route(state))),
        ("GET", "/debug/flight") => Ok((200, flight_route(state, query))),
        ("GET", "/debug/slow") => Ok((200, slow_route(state))),
        ("GET", "/debug/loglevel") => {
            Ok((200, json!({"level": log_level_name(sam_obs::log_level())})))
        }
        ("PUT", "/debug/loglevel") => loglevel_route(&request.body),
        ("POST", "/admin/drain") => drain_route(state),
        ("POST", "/admin/resume") => {
            state.draining.store(false, Ordering::SeqCst);
            Ok((200, json!({"draining": false})))
        }
        (method, path) if path.starts_with("/jobs/") => job_route(state, method, path),
        (_, path) => Err(ServeError::NotFound(format!("no route for {path}"))),
    };
    match result {
        Ok((status, body)) => Reply::Json(status, body),
        Err(e) => Reply::Json(e.status(), json!({"error": e.to_string()})),
    }
}

/// `GET /debug/buildinfo` — which build is serving, on what backend, for
/// how long, and how the flight recorder is doing.
fn buildinfo_route(state: &ServerState) -> Value {
    let backend = state
        .config
        .backend
        .map_or_else(|| "per-model".to_string(), |b| b.to_string());
    json!({
        "version": env!("CARGO_PKG_VERSION"),
        "git_sha": env!("SAM_GIT_SHA"),
        "backend": backend,
        "uptime_seconds": state.metrics.started.elapsed().as_secs_f64(),
        "models": state.registry.len(),
        "flight": {
            "capacity": state.flight.capacity(),
            "total": state.flight.total(),
            "dropped": state.flight.dropped(),
        },
    })
}

/// `GET /debug/flight?last=N` — the last N request events (default 50),
/// oldest first.
fn flight_route(state: &ServerState, query: &str) -> Value {
    let last = query_param(query, "last")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(50);
    let events: Vec<Value> = state
        .flight
        .recent(last)
        .iter()
        .map(|e| {
            json!({
                "seq": e.seq,
                "ts_ms": e.ts_ms,
                "trace_id": e.trace_id,
                "endpoint": e.endpoint.as_str(),
                "model_version": e.model_version,
                "batch_size": e.batch_size,
                "cache": e.cache.as_str(),
                "latency_ms": e.latency_ns as f64 / 1e6,
                "status": e.status,
            })
        })
        .collect();
    json!({
        "capacity": state.flight.capacity(),
        "total": state.flight.total(),
        "dropped": state.flight.dropped(),
        "events": Value::Array(events),
    })
}

/// `GET /debug/slow` — requests that exceeded the slow-query threshold.
fn slow_route(state: &ServerState) -> Value {
    let entries: Vec<Value> = state
        .slow
        .entries()
        .iter()
        .map(|e| {
            json!({
                "ts_ms": e.ts_ms,
                "trace_id": e.trace_id,
                "latency_ms": e.latency_ms,
                "model": e.model.clone(),
                "detail": e.detail.clone(),
            })
        })
        .collect();
    json!({
        "threshold_ms": state.config.slow_query_ms,
        "entries": Value::Array(entries),
    })
}

fn log_level_name(level: sam_obs::LogLevel) -> &'static str {
    match level {
        sam_obs::LogLevel::Silent => "silent",
        sam_obs::LogLevel::Info => "info",
        sam_obs::LogLevel::Debug => "debug",
    }
}

/// `PUT /debug/loglevel` with `{"level": "silent"|"info"|"debug"}` —
/// change the process log level without a restart.
fn loglevel_route(body: &str) -> Result<(u16, Value), ServeError> {
    let doc = parse_body(body)?;
    let level: sam_obs::LogLevel = str_field(&doc, "level")?
        .parse()
        .map_err(ServeError::BadRequest)?;
    sam_obs::set_log_level(level);
    Ok((200, json!({"level": log_level_name(level)})))
}

/// `GET /jobs/{id}/export?relation=R[&format=csv|jsonl]` — resolve the
/// job's result database, the requested relation and format, and the
/// content coding the client accepts (gzip preferred over deflate; identity
/// when the client sent no `Accept-Encoding`); the connection handler does
/// the actual streaming.
///
/// A `Range: bytes=N-` header resumes an interrupted download of a
/// completed job: the response is `206 Partial Content` with
/// `Content-Range: bytes N-(total-1)/total`, carrying exactly the byte
/// suffix of the identity serialization (row output is deterministic, so
/// the suffix continues the interrupted stream bit-for-bit). Ranges
/// address identity bytes, so ranged responses ignore `Accept-Encoding`.
/// `N` at or past the end is `416` with `Content-Range: bytes */total`.
fn export_route(
    state: &ServerState,
    request: &Request,
    path: &str,
    query: &str,
) -> Result<Reply, ServeError> {
    let id_part = path["/jobs/".len()..]
        .strip_suffix("/export")
        .expect("router matched suffix");
    let id = parse_job_id(id_part)?;
    let record = state
        .jobs
        .get(id)
        .ok_or_else(|| ServeError::NotFound(format!("job {id}")))?;
    let format = match query_param(query, "format") {
        None | Some("csv") => ExportFormat::Csv,
        Some("jsonl") => ExportFormat::Jsonl,
        Some(other) => {
            return Err(ServeError::BadRequest(format!(
                "unsupported export format '{other}' (csv or jsonl)"
            )))
        }
    };
    let db = record.result_database().ok_or_else(|| {
        ServeError::Conflict(format!(
            "job {id} is not done (state: {})",
            record.state_label()
        ))
    })?;
    let relation = query_param(query, "relation")
        .ok_or_else(|| ServeError::BadRequest("missing query parameter 'relation'".to_string()))?;
    let table_index = db
        .tables()
        .iter()
        .position(|t| t.name() == relation)
        .ok_or_else(|| ServeError::NotFound(format!("relation '{relation}' in job {id}")))?;
    let range = match request.range_start {
        Some(start) => {
            let total = serialized_len(&db.tables()[table_index], format).map_err(|e| {
                ServeError::Internal(format!("cannot size export of '{relation}': {e}"))
            })?;
            if start >= total {
                return Ok(Reply::RangeNotSatisfiable { total });
            }
            Some(ExportRange { start, total })
        }
        None => None,
    };
    // Byte ranges address the identity representation; a per-request
    // compression stream has no stable offsets, so ranged responses skip
    // coding negotiation entirely.
    let coding = if range.is_some() {
        None
    } else if request.accepts_encoding("gzip") {
        Some(Coding::Gzip)
    } else if request.accepts_encoding("deflate") {
        Some(Coding::Deflate)
    } else {
        None
    };
    Ok(Reply::Export {
        db,
        table_index,
        format,
        coding,
        range,
    })
}

/// Value of `key` in a raw query string (`a=1&b=2`), if present.
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

fn list_models(state: &ServerState) -> Value {
    let models: Vec<Value> = state
        .registry
        .list()
        .iter()
        .map(|entry| {
            json!({
                "name": entry.name.clone(),
                "version": entry.version,
                "tables": entry.table_names(),
            })
        })
        .collect();
    json!({"models": Value::Array(models)})
}

fn load_model_route(state: &ServerState, body: &str) -> Result<(u16, Value), ServeError> {
    let doc = parse_body(body)?;
    let name = str_field(&doc, "name")?;
    let path = str_field(&doc, "path")?;
    // Optional directory of `{table}.csv` reference relations: with them
    // attached, the quality monitor scores this model's sampled estimates
    // against exact cardinalities instead of backend parity.
    let data = doc.get("data").and_then(Value::as_str);
    let version = state.registry.load_file_with_data(name, path, data)?;
    Ok((200, json!({"name": name, "version": version})))
}

fn estimate_route(
    state: &ServerState,
    body: &str,
    telemetry: &mut Telemetry,
) -> Result<(u16, Value), ServeError> {
    let started = Instant::now();
    let result = run_estimate(state, body, started, telemetry);
    match &result {
        Ok(_) => {
            state.metrics.estimates_ok.inc();
            let latency = started.elapsed();
            state.metrics.estimate_latency.record(latency);
            // Exemplar: link this request's latency bucket to its trace id,
            // so a spike in the histogram points straight at a flight-recorder
            // event to pull up.
            if let Some(trace_id) = sam_obs::current_trace_id() {
                state
                    .metrics
                    .estimate_exemplars
                    .observe(latency.as_nanos() as u64, trace_id);
            }
        }
        Err(ServeError::Overloaded) => state.metrics.rejected_overload.inc(),
        Err(ServeError::DeadlineExceeded) => state.metrics.deadline_exceeded.inc(),
        Err(_) => state.metrics.estimate_errors.inc(),
    }
    result
}

fn run_estimate(
    state: &ServerState,
    body: &str,
    started: Instant,
    telemetry: &mut Telemetry,
) -> Result<(u16, Value), ServeError> {
    let doc = parse_body(body)?;
    let model_name = str_field(&doc, "model")?;
    let sql = str_field(&doc, "sql")?;
    let samples = opt_u64(&doc, "samples")?
        .unwrap_or(state.config.default_samples as u64)
        .clamp(1, MAX_SAMPLES as u64) as usize;
    let seed = opt_u64(&doc, "seed")?.unwrap_or(0);
    let timeout_ms = opt_u64(&doc, "timeout_ms")?
        .unwrap_or(state.config.default_timeout_ms)
        .max(1);

    let entry = state
        .registry
        .get(model_name)
        .ok_or_else(|| ServeError::NotFound(format!("model '{model_name}'")))?;
    telemetry.model_version = entry.version;
    telemetry.slow_detail = Some((entry.name.clone(), sql.to_string()));
    let query =
        parse_query(sql).map_err(|e| ServeError::BadRequest(format!("invalid SQL: {e}")))?;

    // Estimation is deterministic in this key, so a cached answer is the
    // answer; the version component makes hot swaps self-invalidating.
    let cache_key = EstimateKey {
        model: entry.name.clone(),
        version: entry.version,
        query: query.canonical_string(),
        samples,
        seed,
    };
    if let Some(estimate) = state.cache.get(&cache_key) {
        state.metrics.cache_hits.inc();
        telemetry.cache = CacheOutcome::Hit;
        let trace_id = sam_obs::current_trace_id().map_or(Value::Null, |id| json!(id));
        return Ok((
            200,
            json!({
                "model": entry.name.clone(),
                "model_version": entry.version,
                "estimate": estimate,
                "samples": samples,
                "batch_size": 0,
                "cached": true,
                "latency_ms": started.elapsed().as_secs_f64() * 1e3,
                "trace_id": trace_id,
            }),
        ));
    }
    state.metrics.cache_misses.inc();
    telemetry.cache = CacheOutcome::Miss;

    // The quality monitor needs the parsed query after the job consumes it;
    // clone only when this request was actually picked for shadow scoring.
    let shadow_query = state.quality.should_sample().then(|| query.clone());

    let deadline = started + Duration::from_millis(timeout_ms);
    let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
    state.batcher.submit(EstimateJob {
        entry: Arc::clone(&entry),
        query,
        samples,
        seed,
        deadline,
        reply: reply_tx,
    })?;
    let wait = deadline.saturating_duration_since(Instant::now()) + DEADLINE_GRACE;
    let reply = match reply_rx.recv_timeout(wait) {
        Ok(reply) => reply,
        Err(RecvTimeoutError::Timeout) => return Err(ServeError::DeadlineExceeded),
        Err(RecvTimeoutError::Disconnected) => {
            return Err(ServeError::Internal(
                "inference worker dropped request".into(),
            ))
        }
    };
    let estimate = reply.result?;
    state.cache.insert(cache_key, estimate);
    telemetry.batch_size = reply.batch_size as u64;
    let trace_id_num = sam_obs::current_trace_id();
    if let Some(shadow) = shadow_query {
        state.quality.submit(QualityTask {
            entry: Arc::clone(&entry),
            query: shadow,
            estimate,
            samples,
            seed,
            trace_id: trace_id_num.unwrap_or(0),
        });
    }
    let trace_id = trace_id_num.map_or(Value::Null, |id| json!(id));
    Ok((
        200,
        json!({
            "model": entry.name.clone(),
            "model_version": entry.version,
            "estimate": estimate,
            "samples": samples,
            "batch_size": reply.batch_size,
            "cached": false,
            "latency_ms": started.elapsed().as_secs_f64() * 1e3,
            "trace_id": trace_id,
        }),
    ))
}

fn generate_route(state: &ServerState, body: &str) -> Result<(u16, Value), ServeError> {
    if state.shutting_down.load(Ordering::SeqCst) {
        return Err(ServeError::ShuttingDown);
    }
    if state.draining.load(Ordering::SeqCst) {
        return Err(ServeError::Draining);
    }
    let doc = parse_body(body)?;
    let model_name = str_field(&doc, "model")?;
    let foj_samples = opt_u64(&doc, "foj_samples")?
        .unwrap_or(2_000)
        .clamp(1, MAX_FOJ_SAMPLES as u64) as usize;
    let batch = opt_u64(&doc, "batch")?.unwrap_or(256).max(1) as usize;
    let seed = opt_u64(&doc, "seed")?.unwrap_or(0);
    let entry = state
        .registry
        .get(model_name)
        .ok_or_else(|| ServeError::NotFound(format!("model '{model_name}'")))?;
    let config = GenerationConfig {
        foj_samples,
        batch,
        seed,
        strategy: JoinKeyStrategy::GroupAndMerge,
    };
    let id = state.jobs.spawn(entry, config, Arc::clone(&state.metrics));
    Ok((
        202,
        json!({"job_id": id, "status_url": format!("/jobs/{id}")}),
    ))
}

fn job_route(state: &ServerState, method: &str, path: &str) -> Result<(u16, Value), ServeError> {
    let rest = &path["/jobs/".len()..];
    match method {
        "GET" => {
            let id = parse_job_id(rest)?;
            if let Some(record) = state.jobs.get(id) {
                return Ok((200, record.status_json()));
            }
            let record = state
                .trains
                .get(id)
                .ok_or_else(|| ServeError::NotFound(format!("job {id}")))?;
            Ok((200, record.status_json()))
        }
        "POST" => {
            let id_part = rest
                .strip_suffix("/cancel")
                .ok_or_else(|| ServeError::NotFound(format!("no route for {path}")))?;
            let id = parse_job_id(id_part)?;
            if state.jobs.cancel(id) || state.trains.cancel(id) {
                Ok((200, json!({"job_id": id, "cancelled": true})))
            } else {
                Err(ServeError::NotFound(format!("job {id}")))
            }
        }
        _ => Err(ServeError::NotFound(format!("no route for {path}"))),
    }
}

/// `POST /admin/drain` — quiesce this worker for a router rebalance: stop
/// accepting generate/train work (503 + `Retry-After` until
/// `POST /admin/resume`), join every in-flight job, and checkpoint the
/// journal so a new owner of this shard's store resumes from a compact,
/// fully-committed log. Estimates and reads keep working throughout.
/// Idempotent; blocks until in-flight work lands.
fn drain_route(state: &ServerState) -> Result<(u16, Value), ServeError> {
    state.draining.store(true, Ordering::SeqCst);
    state.jobs.drain();
    state.trains.drain();
    let mut compacted = 0;
    if let Some(journal) = state.jobs.journal() {
        compacted = journal.compact()?;
    }
    Ok((
        200,
        json!({
            "draining": true,
            "journal_events_compacted": compacted,
        }),
    ))
}

/// `POST /train?model=M&...` — accept a streamed labelled-workload body
/// (the interchange format; gzip/deflate request coding handled upstream in
/// [`http`]), split off the holdout slice, and start a training job. `202`
/// with the job id; progress and verdict at `GET /jobs/{id}`.
fn train_route(
    state: &Arc<ServerState>,
    body: &str,
    query: &str,
) -> Result<(u16, Value), ServeError> {
    if state.shutting_down.load(Ordering::SeqCst) {
        return Err(ServeError::ShuttingDown);
    }
    if state.draining.load(Ordering::SeqCst) {
        return Err(ServeError::Draining);
    }
    let spec = TrainSpec::from_query(query)?;
    let incumbent = state.registry.get(&spec.model).ok_or_else(|| {
        ServeError::NotFound(format!(
            "model '{}' (register it via POST /models before retraining)",
            spec.model
        ))
    })?;
    let split = training::split_workload(body, spec.holdout, spec.seed)?;
    let stats = resolve_stats(&spec, &incumbent)?;
    let id = state.jobs.allocate_id();
    if let Some(journal) = state.jobs.journal() {
        // Persist-then-commit: the workload split lands on disk before the
        // accepted event, so an accepted record is always resumable.
        training::persist_workload(journal, id, &split)?;
        journal.train_accepted(id, &spec.model, &spec.to_value());
    }
    state.trains.spawn(TrainJob {
        id,
        spec,
        incumbent,
        split,
        stats,
        registry: Arc::clone(&state.registry),
        metrics: Arc::clone(&state.metrics),
        journal: state.jobs.journal().cloned(),
        promote_max_qerror: state.config.promote_max_qerror,
    });
    Ok((
        202,
        json!({"job_id": id, "status_url": format!("/jobs/{id}")}),
    ))
}

/// Statistics source for retraining: an explicit `data=<dir>` of reference
/// CSVs wins; otherwise the incumbent's attached reference database.
fn resolve_stats(spec: &TrainSpec, incumbent: &ModelEntry) -> Result<DatabaseStats, ServeError> {
    if let Some(dir) = &spec.data {
        let db =
            crate::registry::load_reference_database(incumbent.trained.db_schema(), dir.as_ref())?;
        return Ok(DatabaseStats::from_database(&db));
    }
    if let Some(db) = &incumbent.reference {
        return Ok(DatabaseStats::from_database(db));
    }
    Err(ServeError::BadRequest(format!(
        "no statistics source for retraining '{}': pass data=<dir> or register the model with \
         reference data",
        spec.model
    )))
}

/// `POST /models/{name}/rollback` — restore the most recently superseded
/// version under a new version number (see
/// [`crate::registry::ModelRegistry::rollback`]); journaled so the restore
/// replays across restarts.
fn rollback_route(state: &ServerState, path: &str) -> Result<(u16, Value), ServeError> {
    let name = path["/models/".len()..]
        .strip_suffix("/rollback")
        .expect("router matched suffix");
    if name.is_empty() {
        return Err(ServeError::BadRequest("missing model name".to_string()));
    }
    let (version, restored_from) = state.registry.rollback(name)?;
    if let Some(journal) = state.jobs.journal() {
        let id = state.jobs.allocate_id();
        journal.rollback(id, name, restored_from, version);
    }
    state.metrics.rollbacks.inc();
    Ok((
        200,
        json!({"model": name, "version": version, "restored_from": restored_from}),
    ))
}

fn parse_job_id(text: &str) -> Result<u64, ServeError> {
    text.parse::<u64>()
        .map_err(|_| ServeError::BadRequest(format!("invalid job id '{text}'")))
}

fn parse_body(body: &str) -> Result<Value, ServeError> {
    if body.trim().is_empty() {
        return Err(ServeError::BadRequest("missing JSON body".to_string()));
    }
    serde_json::parse_value(body).map_err(|e| ServeError::BadRequest(format!("invalid JSON: {e}")))
}

fn str_field<'a>(doc: &'a Value, key: &str) -> Result<&'a str, ServeError> {
    doc.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| ServeError::BadRequest(format!("missing string field '{key}'")))
}

fn opt_u64(doc: &Value, key: &str) -> Result<Option<u64>, ServeError> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) if v.is_null() => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            ServeError::BadRequest(format!("field '{key}' must be a non-negative integer"))
        }),
    }
}
