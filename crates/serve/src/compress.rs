//! Streaming DEFLATE compression for export bodies (RFC 1951), with gzip
//! (RFC 1952) and zlib (RFC 1950) framings — zero external dependencies.
//!
//! The encoder emits *fixed-Huffman* blocks over a greedy LZ77 matcher
//! (hash-chained 3-byte prefixes, 258-byte max match). Input accumulates in
//! a bounded [`BLOCK_BYTES`] buffer; each full buffer is compressed and
//! flushed as one block, so memory stays constant no matter how large the
//! streamed body is — the same bounded-memory contract as
//! [`crate::http::ChunkedWriter`], which these encoders are designed to
//! wrap. CSV/JSONL exports are highly repetitive, so fixed-Huffman + LZ77
//! typically shrinks them 3–6×.
//!
//! [`inflate`] decodes the full RFC 1951 block repertoire — stored,
//! fixed-Huffman, and dynamic-Huffman — so compressed *request* bodies
//! from any standards-conforming tool (`gzip`, zlib, browsers) decode,
//! and [`gunzip`] skips the optional RFC 1952 header fields (FNAME,
//! FEXTRA, FCOMMENT, FHCRC) real gzip tools emit. Real gzip tools decode
//! our output in turn because the encoder only emits spec-compliant
//! blocks.

use std::io::Write;

/// Input buffered per DEFLATE block (also the LZ77 match window, since the
/// matcher never looks across a block boundary).
pub const BLOCK_BYTES: usize = 64 << 10;

/// Longest match DEFLATE can encode.
const MAX_MATCH: usize = 258;
/// Shortest match worth encoding.
const MIN_MATCH: usize = 3;
/// Hash-chain probes per position (compression effort knob).
const MAX_CHAIN: usize = 48;
/// Farthest back a match may refer (DEFLATE window size). Blocks are
/// 64 KiB, so the matcher must cut chains that reach past this.
const MAX_DIST: usize = 32 << 10;
/// 3-byte prefix hash table size (power of two).
const HASH_SIZE: usize = 1 << 15;

/// `(extra_bits, base_length)` for length codes 257..=285.
const LENGTH_TABLE: [(u32, u16); 29] = [
    (0, 3),
    (0, 4),
    (0, 5),
    (0, 6),
    (0, 7),
    (0, 8),
    (0, 9),
    (0, 10),
    (1, 11),
    (1, 13),
    (1, 15),
    (1, 17),
    (2, 19),
    (2, 23),
    (2, 27),
    (2, 31),
    (3, 35),
    (3, 43),
    (3, 51),
    (3, 59),
    (4, 67),
    (4, 83),
    (4, 99),
    (4, 115),
    (5, 131),
    (5, 163),
    (5, 195),
    (5, 227),
    (0, 258),
];

/// `(extra_bits, base_distance)` for distance codes 0..=29.
const DIST_TABLE: [(u32, u16); 30] = [
    (0, 1),
    (0, 2),
    (0, 3),
    (0, 4),
    (1, 5),
    (1, 7),
    (2, 9),
    (2, 13),
    (3, 17),
    (3, 25),
    (4, 33),
    (4, 49),
    (5, 65),
    (5, 97),
    (6, 129),
    (6, 193),
    (7, 257),
    (7, 385),
    (8, 513),
    (8, 769),
    (9, 1025),
    (9, 1537),
    (10, 2049),
    (10, 3073),
    (11, 4097),
    (11, 6145),
    (12, 8193),
    (12, 12289),
    (13, 16385),
    (13, 24577),
];

// ------------------------------------------------------------ checksums

/// Incremental IEEE CRC-32 (the gzip trailer checksum). Byte-compatible
/// with [`sam_fault::crc32`], but usable over a stream.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Fold `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.state;
        for &byte in data {
            c ^= byte as u32;
            for _ in 0..8 {
                c = (c >> 1) ^ (0xEDB8_8320 & 0u32.wrapping_sub(c & 1));
            }
        }
        self.state = c;
    }

    /// The checksum of everything folded in so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// Incremental Adler-32 (the zlib trailer checksum).
#[derive(Debug, Clone)]
pub struct Adler32 {
    a: u32,
    b: u32,
}

impl Default for Adler32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Adler32 {
    /// Fresh checksum.
    pub fn new() -> Self {
        Adler32 { a: 1, b: 0 }
    }

    /// Fold `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        const MOD: u32 = 65_521;
        // 5552 is the largest n with n*(n+1)/2*255 + (n+1)*(MOD-1) < 2^32.
        for chunk in data.chunks(5552) {
            for &byte in chunk {
                self.a += byte as u32;
                self.b += self.a;
            }
            self.a %= MOD;
            self.b %= MOD;
        }
    }

    /// The checksum of everything folded in so far.
    pub fn finish(&self) -> u32 {
        (self.b << 16) | self.a
    }
}

// ------------------------------------------------------------- bit sink

/// LSB-first bit packer writing completed bytes straight through to `W`.
struct BitWriter<W: Write> {
    inner: W,
    bits: u32,
    nbits: u32,
}

impl<W: Write> BitWriter<W> {
    fn new(inner: W) -> Self {
        BitWriter {
            inner,
            bits: 0,
            nbits: 0,
        }
    }

    /// Write `n` bits of `value`, LSB first (DEFLATE's non-Huffman fields).
    fn put(&mut self, value: u32, n: u32) -> std::io::Result<()> {
        debug_assert!(n <= 16 && (n == 32 || value < (1 << n)));
        self.bits |= value << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.inner.write_all(&[(self.bits & 0xFF) as u8])?;
            self.bits >>= 8;
            self.nbits -= 8;
        }
        Ok(())
    }

    /// Write a Huffman code: DEFLATE packs codes MSB-first, so the bit
    /// order is reversed relative to [`Self::put`].
    fn put_code(&mut self, code: u32, len: u32) -> std::io::Result<()> {
        let mut rev = 0u32;
        for i in 0..len {
            rev |= ((code >> i) & 1) << (len - 1 - i);
        }
        self.put(rev, len)
    }

    /// Pad to a byte boundary with zero bits.
    fn align(&mut self) -> std::io::Result<()> {
        if self.nbits > 0 {
            self.inner.write_all(&[(self.bits & 0xFF) as u8])?;
            self.bits = 0;
            self.nbits = 0;
        }
        Ok(())
    }
}

// -------------------------------------------------------------- encoder

/// The content codings the export endpoint can negotiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coding {
    /// RFC 1952 gzip framing around the DEFLATE stream.
    Gzip,
    /// RFC 1950 zlib framing (the HTTP `deflate` token, per the RFC 9110
    /// definition).
    Deflate,
}

impl Coding {
    /// The `Content-Encoding` token for this coding.
    pub fn token(self) -> &'static str {
        match self {
            Coding::Gzip => "gzip",
            Coding::Deflate => "deflate",
        }
    }
}

/// A streaming DEFLATE encoder with optional gzip/zlib framing.
///
/// Write plaintext in with [`Write`]; call [`finish`](Self::finish) exactly
/// once to flush the final block and the trailer checksum. Dropping without
/// `finish` truncates the stream (detectable by any decoder).
pub struct Encoder<W: Write> {
    bw: BitWriter<W>,
    buf: Vec<u8>,
    coding: Coding,
    crc: Crc32,
    adler: Adler32,
    total_in: u64,
    header_written: bool,
}

impl<W: Write> Encoder<W> {
    /// Wrap `inner` with the given framing.
    pub fn new(inner: W, coding: Coding) -> Self {
        Encoder {
            bw: BitWriter::new(inner),
            buf: Vec::with_capacity(BLOCK_BYTES),
            coding,
            crc: Crc32::new(),
            adler: Adler32::new(),
            total_in: 0,
            header_written: false,
        }
    }

    fn write_header(&mut self) -> std::io::Result<()> {
        match self.coding {
            Coding::Gzip => {
                // magic, CM=deflate, no flags, no mtime, XFL=0, OS=unknown.
                self.bw
                    .inner
                    .write_all(&[0x1F, 0x8B, 8, 0, 0, 0, 0, 0, 0, 0xFF])
            }
            // CMF=0x78 (deflate, 32K window), FLG makes the pair a
            // multiple of 31 with no preset dictionary.
            Coding::Deflate => self.bw.inner.write_all(&[0x78, 0x9C]),
        }
    }

    /// Compress and emit the buffered input as one fixed-Huffman block.
    fn emit_block(&mut self, last: bool) -> std::io::Result<()> {
        if !self.header_written {
            self.write_header()?;
            self.header_written = true;
        }
        self.bw.put(last as u32, 1)?;
        self.bw.put(0b01, 2)?; // BTYPE=01: fixed Huffman
        let data = std::mem::take(&mut self.buf);
        let tokens = Lz77::tokenize(&data);
        for token in tokens {
            match token {
                Token::Literal(byte) => put_literal(&mut self.bw, byte)?,
                Token::Match { len, dist } => put_match(&mut self.bw, len, dist)?,
            }
        }
        // End-of-block symbol 256: 7-bit code 0.
        self.bw.put_code(0, 7)?;
        self.buf = data;
        self.buf.clear();
        Ok(())
    }

    /// Flush the final block and the framing trailer, returning the inner
    /// writer. Must be called exactly once.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.emit_block(true)?;
        self.bw.align()?;
        match self.coding {
            Coding::Gzip => {
                let crc = self.crc.finish();
                let isize = (self.total_in & 0xFFFF_FFFF) as u32;
                self.bw.inner.write_all(&crc.to_le_bytes())?;
                self.bw.inner.write_all(&isize.to_le_bytes())?;
            }
            Coding::Deflate => {
                let adler = self.adler.finish();
                self.bw.inner.write_all(&adler.to_be_bytes())?;
            }
        }
        self.bw.inner.flush()?;
        Ok(self.bw.inner)
    }
}

impl<W: Write> Write for Encoder<W> {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.crc.update(data);
        self.adler.update(data);
        self.total_in += data.len() as u64;
        let mut rest = data;
        while !rest.is_empty() {
            let take = (BLOCK_BYTES - self.buf.len()).min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() == BLOCK_BYTES {
                self.emit_block(false)?;
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        // Deliberately do NOT emit a partial block: flush only pushes
        // already-encoded bytes down. Compression state stays buffered.
        self.bw.inner.flush()
    }
}

enum Token {
    Literal(u8),
    Match { len: usize, dist: usize },
}

/// Greedy hash-chain LZ77 matcher over one block.
struct Lz77;

impl Lz77 {
    fn hash(data: &[u8], pos: usize) -> usize {
        let h = (data[pos] as u32) << 16 | (data[pos + 1] as u32) << 8 | data[pos + 2] as u32;
        (h.wrapping_mul(0x9E37_79B1) >> 17) as usize & (HASH_SIZE - 1)
    }

    fn tokenize(data: &[u8]) -> Vec<Token> {
        let n = data.len();
        let mut tokens = Vec::with_capacity(n / 3 + 8);
        if n < MIN_MATCH {
            tokens.extend(data.iter().map(|&b| Token::Literal(b)));
            return tokens;
        }
        let mut head = vec![usize::MAX; HASH_SIZE];
        let mut prev = vec![usize::MAX; n];
        let mut pos = 0usize;
        while pos < n {
            let mut best_len = 0usize;
            let mut best_dist = 0usize;
            if pos + MIN_MATCH <= n {
                let h = Self::hash(data, pos);
                let mut candidate = head[h];
                let mut chain = 0;
                // Chains are newest-first, so the first candidate beyond
                // the window ends the walk.
                while candidate != usize::MAX && chain < MAX_CHAIN && pos - candidate <= MAX_DIST {
                    let limit = (n - pos).min(MAX_MATCH);
                    let mut len = 0usize;
                    while len < limit && data[candidate + len] == data[pos + len] {
                        len += 1;
                    }
                    if len > best_len {
                        best_len = len;
                        best_dist = pos - candidate;
                        if len == limit {
                            break;
                        }
                    }
                    candidate = prev[candidate];
                    chain += 1;
                }
                prev[pos] = head[h];
                head[h] = pos;
            }
            if best_len >= MIN_MATCH {
                tokens.push(Token::Match {
                    len: best_len,
                    dist: best_dist,
                });
                // Index the skipped positions so later matches can refer
                // into this run.
                let run_end = (pos + best_len).min(n.saturating_sub(MIN_MATCH - 1));
                for (p, slot) in prev.iter_mut().enumerate().take(run_end).skip(pos + 1) {
                    let h = Self::hash(data, p);
                    *slot = head[h];
                    head[h] = p;
                }
                pos += best_len;
            } else {
                tokens.push(Token::Literal(data[pos]));
                pos += 1;
            }
        }
        tokens
    }
}

/// Emit a literal byte with the fixed literal/length code.
fn put_literal<W: Write>(bw: &mut BitWriter<W>, byte: u8) -> std::io::Result<()> {
    let sym = byte as u32;
    if sym < 144 {
        bw.put_code(0x30 + sym, 8)
    } else {
        bw.put_code(0x190 + (sym - 144), 9)
    }
}

/// Emit a length/distance pair with the fixed codes.
fn put_match<W: Write>(bw: &mut BitWriter<W>, len: usize, dist: usize) -> std::io::Result<()> {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    debug_assert!((1..=32768).contains(&dist));
    let lcode = LENGTH_TABLE
        .iter()
        .rposition(|&(_, base)| len >= base as usize)
        .expect("length in table");
    let (lextra, lbase) = LENGTH_TABLE[lcode];
    let sym = 257 + lcode as u32;
    if sym < 280 {
        bw.put_code(sym - 256, 7)?;
    } else {
        bw.put_code(0xC0 + (sym - 280), 8)?;
    }
    if lextra > 0 {
        bw.put((len - lbase as usize) as u32, lextra)?;
    }
    let dcode = DIST_TABLE
        .iter()
        .rposition(|&(_, base)| dist >= base as usize)
        .expect("distance in table");
    let (dextra, dbase) = DIST_TABLE[dcode];
    bw.put_code(dcode as u32, 5)?;
    if dextra > 0 {
        bw.put((dist - dbase as usize) as u32, dextra)?;
    }
    Ok(())
}

// -------------------------------------------------------------- decoder

/// LSB-first bit reader over a byte slice.
struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    bits: u32,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            bits: 0,
            nbits: 0,
        }
    }

    fn take(&mut self, n: u32) -> Result<u32, String> {
        while self.nbits < n {
            let byte = *self
                .data
                .get(self.pos)
                .ok_or_else(|| "unexpected end of deflate stream".to_string())?;
            self.bits |= (byte as u32) << self.nbits;
            self.nbits += 8;
            self.pos += 1;
        }
        let v = self.bits & ((1u32 << n) - 1);
        self.bits >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Read `n` bits accumulating MSB-first (Huffman code order).
    fn take_code(&mut self, n: u32) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..n {
            v = (v << 1) | self.take(1)?;
        }
        Ok(v)
    }

    fn align(&mut self) {
        self.bits = 0;
        self.nbits = 0;
    }
}

/// Canonical Huffman decoder built from per-symbol code lengths
/// (RFC 1951 §3.2.2): counts-per-length plus symbols sorted by
/// (length, symbol), decoded incrementally MSB-first — the classic
/// "puff" algorithm. Incomplete codes are accepted at build time (the
/// spec allows them for degenerate distance alphabets) and error at
/// decode time if an unassigned code is actually read.
struct Huffman {
    /// `count[len]` = number of codes of bit length `len`.
    count: [u16; 16],
    /// Symbols ordered by (code length, symbol value).
    symbols: Vec<u16>,
}

impl Huffman {
    fn new(lengths: &[u8]) -> Result<Huffman, String> {
        let mut count = [0u16; 16];
        for &len in lengths {
            if len > 15 {
                return Err(format!("Huffman code length {len} out of range"));
            }
            count[len as usize] += 1;
        }
        count[0] = 0;
        let mut left = 1i32;
        for &c in &count[1..] {
            left = (left << 1) - c as i32;
            if left < 0 {
                return Err("over-subscribed Huffman code".into());
            }
        }
        let mut offsets = [0u16; 16];
        for len in 1..15 {
            offsets[len + 1] = offsets[len] + count[len];
        }
        let mut symbols = vec![0u16; lengths.iter().filter(|&&l| l != 0).count()];
        for (sym, &len) in lengths.iter().enumerate() {
            if len != 0 {
                symbols[offsets[len as usize] as usize] = sym as u16;
                offsets[len as usize] += 1;
            }
        }
        Ok(Huffman { count, symbols })
    }

    fn decode(&self, br: &mut BitReader<'_>) -> Result<u32, String> {
        let mut code = 0u32;
        let mut first = 0u32;
        let mut index = 0u32;
        for len in 1..16 {
            code |= br.take(1)?;
            let count = self.count[len] as u32;
            if code < first + count {
                return Ok(self.symbols[(index + code - first) as usize] as u32);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err("invalid Huffman code".into())
    }
}

/// Order in which code-length-code lengths appear in a dynamic block
/// header (RFC 1951 §3.2.7).
const CLEN_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// Read a dynamic block's header and build its (literal/length, distance)
/// decoding tables.
fn read_dynamic_tables(br: &mut BitReader<'_>) -> Result<(Huffman, Huffman), String> {
    let hlit = br.take(5)? as usize + 257;
    let hdist = br.take(5)? as usize + 1;
    let hclen = br.take(4)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err("dynamic block declares too many codes".into());
    }
    let mut clen = [0u8; 19];
    for &slot in CLEN_ORDER.iter().take(hclen) {
        clen[slot] = br.take(3)? as u8;
    }
    let cl_table = Huffman::new(&clen)?;
    let mut lengths = vec![0u8; hlit + hdist];
    let mut i = 0;
    while i < lengths.len() {
        let sym = cl_table.decode(br)?;
        let (repeat, fill) = match sym {
            0..=15 => {
                lengths[i] = sym as u8;
                i += 1;
                continue;
            }
            16 => {
                if i == 0 {
                    return Err("length repeat with no previous length".into());
                }
                (3 + br.take(2)? as usize, lengths[i - 1])
            }
            17 => (3 + br.take(3)? as usize, 0),
            18 => (11 + br.take(7)? as usize, 0),
            _ => return Err(format!("invalid code-length symbol {sym}")),
        };
        if i + repeat > lengths.len() {
            return Err("length repeat overflows the declared alphabet".into());
        }
        lengths[i..i + repeat].fill(fill);
        i += repeat;
    }
    if lengths[256] == 0 {
        return Err("dynamic block has no end-of-block code".into());
    }
    let litlen = Huffman::new(&lengths[..hlit])?;
    let dist = Huffman::new(&lengths[hlit..])?;
    Ok((litlen, dist))
}

/// The symbol tables in force for one compressed block: the implicit
/// fixed tables of a BTYPE=1 block or the transmitted tables of a
/// BTYPE=2 block.
enum BlockTables {
    Fixed,
    Dynamic { litlen: Huffman, dist: Huffman },
}

impl BlockTables {
    fn litlen(&self, br: &mut BitReader<'_>) -> Result<u32, String> {
        match self {
            BlockTables::Fixed => decode_fixed_litlen(br),
            BlockTables::Dynamic { litlen, .. } => litlen.decode(br),
        }
    }

    fn dist_code(&self, br: &mut BitReader<'_>) -> Result<u32, String> {
        match self {
            BlockTables::Fixed => br.take_code(5),
            BlockTables::Dynamic { dist, .. } => dist.decode(br),
        }
    }
}

/// Decode one compressed block's symbol stream into `out`.
fn decode_block(
    br: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    tables: &BlockTables,
) -> Result<(), String> {
    loop {
        let sym = tables.litlen(br)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                let (lextra, lbase) = LENGTH_TABLE[sym as usize - 257];
                let len = lbase as usize + br.take(lextra)? as usize;
                let dcode = tables.dist_code(br)? as usize;
                if dcode >= DIST_TABLE.len() {
                    return Err(format!("invalid distance code {dcode}"));
                }
                let (dextra, dbase) = DIST_TABLE[dcode];
                let dist = dbase as usize + br.take(dextra)? as usize;
                if dist == 0 || dist > out.len() {
                    return Err("distance before start of output".into());
                }
                let start = out.len() - dist;
                for i in 0..len {
                    let byte = out[start + i];
                    out.push(byte);
                }
            }
            _ => return Err(format!("invalid literal/length symbol {sym}")),
        }
    }
}

/// Decode a raw DEFLATE stream: stored, fixed-Huffman, and
/// dynamic-Huffman blocks (the full RFC 1951 block repertoire), so
/// request bodies compressed by any standards-conforming tool — not just
/// by [`Encoder`] — decode.
///
/// # Errors
///
/// A description of the framing violation, truncation, or invalid code.
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, String> {
    let mut br = BitReader::new(data);
    let mut out = Vec::new();
    loop {
        let last = br.take(1)? == 1;
        match br.take(2)? {
            0 => {
                br.align();
                if br.pos + 4 > br.data.len() {
                    return Err("truncated stored-block header".into());
                }
                let len = u16::from_le_bytes([br.data[br.pos], br.data[br.pos + 1]]) as usize;
                let nlen = u16::from_le_bytes([br.data[br.pos + 2], br.data[br.pos + 3]]);
                if nlen != !(len as u16) {
                    return Err("stored-block LEN/NLEN mismatch".into());
                }
                br.pos += 4;
                if br.pos + len > br.data.len() {
                    return Err("truncated stored block".into());
                }
                out.extend_from_slice(&br.data[br.pos..br.pos + len]);
                br.pos += len;
            }
            1 => decode_block(&mut br, &mut out, &BlockTables::Fixed)?,
            2 => {
                let (litlen, dist) = read_dynamic_tables(&mut br)?;
                decode_block(&mut br, &mut out, &BlockTables::Dynamic { litlen, dist })?;
            }
            _ => return Err("reserved block type".into()),
        }
        if last {
            return Ok(out);
        }
    }
}

/// Decode one fixed-table literal/length symbol (canonical incremental
/// decode: 7-bit, then 8-bit, then 9-bit ranges).
fn decode_fixed_litlen(br: &mut BitReader<'_>) -> Result<u32, String> {
    let c7 = br.take_code(7)?;
    if c7 <= 0b0010111 {
        return Ok(256 + c7);
    }
    let c8 = (c7 << 1) | br.take(1)?;
    if (0x30..=0xBF).contains(&c8) {
        return Ok(c8 - 0x30);
    }
    if (0xC0..=0xC7).contains(&c8) {
        return Ok(280 + (c8 - 0xC0));
    }
    let c9 = (c8 << 1) | br.take(1)?;
    if (0x190..=0x1FF).contains(&c9) {
        return Ok(144 + (c9 - 0x190));
    }
    Err(format!("invalid fixed literal/length code {c9:#x}"))
}

/// Strip the gzip framing and decode the payload with [`inflate`],
/// verifying the CRC-32 and length trailer.
///
/// # Errors
///
/// A description of the framing violation or checksum mismatch.
pub fn gunzip(data: &[u8]) -> Result<Vec<u8>, String> {
    if data.len() < 18 || data[0] != 0x1F || data[1] != 0x8B || data[2] != 8 {
        return Err("not a gzip stream".into());
    }
    let flg = data[3];
    if flg & 0xE0 != 0 {
        return Err("gzip reserved FLG bits set".into());
    }
    // Skip the optional header fields real gzip tools emit (RFC 1952):
    // FEXTRA (2-byte LE length + payload), NUL-terminated FNAME and
    // FCOMMENT, and the 2-byte FHCRC. FTEXT is a hint and needs nothing.
    let body_end = data.len() - 8;
    let mut pos = 10usize;
    if flg & 0x04 != 0 {
        if pos + 2 > body_end {
            return Err("truncated gzip FEXTRA field".into());
        }
        let xlen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2 + xlen;
    }
    for (bit, field) in [(0x08u8, "FNAME"), (0x10, "FCOMMENT")] {
        if flg & bit != 0 {
            let nul = data[pos..body_end]
                .iter()
                .position(|&b| b == 0)
                .ok_or_else(|| format!("truncated gzip {field} field"))?;
            pos += nul + 1;
        }
    }
    if flg & 0x02 != 0 {
        pos += 2;
    }
    if pos > body_end {
        return Err("gzip header overruns the stream".into());
    }
    let payload = &data[pos..body_end];
    let out = inflate(payload)?;
    let trailer = &data[data.len() - 8..];
    let crc = u32::from_le_bytes(trailer[..4].try_into().unwrap());
    let isize = u32::from_le_bytes(trailer[4..].try_into().unwrap());
    let mut check = Crc32::new();
    check.update(&out);
    if check.finish() != crc {
        return Err("gzip CRC mismatch".into());
    }
    if out.len() as u32 != isize {
        return Err("gzip ISIZE mismatch".into());
    }
    Ok(out)
}

/// Strip the zlib framing and decode the payload with [`inflate`],
/// verifying the Adler-32 trailer.
///
/// # Errors
///
/// A description of the framing violation or checksum mismatch.
pub fn zlib_decode(data: &[u8]) -> Result<Vec<u8>, String> {
    if data.len() < 6 || data[0] & 0x0F != 8 {
        return Err("not a zlib stream".into());
    }
    if !u16::from_be_bytes([data[0], data[1]]).is_multiple_of(31) {
        return Err("zlib header check failed".into());
    }
    let payload = &data[2..data.len() - 4];
    let out = inflate(payload)?;
    let adler = u32::from_be_bytes(data[data.len() - 4..].try_into().unwrap());
    let mut check = Adler32::new();
    check.update(&out);
    if check.finish() != adler {
        return Err("zlib Adler-32 mismatch".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(coding: Coding, data: &[u8]) -> Vec<u8> {
        let mut enc = Encoder::new(Vec::new(), coding);
        enc.write_all(data).unwrap();
        let framed = enc.finish().unwrap();
        match coding {
            Coding::Gzip => gunzip(&framed).unwrap(),
            Coding::Deflate => zlib_decode(&framed).unwrap(),
        }
    }

    #[test]
    fn incremental_crc_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut crc = Crc32::new();
        crc.update(&data[..10]);
        crc.update(&data[10..]);
        assert_eq!(crc.finish(), sam_fault::crc32(data));
        assert_eq!(Crc32::new().finish(), sam_fault::crc32(b""));
    }

    #[test]
    fn adler_known_value() {
        // Adler-32 of "Wikipedia" per the reference definition.
        let mut a = Adler32::new();
        a.update(b"Wikipedia");
        assert_eq!(a.finish(), 0x11E6_0398);
    }

    #[test]
    fn empty_input_round_trips() {
        assert_eq!(round_trip(Coding::Gzip, b""), b"");
        assert_eq!(round_trip(Coding::Deflate, b""), b"");
    }

    #[test]
    fn short_and_incompressible_inputs_round_trip() {
        assert_eq!(round_trip(Coding::Gzip, b"ab"), b"ab");
        let noise: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        assert_eq!(round_trip(Coding::Gzip, &noise), noise);
        assert_eq!(round_trip(Coding::Deflate, &noise), noise);
    }

    #[test]
    fn repetitive_input_compresses_well() {
        let mut data = Vec::new();
        for i in 0..5000 {
            data.extend_from_slice(format!("row-{},value,{}\n", i % 100, i % 7).as_bytes());
        }
        let mut enc = Encoder::new(Vec::new(), Coding::Gzip);
        enc.write_all(&data).unwrap();
        let framed = enc.finish().unwrap();
        assert_eq!(gunzip(&framed).unwrap(), data);
        assert!(
            framed.len() * 4 < data.len(),
            "expected ≥4× compression on repetitive CSV, got {} -> {}",
            data.len(),
            framed.len()
        );
    }

    #[test]
    fn multi_block_input_round_trips() {
        // Spans several BLOCK_BYTES buffers, written in awkward slices.
        let mut data = Vec::new();
        let mut x = 1u64;
        while data.len() < 3 * BLOCK_BYTES + 777 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            data.extend_from_slice(format!("{x},{},end\n", x % 3).as_bytes());
        }
        let mut enc = Encoder::new(Vec::new(), Coding::Deflate);
        for chunk in data.chunks(1234) {
            enc.write_all(chunk).unwrap();
        }
        let framed = enc.finish().unwrap();
        assert_eq!(zlib_decode(&framed).unwrap(), data);
    }

    #[test]
    fn all_byte_values_round_trip() {
        // Exercises the 9-bit literal range (144..=255).
        let data: Vec<u8> = (0..=255u8).cycle().take(2048).collect();
        assert_eq!(round_trip(Coding::Gzip, &data), data);
    }

    #[test]
    fn inflate_rejects_garbage() {
        assert!(inflate(&[0xFF, 0xFF, 0xFF]).is_err());
        assert!(gunzip(b"not gzip at all").is_err());
        assert!(zlib_decode(&[0x78, 0x9C]).is_err());
        // Corrupt one byte of a valid stream: CRC must catch it.
        let mut enc = Encoder::new(Vec::new(), Coding::Gzip);
        enc.write_all(b"hello hello hello hello").unwrap();
        let mut framed = enc.finish().unwrap();
        let mid = framed.len() / 2;
        framed[mid] ^= 0x40;
        assert!(gunzip(&framed).is_err());
    }

    #[test]
    fn max_length_matches_encode_correctly() {
        // A long run produces 258-byte matches (length code 285, 0 extra).
        let data = vec![b'z'; 10_000];
        assert_eq!(round_trip(Coding::Gzip, &data), data);
    }
    const ZLIB_DYNAMIC: &[u8] = &[
        0x78, 0xDA, 0xAD, 0x9A, 0x4B, 0x8B, 0x5E, 0x37, 0x0C, 0x86, 0xF7, 0xF9, 0x15, 0x67, 0x97,
        0xB6, 0x90, 0x60, 0x5D, 0x6C, 0xC9, 0xD0, 0x59, 0x94, 0x74, 0x42, 0xA0, 0x6D, 0x02, 0xB9,
        0xD0, 0x75, 0x98, 0x0E, 0xA5, 0x8B, 0xA6, 0xD0, 0x90, 0xFF, 0x9F, 0x59, 0x24, 0x60, 0xC1,
        0x88, 0x23, 0xBF, 0x9C, 0xE5, 0x7C, 0x0B, 0x61, 0x3C, 0x7A, 0x24, 0xF9, 0x39, 0x7A, 0x77,
        0xFB, 0xFB, 0xED, 0x8B, 0xF7, 0xC7, 0x8B, 0x37, 0x1F, 0x5E, 0xBF, 0xFF, 0xE1, 0xA7, 0x1F,
        0x8F, 0x97, 0x6F, 0xDF, 0xFC, 0x71, 0xDC, 0xDD, 0x7F, 0xFA, 0xFC, 0xE5, 0xF3, 0xF1, 0xE7,
        0xAB, 0xDB, 0xB7, 0xB7, 0xDF, 0xFE, 0x78, 0xFE, 0xF1, 0xEF, 0xFB, 0xE3, 0xE7, 0x9B, 0xA3,
        0x1D, 0xBF, 0xBC, 0xFE, 0xF5, 0xFB, 0x6F, 0xFF, 0x7C, 0xBA, 0xFB, 0xEF, 0xDF, 0xFB, 0xE3,
        0xE6, 0x78, 0xDA, 0x7E, 0x7B, 0x7A, 0x3C, 0x7B, 0x76, 0xDC, 0x7D, 0xFC, 0xFF, 0xAF, 0x9B,
        0xF6, 0xE4, 0xDD, 0x66, 0x50, 0x7B, 0x3C, 0x28, 0xC9, 0x12, 0x95, 0xB6, 0xA3, 0x92, 0x3E,
        0x1E, 0x96, 0xC7, 0x12, 0x56, 0xB7, 0xC3, 0x32, 0x3D, 0x1E, 0x56, 0xE6, 0x12, 0x76, 0xEE,
        0x87, 0xF5, 0xE4, 0xB4, 0xEB, 0x1D, 0x8C, 0xED, 0xB0, 0xD2, 0x93, 0xBB, 0xED, 0x4B, 0x5C,
        0xEE, 0xDB, 0x71, 0x95, 0x93, 0xE3, 0xFA, 0x12, 0x57, 0xF6, 0xCF, 0xAB, 0xF3, 0xF1, 0xB8,
        0x4A, 0xEB, 0x3F, 0x6D, 0xFF, 0x7A, 0xFB, 0x48, 0xE2, 0x2E, 0x61, 0xC7, 0x7E, 0x32, 0x0C,
        0x49, 0xAE, 0xD7, 0x96, 0xB8, 0xBE, 0x9F, 0xBB, 0x96, 0x70, 0x26, 0x2B, 0x68, 0xD4, 0x00,
        0xD4, 0x12, 0xD6, 0x34, 0xB0, 0xC6, 0xFB, 0x27, 0xF6, 0x84, 0xB6, 0x15, 0x36, 0xD2, 0xFD,
        0x1B, 0x9E, 0x09, 0x6E, 0x34, 0x03, 0x18, 0xFB, 0x19, 0x91, 0x61, 0x1C, 0x80, 0x9B, 0xFB,
        0x19, 0x9C, 0x70, 0xAC, 0x01, 0x38, 0x80, 0x38, 0x4A, 0x48, 0xF6, 0x00, 0xF2, 0xFE, 0x79,
        0x39, 0x23, 0x79, 0x25, 0x8E, 0x1D, 0xA8, 0x68, 0x09, 0xCA, 0xB2, 0x32, 0x27, 0xBC, 0x9F,
        0x12, 0x92, 0xB1, 0x6C, 0xA1, 0xF6, 0xEC, 0xE7, 0xB0, 0x66, 0x34, 0xAF, 0xD4, 0x29, 0x40,
        0x5D, 0x4F, 0x70, 0xE6, 0x95, 0x3A, 0xD5, 0xFD, 0x13, 0xF7, 0x04, 0x67, 0x09, 0x3D, 0xCE,
        0x81, 0xC2, 0x96, 0xE0, 0xAC, 0x2B, 0x76, 0x9D, 0xF7, 0xB3, 0xC2, 0x32, 0x9E, 0x57, 0xEE,
        0xBA, 0xED, 0xE7, 0xB1, 0x65, 0x0D, 0x74, 0x05, 0x6F, 0x00, 0xE0, 0x79, 0x02, 0x9E, 0xAC,
        0xE4, 0x0D, 0xE0, 0xC4, 0x33, 0x21, 0x6F, 0x05, 0xCF, 0x80, 0x2B, 0xCE, 0xC2, 0xAE, 0xDC,
        0x19, 0x90, 0x13, 0x09, 0xCF, 0x1C, 0x7A, 0x1D, 0x90, 0xC4, 0x94, 0xF1, 0xBC, 0x62, 0x37,
        0x01, 0xEC, 0x38, 0xE1, 0x79, 0xA5, 0x6E, 0x02, 0x75, 0x42, 0x12, 0x9C, 0x29, 0x34, 0xBB,
        0x86, 0x94, 0xB6, 0x84, 0x67, 0x0E, 0xDD, 0xAE, 0x01, 0xD5, 0x58, 0x33, 0xA0, 0x43, 0xBF,
        0x23, 0xA0, 0x81, 0xF4, 0x84, 0xE8, 0x1E, 0x26, 0x0A, 0x00, 0xBC, 0x9E, 0x10, 0x4D, 0x1E,
        0x22, 0x03, 0x3D, 0x7A, 0x64, 0x48, 0xAF, 0xE8, 0x91, 0x00, 0x53, 0x85, 0x25, 0xF0, 0xA9,
        0xC6, 0x39, 0x68, 0x3F, 0x35, 0x2C, 0xC1, 0x6F, 0xA5, 0x8F, 0x3A, 0x32, 0xB9, 0x25, 0xF8,
        0x71, 0x98, 0x35, 0x07, 0xC0, 0xDF, 0xCC, 0xF8, 0x0B, 0xC3, 0xE6, 0x00, 0xE6, 0xE3, 0x24,
        0xB0, 0x06, 0x00, 0x0D, 0x18, 0xE8, 0x29, 0x41, 0x3B, 0xF0, 0xE7, 0xC0, 0x03, 0x84, 0x32,
        0xB2, 0xE3, 0xBC, 0x09, 0x3C, 0x99, 0x38, 0x21, 0x5B, 0xC2, 0xC4, 0xD9, 0x00, 0x00, 0x25,
        0x21, 0x5B, 0xC3, 0xCC, 0x49, 0xC8, 0xB3, 0x34, 0x43, 0x3B, 0x0C, 0x9D, 0xDC, 0x80, 0x3A,
        0x97, 0xA0, 0xCD, 0x2B, 0x80, 0x2C, 0x6D, 0x3F, 0x35, 0x7A, 0x82, 0xB6, 0xAC, 0x04, 0xB2,
        0x36, 0x60, 0x8A, 0x9B, 0xE7, 0x56, 0x85, 0x3B, 0x00, 0xE0, 0x18, 0x05, 0xB3, 0xC2, 0x03,
        0x38, 0xB2, 0x49, 0x41, 0xAE, 0xB0, 0x01, 0xD7, 0xEC, 0xAD, 0xE0, 0x57, 0xD8, 0x81, 0xD4,
        0x70, 0x3B, 0x57, 0x2C, 0x3C, 0x81, 0x6C, 0x9E, 0x5A, 0x90, 0x2C, 0x82, 0x10, 0xA8, 0x15,
        0xCB, 0x42, 0x40, 0xD1, 0x20, 0x2A, 0x78, 0x96, 0x87, 0xC7, 0x19, 0x50, 0xE8, 0xFC, 0xDC,
        0xB4, 0x88, 0x00, 0xA5, 0x99, 0x7B, 0xC1, 0xB5, 0x88, 0x22, 0xDD, 0x84, 0x0B, 0xB6, 0x45,
        0x90, 0x0E, 0x28, 0xB3, 0xA0, 0x5B, 0xC4, 0x80, 0xAE, 0xAD, 0xE3, 0xDC, 0xB7, 0x88, 0x03,
        0x73, 0x46, 0x97, 0x82, 0x70, 0x91, 0x09, 0xCC, 0x46, 0xA3, 0x15, 0x94, 0x8B, 0x36, 0x64,
        0x9E, 0xB3, 0x82, 0x74, 0x51, 0x64, 0x06, 0x35, 0x3D, 0xB7, 0x2E, 0x2A, 0xC0, 0xD4, 0xEC,
        0x54, 0xD0, 0x2E, 0xAA, 0xC0, 0xA4, 0xEF, 0x5E, 0xF0, 0x2E, 0x3A, 0x80, 0xD7, 0xC9, 0xEC,
        0x05, 0xF1, 0xA2, 0x06, 0xBC, 0xA8, 0x7A, 0x45, 0xBC, 0x20, 0x4F, 0x40, 0xE2, 0x82, 0x79,
        0xE9, 0x0D, 0x79, 0xB5, 0xCE, 0x82, 0x7A, 0xE9, 0x04, 0xBC, 0xB3, 0x79, 0x54, 0xDC, 0x8B,
        0x00, 0x66, 0x40, 0xA4, 0x22, 0x5F, 0x14, 0x70, 0x19, 0xDA, 0x0A, 0xF6, 0xA5, 0x23, 0xFA,
        0x45, 0xAD, 0xA0, 0x5F, 0xBA, 0x01, 0x67, 0xEE, 0x7A, 0xEE, 0x5F, 0xFA, 0x04, 0xAE, 0x79,
        0x50, 0xC1, 0xC0, 0x8C, 0x86, 0x68, 0x39, 0x2F, 0x38, 0x98, 0x07, 0xB4, 0x81, 0x81, 0xAE,
        0x17, 0x24, 0xCC, 0x40, 0xE4, 0xA7, 0xF3, 0xB9, 0x85, 0x19, 0x1D, 0x28, 0x1A, 0x3E, 0x0B,
        0x1A, 0x66, 0x18, 0x52, 0xE8, 0x46, 0x41, 0xC3, 0x0C, 0x07, 0x8A, 0xF3, 0x28, 0x58, 0x18,
        0x6B, 0x40, 0x3F, 0x21, 0x39, 0xB7, 0x30, 0x86, 0x74, 0x40, 0x6E, 0x05, 0x0B, 0x63, 0x02,
        0x74, 0x6D, 0xB6, 0x82, 0x85, 0xB1, 0x0E, 0x4C, 0x1A, 0xA2, 0x05, 0x0B, 0x63, 0x06, 0x4C,
        0x47, 0x4A, 0xE7, 0x16, 0xC6, 0x26, 0x32, 0xCF, 0x79, 0xC1, 0xC2, 0x38, 0xF2, 0xC9, 0xAF,
        0xF7, 0x82, 0x85, 0x71, 0x06, 0xE6, 0xE6, 0xC1, 0x05, 0x0D, 0xE3, 0x8A, 0x7C, 0x57, 0x9D,
        0xE7, 0x1A, 0xC6, 0x07, 0xF0, 0x3A, 0xB1, 0x51, 0xD0, 0x30, 0xEE, 0xC0, 0x8B, 0xCA, 0xA5,
        0xA0, 0x61, 0x26, 0xF2, 0x08, 0x9C, 0xAD, 0xA0, 0x61, 0x1E, 0x72, 0x6E, 0xFF, 0xCC, 0xAD,
        0x60, 0x61, 0xA6, 0x02, 0x4F, 0x6D, 0x2B, 0x48, 0x98, 0x39, 0x00, 0x3B, 0x90, 0x2D, 0x75,
        0x04, 0x09, 0x33, 0x1D, 0x30, 0x1A, 0xD9, 0x5E, 0x47, 0x90, 0x30, 0x76, 0xD9, 0x5E, 0x47,
        0x54, 0x30, 0xEC, 0x97, 0x6D, 0x76, 0xC4, 0xF5, 0x16, 0xA1, 0xCB, 0x56, 0x3B, 0x82, 0x80,
        0x19, 0x17, 0xEE, 0x76, 0x04, 0xF4, 0x54, 0x2E, 0xDB, 0xED, 0x08, 0xFA, 0x85, 0x5A, 0xE7,
        0xCB, 0xD6, 0x3B, 0x38, 0x7E, 0x81, 0x18, 0x72, 0xD9, 0x82, 0x47, 0xF0, 0x2F, 0x84, 0x4C,
        0xE2, 0xE9, 0x86, 0x47, 0xDC, 0x97, 0xB8, 0x6E, 0xC3, 0x23, 0xF8, 0x17, 0x9A, 0xCD, 0x2F,
        0xDB, 0xF1, 0x08, 0xFE, 0x85, 0x09, 0xA0, 0x8F, 0x0A, 0xFA, 0x85, 0x45, 0xFD, 0xAA, 0x2D,
        0x8F, 0x60, 0x3F, 0xBB, 0xD1, 0x65, 0x5B, 0x1E, 0xC1, 0xBE, 0xB0, 0xCD, 0xEB, 0xF6, 0x3C,
        0x82, 0x7D, 0x91, 0xC6, 0x72, 0xD9, 0xA2, 0x47, 0xB0, 0x2F, 0xC2, 0x00, 0x7F, 0xD9, 0xA6,
        0x87, 0x47, 0xE3, 0x27, 0x97, 0x6D, 0x7A, 0x04, 0xFB, 0x22, 0x06, 0xB4, 0xD4, 0x6C, 0xD5,
        0x23, 0x6E, 0xBD, 0xCC, 0x7E, 0xDD, 0xAE, 0x47, 0xB4, 0x2F, 0xE4, 0xFE, 0xE4, 0x2B, 0x36,
        0x26, 0x03, 0xE7,
    ];
    const GZIP_DYNAMIC_FNAME: &[u8] = &[
        0x1F, 0x8B, 0x08, 0x08, 0x00, 0x00, 0x00, 0x00, 0x02, 0xFF, 0x77, 0x6C, 0x2E, 0x73, 0x71,
        0x6C, 0x00, 0xAD, 0x9A, 0x4B, 0x8B, 0x5E, 0x37, 0x0C, 0x86, 0xF7, 0xF9, 0x15, 0x67, 0x97,
        0xB6, 0x90, 0x60, 0x5D, 0x6C, 0xC9, 0xD0, 0x59, 0x94, 0x74, 0x42, 0xA0, 0x6D, 0x02, 0xB9,
        0xD0, 0x75, 0x98, 0x0E, 0xA5, 0x8B, 0xA6, 0xD0, 0x90, 0xFF, 0x9F, 0x59, 0x24, 0x60, 0xC1,
        0x88, 0x23, 0xBF, 0x9C, 0xE5, 0x7C, 0x0B, 0x61, 0x3C, 0x7A, 0x24, 0xF9, 0x39, 0x7A, 0x77,
        0xFB, 0xFB, 0xED, 0x8B, 0xF7, 0xC7, 0x8B, 0x37, 0x1F, 0x5E, 0xBF, 0xFF, 0xE1, 0xA7, 0x1F,
        0x8F, 0x97, 0x6F, 0xDF, 0xFC, 0x71, 0xDC, 0xDD, 0x7F, 0xFA, 0xFC, 0xE5, 0xF3, 0xF1, 0xE7,
        0xAB, 0xDB, 0xB7, 0xB7, 0xDF, 0xFE, 0x78, 0xFE, 0xF1, 0xEF, 0xFB, 0xE3, 0xE7, 0x9B, 0xA3,
        0x1D, 0xBF, 0xBC, 0xFE, 0xF5, 0xFB, 0x6F, 0xFF, 0x7C, 0xBA, 0xFB, 0xEF, 0xDF, 0xFB, 0xE3,
        0xE6, 0x78, 0xDA, 0x7E, 0x7B, 0x7A, 0x3C, 0x7B, 0x76, 0xDC, 0x7D, 0xFC, 0xFF, 0xAF, 0x9B,
        0xF6, 0xE4, 0xDD, 0x66, 0x50, 0x7B, 0x3C, 0x28, 0xC9, 0x12, 0x95, 0xB6, 0xA3, 0x92, 0x3E,
        0x1E, 0x96, 0xC7, 0x12, 0x56, 0xB7, 0xC3, 0x32, 0x3D, 0x1E, 0x56, 0xE6, 0x12, 0x76, 0xEE,
        0x87, 0xF5, 0xE4, 0xB4, 0xEB, 0x1D, 0x8C, 0xED, 0xB0, 0xD2, 0x93, 0xBB, 0xED, 0x4B, 0x5C,
        0xEE, 0xDB, 0x71, 0x95, 0x93, 0xE3, 0xFA, 0x12, 0x57, 0xF6, 0xCF, 0xAB, 0xF3, 0xF1, 0xB8,
        0x4A, 0xEB, 0x3F, 0x6D, 0xFF, 0x7A, 0xFB, 0x48, 0xE2, 0x2E, 0x61, 0xC7, 0x7E, 0x32, 0x0C,
        0x49, 0xAE, 0xD7, 0x96, 0xB8, 0xBE, 0x9F, 0xBB, 0x96, 0x70, 0x26, 0x2B, 0x68, 0xD4, 0x00,
        0xD4, 0x12, 0xD6, 0x34, 0xB0, 0xC6, 0xFB, 0x27, 0xF6, 0x84, 0xB6, 0x15, 0x36, 0xD2, 0xFD,
        0x1B, 0x9E, 0x09, 0x6E, 0x34, 0x03, 0x18, 0xFB, 0x19, 0x91, 0x61, 0x1C, 0x80, 0x9B, 0xFB,
        0x19, 0x9C, 0x70, 0xAC, 0x01, 0x38, 0x80, 0x38, 0x4A, 0x48, 0xF6, 0x00, 0xF2, 0xFE, 0x79,
        0x39, 0x23, 0x79, 0x25, 0x8E, 0x1D, 0xA8, 0x68, 0x09, 0xCA, 0xB2, 0x32, 0x27, 0xBC, 0x9F,
        0x12, 0x92, 0xB1, 0x6C, 0xA1, 0xF6, 0xEC, 0xE7, 0xB0, 0x66, 0x34, 0xAF, 0xD4, 0x29, 0x40,
        0x5D, 0x4F, 0x70, 0xE6, 0x95, 0x3A, 0xD5, 0xFD, 0x13, 0xF7, 0x04, 0x67, 0x09, 0x3D, 0xCE,
        0x81, 0xC2, 0x96, 0xE0, 0xAC, 0x2B, 0x76, 0x9D, 0xF7, 0xB3, 0xC2, 0x32, 0x9E, 0x57, 0xEE,
        0xBA, 0xED, 0xE7, 0xB1, 0x65, 0x0D, 0x74, 0x05, 0x6F, 0x00, 0xE0, 0x79, 0x02, 0x9E, 0xAC,
        0xE4, 0x0D, 0xE0, 0xC4, 0x33, 0x21, 0x6F, 0x05, 0xCF, 0x80, 0x2B, 0xCE, 0xC2, 0xAE, 0xDC,
        0x19, 0x90, 0x13, 0x09, 0xCF, 0x1C, 0x7A, 0x1D, 0x90, 0xC4, 0x94, 0xF1, 0xBC, 0x62, 0x37,
        0x01, 0xEC, 0x38, 0xE1, 0x79, 0xA5, 0x6E, 0x02, 0x75, 0x42, 0x12, 0x9C, 0x29, 0x34, 0xBB,
        0x86, 0x94, 0xB6, 0x84, 0x67, 0x0E, 0xDD, 0xAE, 0x01, 0xD5, 0x58, 0x33, 0xA0, 0x43, 0xBF,
        0x23, 0xA0, 0x81, 0xF4, 0x84, 0xE8, 0x1E, 0x26, 0x0A, 0x00, 0xBC, 0x9E, 0x10, 0x4D, 0x1E,
        0x22, 0x03, 0x3D, 0x7A, 0x64, 0x48, 0xAF, 0xE8, 0x91, 0x00, 0x53, 0x85, 0x25, 0xF0, 0xA9,
        0xC6, 0x39, 0x68, 0x3F, 0x35, 0x2C, 0xC1, 0x6F, 0xA5, 0x8F, 0x3A, 0x32, 0xB9, 0x25, 0xF8,
        0x71, 0x98, 0x35, 0x07, 0xC0, 0xDF, 0xCC, 0xF8, 0x0B, 0xC3, 0xE6, 0x00, 0xE6, 0xE3, 0x24,
        0xB0, 0x06, 0x00, 0x0D, 0x18, 0xE8, 0x29, 0x41, 0x3B, 0xF0, 0xE7, 0xC0, 0x03, 0x84, 0x32,
        0xB2, 0xE3, 0xBC, 0x09, 0x3C, 0x99, 0x38, 0x21, 0x5B, 0xC2, 0xC4, 0xD9, 0x00, 0x00, 0x25,
        0x21, 0x5B, 0xC3, 0xCC, 0x49, 0xC8, 0xB3, 0x34, 0x43, 0x3B, 0x0C, 0x9D, 0xDC, 0x80, 0x3A,
        0x97, 0xA0, 0xCD, 0x2B, 0x80, 0x2C, 0x6D, 0x3F, 0x35, 0x7A, 0x82, 0xB6, 0xAC, 0x04, 0xB2,
        0x36, 0x60, 0x8A, 0x9B, 0xE7, 0x56, 0x85, 0x3B, 0x00, 0xE0, 0x18, 0x05, 0xB3, 0xC2, 0x03,
        0x38, 0xB2, 0x49, 0x41, 0xAE, 0xB0, 0x01, 0xD7, 0xEC, 0xAD, 0xE0, 0x57, 0xD8, 0x81, 0xD4,
        0x70, 0x3B, 0x57, 0x2C, 0x3C, 0x81, 0x6C, 0x9E, 0x5A, 0x90, 0x2C, 0x82, 0x10, 0xA8, 0x15,
        0xCB, 0x42, 0x40, 0xD1, 0x20, 0x2A, 0x78, 0x96, 0x87, 0xC7, 0x19, 0x50, 0xE8, 0xFC, 0xDC,
        0xB4, 0x88, 0x00, 0xA5, 0x99, 0x7B, 0xC1, 0xB5, 0x88, 0x22, 0xDD, 0x84, 0x0B, 0xB6, 0x45,
        0x90, 0x0E, 0x28, 0xB3, 0xA0, 0x5B, 0xC4, 0x80, 0xAE, 0xAD, 0xE3, 0xDC, 0xB7, 0x88, 0x03,
        0x73, 0x46, 0x97, 0x82, 0x70, 0x91, 0x09, 0xCC, 0x46, 0xA3, 0x15, 0x94, 0x8B, 0x36, 0x64,
        0x9E, 0xB3, 0x82, 0x74, 0x51, 0x64, 0x06, 0x35, 0x3D, 0xB7, 0x2E, 0x2A, 0xC0, 0xD4, 0xEC,
        0x54, 0xD0, 0x2E, 0xAA, 0xC0, 0xA4, 0xEF, 0x5E, 0xF0, 0x2E, 0x3A, 0x80, 0xD7, 0xC9, 0xEC,
        0x05, 0xF1, 0xA2, 0x06, 0xBC, 0xA8, 0x7A, 0x45, 0xBC, 0x20, 0x4F, 0x40, 0xE2, 0x82, 0x79,
        0xE9, 0x0D, 0x79, 0xB5, 0xCE, 0x82, 0x7A, 0xE9, 0x04, 0xBC, 0xB3, 0x79, 0x54, 0xDC, 0x8B,
        0x00, 0x66, 0x40, 0xA4, 0x22, 0x5F, 0x14, 0x70, 0x19, 0xDA, 0x0A, 0xF6, 0xA5, 0x23, 0xFA,
        0x45, 0xAD, 0xA0, 0x5F, 0xBA, 0x01, 0x67, 0xEE, 0x7A, 0xEE, 0x5F, 0xFA, 0x04, 0xAE, 0x79,
        0x50, 0xC1, 0xC0, 0x8C, 0x86, 0x68, 0x39, 0x2F, 0x38, 0x98, 0x07, 0xB4, 0x81, 0x81, 0xAE,
        0x17, 0x24, 0xCC, 0x40, 0xE4, 0xA7, 0xF3, 0xB9, 0x85, 0x19, 0x1D, 0x28, 0x1A, 0x3E, 0x0B,
        0x1A, 0x66, 0x18, 0x52, 0xE8, 0x46, 0x41, 0xC3, 0x0C, 0x07, 0x8A, 0xF3, 0x28, 0x58, 0x18,
        0x6B, 0x40, 0x3F, 0x21, 0x39, 0xB7, 0x30, 0x86, 0x74, 0x40, 0x6E, 0x05, 0x0B, 0x63, 0x02,
        0x74, 0x6D, 0xB6, 0x82, 0x85, 0xB1, 0x0E, 0x4C, 0x1A, 0xA2, 0x05, 0x0B, 0x63, 0x06, 0x4C,
        0x47, 0x4A, 0xE7, 0x16, 0xC6, 0x26, 0x32, 0xCF, 0x79, 0xC1, 0xC2, 0x38, 0xF2, 0xC9, 0xAF,
        0xF7, 0x82, 0x85, 0x71, 0x06, 0xE6, 0xE6, 0xC1, 0x05, 0x0D, 0xE3, 0x8A, 0x7C, 0x57, 0x9D,
        0xE7, 0x1A, 0xC6, 0x07, 0xF0, 0x3A, 0xB1, 0x51, 0xD0, 0x30, 0xEE, 0xC0, 0x8B, 0xCA, 0xA5,
        0xA0, 0x61, 0x26, 0xF2, 0x08, 0x9C, 0xAD, 0xA0, 0x61, 0x1E, 0x72, 0x6E, 0xFF, 0xCC, 0xAD,
        0x60, 0x61, 0xA6, 0x02, 0x4F, 0x6D, 0x2B, 0x48, 0x98, 0x39, 0x00, 0x3B, 0x90, 0x2D, 0x75,
        0x04, 0x09, 0x33, 0x1D, 0x30, 0x1A, 0xD9, 0x5E, 0x47, 0x90, 0x30, 0x76, 0xD9, 0x5E, 0x47,
        0x54, 0x30, 0xEC, 0x97, 0x6D, 0x76, 0xC4, 0xF5, 0x16, 0xA1, 0xCB, 0x56, 0x3B, 0x82, 0x80,
        0x19, 0x17, 0xEE, 0x76, 0x04, 0xF4, 0x54, 0x2E, 0xDB, 0xED, 0x08, 0xFA, 0x85, 0x5A, 0xE7,
        0xCB, 0xD6, 0x3B, 0x38, 0x7E, 0x81, 0x18, 0x72, 0xD9, 0x82, 0x47, 0xF0, 0x2F, 0x84, 0x4C,
        0xE2, 0xE9, 0x86, 0x47, 0xDC, 0x97, 0xB8, 0x6E, 0xC3, 0x23, 0xF8, 0x17, 0x9A, 0xCD, 0x2F,
        0xDB, 0xF1, 0x08, 0xFE, 0x85, 0x09, 0xA0, 0x8F, 0x0A, 0xFA, 0x85, 0x45, 0xFD, 0xAA, 0x2D,
        0x8F, 0x60, 0x3F, 0xBB, 0xD1, 0x65, 0x5B, 0x1E, 0xC1, 0xBE, 0xB0, 0xCD, 0xEB, 0xF6, 0x3C,
        0x82, 0x7D, 0x91, 0xC6, 0x72, 0xD9, 0xA2, 0x47, 0xB0, 0x2F, 0xC2, 0x00, 0x7F, 0xD9, 0xA6,
        0x87, 0x47, 0xE3, 0x27, 0x97, 0x6D, 0x7A, 0x04, 0xFB, 0x22, 0x06, 0xB4, 0xD4, 0x6C, 0xD5,
        0x23, 0x6E, 0xBD, 0xCC, 0x7E, 0xDD, 0xAE, 0x47, 0xB4, 0x2F, 0xE4, 0xFE, 0xE4, 0x2B, 0xFF,
        0x6D, 0x43, 0xCA, 0xD5, 0x29, 0x00, 0x00,
    ];

    /// The workload text the dynamic-Huffman reference vectors compress
    /// (regenerable: the exact bytes the Python snippet in the PR used).
    fn reference_plaintext() -> Vec<u8> {
        let mut plain = Vec::new();
        for i in 0..120u64 {
            plain.extend_from_slice(
                format!(
                    "SELECT COUNT(*) FROM census WHERE census.age <= {} AND \
                     census.income = '{}K' -- card={}\n",
                    i * 7 % 97,
                    i * 13 % 50,
                    i * i % 9973
                )
                .as_bytes(),
            );
        }
        plain
    }

    /// zlib level 9 emits dynamic-Huffman blocks for this input; the
    /// inflater must decode what real tools produce, not just its own
    /// fixed-Huffman encoder output.
    #[test]
    fn decodes_dynamic_huffman_zlib_stream() {
        assert_eq!(zlib_decode(ZLIB_DYNAMIC).unwrap(), reference_plaintext());
    }

    /// Stock `gzip` writes an FNAME header field (and dynamic blocks);
    /// both must decode — this is the shape of a real `curl
    /// --data-binary @wl.sql.gz` upload.
    #[test]
    fn decodes_gzip_with_fname_and_dynamic_blocks() {
        assert_eq!(gunzip(GZIP_DYNAMIC_FNAME).unwrap(), reference_plaintext());
    }

    /// All optional RFC 1952 header fields at once (FEXTRA + FNAME +
    /// FCOMMENT + FHCRC), spliced around our own encoder's payload.
    #[test]
    fn gunzip_skips_all_optional_header_fields() {
        let data = b"header-field soup should not confuse the decoder";
        let mut enc = Encoder::new(Vec::new(), Coding::Gzip);
        enc.write_all(data).unwrap();
        let framed = enc.finish().unwrap();
        let (payload, trailer) = framed[10..].split_at(framed.len() - 18);
        let mut fancy = vec![0x1F, 0x8B, 0x08, 0x1E, 0, 0, 0, 0, 0, 0xFF];
        fancy.extend_from_slice(&[4, 0, b'x', b't', b'r', b'a']); // FEXTRA
        fancy.extend_from_slice(b"wl.sql\0"); // FNAME
        fancy.extend_from_slice(b"a comment\0"); // FCOMMENT
        fancy.extend_from_slice(&[0xAB, 0xCD]); // FHCRC (unverified)
        fancy.extend_from_slice(payload);
        fancy.extend_from_slice(trailer);
        assert_eq!(gunzip(&fancy).unwrap(), data);
        // Reserved FLG bits must still be rejected.
        let mut reserved = framed.clone();
        reserved[3] = 0x20;
        assert!(gunzip(&reserved).is_err());
    }
}
