//! Streaming DEFLATE compression for export bodies (RFC 1951), with gzip
//! (RFC 1952) and zlib (RFC 1950) framings — zero external dependencies.
//!
//! The encoder emits *fixed-Huffman* blocks over a greedy LZ77 matcher
//! (hash-chained 3-byte prefixes, 258-byte max match). Input accumulates in
//! a bounded [`BLOCK_BYTES`] buffer; each full buffer is compressed and
//! flushed as one block, so memory stays constant no matter how large the
//! streamed body is — the same bounded-memory contract as
//! [`crate::http::ChunkedWriter`], which these encoders are designed to
//! wrap. CSV/JSONL exports are highly repetitive, so fixed-Huffman + LZ77
//! typically shrinks them 3–6×.
//!
//! [`inflate`] decodes the subset this encoder emits (stored and
//! fixed-Huffman blocks) so tests and in-process clients can round-trip
//! without an external zlib; real gzip tools decode our output because we
//! only ever emit spec-compliant blocks.

use std::io::Write;

/// Input buffered per DEFLATE block (also the LZ77 match window, since the
/// matcher never looks across a block boundary).
pub const BLOCK_BYTES: usize = 64 << 10;

/// Longest match DEFLATE can encode.
const MAX_MATCH: usize = 258;
/// Shortest match worth encoding.
const MIN_MATCH: usize = 3;
/// Hash-chain probes per position (compression effort knob).
const MAX_CHAIN: usize = 48;
/// Farthest back a match may refer (DEFLATE window size). Blocks are
/// 64 KiB, so the matcher must cut chains that reach past this.
const MAX_DIST: usize = 32 << 10;
/// 3-byte prefix hash table size (power of two).
const HASH_SIZE: usize = 1 << 15;

/// `(extra_bits, base_length)` for length codes 257..=285.
const LENGTH_TABLE: [(u32, u16); 29] = [
    (0, 3),
    (0, 4),
    (0, 5),
    (0, 6),
    (0, 7),
    (0, 8),
    (0, 9),
    (0, 10),
    (1, 11),
    (1, 13),
    (1, 15),
    (1, 17),
    (2, 19),
    (2, 23),
    (2, 27),
    (2, 31),
    (3, 35),
    (3, 43),
    (3, 51),
    (3, 59),
    (4, 67),
    (4, 83),
    (4, 99),
    (4, 115),
    (5, 131),
    (5, 163),
    (5, 195),
    (5, 227),
    (0, 258),
];

/// `(extra_bits, base_distance)` for distance codes 0..=29.
const DIST_TABLE: [(u32, u16); 30] = [
    (0, 1),
    (0, 2),
    (0, 3),
    (0, 4),
    (1, 5),
    (1, 7),
    (2, 9),
    (2, 13),
    (3, 17),
    (3, 25),
    (4, 33),
    (4, 49),
    (5, 65),
    (5, 97),
    (6, 129),
    (6, 193),
    (7, 257),
    (7, 385),
    (8, 513),
    (8, 769),
    (9, 1025),
    (9, 1537),
    (10, 2049),
    (10, 3073),
    (11, 4097),
    (11, 6145),
    (12, 8193),
    (12, 12289),
    (13, 16385),
    (13, 24577),
];

// ------------------------------------------------------------ checksums

/// Incremental IEEE CRC-32 (the gzip trailer checksum). Byte-compatible
/// with [`sam_fault::crc32`], but usable over a stream.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Fold `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.state;
        for &byte in data {
            c ^= byte as u32;
            for _ in 0..8 {
                c = (c >> 1) ^ (0xEDB8_8320 & 0u32.wrapping_sub(c & 1));
            }
        }
        self.state = c;
    }

    /// The checksum of everything folded in so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// Incremental Adler-32 (the zlib trailer checksum).
#[derive(Debug, Clone)]
pub struct Adler32 {
    a: u32,
    b: u32,
}

impl Default for Adler32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Adler32 {
    /// Fresh checksum.
    pub fn new() -> Self {
        Adler32 { a: 1, b: 0 }
    }

    /// Fold `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        const MOD: u32 = 65_521;
        // 5552 is the largest n with n*(n+1)/2*255 + (n+1)*(MOD-1) < 2^32.
        for chunk in data.chunks(5552) {
            for &byte in chunk {
                self.a += byte as u32;
                self.b += self.a;
            }
            self.a %= MOD;
            self.b %= MOD;
        }
    }

    /// The checksum of everything folded in so far.
    pub fn finish(&self) -> u32 {
        (self.b << 16) | self.a
    }
}

// ------------------------------------------------------------- bit sink

/// LSB-first bit packer writing completed bytes straight through to `W`.
struct BitWriter<W: Write> {
    inner: W,
    bits: u32,
    nbits: u32,
}

impl<W: Write> BitWriter<W> {
    fn new(inner: W) -> Self {
        BitWriter {
            inner,
            bits: 0,
            nbits: 0,
        }
    }

    /// Write `n` bits of `value`, LSB first (DEFLATE's non-Huffman fields).
    fn put(&mut self, value: u32, n: u32) -> std::io::Result<()> {
        debug_assert!(n <= 16 && (n == 32 || value < (1 << n)));
        self.bits |= value << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.inner.write_all(&[(self.bits & 0xFF) as u8])?;
            self.bits >>= 8;
            self.nbits -= 8;
        }
        Ok(())
    }

    /// Write a Huffman code: DEFLATE packs codes MSB-first, so the bit
    /// order is reversed relative to [`Self::put`].
    fn put_code(&mut self, code: u32, len: u32) -> std::io::Result<()> {
        let mut rev = 0u32;
        for i in 0..len {
            rev |= ((code >> i) & 1) << (len - 1 - i);
        }
        self.put(rev, len)
    }

    /// Pad to a byte boundary with zero bits.
    fn align(&mut self) -> std::io::Result<()> {
        if self.nbits > 0 {
            self.inner.write_all(&[(self.bits & 0xFF) as u8])?;
            self.bits = 0;
            self.nbits = 0;
        }
        Ok(())
    }
}

// -------------------------------------------------------------- encoder

/// The content codings the export endpoint can negotiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coding {
    /// RFC 1952 gzip framing around the DEFLATE stream.
    Gzip,
    /// RFC 1950 zlib framing (the HTTP `deflate` token, per the RFC 9110
    /// definition).
    Deflate,
}

impl Coding {
    /// The `Content-Encoding` token for this coding.
    pub fn token(self) -> &'static str {
        match self {
            Coding::Gzip => "gzip",
            Coding::Deflate => "deflate",
        }
    }
}

/// A streaming DEFLATE encoder with optional gzip/zlib framing.
///
/// Write plaintext in with [`Write`]; call [`finish`](Self::finish) exactly
/// once to flush the final block and the trailer checksum. Dropping without
/// `finish` truncates the stream (detectable by any decoder).
pub struct Encoder<W: Write> {
    bw: BitWriter<W>,
    buf: Vec<u8>,
    coding: Coding,
    crc: Crc32,
    adler: Adler32,
    total_in: u64,
    header_written: bool,
}

impl<W: Write> Encoder<W> {
    /// Wrap `inner` with the given framing.
    pub fn new(inner: W, coding: Coding) -> Self {
        Encoder {
            bw: BitWriter::new(inner),
            buf: Vec::with_capacity(BLOCK_BYTES),
            coding,
            crc: Crc32::new(),
            adler: Adler32::new(),
            total_in: 0,
            header_written: false,
        }
    }

    fn write_header(&mut self) -> std::io::Result<()> {
        match self.coding {
            Coding::Gzip => {
                // magic, CM=deflate, no flags, no mtime, XFL=0, OS=unknown.
                self.bw
                    .inner
                    .write_all(&[0x1F, 0x8B, 8, 0, 0, 0, 0, 0, 0, 0xFF])
            }
            // CMF=0x78 (deflate, 32K window), FLG makes the pair a
            // multiple of 31 with no preset dictionary.
            Coding::Deflate => self.bw.inner.write_all(&[0x78, 0x9C]),
        }
    }

    /// Compress and emit the buffered input as one fixed-Huffman block.
    fn emit_block(&mut self, last: bool) -> std::io::Result<()> {
        if !self.header_written {
            self.write_header()?;
            self.header_written = true;
        }
        self.bw.put(last as u32, 1)?;
        self.bw.put(0b01, 2)?; // BTYPE=01: fixed Huffman
        let data = std::mem::take(&mut self.buf);
        let tokens = Lz77::tokenize(&data);
        for token in tokens {
            match token {
                Token::Literal(byte) => put_literal(&mut self.bw, byte)?,
                Token::Match { len, dist } => put_match(&mut self.bw, len, dist)?,
            }
        }
        // End-of-block symbol 256: 7-bit code 0.
        self.bw.put_code(0, 7)?;
        self.buf = data;
        self.buf.clear();
        Ok(())
    }

    /// Flush the final block and the framing trailer, returning the inner
    /// writer. Must be called exactly once.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.emit_block(true)?;
        self.bw.align()?;
        match self.coding {
            Coding::Gzip => {
                let crc = self.crc.finish();
                let isize = (self.total_in & 0xFFFF_FFFF) as u32;
                self.bw.inner.write_all(&crc.to_le_bytes())?;
                self.bw.inner.write_all(&isize.to_le_bytes())?;
            }
            Coding::Deflate => {
                let adler = self.adler.finish();
                self.bw.inner.write_all(&adler.to_be_bytes())?;
            }
        }
        self.bw.inner.flush()?;
        Ok(self.bw.inner)
    }
}

impl<W: Write> Write for Encoder<W> {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.crc.update(data);
        self.adler.update(data);
        self.total_in += data.len() as u64;
        let mut rest = data;
        while !rest.is_empty() {
            let take = (BLOCK_BYTES - self.buf.len()).min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() == BLOCK_BYTES {
                self.emit_block(false)?;
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        // Deliberately do NOT emit a partial block: flush only pushes
        // already-encoded bytes down. Compression state stays buffered.
        self.bw.inner.flush()
    }
}

enum Token {
    Literal(u8),
    Match { len: usize, dist: usize },
}

/// Greedy hash-chain LZ77 matcher over one block.
struct Lz77;

impl Lz77 {
    fn hash(data: &[u8], pos: usize) -> usize {
        let h = (data[pos] as u32) << 16 | (data[pos + 1] as u32) << 8 | data[pos + 2] as u32;
        (h.wrapping_mul(0x9E37_79B1) >> 17) as usize & (HASH_SIZE - 1)
    }

    fn tokenize(data: &[u8]) -> Vec<Token> {
        let n = data.len();
        let mut tokens = Vec::with_capacity(n / 3 + 8);
        if n < MIN_MATCH {
            tokens.extend(data.iter().map(|&b| Token::Literal(b)));
            return tokens;
        }
        let mut head = vec![usize::MAX; HASH_SIZE];
        let mut prev = vec![usize::MAX; n];
        let mut pos = 0usize;
        while pos < n {
            let mut best_len = 0usize;
            let mut best_dist = 0usize;
            if pos + MIN_MATCH <= n {
                let h = Self::hash(data, pos);
                let mut candidate = head[h];
                let mut chain = 0;
                // Chains are newest-first, so the first candidate beyond
                // the window ends the walk.
                while candidate != usize::MAX && chain < MAX_CHAIN && pos - candidate <= MAX_DIST {
                    let limit = (n - pos).min(MAX_MATCH);
                    let mut len = 0usize;
                    while len < limit && data[candidate + len] == data[pos + len] {
                        len += 1;
                    }
                    if len > best_len {
                        best_len = len;
                        best_dist = pos - candidate;
                        if len == limit {
                            break;
                        }
                    }
                    candidate = prev[candidate];
                    chain += 1;
                }
                prev[pos] = head[h];
                head[h] = pos;
            }
            if best_len >= MIN_MATCH {
                tokens.push(Token::Match {
                    len: best_len,
                    dist: best_dist,
                });
                // Index the skipped positions so later matches can refer
                // into this run.
                let run_end = (pos + best_len).min(n.saturating_sub(MIN_MATCH - 1));
                for (p, slot) in prev.iter_mut().enumerate().take(run_end).skip(pos + 1) {
                    let h = Self::hash(data, p);
                    *slot = head[h];
                    head[h] = p;
                }
                pos += best_len;
            } else {
                tokens.push(Token::Literal(data[pos]));
                pos += 1;
            }
        }
        tokens
    }
}

/// Emit a literal byte with the fixed literal/length code.
fn put_literal<W: Write>(bw: &mut BitWriter<W>, byte: u8) -> std::io::Result<()> {
    let sym = byte as u32;
    if sym < 144 {
        bw.put_code(0x30 + sym, 8)
    } else {
        bw.put_code(0x190 + (sym - 144), 9)
    }
}

/// Emit a length/distance pair with the fixed codes.
fn put_match<W: Write>(bw: &mut BitWriter<W>, len: usize, dist: usize) -> std::io::Result<()> {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    debug_assert!((1..=32768).contains(&dist));
    let lcode = LENGTH_TABLE
        .iter()
        .rposition(|&(_, base)| len >= base as usize)
        .expect("length in table");
    let (lextra, lbase) = LENGTH_TABLE[lcode];
    let sym = 257 + lcode as u32;
    if sym < 280 {
        bw.put_code(sym - 256, 7)?;
    } else {
        bw.put_code(0xC0 + (sym - 280), 8)?;
    }
    if lextra > 0 {
        bw.put((len - lbase as usize) as u32, lextra)?;
    }
    let dcode = DIST_TABLE
        .iter()
        .rposition(|&(_, base)| dist >= base as usize)
        .expect("distance in table");
    let (dextra, dbase) = DIST_TABLE[dcode];
    bw.put_code(dcode as u32, 5)?;
    if dextra > 0 {
        bw.put((dist - dbase as usize) as u32, dextra)?;
    }
    Ok(())
}

// -------------------------------------------------------------- decoder

/// LSB-first bit reader over a byte slice.
struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    bits: u32,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            bits: 0,
            nbits: 0,
        }
    }

    fn take(&mut self, n: u32) -> Result<u32, String> {
        while self.nbits < n {
            let byte = *self
                .data
                .get(self.pos)
                .ok_or_else(|| "unexpected end of deflate stream".to_string())?;
            self.bits |= (byte as u32) << self.nbits;
            self.nbits += 8;
            self.pos += 1;
        }
        let v = self.bits & ((1u32 << n) - 1);
        self.bits >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Read `n` bits accumulating MSB-first (Huffman code order).
    fn take_code(&mut self, n: u32) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..n {
            v = (v << 1) | self.take(1)?;
        }
        Ok(v)
    }

    fn align(&mut self) {
        self.bits = 0;
        self.nbits = 0;
    }
}

/// Decode a raw DEFLATE stream produced by [`Encoder`] (stored and
/// fixed-Huffman blocks; dynamic-Huffman blocks are rejected — this
/// decoder exists for tests and in-process clients, not as a general
/// inflater).
///
/// # Errors
///
/// A description of the framing violation, truncation, or unsupported
/// block type.
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, String> {
    let mut br = BitReader::new(data);
    let mut out = Vec::new();
    loop {
        let last = br.take(1)? == 1;
        match br.take(2)? {
            0 => {
                br.align();
                if br.pos + 4 > br.data.len() {
                    return Err("truncated stored-block header".into());
                }
                let len = u16::from_le_bytes([br.data[br.pos], br.data[br.pos + 1]]) as usize;
                let nlen = u16::from_le_bytes([br.data[br.pos + 2], br.data[br.pos + 3]]);
                if nlen != !(len as u16) {
                    return Err("stored-block LEN/NLEN mismatch".into());
                }
                br.pos += 4;
                if br.pos + len > br.data.len() {
                    return Err("truncated stored block".into());
                }
                out.extend_from_slice(&br.data[br.pos..br.pos + len]);
                br.pos += len;
            }
            1 => loop {
                let sym = decode_fixed_litlen(&mut br)?;
                match sym {
                    0..=255 => out.push(sym as u8),
                    256 => break,
                    257..=285 => {
                        let (lextra, lbase) = LENGTH_TABLE[sym as usize - 257];
                        let len = lbase as usize + br.take(lextra)? as usize;
                        let dcode = br.take_code(5)? as usize;
                        if dcode >= DIST_TABLE.len() {
                            return Err(format!("invalid distance code {dcode}"));
                        }
                        let (dextra, dbase) = DIST_TABLE[dcode];
                        let dist = dbase as usize + br.take(dextra)? as usize;
                        if dist == 0 || dist > out.len() {
                            return Err("distance before start of output".into());
                        }
                        let start = out.len() - dist;
                        for i in 0..len {
                            let byte = out[start + i];
                            out.push(byte);
                        }
                    }
                    _ => return Err(format!("invalid literal/length symbol {sym}")),
                }
            },
            2 => return Err("dynamic-Huffman blocks unsupported by this decoder".into()),
            _ => return Err("reserved block type".into()),
        }
        if last {
            return Ok(out);
        }
    }
}

/// Decode one fixed-table literal/length symbol (canonical incremental
/// decode: 7-bit, then 8-bit, then 9-bit ranges).
fn decode_fixed_litlen(br: &mut BitReader<'_>) -> Result<u32, String> {
    let c7 = br.take_code(7)?;
    if c7 <= 0b0010111 {
        return Ok(256 + c7);
    }
    let c8 = (c7 << 1) | br.take(1)?;
    if (0x30..=0xBF).contains(&c8) {
        return Ok(c8 - 0x30);
    }
    if (0xC0..=0xC7).contains(&c8) {
        return Ok(280 + (c8 - 0xC0));
    }
    let c9 = (c8 << 1) | br.take(1)?;
    if (0x190..=0x1FF).contains(&c9) {
        return Ok(144 + (c9 - 0x190));
    }
    Err(format!("invalid fixed literal/length code {c9:#x}"))
}

/// Strip the gzip framing and decode the payload with [`inflate`],
/// verifying the CRC-32 and length trailer.
///
/// # Errors
///
/// A description of the framing violation or checksum mismatch.
pub fn gunzip(data: &[u8]) -> Result<Vec<u8>, String> {
    if data.len() < 18 || data[0] != 0x1F || data[1] != 0x8B || data[2] != 8 {
        return Err("not a gzip stream".into());
    }
    if data[3] != 0 {
        return Err("gzip FLG bits unsupported by this decoder".into());
    }
    let payload = &data[10..data.len() - 8];
    let out = inflate(payload)?;
    let trailer = &data[data.len() - 8..];
    let crc = u32::from_le_bytes(trailer[..4].try_into().unwrap());
    let isize = u32::from_le_bytes(trailer[4..].try_into().unwrap());
    let mut check = Crc32::new();
    check.update(&out);
    if check.finish() != crc {
        return Err("gzip CRC mismatch".into());
    }
    if out.len() as u32 != isize {
        return Err("gzip ISIZE mismatch".into());
    }
    Ok(out)
}

/// Strip the zlib framing and decode the payload with [`inflate`],
/// verifying the Adler-32 trailer.
///
/// # Errors
///
/// A description of the framing violation or checksum mismatch.
pub fn zlib_decode(data: &[u8]) -> Result<Vec<u8>, String> {
    if data.len() < 6 || data[0] & 0x0F != 8 {
        return Err("not a zlib stream".into());
    }
    if !u16::from_be_bytes([data[0], data[1]]).is_multiple_of(31) {
        return Err("zlib header check failed".into());
    }
    let payload = &data[2..data.len() - 4];
    let out = inflate(payload)?;
    let adler = u32::from_be_bytes(data[data.len() - 4..].try_into().unwrap());
    let mut check = Adler32::new();
    check.update(&out);
    if check.finish() != adler {
        return Err("zlib Adler-32 mismatch".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(coding: Coding, data: &[u8]) -> Vec<u8> {
        let mut enc = Encoder::new(Vec::new(), coding);
        enc.write_all(data).unwrap();
        let framed = enc.finish().unwrap();
        match coding {
            Coding::Gzip => gunzip(&framed).unwrap(),
            Coding::Deflate => zlib_decode(&framed).unwrap(),
        }
    }

    #[test]
    fn incremental_crc_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut crc = Crc32::new();
        crc.update(&data[..10]);
        crc.update(&data[10..]);
        assert_eq!(crc.finish(), sam_fault::crc32(data));
        assert_eq!(Crc32::new().finish(), sam_fault::crc32(b""));
    }

    #[test]
    fn adler_known_value() {
        // Adler-32 of "Wikipedia" per the reference definition.
        let mut a = Adler32::new();
        a.update(b"Wikipedia");
        assert_eq!(a.finish(), 0x11E6_0398);
    }

    #[test]
    fn empty_input_round_trips() {
        assert_eq!(round_trip(Coding::Gzip, b""), b"");
        assert_eq!(round_trip(Coding::Deflate, b""), b"");
    }

    #[test]
    fn short_and_incompressible_inputs_round_trip() {
        assert_eq!(round_trip(Coding::Gzip, b"ab"), b"ab");
        let noise: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        assert_eq!(round_trip(Coding::Gzip, &noise), noise);
        assert_eq!(round_trip(Coding::Deflate, &noise), noise);
    }

    #[test]
    fn repetitive_input_compresses_well() {
        let mut data = Vec::new();
        for i in 0..5000 {
            data.extend_from_slice(format!("row-{},value,{}\n", i % 100, i % 7).as_bytes());
        }
        let mut enc = Encoder::new(Vec::new(), Coding::Gzip);
        enc.write_all(&data).unwrap();
        let framed = enc.finish().unwrap();
        assert_eq!(gunzip(&framed).unwrap(), data);
        assert!(
            framed.len() * 4 < data.len(),
            "expected ≥4× compression on repetitive CSV, got {} -> {}",
            data.len(),
            framed.len()
        );
    }

    #[test]
    fn multi_block_input_round_trips() {
        // Spans several BLOCK_BYTES buffers, written in awkward slices.
        let mut data = Vec::new();
        let mut x = 1u64;
        while data.len() < 3 * BLOCK_BYTES + 777 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            data.extend_from_slice(format!("{x},{},end\n", x % 3).as_bytes());
        }
        let mut enc = Encoder::new(Vec::new(), Coding::Deflate);
        for chunk in data.chunks(1234) {
            enc.write_all(chunk).unwrap();
        }
        let framed = enc.finish().unwrap();
        assert_eq!(zlib_decode(&framed).unwrap(), data);
    }

    #[test]
    fn all_byte_values_round_trip() {
        // Exercises the 9-bit literal range (144..=255).
        let data: Vec<u8> = (0..=255u8).cycle().take(2048).collect();
        assert_eq!(round_trip(Coding::Gzip, &data), data);
    }

    #[test]
    fn inflate_rejects_garbage() {
        assert!(inflate(&[0xFF, 0xFF, 0xFF]).is_err());
        assert!(gunzip(b"not gzip at all").is_err());
        assert!(zlib_decode(&[0x78, 0x9C]).is_err());
        // Corrupt one byte of a valid stream: CRC must catch it.
        let mut enc = Encoder::new(Vec::new(), Coding::Gzip);
        enc.write_all(b"hello hello hello hello").unwrap();
        let mut framed = enc.finish().unwrap();
        let mid = framed.len() / 2;
        framed[mid] ^= 0x40;
        assert!(gunzip(&framed).is_err());
    }

    #[test]
    fn max_length_matches_encode_correctly() {
        // A long run produces 258-byte matches (length code 285, 0 extra).
        let data = vec![b'z'; 10_000];
        assert_eq!(round_trip(Coding::Gzip, &data), data);
    }
}
