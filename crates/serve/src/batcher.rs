//! Micro-batching queue for cardinality estimates (the serving hot path).
//!
//! Connection handlers `try_send` requests into one bounded channel — a full
//! queue is immediate backpressure ([`ServeError::Overloaded`], HTTP 429),
//! never an unbounded backlog. A pool of worker threads drains the queue:
//! each worker blocks for one request, then opportunistically drains up to
//! `max_batch - 1` more without waiting, groups the drained requests by model,
//! and runs one batched progressive-sampling pass per group over the model
//! entry's shared prefix trie and reusable sample batch
//! ([`sam_ar::estimate_cardinality_batch_with`]), so conditionals cached by
//! earlier batches of the same model version are reused and steady-state
//! flushes allocate no activation matrices. Batched
//! estimates are bit-identical to sequential ones (each request keeps its
//! own seeded RNG), so batching is invisible to clients except in
//! throughput.
//!
//! Shutdown: dropping the sender side lets workers finish draining whatever
//! is queued, then exit on channel disconnect.

use crate::error::ServeError;
use crate::metrics::ServeMetrics;
use crate::registry::ModelEntry;
use crate::sync::Lock;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sam_ar::estimate_cardinality_batch_with;
use sam_query::Query;
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// One queued estimate request.
pub struct EstimateJob {
    /// Model to estimate against (pinned version).
    pub entry: Arc<ModelEntry>,
    /// Parsed COUNT(*) query.
    pub query: Query,
    /// Progressive-sampling paths.
    pub samples: usize,
    /// RNG seed (per request, so batching cannot change results).
    pub seed: u64,
    /// Absolute deadline; expired requests are answered 504 without running.
    pub deadline: Instant,
    /// Reply channel back to the connection handler.
    pub reply: SyncSender<BatchReply>,
}

/// Worker's answer to one [`EstimateJob`].
pub struct BatchReply {
    /// The estimate, or the error to surface.
    pub result: Result<f64, ServeError>,
    /// How many requests shared the forward passes (1 = no co-batching).
    pub batch_size: usize,
}

/// Handle over the queue and worker pool.
pub struct Batcher {
    tx: Lock<Option<SyncSender<EstimateJob>>>,
    workers: Lock<Vec<JoinHandle<()>>>,
}

impl Batcher {
    /// Start `workers` threads behind a queue of `queue_capacity` slots.
    /// With a flight recorder attached, a worker panic dumps the recent
    /// request history to stderr before the 500s go out.
    pub fn start(
        workers: usize,
        queue_capacity: usize,
        max_batch: usize,
        metrics: Arc<ServeMetrics>,
        flight: Option<Arc<sam_obs::FlightRecorder>>,
    ) -> Batcher {
        let (tx, rx) = std::sync::mpsc::sync_channel::<EstimateJob>(queue_capacity.max(1));
        let rx = Arc::new(Lock::new(rx));
        let handles = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let metrics = Arc::clone(&metrics);
                let flight = flight.clone();
                let max_batch = max_batch.max(1);
                std::thread::Builder::new()
                    .name(format!("sam-serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx, max_batch, &metrics, flight.as_deref()))
                    .expect("spawn inference worker")
            })
            .collect();
        Batcher {
            tx: Lock::new(Some(tx)),
            workers: Lock::new(handles),
        }
    }

    /// Enqueue without blocking. Full queue → [`ServeError::Overloaded`];
    /// after [`shutdown`](Self::shutdown) → [`ServeError::ShuttingDown`].
    pub fn submit(&self, job: EstimateJob) -> Result<(), ServeError> {
        let guard = self.tx.lock();
        let tx = guard.as_ref().ok_or(ServeError::ShuttingDown)?;
        match tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(ServeError::Overloaded),
            Err(TrySendError::Disconnected(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Stop accepting work, let workers drain the queue, and join them.
    pub fn shutdown(&self) {
        drop(self.tx.lock().take());
        let handles: Vec<_> = self.workers.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    rx: &Lock<Receiver<EstimateJob>>,
    max_batch: usize,
    metrics: &ServeMetrics,
    flight: Option<&sam_obs::FlightRecorder>,
) {
    loop {
        let mut jobs = Vec::new();
        {
            let guard = rx.lock();
            match guard.recv() {
                Ok(job) => jobs.push(job),
                // All senders dropped: queue fully drained, worker exits.
                Err(_) => return,
            }
            while jobs.len() < max_batch {
                match guard.try_recv() {
                    Ok(job) => jobs.push(job),
                    Err(_) => break,
                }
            }
        }

        let now = Instant::now();
        let (live, expired): (Vec<_>, Vec<_>) = jobs.into_iter().partition(|j| j.deadline > now);
        for job in expired {
            let _ = job.reply.try_send(BatchReply {
                result: Err(ServeError::DeadlineExceeded),
                batch_size: 0,
            });
        }
        if live.is_empty() {
            continue;
        }

        // Group by model entry so each group shares forward passes. Keying on
        // the Arc pointer distinguishes versions even under the same name.
        let mut groups: HashMap<usize, Vec<EstimateJob>> = HashMap::new();
        for job in live {
            groups
                .entry(Arc::as_ptr(&job.entry) as usize)
                .or_default()
                .push(job);
        }
        for (_, group) in groups {
            run_group(group, metrics, flight);
        }
    }
}

fn run_group(
    group: Vec<EstimateJob>,
    metrics: &ServeMetrics,
    flight: Option<&sam_obs::FlightRecorder>,
) {
    let batch_size = group.len();
    // A panic inside estimation (a model-invariant violation, an indexing
    // bug) must not kill the worker thread: every waiter in the group would
    // hang until its deadline and the pool would silently shrink. Contain
    // it, answer 500s, and keep the worker alive. `Lock` clears the trie
    // mutex's poison on the next acquisition.
    let results = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let requests: Vec<(&Query, usize)> = group.iter().map(|j| (&j.query, j.samples)).collect();
        let mut rngs: Vec<StdRng> = group
            .iter()
            .map(|j| StdRng::seed_from_u64(j.seed))
            .collect();
        let entry = &group[0].entry;
        // The entry's trie persists across batches of this model version,
        // so conditionals computed for earlier requests are reused here
        // (bit-identical results, strictly fewer forward passes), and the
        // entry's SampleBatch keeps the activation/logits buffers warm so
        // steady-state flushes allocate no matrices. Holding the locks
        // across the pass serialises same-version groups; distinct versions
        // still estimate concurrently.
        let mut trie = entry.trie.lock();
        let mut batch = entry.batch.lock();
        estimate_cardinality_batch_with(
            entry.trained.model(),
            &requests,
            &mut rngs,
            &mut trie,
            &mut batch,
        )
    }));
    let results = match results {
        Ok(results) => results,
        Err(payload) => {
            metrics.worker_panics.inc();
            let msg = crate::sync::panic_message(payload.as_ref());
            // The requests leading up to a crash are the context a
            // post-mortem needs; preserve them in the logs right away.
            if let Some(flight) = flight {
                flight.dump_stderr(50, &format!("worker panic: {msg}"));
            }
            for job in group {
                let _ = job.reply.try_send(BatchReply {
                    result: Err(ServeError::Internal(format!("estimation panicked: {msg}"))),
                    batch_size,
                });
            }
            return;
        }
    };
    metrics.batches.inc();
    metrics.batched_requests.add(batch_size as u64);
    let batches = metrics.batches.get();
    if batches > 0 {
        metrics
            .mean_batch_size
            .set(metrics.batched_requests.get() as f64 / batches as f64);
    }
    for (job, result) in group.into_iter().zip(results) {
        let _ = job.reply.try_send(BatchReply {
            result: result.map_err(|e| ServeError::BadRequest(e.to_string())),
            batch_size,
        });
    }
}
