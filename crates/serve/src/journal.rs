//! Append-only on-disk job journal: restart-safe generation serving.
//!
//! With `--journal-dir` (or [`ServeConfig::journal_dir`]) set, every
//! generation job writes its lifecycle to `journal.jsonl` — one JSON object
//! per line, append-only, flushed per event and fsynced on terminal events:
//!
//! ```text
//! accepted → running → relation* → completed | failed | cancelled
//!                  ↑ resumed (after a restart replays an interrupted job)
//! ```
//!
//! Completed jobs additionally persist their generated relations as CSV
//! under `<dir>/jobs/<id>/<table>.csv` (written to a temp file, then
//! renamed, so a crash mid-write never leaves a half table behind).
//!
//! [`Journal::replay`] folds the log into the **last known state per job**.
//! The server applies it at startup ([`Server::replay_journal`]): completed
//! jobs reload their CSVs and are re-servable (status *and* streamed
//! export); interrupted jobs (last event `accepted`/`running`/`resumed`)
//! are re-spawned with their recorded [`GenerationConfig`] — the RNG seed
//! lives in the config, so the regenerated database is bit-for-bit the one
//! the crashed run would have produced.
//!
//! [`ServeConfig::journal_dir`]: crate::server::ServeConfig::journal_dir
//! [`Server::replay_journal`]: crate::server::Server::replay_journal

use crate::error::ServeError;
use sam_core::{GenerationConfig, JoinKeyStrategy};
use sam_obs::Counter;
use sam_storage::csv::write_csv;
use sam_storage::Database;
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// File name of the event log inside the journal directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// Last known state of a job, folded from the event log.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayState {
    /// Accepted (and possibly running) when the server stopped — must be
    /// re-run from its recorded config.
    Interrupted,
    /// Reached `completed`; the summary document was recorded and the
    /// result CSVs should exist on disk.
    Completed(Value),
    /// Reached `failed` with this error message.
    Failed(String),
    /// Reached `cancelled`.
    Cancelled,
}

/// One job reconstructed from the journal.
#[derive(Debug, Clone)]
pub struct ReplayedJob {
    /// Job id as originally served.
    pub id: u64,
    /// Model name the job ran against.
    pub model: String,
    /// Model version at original submission (informational — replay binds
    /// to the currently registered version).
    pub version: u64,
    /// Full generation config, including the RNG seed.
    pub config: GenerationConfig,
    /// Last state the journal records.
    pub state: ReplayState,
}

fn strategy_str(s: JoinKeyStrategy) -> &'static str {
    match s {
        JoinKeyStrategy::GroupAndMerge => "group_and_merge",
        JoinKeyStrategy::PairwiseViews => "pairwise_views",
    }
}

fn parse_strategy(s: &str) -> Option<JoinKeyStrategy> {
    match s {
        "group_and_merge" => Some(JoinKeyStrategy::GroupAndMerge),
        "pairwise_views" => Some(JoinKeyStrategy::PairwiseViews),
        _ => None,
    }
}

/// Append-only journal over one directory. Cheap to clone via [`Arc`];
/// all writers share one buffered file handle behind a mutex.
pub struct Journal {
    dir: PathBuf,
    file: Mutex<BufWriter<File>>,
    /// Events appended (mirrored on `/metrics` as `journal_events`).
    events: Arc<Counter>,
}

impl Journal {
    /// Open (creating the directory and log file if needed) a journal under
    /// `dir`. `events` is the serve-metrics counter bumped per append.
    ///
    /// # Errors
    ///
    /// [`ServeError::Internal`] if the directory or log file cannot be
    /// created or opened for append.
    pub fn open(dir: &Path, events: Arc<Counter>) -> Result<Journal, ServeError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| ServeError::Internal(format!("create journal dir {dir:?}: {e}")))?;
        let path = dir.join(JOURNAL_FILE);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| ServeError::Internal(format!("open journal {path:?}: {e}")))?;
        Ok(Journal {
            dir: dir.to_path_buf(),
            file: Mutex::new(BufWriter::new(file)),
            events,
        })
    }

    /// The directory this journal lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Directory holding job `id`'s persisted result CSVs.
    pub fn job_dir(&self, id: u64) -> PathBuf {
        self.dir.join("jobs").join(id.to_string())
    }

    fn append(&self, event: &Value, sync: bool) {
        let _span = sam_obs::span!(
            "journal_append",
            event = event.get("event").and_then(Value::as_str).unwrap_or("?")
        );
        let line = serde_json::to_string(event).unwrap_or_else(|_| "{}".to_string());
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        // Journal I/O is best-effort by design: a full disk must degrade
        // durability, not take serving down.
        let _ = writeln!(file, "{line}");
        let _ = file.flush();
        if sync {
            let _ = file.get_ref().sync_data();
        }
        self.events.inc();
    }

    /// Record acceptance of a new job (the event that makes it resumable).
    pub fn accepted(&self, id: u64, model: &str, version: u64, config: &GenerationConfig) {
        self.append(
            &json!({
                "event": "accepted",
                "job": id,
                "model": model,
                "version": version,
                "foj_samples": config.foj_samples,
                "batch": config.batch,
                "seed": config.seed,
                "strategy": strategy_str(config.strategy),
            }),
            true,
        );
    }

    /// Record that a replayed interrupted job was re-spawned.
    pub fn resumed(&self, id: u64) {
        self.append(&json!({"event": "resumed", "job": id}), true);
    }

    /// Record that the job thread started generating.
    pub fn running(&self, id: u64) {
        self.append(&json!({"event": "running", "job": id}), false);
    }

    /// Record per-relation progress: `table` was generated with `rows` rows
    /// (and, when journaling results, persisted to disk).
    pub fn relation(&self, id: u64, table: &str, rows: usize) {
        self.append(
            &json!({"event": "relation", "job": id, "table": table, "rows": rows}),
            false,
        );
    }

    /// Record successful completion with the job's summary document.
    pub fn completed(&self, id: u64, summary: &Value) {
        self.append(
            &json!({"event": "completed", "job": id, "summary": summary}),
            true,
        );
    }

    /// Record failure.
    pub fn failed(&self, id: u64, error: &str) {
        self.append(&json!({"event": "failed", "job": id, "error": error}), true);
    }

    /// Record cancellation.
    pub fn cancelled(&self, id: u64) {
        self.append(&json!({"event": "cancelled", "job": id}), true);
    }

    /// Persist every relation of `db` as CSV under [`job_dir`](Self::job_dir),
    /// emitting one `relation` event per table. Each file is written to a
    /// `.tmp` sibling and renamed, so readers never observe half a table.
    ///
    /// # Errors
    ///
    /// [`ServeError::Internal`] on filesystem errors (the job itself still
    /// completes; the caller downgrades this to a log line).
    pub fn persist_results(&self, id: u64, db: &Database) -> Result<(), ServeError> {
        let mut span = sam_obs::span!("journal_persist", job = id);
        let dir = self.job_dir(id);
        std::fs::create_dir_all(&dir)
            .map_err(|e| ServeError::Internal(format!("create {dir:?}: {e}")))?;
        let mut bytes = 0u64;
        for table in db.tables() {
            let path = dir.join(format!("{}.csv", table.name()));
            let tmp = dir.join(format!("{}.csv.tmp", table.name()));
            let file = File::create(&tmp)
                .map_err(|e| ServeError::Internal(format!("create {tmp:?}: {e}")))?;
            let mut writer = BufWriter::new(file);
            write_csv(table, &mut writer)
                .map_err(|e| ServeError::Internal(format!("write {tmp:?}: {e}")))?;
            writer
                .flush()
                .and_then(|()| writer.get_ref().sync_data())
                .map_err(|e| ServeError::Internal(format!("sync {tmp:?}: {e}")))?;
            bytes += std::fs::metadata(&tmp).map(|m| m.len()).unwrap_or(0);
            std::fs::rename(&tmp, &path)
                .map_err(|e| ServeError::Internal(format!("rename {tmp:?}: {e}")))?;
            self.relation(id, table.name(), table.num_rows());
        }
        span.record("bytes", bytes);
        Ok(())
    }

    /// Fold the event log into the last known state of every job, sorted by
    /// id. Unknown events and malformed lines are skipped (forward
    /// compatibility over strictness — a newer server's extra events must
    /// not brick an older one's replay).
    ///
    /// # Errors
    ///
    /// [`ServeError::Internal`] if the log file exists but cannot be read.
    pub fn replay(&self) -> Result<Vec<ReplayedJob>, ServeError> {
        let path = self.dir.join(JOURNAL_FILE);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(ServeError::Internal(format!("read journal {path:?}: {e}"))),
        };
        let mut jobs: BTreeMap<u64, ReplayedJob> = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(doc) = serde_json::parse_value(line) else {
                continue;
            };
            let (Some(event), Some(id)) = (
                doc.get("event").and_then(Value::as_str),
                doc.get("job").and_then(Value::as_u64),
            ) else {
                continue;
            };
            match event {
                "accepted" => {
                    let Some(model) = doc.get("model").and_then(Value::as_str) else {
                        continue;
                    };
                    let strategy = doc
                        .get("strategy")
                        .and_then(Value::as_str)
                        .and_then(parse_strategy)
                        .unwrap_or(JoinKeyStrategy::GroupAndMerge);
                    jobs.insert(
                        id,
                        ReplayedJob {
                            id,
                            model: model.to_string(),
                            version: doc.get("version").and_then(Value::as_u64).unwrap_or(0),
                            config: GenerationConfig {
                                foj_samples: doc
                                    .get("foj_samples")
                                    .and_then(Value::as_u64)
                                    .unwrap_or(0)
                                    as usize,
                                batch: doc.get("batch").and_then(Value::as_u64).unwrap_or(1).max(1)
                                    as usize,
                                seed: doc.get("seed").and_then(Value::as_u64).unwrap_or(0),
                                strategy,
                            },
                            state: ReplayState::Interrupted,
                        },
                    );
                }
                "running" | "resumed" | "relation" => {
                    if let Some(job) = jobs.get_mut(&id) {
                        // Still non-terminal; relation events may precede a
                        // completed that never made it to disk.
                        if matches!(job.state, ReplayState::Interrupted) {
                            job.state = ReplayState::Interrupted;
                        }
                    }
                }
                "completed" => {
                    if let Some(job) = jobs.get_mut(&id) {
                        job.state = ReplayState::Completed(
                            doc.get("summary").cloned().unwrap_or(Value::Null),
                        );
                    }
                }
                "failed" => {
                    if let Some(job) = jobs.get_mut(&id) {
                        job.state = ReplayState::Failed(
                            doc.get("error")
                                .and_then(Value::as_str)
                                .unwrap_or("unknown error")
                                .to_string(),
                        );
                    }
                }
                "cancelled" => {
                    if let Some(job) = jobs.get_mut(&id) {
                        job.state = ReplayState::Cancelled;
                    }
                }
                _ => {}
            }
        }
        Ok(jobs.into_values().collect())
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("dir", &self.dir).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_journal(tag: &str) -> Journal {
        let dir =
            std::env::temp_dir().join(format!("sam_journal_unit_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Journal::open(&dir, sam_obs::counter("test_journal_events")).unwrap()
    }

    fn config(seed: u64) -> GenerationConfig {
        GenerationConfig {
            foj_samples: 123,
            batch: 7,
            seed,
            strategy: JoinKeyStrategy::GroupAndMerge,
        }
    }

    #[test]
    fn replay_folds_to_last_state() {
        let journal = temp_journal("fold");
        journal.accepted(1, "m", 1, &config(9));
        journal.running(1);
        journal.completed(1, &json!({"tables": []}));
        journal.accepted(2, "m", 1, &config(10));
        journal.running(2);
        journal.accepted(3, "m", 2, &config(11));
        journal.running(3);
        journal.failed(3, "boom");
        journal.accepted(4, "m", 2, &config(12));
        journal.cancelled(4);

        let jobs = journal.replay().unwrap();
        assert_eq!(jobs.len(), 4);
        assert!(matches!(jobs[0].state, ReplayState::Completed(_)));
        assert_eq!(jobs[1].state, ReplayState::Interrupted);
        assert_eq!(jobs[1].config.seed, 10);
        assert_eq!(jobs[1].config.foj_samples, 123);
        assert_eq!(jobs[2].state, ReplayState::Failed("boom".into()));
        assert_eq!(jobs[3].state, ReplayState::Cancelled);
        let _ = std::fs::remove_dir_all(journal.dir());
    }

    #[test]
    fn replay_survives_garbage_lines_and_missing_file() {
        let journal = temp_journal("garbage");
        assert!(journal.replay().unwrap().is_empty());
        journal.accepted(1, "m", 1, &config(1));
        std::fs::OpenOptions::new()
            .append(true)
            .open(journal.dir().join(JOURNAL_FILE))
            .unwrap()
            .write_all(b"not json\n{\"event\":\"mystery\",\"job\":1}\n")
            .unwrap();
        let jobs = journal.replay().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].state, ReplayState::Interrupted);
        let _ = std::fs::remove_dir_all(journal.dir());
    }

    #[test]
    fn strategy_round_trips() {
        for s in [
            JoinKeyStrategy::GroupAndMerge,
            JoinKeyStrategy::PairwiseViews,
        ] {
            assert_eq!(parse_strategy(strategy_str(s)), Some(s));
        }
        assert_eq!(parse_strategy("nonsense"), None);
    }
}
