//! Append-only on-disk job journal: restart-safe generation serving.
//!
//! With `--journal-dir` (or [`ServeConfig::journal_dir`]) set, every
//! generation job writes its lifecycle to `journal.jsonl` — one CRC-framed
//! JSON record per line, append-only, flushed per event and fsynced on
//! terminal events:
//!
//! ```text
//! accepted → running → relation* → completed | failed | cancelled
//!                  ↑ resumed (after a restart replays an interrupted job)
//! ```
//!
//! Training jobs (`POST /train`) share the log and the id space with their
//! own vocabulary — `train_accepted → running → epoch* → evaluating →
//! promoted | rejected | failed | cancelled` — plus standalone `rollback`
//! records; see [`TrainReplayState`].
//!
//! Completed jobs additionally persist their generated relations as CSV
//! under `<dir>/jobs/<id>/<table>.csv` (written to a temp file, fsynced,
//! then renamed, so a crash mid-write never leaves a half table behind).
//!
//! ## Record framing and corruption handling
//!
//! Each line is `<8-hex-crc32> <json>`; the CRC covers the JSON text, so
//! any single-bit flip (and any burst up to 32 bits) is detected. Lines
//! beginning with `{` are the pre-framing legacy format and still replay.
//! [`Journal::open_with`] runs recovery before accepting writes:
//!
//! * a **torn tail** (a final line a crash cut short) is truncated away
//!   and counted on `journal_torn_tails`;
//! * **corrupt mid-log records** are moved to `quarantine.jsonl` and
//!   counted on `journal_corrupt_records` — never parsed, never silently
//!   dropped;
//! * orphaned `*.tmp` files from interrupted atomic writes are swept.
//!
//! ## Compaction
//!
//! [`Journal::compact`] folds the log into per-job final states, writes
//! them to `snapshot.jsonl` with the atomic tmp+fsync+rename protocol, and
//! truncates the log. [`Journal::replay`] folds the snapshot first, then
//! the log; the `accepted` fold never downgrades a snapshot-restored state,
//! so a crash anywhere inside compaction replays to the same jobs.
//!
//! [`Journal::replay`] folds everything into the **last known state per
//! job**. The server applies it at startup ([`Server::replay_journal`]):
//! completed jobs reload their CSVs and are re-servable (status *and*
//! streamed export); interrupted jobs (last event `accepted`/`running`/
//! `resumed`) are re-spawned with their recorded [`GenerationConfig`] — the
//! RNG seed lives in the config, so the regenerated database is bit-for-bit
//! the one the crashed run would have produced.
//!
//! All durability I/O goes through a [`sam_fault::FaultFs`], so every
//! failure mode above is exercised deterministically in tests.
//!
//! [`ServeConfig::journal_dir`]: crate::server::ServeConfig::journal_dir
//! [`Server::replay_journal`]: crate::server::Server::replay_journal

use crate::error::ServeError;
use crate::sync::Lock;
use sam_core::{GenerationConfig, JoinKeyStrategy};
use sam_fault::{crash_point, crc32, sweep_tmp_files, write_atomic, FaultFile, FaultFs};
use sam_obs::Counter;
use sam_storage::csv::write_csv_atomic;
use sam_storage::Database;
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File name of the event log inside the journal directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";
/// File name of the compaction snapshot (replayed before the log).
pub const SNAPSHOT_FILE: &str = "snapshot.jsonl";
/// File name corrupt records are moved to during recovery.
pub const QUARANTINE_FILE: &str = "quarantine.jsonl";
/// Advisory single-owner lock inside the journal directory, holding the
/// owning pid. A second process opening the same store fails fast instead
/// of interleaving appends; a lock left by a dead process (SIGKILL) is
/// taken over on the next open.
pub const LOCK_FILE: &str = "journal.lock";

/// Last known state of a **training job**, folded from the event log.
///
/// Training jobs journal their own lifecycle alongside generation jobs:
///
/// ```text
/// train_accepted → running → epoch* → evaluating → promoted | rejected
///                      ↑ resumed                 ↘ failed | cancelled
/// ```
///
/// `epoch` events are progress markers (the checkpoint under the job
/// directory is the authoritative resume state); `promoted` carries the
/// registry version the candidate was hot-swapped in as, and replaying it
/// re-applies the promotion so a restarted server serves the same model.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainReplayState {
    /// The run had not reached a verdict when the server stopped — re-spawn
    /// it; training auto-resumes bit-for-bit from the job's checkpoint.
    Interrupted,
    /// The candidate passed the promotion gate and was registered as
    /// `version`; `summary` holds the shadow-evaluation scores.
    Promoted {
        /// Registry version the candidate was promoted as.
        version: u64,
        /// Shadow-evaluation summary (gate scores, holdout size).
        summary: Value,
    },
    /// The candidate finished training but failed the promotion gate.
    Rejected(Value),
    /// Training errored with this message.
    Failed(String),
    /// Training was cancelled.
    Cancelled,
}

/// One training job reconstructed from the journal.
#[derive(Debug, Clone)]
pub struct ReplayedTrain {
    /// Job id as originally served (training and generation jobs share one
    /// id space).
    pub id: u64,
    /// Registry name of the model being retrained.
    pub model: String,
    /// The full training spec recorded at accept time — opaque to the
    /// journal; the training subsystem serialises and re-parses it.
    pub spec: Value,
    /// Last state the journal records.
    pub state: TrainReplayState,
}

/// One model rollback reconstructed from the journal. Rollbacks are
/// journalled (under their own id in the shared job-id space) so replay
/// re-applies promotions *and* rollbacks in order, converging on the same
/// served version the crashed server had.
#[derive(Debug, Clone, PartialEq)]
pub struct RollbackRecord {
    /// Id the rollback was journalled under.
    pub id: u64,
    /// Model name that was rolled back.
    pub model: String,
}

/// Everything [`Journal::replay_full`] reconstructs, in one pass.
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// Generation jobs, sorted by id.
    pub jobs: Vec<ReplayedJob>,
    /// Training jobs, sorted by id.
    pub trains: Vec<ReplayedTrain>,
    /// Rollbacks, sorted by id (interleave with training promotions by id
    /// to reconstruct registry history).
    pub rollbacks: Vec<RollbackRecord>,
}

/// Last known state of a job, folded from the event log.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayState {
    /// Accepted (and possibly running) when the server stopped — must be
    /// re-run from its recorded config.
    Interrupted,
    /// Reached `completed`; the summary document was recorded and the
    /// result CSVs should exist on disk.
    Completed(Value),
    /// Reached `failed` with this error message.
    Failed(String),
    /// Reached `cancelled`.
    Cancelled,
}

/// One job reconstructed from the journal.
#[derive(Debug, Clone)]
pub struct ReplayedJob {
    /// Job id as originally served.
    pub id: u64,
    /// Model name the job ran against.
    pub model: String,
    /// Model version at original submission (informational — replay binds
    /// to the currently registered version).
    pub version: u64,
    /// Full generation config, including the RNG seed.
    pub config: GenerationConfig,
    /// Last state the journal records.
    pub state: ReplayState,
}

fn strategy_str(s: JoinKeyStrategy) -> &'static str {
    match s {
        JoinKeyStrategy::GroupAndMerge => "group_and_merge",
        JoinKeyStrategy::PairwiseViews => "pairwise_views",
    }
}

fn parse_strategy(s: &str) -> Option<JoinKeyStrategy> {
    match s {
        "group_and_merge" => Some(JoinKeyStrategy::GroupAndMerge),
        "pairwise_views" => Some(JoinKeyStrategy::PairwiseViews),
        _ => None,
    }
}

/// The journal's observability counters (mirrored on `/metrics`).
#[derive(Debug, Clone)]
pub struct JournalCounters {
    /// Events appended.
    pub events: Arc<Counter>,
    /// Corrupt records quarantined during recovery or skipped during
    /// replay.
    pub corrupt_records: Arc<Counter>,
    /// Torn tails truncated during recovery.
    pub torn_tails: Arc<Counter>,
    /// Compactions performed.
    pub compactions: Arc<Counter>,
}

impl JournalCounters {
    /// Counters for a journal outside a server (CLI tools, tests): the
    /// given `events` counter plus process-global counters for the rest.
    pub fn standalone(events: Arc<Counter>) -> Self {
        JournalCounters {
            events,
            corrupt_records: sam_obs::counter("sam_journal_corrupt_records_total"),
            torn_tails: sam_obs::counter("sam_journal_torn_tails_total"),
            compactions: sam_obs::counter("sam_journal_compactions_total"),
        }
    }
}

/// Frame a JSON record for the log: CRC-32 of the text, space, the text.
fn frame(json: &str) -> String {
    format!("{:08x} {json}", crc32(json.as_bytes()))
}

/// Extract the JSON payload of a log line, if the line is intact:
/// CRC-framed lines must pass their checksum, legacy lines (starting `{`)
/// must simply be non-empty. Returns `None` for corrupt lines.
fn line_payload(line: &str) -> Option<&str> {
    if line.starts_with('{') {
        return Some(line);
    }
    let (crc_hex, body) = line.split_at_checked(8)?;
    let body = body.strip_prefix(' ')?;
    let expected = u32::from_str_radix(crc_hex, 16).ok()?;
    (crc32(body.as_bytes()) == expected).then_some(body)
}

/// Take the single-owner lock on a journal directory, or fail fast if a
/// *running* process already holds it. The lock holds the owner's pid;
/// liveness is checked against `/proc/<pid>` so a lock left behind by a
/// SIGKILLed worker never wedges the store — its replacement takes over on
/// the next open. A lock holding our own pid is also taken over (one
/// process may reopen its own store, e.g. across a close/open cycle in
/// tests).
fn acquire_lock(fs: &dyn FaultFs, dir: &Path) -> Result<(), ServeError> {
    let path = dir.join(LOCK_FILE);
    if fs.exists(&path) {
        let holder = fs
            .read(&path)
            .ok()
            .and_then(|bytes| String::from_utf8(bytes).ok())
            .and_then(|text| text.trim().parse::<u32>().ok());
        if let Some(pid) = holder {
            if pid != std::process::id() && pid_alive(pid) {
                return Err(ServeError::Internal(format!(
                    "journal dir {dir:?} is owned by running process {pid} \
                     ({LOCK_FILE}); refusing to open a second owner — stop \
                     that process first, or point this one at its own store"
                )));
            }
        }
    }
    let mut file = fs
        .create(&path)
        .map_err(|e| ServeError::Internal(format!("create journal lock {path:?}: {e}")))?;
    let _ = file.write_all(std::process::id().to_string().as_bytes());
    let _ = file.flush();
    Ok(())
}

/// Whether `pid` is a live process. Uses `/proc`; on platforms without it
/// every lock reads as stale, degrading to lock-takeover (never to a
/// wedged store).
fn pid_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

/// Append-only journal over one directory. Cheap to clone via [`Arc`];
/// all writers share one file handle behind a mutex.
pub struct Journal {
    dir: PathBuf,
    fs: Arc<dyn FaultFs>,
    file: Lock<Box<dyn FaultFile>>,
    counters: JournalCounters,
}

impl Drop for Journal {
    fn drop(&mut self) {
        // Graceful release of the single-owner lock — but only while it
        // still names this process: a replacement owner that took over
        // after our SIGKILL-then-zombie must not have its lock clobbered
        // by our late exit.
        let path = self.dir.join(LOCK_FILE);
        let ours = self
            .fs
            .read(&path)
            .ok()
            .and_then(|bytes| String::from_utf8(bytes).ok())
            .and_then(|text| text.trim().parse::<u32>().ok())
            == Some(std::process::id());
        if ours {
            let _ = self.fs.remove_file(&path);
        }
    }
}

impl Journal {
    /// Open a journal under `dir` on the real filesystem with standalone
    /// counters — see [`Journal::open_with`] for the full constructor.
    ///
    /// # Errors
    ///
    /// [`ServeError::Internal`] if the directory or log file cannot be
    /// created or opened for append.
    pub fn open(dir: &Path, events: Arc<Counter>) -> Result<Journal, ServeError> {
        Journal::open_with(
            dir,
            JournalCounters::standalone(events),
            sam_fault::real_fs(),
        )
    }

    /// Open (creating the directory and log file if needed) a journal under
    /// `dir`, doing all I/O through `fs`. Runs recovery first: sweeps
    /// orphaned `*.tmp` files, truncates a torn tail, and quarantines
    /// corrupt mid-log records into [`QUARANTINE_FILE`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Internal`] if recovery fails or the log file cannot be
    /// created or opened for append.
    pub fn open_with(
        dir: &Path,
        counters: JournalCounters,
        fs: Arc<dyn FaultFs>,
    ) -> Result<Journal, ServeError> {
        fs.create_dir_all(dir)
            .map_err(|e| ServeError::Internal(format!("create journal dir {dir:?}: {e}")))?;
        acquire_lock(&*fs, dir)?;
        sweep_tmp_files(&*fs, dir)
            .map_err(|e| ServeError::Internal(format!("sweep tmp files in {dir:?}: {e}")))?;
        recover(&*fs, dir, &counters)
            .map_err(|e| ServeError::Internal(format!("recover journal in {dir:?}: {e}")))?;
        let path = dir.join(JOURNAL_FILE);
        let file = fs
            .open_append(&path)
            .map_err(|e| ServeError::Internal(format!("open journal {path:?}: {e}")))?;
        Ok(Journal {
            dir: dir.to_path_buf(),
            fs,
            file: Lock::new(file),
            counters,
        })
    }

    /// The directory this journal lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Directory holding job `id`'s persisted result CSVs.
    pub fn job_dir(&self, id: u64) -> PathBuf {
        self.dir.join("jobs").join(id.to_string())
    }

    /// Current size of the event log in bytes (0 if missing).
    pub fn log_len(&self) -> u64 {
        self.fs.file_len(&self.dir.join(JOURNAL_FILE)).unwrap_or(0)
    }

    fn append(&self, event: &Value, sync: bool) {
        let _span = sam_obs::span!(
            "journal_append",
            event = event.get("event").and_then(Value::as_str).unwrap_or("?")
        );
        let json = serde_json::to_string(event).unwrap_or_else(|_| "{}".to_string());
        let line = format!("{}\n", frame(&json));
        let mut file = self.file.lock();
        crash_point("journal.append.pre_write");
        // Journal I/O is best-effort by design: a full disk must degrade
        // durability, not take serving down. The line goes out in ONE write
        // call, so an injected torn write models a real mid-line crash.
        let _ = file.write_all(line.as_bytes());
        let _ = file.flush();
        crash_point("journal.append.written");
        if sync {
            let _ = file.sync_data();
        }
        self.counters.events.inc();
    }

    /// Record acceptance of a new job (the event that makes it resumable).
    pub fn accepted(&self, id: u64, model: &str, version: u64, config: &GenerationConfig) {
        self.append(&accepted_event(id, model, version, config), true);
    }

    /// Record that a replayed interrupted job was re-spawned.
    pub fn resumed(&self, id: u64) {
        self.append(&json!({"event": "resumed", "job": id}), true);
    }

    /// Record that the job thread started generating.
    pub fn running(&self, id: u64) {
        self.append(&json!({"event": "running", "job": id}), false);
    }

    /// Record per-relation progress: `table` was generated with `rows` rows
    /// (and, when journaling results, persisted to disk).
    pub fn relation(&self, id: u64, table: &str, rows: usize) {
        self.append(
            &json!({"event": "relation", "job": id, "table": table, "rows": rows}),
            false,
        );
    }

    /// Record successful completion with the job's summary document.
    pub fn completed(&self, id: u64, summary: &Value) {
        self.append(
            &json!({"event": "completed", "job": id, "summary": summary}),
            true,
        );
    }

    /// Record failure.
    pub fn failed(&self, id: u64, error: &str) {
        self.append(&json!({"event": "failed", "job": id, "error": error}), true);
    }

    /// Record cancellation.
    pub fn cancelled(&self, id: u64) {
        self.append(&json!({"event": "cancelled", "job": id}), true);
    }

    /// Record acceptance of a training job with its full spec (the event
    /// that makes the run resumable — the spec plus the persisted workload
    /// and checkpoint under the job directory reconstruct it exactly).
    pub fn train_accepted(&self, id: u64, model: &str, spec: &Value) {
        self.append(
            &json!({"event": "train_accepted", "job": id, "model": model, "spec": spec}),
            true,
        );
    }

    /// Record one finished training epoch (progress marker; the checkpoint
    /// is the authoritative resume state, so this is not fsynced).
    pub fn epoch(&self, id: u64, epoch: usize, total: usize, loss: f32) {
        self.append(
            &json!({"event": "epoch", "job": id, "epoch": epoch, "total": total,
                    "loss": loss as f64}),
            false,
        );
    }

    /// Record that training finished and shadow evaluation began.
    pub fn evaluating(&self, id: u64) {
        self.append(&json!({"event": "evaluating", "job": id}), false);
    }

    /// Record that the candidate passed the gate and was registered as
    /// `version`. Persist the candidate's weights *before* this commit
    /// event, so a replay that sees `promoted` can always re-load them.
    pub fn promoted(&self, id: u64, version: u64, summary: &Value) {
        self.append(
            &json!({"event": "promoted", "job": id, "version": version, "summary": summary}),
            true,
        );
    }

    /// Record that the candidate finished training but failed the gate.
    pub fn rejected(&self, id: u64, summary: &Value) {
        self.append(
            &json!({"event": "rejected", "job": id, "summary": summary}),
            true,
        );
    }

    /// Record an operator rollback of `model` (journalled under its own id
    /// so replay re-applies promotions and rollbacks in order).
    pub fn rollback(&self, id: u64, model: &str, from_version: u64, version: u64) {
        self.append(
            &json!({"event": "rollback", "job": id, "model": model,
                    "from_version": from_version, "version": version}),
            true,
        );
    }

    /// Persist every relation of `db` as CSV under [`job_dir`](Self::job_dir),
    /// emitting one `relation` event per table. Each file is written with
    /// the atomic tmp+fsync+rename protocol, so readers (and restarts)
    /// never observe half a table.
    ///
    /// # Errors
    ///
    /// [`ServeError::Internal`] on filesystem errors (the job itself still
    /// completes; the caller downgrades this to a log line).
    pub fn persist_results(&self, id: u64, db: &Database) -> Result<(), ServeError> {
        let mut span = sam_obs::span!("journal_persist", job = id);
        let dir = self.job_dir(id);
        self.fs
            .create_dir_all(&dir)
            .map_err(|e| ServeError::Internal(format!("create {dir:?}: {e}")))?;
        let mut bytes = 0u64;
        for table in db.tables() {
            let path = dir.join(format!("{}.csv", table.name()));
            write_csv_atomic(table, &path, &*self.fs)
                .map_err(|e| ServeError::Internal(format!("persist {path:?}: {e}")))?;
            bytes += self.fs.file_len(&path).unwrap_or(0);
            self.relation(id, table.name(), table.num_rows());
        }
        span.record("bytes", bytes);
        Ok(())
    }

    /// Fold the snapshot (if any) and the event log into the last known
    /// state of every **generation** job, sorted by id. Unknown events are
    /// skipped (forward compatibility over strictness — a newer server's
    /// extra events must not brick an older one's replay); corrupt lines
    /// are skipped and counted on `journal_corrupt_records`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Internal`] if the snapshot or log file exists but
    /// cannot be read.
    pub fn replay(&self) -> Result<Vec<ReplayedJob>, ServeError> {
        Ok(self.replay_full()?.jobs)
    }

    /// [`replay`](Self::replay), additionally reconstructing training jobs
    /// and rollback records — what [`Server::replay_journal`] applies.
    ///
    /// # Errors
    ///
    /// [`ServeError::Internal`] if the snapshot or log file exists but
    /// cannot be read.
    ///
    /// [`Server::replay_journal`]: crate::server::Server::replay_journal
    pub fn replay_full(&self) -> Result<Replay, ServeError> {
        let mut entries: BTreeMap<u64, Entry> = BTreeMap::new();
        for name in [SNAPSHOT_FILE, JOURNAL_FILE] {
            let path = self.dir.join(name);
            if !self.fs.exists(&path) {
                continue;
            }
            let bytes = self
                .fs
                .read(&path)
                .map_err(|e| ServeError::Internal(format!("read journal {path:?}: {e}")))?;
            for raw in bytes.split(|&b| b == b'\n') {
                if raw.is_empty() {
                    continue;
                }
                let payload = std::str::from_utf8(raw).ok().and_then(line_payload);
                let Some(payload) = payload else {
                    self.counters.corrupt_records.inc();
                    continue;
                };
                let Ok(doc) = serde_json::parse_value(payload.trim()) else {
                    self.counters.corrupt_records.inc();
                    continue;
                };
                fold_event(&mut entries, &doc);
            }
        }
        let mut replay = Replay::default();
        for entry in entries.into_values() {
            match entry {
                Entry::Gen(job) => replay.jobs.push(job),
                Entry::Train(train) => replay.trains.push(train),
                Entry::Roll(record) => replay.rollbacks.push(record),
            }
        }
        Ok(replay)
    }

    /// Compact the journal: fold the current state, write it to
    /// [`SNAPSHOT_FILE`] with the atomic commit protocol, then truncate the
    /// log. Replay after a crash at *any* point inside compaction yields
    /// the same jobs — the snapshot is replayed first and the `accepted`
    /// fold never downgrades a state it already restored. Returns the
    /// number of jobs in the snapshot.
    ///
    /// # Errors
    ///
    /// [`ServeError::Internal`] on filesystem errors; the journal stays
    /// replayable (the old snapshot+log remain authoritative).
    pub fn compact(&self) -> Result<usize, ServeError> {
        let mut span = sam_obs::span!("journal_compact");
        let replay = self.replay_full()?;
        let push = |snapshot: &mut String, event: &Value| {
            snapshot.push_str(&frame(&serde_json::to_string(event).unwrap_or_default()));
            snapshot.push('\n');
        };
        let mut snapshot = String::new();
        for job in &replay.jobs {
            push(
                &mut snapshot,
                &accepted_event(job.id, &job.model, job.version, &job.config),
            );
            let terminal = match &job.state {
                ReplayState::Interrupted => None,
                ReplayState::Completed(summary) => {
                    Some(json!({"event": "completed", "job": job.id, "summary": summary}))
                }
                ReplayState::Failed(error) => {
                    Some(json!({"event": "failed", "job": job.id, "error": error}))
                }
                ReplayState::Cancelled => Some(json!({"event": "cancelled", "job": job.id})),
            };
            if let Some(event) = terminal {
                push(&mut snapshot, &event);
            }
        }
        // Training jobs and rollbacks survive compaction the same way:
        // their accept record plus (when reached) their terminal verdict.
        for train in &replay.trains {
            push(
                &mut snapshot,
                &json!({"event": "train_accepted", "job": train.id,
                        "model": train.model, "spec": train.spec}),
            );
            let terminal = match &train.state {
                TrainReplayState::Interrupted => None,
                TrainReplayState::Promoted { version, summary } => Some(json!({
                    "event": "promoted", "job": train.id,
                    "version": version, "summary": summary
                })),
                TrainReplayState::Rejected(summary) => {
                    Some(json!({"event": "rejected", "job": train.id, "summary": summary}))
                }
                TrainReplayState::Failed(error) => {
                    Some(json!({"event": "failed", "job": train.id, "error": error}))
                }
                TrainReplayState::Cancelled => Some(json!({"event": "cancelled", "job": train.id})),
            };
            if let Some(event) = terminal {
                push(&mut snapshot, &event);
            }
        }
        for record in &replay.rollbacks {
            push(
                &mut snapshot,
                &json!({"event": "rollback", "job": record.id, "model": record.model}),
            );
        }
        let jobs = replay.jobs.len() + replay.trains.len() + replay.rollbacks.len();
        crash_point("journal.compact.pre_snapshot");
        let snap_path = self.dir.join(SNAPSHOT_FILE);
        write_atomic(&*self.fs, &snap_path, snapshot.as_bytes())
            .map_err(|e| ServeError::Internal(format!("write snapshot {snap_path:?}: {e}")))?;
        crash_point("journal.compact.snapshotted");
        // Truncate under the writer lock so no append lands in between; the
        // append handle is O_APPEND, so later writes start at the new end.
        let log_path = self.dir.join(JOURNAL_FILE);
        {
            let _file = self.file.lock();
            self.fs
                .truncate(&log_path, 0)
                .map_err(|e| ServeError::Internal(format!("truncate {log_path:?}: {e}")))?;
        }
        crash_point("journal.compact.truncated");
        self.counters.compactions.inc();
        span.record("jobs", jobs);
        Ok(jobs)
    }
}

fn accepted_event(id: u64, model: &str, version: u64, config: &GenerationConfig) -> Value {
    json!({
        "event": "accepted",
        "job": id,
        "model": model,
        "version": version,
        "foj_samples": config.foj_samples,
        "batch": config.batch,
        "seed": config.seed,
        "strategy": strategy_str(config.strategy),
    })
}

/// One folded journal entry — a generation job, a training job, or a
/// rollback record, all sharing the id space.
enum Entry {
    Gen(ReplayedJob),
    Train(ReplayedTrain),
    Roll(RollbackRecord),
}

/// Apply one event document to the fold. `accepted`/`train_accepted`/
/// `rollback` only fill a vacant slot: after compaction the snapshot is
/// authoritative, and a stale accept left in a not-yet-truncated log must
/// not downgrade a terminal state back to `Interrupted`.
fn fold_event(entries: &mut BTreeMap<u64, Entry>, doc: &Value) {
    let (Some(event), Some(id)) = (
        doc.get("event").and_then(Value::as_str),
        doc.get("job").and_then(Value::as_u64),
    ) else {
        return;
    };
    match event {
        "accepted" => {
            let Some(model) = doc.get("model").and_then(Value::as_str) else {
                return;
            };
            let strategy = doc
                .get("strategy")
                .and_then(Value::as_str)
                .and_then(parse_strategy)
                .unwrap_or(JoinKeyStrategy::GroupAndMerge);
            entries.entry(id).or_insert_with(|| {
                Entry::Gen(ReplayedJob {
                    id,
                    model: model.to_string(),
                    version: doc.get("version").and_then(Value::as_u64).unwrap_or(0),
                    config: GenerationConfig {
                        foj_samples: doc.get("foj_samples").and_then(Value::as_u64).unwrap_or(0)
                            as usize,
                        batch: doc.get("batch").and_then(Value::as_u64).unwrap_or(1).max(1)
                            as usize,
                        seed: doc.get("seed").and_then(Value::as_u64).unwrap_or(0),
                        strategy,
                    },
                    state: ReplayState::Interrupted,
                })
            });
        }
        "train_accepted" => {
            let Some(model) = doc.get("model").and_then(Value::as_str) else {
                return;
            };
            entries.entry(id).or_insert_with(|| {
                Entry::Train(ReplayedTrain {
                    id,
                    model: model.to_string(),
                    spec: doc.get("spec").cloned().unwrap_or(Value::Null),
                    state: TrainReplayState::Interrupted,
                })
            });
        }
        "rollback" => {
            let Some(model) = doc.get("model").and_then(Value::as_str) else {
                return;
            };
            entries.entry(id).or_insert_with(|| {
                Entry::Roll(RollbackRecord {
                    id,
                    model: model.to_string(),
                })
            });
        }
        "running" | "resumed" | "relation" | "epoch" | "evaluating" => {
            // Still non-terminal; nothing to update — relation/epoch events
            // may precede a terminal record that never made it to disk.
        }
        "completed" => {
            if let Some(Entry::Gen(job)) = entries.get_mut(&id) {
                job.state =
                    ReplayState::Completed(doc.get("summary").cloned().unwrap_or(Value::Null));
            }
        }
        "promoted" => {
            if let Some(Entry::Train(train)) = entries.get_mut(&id) {
                train.state = TrainReplayState::Promoted {
                    version: doc.get("version").and_then(Value::as_u64).unwrap_or(0),
                    summary: doc.get("summary").cloned().unwrap_or(Value::Null),
                };
            }
        }
        "rejected" => {
            if let Some(Entry::Train(train)) = entries.get_mut(&id) {
                train.state =
                    TrainReplayState::Rejected(doc.get("summary").cloned().unwrap_or(Value::Null));
            }
        }
        "failed" => {
            let error = doc
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("unknown error")
                .to_string();
            match entries.get_mut(&id) {
                Some(Entry::Gen(job)) => job.state = ReplayState::Failed(error),
                Some(Entry::Train(train)) => train.state = TrainReplayState::Failed(error),
                _ => {}
            }
        }
        "cancelled" => match entries.get_mut(&id) {
            Some(Entry::Gen(job)) => job.state = ReplayState::Cancelled,
            Some(Entry::Train(train)) => train.state = TrainReplayState::Cancelled,
            _ => {}
        },
        _ => {}
    }
}

/// Pre-open recovery: classify every line of the log as intact, corrupt
/// (mid-log), or a torn tail. Torn tails are truncated away; corrupt lines
/// are moved to [`QUARANTINE_FILE`] and the remaining intact lines written
/// back atomically.
fn recover(fs: &dyn FaultFs, dir: &Path, counters: &JournalCounters) -> std::io::Result<()> {
    let path = dir.join(JOURNAL_FILE);
    if !fs.exists(&path) {
        return Ok(());
    }
    let bytes = fs.read(&path)?;
    let mut intact: Vec<&[u8]> = Vec::new();
    let mut quarantined: Vec<&[u8]> = Vec::new();
    let mut torn_tail = false;
    let mut good_prefix_len = 0usize; // bytes of leading intact lines
    let mut prefix_clean = true;
    let mut offset = 0usize;
    while offset < bytes.len() {
        let end = bytes[offset..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|p| offset + p);
        let (line, next, complete) = match end {
            Some(nl) => (&bytes[offset..nl], nl + 1, true),
            None => (&bytes[offset..], bytes.len(), false),
        };
        let valid = complete
            && std::str::from_utf8(line)
                .ok()
                .and_then(line_payload)
                .is_some();
        if valid {
            intact.push(line);
            if prefix_clean {
                good_prefix_len = next;
            }
        } else if line.is_empty() {
            // A bare blank line is harmless; keep position but drop it.
        } else if complete {
            quarantined.push(line);
            prefix_clean = false;
        } else {
            // The unterminated final line: a torn tail. Not quarantined as
            // corrupt — it is the expected residue of a crash mid-append.
            torn_tail = true;
        }
        offset = next;
    }
    if quarantined.is_empty() && !torn_tail && offset == bytes.len() && good_prefix_len == offset {
        return Ok(()); // clean log, nothing to do
    }
    if !quarantined.is_empty() {
        let mut q = fs.open_append(&dir.join(QUARANTINE_FILE))?;
        for line in &quarantined {
            q.write_all(line)?;
            q.write_all(b"\n")?;
            counters.corrupt_records.inc();
        }
        q.sync_data()?;
        crash_point("journal.recover.quarantined");
        // Rewrite the log with only the intact lines, atomically.
        let mut clean = Vec::with_capacity(bytes.len());
        for line in &intact {
            clean.extend_from_slice(line);
            clean.push(b'\n');
        }
        write_atomic(fs, &path, &clean)?;
        if torn_tail {
            counters.torn_tails.inc();
        }
    } else if torn_tail || good_prefix_len < bytes.len() {
        // Only a torn tail (possibly with trailing blank lines): truncate
        // to the last complete intact line.
        fs.truncate(&path, good_prefix_len as u64)?;
        if torn_tail {
            counters.torn_tails.inc();
        }
        crash_point("journal.recover.truncated");
    }
    Ok(())
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("dir", &self.dir).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sam_journal_unit_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn temp_journal(tag: &str) -> Journal {
        Journal::open(&temp_dir(tag), sam_obs::counter("test_journal_events")).unwrap()
    }

    fn config(seed: u64) -> GenerationConfig {
        GenerationConfig {
            foj_samples: 123,
            batch: 7,
            seed,
            strategy: JoinKeyStrategy::GroupAndMerge,
        }
    }

    fn append_raw(journal: &Journal, bytes: &[u8]) {
        std::fs::OpenOptions::new()
            .append(true)
            .open(journal.dir().join(JOURNAL_FILE))
            .unwrap()
            .write_all(bytes)
            .unwrap();
    }

    #[test]
    fn replay_folds_to_last_state() {
        let journal = temp_journal("fold");
        journal.accepted(1, "m", 1, &config(9));
        journal.running(1);
        journal.completed(1, &json!({"tables": []}));
        journal.accepted(2, "m", 1, &config(10));
        journal.running(2);
        journal.accepted(3, "m", 2, &config(11));
        journal.running(3);
        journal.failed(3, "boom");
        journal.accepted(4, "m", 2, &config(12));
        journal.cancelled(4);

        let jobs = journal.replay().unwrap();
        assert_eq!(jobs.len(), 4);
        assert!(matches!(jobs[0].state, ReplayState::Completed(_)));
        assert_eq!(jobs[1].state, ReplayState::Interrupted);
        assert_eq!(jobs[1].config.seed, 10);
        assert_eq!(jobs[1].config.foj_samples, 123);
        assert_eq!(jobs[2].state, ReplayState::Failed("boom".into()));
        assert_eq!(jobs[3].state, ReplayState::Cancelled);
        let _ = std::fs::remove_dir_all(journal.dir());
    }

    #[test]
    fn replay_survives_garbage_lines_and_missing_file() {
        let journal = temp_journal("garbage");
        assert!(journal.replay().unwrap().is_empty());
        journal.accepted(1, "m", 1, &config(1));
        append_raw(&journal, b"not json\n{\"event\":\"mystery\",\"job\":1}\n");
        let jobs = journal.replay().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].state, ReplayState::Interrupted);
        let _ = std::fs::remove_dir_all(journal.dir());
    }

    #[test]
    fn legacy_plain_json_lines_still_replay() {
        let journal = temp_journal("legacy");
        append_raw(
            &journal,
            b"{\"event\":\"accepted\",\"job\":5,\"model\":\"m\",\"version\":1,\
              \"foj_samples\":10,\"batch\":2,\"seed\":3,\"strategy\":\"group_and_merge\"}\n\
              {\"event\":\"completed\",\"job\":5,\"summary\":{\"ok\":true}}\n",
        );
        let jobs = journal.replay().unwrap();
        assert_eq!(jobs.len(), 1);
        assert!(matches!(jobs[0].state, ReplayState::Completed(_)));
        let _ = std::fs::remove_dir_all(journal.dir());
    }

    #[test]
    fn strategy_round_trips() {
        for s in [
            JoinKeyStrategy::GroupAndMerge,
            JoinKeyStrategy::PairwiseViews,
        ] {
            assert_eq!(parse_strategy(strategy_str(s)), Some(s));
        }
        assert_eq!(parse_strategy("nonsense"), None);
    }

    /// Recovery truncates a torn tail (crash mid-append) and the journal
    /// replays the surviving prefix.
    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = temp_dir("torn");
        {
            let journal = Journal::open(&dir, sam_obs::counter("test_torn_events")).unwrap();
            journal.accepted(1, "m", 1, &config(1));
            journal.completed(1, &json!({}));
        }
        // A crash mid-append: half a framed line, no newline.
        std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(JOURNAL_FILE))
            .unwrap()
            .write_all(b"deadbeef {\"event\":\"acc")
            .unwrap();
        let counters = JournalCounters::standalone(sam_obs::counter("test_torn_events2"));
        let torn_before = counters.torn_tails.get();
        let journal = Journal::open_with(&dir, counters.clone(), sam_fault::real_fs()).unwrap();
        assert_eq!(counters.torn_tails.get(), torn_before + 1);
        let jobs = journal.replay().unwrap();
        assert_eq!(jobs.len(), 1);
        assert!(matches!(jobs[0].state, ReplayState::Completed(_)));
        // The tail is gone from disk; appends continue cleanly.
        journal.accepted(2, "m", 1, &config(2));
        assert_eq!(journal.replay().unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A corrupt mid-log record (bit flip) is quarantined, counted, and the
    /// rest of the log replays.
    #[test]
    fn corrupt_mid_log_record_is_quarantined() {
        let dir = temp_dir("quarantine");
        {
            let journal = Journal::open(&dir, sam_obs::counter("test_q_events")).unwrap();
            journal.accepted(1, "m", 1, &config(1));
            journal.accepted(2, "m", 1, &config(2));
            journal.completed(2, &json!({}));
        }
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit inside the first record's JSON body.
        let flip_at = 20;
        bytes[flip_at] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();

        let counters = JournalCounters::standalone(sam_obs::counter("test_q_events2"));
        let corrupt_before = counters.corrupt_records.get();
        let journal = Journal::open_with(&dir, counters.clone(), sam_fault::real_fs()).unwrap();
        assert_eq!(counters.corrupt_records.get(), corrupt_before + 1);
        let quarantine = std::fs::read_to_string(dir.join(QUARANTINE_FILE)).unwrap();
        assert_eq!(quarantine.lines().count(), 1, "one record quarantined");
        let jobs = journal.replay().unwrap();
        assert_eq!(jobs.len(), 1, "job 1's corrupted accept is gone");
        assert_eq!(jobs[0].id, 2);
        assert!(matches!(jobs[0].state, ReplayState::Completed(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Compaction preserves replayability bit-for-bit, shrinks the log, and
    /// replays identically even if the log was never truncated (crash
    /// between snapshot and truncate).
    #[test]
    fn compaction_preserves_replay_and_is_crash_idempotent() {
        let dir = temp_dir("compact");
        let journal = Journal::open(&dir, sam_obs::counter("test_c_events")).unwrap();
        journal.accepted(1, "m", 1, &config(1));
        journal.running(1);
        journal.completed(1, &json!({"tables": [{"t": "A"}]}));
        journal.accepted(2, "m", 1, &config(2));
        journal.failed(2, "boom");
        journal.accepted(3, "m", 2, &config(3));
        journal.running(3);

        let before = journal.replay().unwrap();
        let log_before = journal.log_len();
        assert!(log_before > 0);

        let jobs = journal.compact().unwrap();
        assert_eq!(jobs, 3);
        assert_eq!(journal.log_len(), 0, "log truncated");

        let after = journal.replay().unwrap();
        assert_eq!(before.len(), after.len());
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b.id, a.id);
            assert_eq!(b.state, a.state);
            assert_eq!(b.config.seed, a.config.seed);
            assert_eq!(b.model, a.model);
        }

        // Simulate the compaction crash window: snapshot written, log NOT
        // truncated (restore the old log contents). Replay must not change.
        let stale_log: String = before
            .iter()
            .flat_map(|j| {
                let acc =
                    serde_json::to_string(&accepted_event(j.id, &j.model, j.version, &j.config))
                        .unwrap();
                vec![frame(&acc) + "\n"]
            })
            .collect();
        std::fs::write(dir.join(JOURNAL_FILE), stale_log).unwrap();
        let replayed = journal.replay().unwrap();
        for (b, a) in before.iter().zip(&replayed) {
            assert_eq!(
                b.state, a.state,
                "stale accepted must not downgrade job {}",
                b.id
            );
        }

        // New activity after compaction still lands in the log and replays.
        journal.accepted(4, "m", 2, &config(4));
        assert_eq!(journal.replay().unwrap().len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Training jobs fold through their own vocabulary and share the id
    /// space with generation jobs and rollback records.
    #[test]
    fn train_events_fold_to_last_state() {
        let journal = temp_journal("train_fold");
        let spec = json!({"model": "m", "epochs": 8, "seed": 3});
        // id 1: a generation job; ids 2-5: training jobs; id 6: a rollback.
        journal.accepted(1, "m", 1, &config(9));
        journal.completed(1, &json!({}));
        journal.train_accepted(2, "m", &spec);
        journal.running(2);
        journal.epoch(2, 1, 8, 0.5);
        journal.epoch(2, 2, 8, 0.25);
        journal.train_accepted(3, "m", &spec);
        journal.evaluating(3);
        journal.promoted(3, 2, &json!({"candidate_p95": 1.5}));
        journal.train_accepted(4, "m", &spec);
        journal.rejected(4, &json!({"reason": "worse than incumbent"}));
        journal.train_accepted(5, "m", &spec);
        journal.failed(5, "boom");
        journal.rollback(6, "m", 2, 3);

        let replay = journal.replay_full().unwrap();
        assert_eq!(replay.jobs.len(), 1, "generation jobs keep folding");
        assert_eq!(replay.trains.len(), 4);
        assert_eq!(replay.trains[0].state, TrainReplayState::Interrupted);
        assert_eq!(replay.trains[0].spec, spec);
        assert!(matches!(
            replay.trains[1].state,
            TrainReplayState::Promoted { version: 2, .. }
        ));
        assert!(matches!(
            replay.trains[2].state,
            TrainReplayState::Rejected(_)
        ));
        assert_eq!(
            replay.trains[3].state,
            TrainReplayState::Failed("boom".into())
        );
        assert_eq!(
            replay.rollbacks,
            vec![RollbackRecord {
                id: 6,
                model: "m".into()
            }]
        );
        // The legacy view still returns only generation jobs.
        assert_eq!(journal.replay().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(journal.dir());
    }

    /// Compaction must retain training jobs and rollback records — the
    /// snapshot replays to the same training state the log did.
    #[test]
    fn compaction_retains_train_records() {
        let journal = temp_journal("train_compact");
        let spec = json!({"model": "m", "epochs": 4});
        journal.train_accepted(1, "m", &spec);
        journal.running(1);
        journal.epoch(1, 1, 4, 0.9);
        journal.train_accepted(2, "m", &spec);
        journal.promoted(2, 5, &json!({"candidate_p95": 2.0}));
        journal.rollback(3, "m", 5, 6);

        let before = journal.replay_full().unwrap();
        let count = journal.compact().unwrap();
        assert_eq!(count, 3, "two trains + one rollback in the snapshot");
        assert_eq!(journal.log_len(), 0);

        let after = journal.replay_full().unwrap();
        assert_eq!(after.trains.len(), 2);
        assert_eq!(after.trains[0].state, TrainReplayState::Interrupted);
        assert_eq!(after.trains[0].spec, spec);
        assert_eq!(after.trains[1].state, before.trains[1].state);
        assert_eq!(after.rollbacks, before.rollbacks);
        let _ = std::fs::remove_dir_all(journal.dir());
    }

    /// Two-owner protection: a lock held by a *running* process (pid 1 is
    /// always alive) makes a second open fail fast with a clear error; a
    /// lock left by a dead process is taken over; a graceful drop releases
    /// the lock.
    #[test]
    fn lockfile_blocks_second_owner_and_recovers_stale() {
        let dir = temp_dir("lock");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(LOCK_FILE), "1").unwrap();
        let err = Journal::open(&dir, sam_obs::counter("test_journal_events")).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("owned by running process 1"),
            "unhelpful two-owner error: {msg}"
        );
        assert_eq!(
            std::fs::read_to_string(dir.join(LOCK_FILE)).unwrap(),
            "1",
            "a refused open must not clobber the holder's lock"
        );

        // Dead holder (u32::MAX is never a live pid): takeover.
        std::fs::write(dir.join(LOCK_FILE), u32::MAX.to_string()).unwrap();
        let journal = Journal::open(&dir, sam_obs::counter("test_journal_events")).unwrap();
        assert_eq!(
            std::fs::read_to_string(dir.join(LOCK_FILE)).unwrap(),
            std::process::id().to_string()
        );
        journal.accepted(1, "m", 2, &config(7));

        // Graceful close releases the lock for the next owner.
        drop(journal);
        assert!(!dir.join(LOCK_FILE).exists());
        let reopened = Journal::open(&dir, sam_obs::counter("test_journal_events")).unwrap();
        assert_eq!(reopened.replay_full().unwrap().jobs.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Appends framed with CRC: every line round-trips through
    /// `line_payload`, and a flipped bit is rejected.
    #[test]
    fn framing_round_trips_and_rejects_flips() {
        let json = r#"{"event":"running","job":9}"#;
        let line = frame(json);
        assert_eq!(line_payload(&line), Some(json));
        let mut flipped = line.into_bytes();
        let last = flipped.len() - 3;
        flipped[last] ^= 0x10;
        let flipped = String::from_utf8(flipped).unwrap();
        assert_eq!(line_payload(&flipped), None);
    }
}
