//! Versioned model registry with lock-light reads and hot swap.
//!
//! Each named slot holds an [`Arc<ModelEntry>`]; readers clone the `Arc` and
//! release the lock, so in-flight estimates keep using the model version they
//! resolved even while a reload swaps the slot underneath them. Versions are
//! per-name and bump on every swap, letting clients detect reloads.

use crate::error::ServeError;
use crate::sync::{Lock, RwLock};
use sam_ar::{PrefixTrie, SampleBatch, TrainReport};
use sam_core::{Sam, TrainedSam};
use sam_nn::BackendKind;
use sam_storage::{csv::read_csv, Database, Table};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// One registered model version.
pub struct ModelEntry {
    /// Registry name the model is addressed by.
    pub name: String,
    /// Monotone per-name version, starting at 1.
    pub version: u64,
    /// The trained pipeline (shared with in-flight requests and jobs).
    pub trained: Arc<TrainedSam>,
    /// Shared sampled-prefix trie for this exact model version: batched
    /// estimates reuse conditionals cached by earlier batches
    /// ([`sam_ar::estimate_cardinality_batch_shared`]). Living on the entry
    /// means a hot swap starts a fresh trie — a version bump is the only
    /// invalidation needed, because cached conditionals are pure functions
    /// of this version's weights.
    pub trie: Lock<PrefixTrie>,
    /// Reusable batch-major sample state for this model version: the
    /// batcher stacks each flush's requests into it, so steady-state
    /// serving performs no activation/logits matrix allocations. Like the
    /// trie, it lives on the entry so a hot swap starts fresh buffers
    /// sized for the new model.
    pub batch: Lock<SampleBatch>,
    /// The relations this model was trained to represent, when the
    /// operator attached them (the `data` field of `POST /models`, or the
    /// third part of a `--models name=path=datadir` spec). With reference
    /// data present the quality monitor scores sampled estimates against
    /// *exact* cardinalities; without it, against the f32 reference
    /// backend only.
    pub reference: Option<Arc<Database>>,
}

impl ModelEntry {
    /// Table names of the model's target schema.
    pub fn table_names(&self) -> Vec<String> {
        self.trained
            .db_schema()
            .tables()
            .iter()
            .map(|t| t.name.clone())
            .collect()
    }
}

/// How many superseded versions each name retains for rollback.
pub const HISTORY_CAP: usize = 4;

/// One named slot: the live version, the retained prior versions, and the
/// name's version counter. The counter lives on the slot — never derived
/// from the current entry — so versions stay unique and monotone even after
/// a rollback re-registers an older model, and so two concurrent loads
/// (e.g. `POST /models` racing journal replay) can never mint the same id:
/// assignment happens entirely under the registry write lock.
struct ModelSlot {
    current: Arc<ModelEntry>,
    /// Superseded versions, oldest first, at most [`HISTORY_CAP`].
    history: Vec<Arc<ModelEntry>>,
    /// Next version to mint for this name; starts at 2 once v1 exists.
    next_version: u64,
}

/// Concurrent name → model map. All methods take `&self`.
#[derive(Default)]
pub struct ModelRegistry {
    inner: RwLock<HashMap<String, ModelSlot>>,
    /// Inference backend forced onto every loaded model; `None` honours the
    /// backend recorded in each checkpoint.
    backend_override: Option<BackendKind>,
}

impl ModelRegistry {
    /// Empty registry honouring each checkpoint's recorded backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty registry that re-targets every model loaded through
    /// [`load_file`](Self::load_file) onto `backend` (the server's
    /// `--backend` flag). Models inserted programmatically keep whatever
    /// backend they were frozen with.
    pub fn with_backend_override(backend: Option<BackendKind>) -> Self {
        ModelRegistry {
            inner: RwLock::default(),
            backend_override: backend,
        }
    }

    /// Register (or hot-swap) `trained` under `name`; returns the new version.
    pub fn insert(&self, name: &str, trained: TrainedSam) -> u64 {
        self.insert_entry(name, trained, None)
    }

    /// Register (or hot-swap) `trained` under `name` with its reference
    /// relations attached, enabling exact-mode quality scoring.
    pub fn insert_with_reference(
        &self,
        name: &str,
        trained: TrainedSam,
        reference: Arc<Database>,
    ) -> u64 {
        self.insert_entry(name, trained, Some(reference))
    }

    fn insert_entry(
        &self,
        name: &str,
        trained: TrainedSam,
        reference: Option<Arc<Database>>,
    ) -> u64 {
        self.swap_in(name, Arc::new(trained), reference)
    }

    /// Swap `trained` in as the new current version of `name`, retiring the
    /// incumbent into the rollback history. The whole operation — version
    /// assignment included — runs under one write lock.
    fn swap_in(
        &self,
        name: &str,
        trained: Arc<TrainedSam>,
        reference: Option<Arc<Database>>,
    ) -> u64 {
        let mut map = self.inner.write();
        match map.get_mut(name) {
            Some(slot) => {
                let version = slot.next_version;
                slot.next_version += 1;
                let entry = Arc::new(ModelEntry {
                    name: name.to_string(),
                    version,
                    trained,
                    trie: Lock::new(PrefixTrie::new()),
                    batch: Lock::new(SampleBatch::new()),
                    reference,
                });
                let old = std::mem::replace(&mut slot.current, entry);
                slot.history.push(old);
                if slot.history.len() > HISTORY_CAP {
                    slot.history.remove(0);
                }
                version
            }
            None => {
                let entry = Arc::new(ModelEntry {
                    name: name.to_string(),
                    version: 1,
                    trained,
                    trie: Lock::new(PrefixTrie::new()),
                    batch: Lock::new(SampleBatch::new()),
                    reference,
                });
                map.insert(
                    name.to_string(),
                    ModelSlot {
                        current: entry,
                        history: Vec::new(),
                        next_version: 2,
                    },
                );
                1
            }
        }
    }

    /// Promote an already-shared trained model (a training job's candidate)
    /// as the new current version of `name`. Returns the minted version.
    pub fn promote(
        &self,
        name: &str,
        trained: Arc<TrainedSam>,
        reference: Option<Arc<Database>>,
    ) -> u64 {
        self.swap_in(name, trained, reference)
    }

    /// Re-promote a persisted candidate (a training job's `model.json`)
    /// under `name`, honouring the backend override and preserving the
    /// slot's current reference database — journal replay's path for
    /// re-applying a recorded promotion.
    pub(crate) fn promote_from_file(&self, name: &str, path: &Path) -> Result<u64, ServeError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ServeError::Internal(format!("cannot read candidate {path:?}: {e}")))?;
        let (model, db_schema) = sam_ar::load_model(&text)
            .map_err(|e| ServeError::Internal(format!("cannot load candidate {path:?}: {e}")))?;
        let model = match self.backend_override {
            Some(kind) => model.with_backend(kind),
            None => model,
        };
        let reference = self.get(name).and_then(|e| e.reference.clone());
        let report = TrainReport {
            epoch_losses: Vec::new(),
            constraints_processed: 0,
            wall_seconds: 0.0,
        };
        Ok(self.swap_in(
            name,
            Arc::new(Sam::from_frozen(db_schema, model, report)),
            reference,
        ))
    }

    /// Roll `name` back to its most recently superseded version. The
    /// restored model is re-registered under a **new** monotone version (so
    /// version-keyed caches and tries invalidate correctly) but serves the
    /// prior version's weights bit-for-bit. The rolled-back current is
    /// dropped from the slot — repeated rollbacks walk further back through
    /// the history rather than toggling. Returns
    /// `(new_version, restored_from_version)`.
    pub fn rollback(&self, name: &str) -> Result<(u64, u64), ServeError> {
        let mut map = self.inner.write();
        let slot = map
            .get_mut(name)
            .ok_or_else(|| ServeError::NotFound(format!("no model named {name:?}")))?;
        let prior = slot.history.pop().ok_or_else(|| {
            ServeError::Conflict(format!(
                "model {name:?} has no prior version to roll back to"
            ))
        })?;
        let version = slot.next_version;
        slot.next_version += 1;
        let restored_from = prior.version;
        slot.current = Arc::new(ModelEntry {
            name: name.to_string(),
            version,
            trained: prior.trained.clone(),
            trie: Lock::new(PrefixTrie::new()),
            batch: Lock::new(SampleBatch::new()),
            reference: prior.reference.clone(),
        });
        Ok((version, restored_from))
    }

    /// Load a persisted model (the `sam_ar::save_model` JSON format) from
    /// `path` and register it under `name`. A load of an already-registered
    /// name is a hot swap: the version bumps and new requests see the new
    /// model while in-flight ones finish on the old `Arc`.
    pub fn load_file(&self, name: &str, path: &str) -> Result<u64, ServeError> {
        self.load_file_with_data(name, path, None)
    }

    /// [`load_file`](Self::load_file), optionally also loading the model's
    /// reference relations from a directory of `{table}.csv` files (one per
    /// table of the model's target schema) so the quality monitor can score
    /// in exact mode.
    pub fn load_file_with_data(
        &self,
        name: &str,
        path: &str,
        data_dir: Option<&str>,
    ) -> Result<u64, ServeError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ServeError::BadRequest(format!("cannot read model file {path}: {e}")))?;
        let (model, db_schema) = sam_ar::load_model(&text)
            .map_err(|e| ServeError::BadRequest(format!("cannot load model {path}: {e}")))?;
        let model = match self.backend_override {
            Some(kind) => model.with_backend(kind),
            None => model,
        };
        let reference = match data_dir {
            Some(dir) => Some(Arc::new(load_reference_database(&db_schema, dir.as_ref())?)),
            None => None,
        };
        // Persisted models carry no training telemetry; serve with an empty report.
        let report = TrainReport {
            epoch_losses: Vec::new(),
            constraints_processed: 0,
            wall_seconds: 0.0,
        };
        Ok(self.insert_entry(name, Sam::from_frozen(db_schema, model, report), reference))
    }

    /// Resolve a model by name.
    pub fn get(&self, name: &str) -> Option<Arc<ModelEntry>> {
        self.inner.read().get(name).map(|s| s.current.clone())
    }

    /// Versions retained for rollback under `name`, oldest first.
    pub fn history_versions(&self, name: &str) -> Vec<u64> {
        self.inner
            .read()
            .get(name)
            .map(|s| s.history.iter().map(|e| e.version).collect())
            .unwrap_or_default()
    }

    /// All registered models, sorted by name.
    pub fn list(&self) -> Vec<Arc<ModelEntry>> {
        let mut entries: Vec<_> = self
            .inner
            .read()
            .values()
            .map(|s| s.current.clone())
            .collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        entries
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Read `{table}.csv` for every table of `schema` from `dir` and assemble
/// the reference [`Database`] (with integrity checking — this is
/// operator-supplied data, not bytes we persisted ourselves).
pub(crate) fn load_reference_database(
    schema: &sam_storage::DatabaseSchema,
    dir: &Path,
) -> Result<Database, ServeError> {
    let mut tables: Vec<Table> = Vec::new();
    for table_schema in schema.tables() {
        let path = dir.join(format!("{}.csv", table_schema.name));
        let file = std::fs::File::open(&path).map_err(|e| {
            ServeError::BadRequest(format!("cannot open reference data {path:?}: {e}"))
        })?;
        let table = read_csv(table_schema.clone(), std::io::BufReader::new(file))
            .map_err(|e| ServeError::BadRequest(format!("cannot parse {path:?}: {e}")))?;
        tables.push(table);
    }
    Database::new(schema.clone(), tables, true)
        .map_err(|e| ServeError::BadRequest(format!("reference data inconsistent: {e}")))
}
