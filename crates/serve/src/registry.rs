//! Versioned model registry with lock-light reads and hot swap.
//!
//! Each named slot holds an [`Arc<ModelEntry>`]; readers clone the `Arc` and
//! release the lock, so in-flight estimates keep using the model version they
//! resolved even while a reload swaps the slot underneath them. Versions are
//! per-name and bump on every swap, letting clients detect reloads.

use crate::error::ServeError;
use sam_ar::TrainReport;
use sam_core::{Sam, TrainedSam};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// One registered model version.
pub struct ModelEntry {
    /// Registry name the model is addressed by.
    pub name: String,
    /// Monotone per-name version, starting at 1.
    pub version: u64,
    /// The trained pipeline (shared with in-flight requests and jobs).
    pub trained: Arc<TrainedSam>,
}

impl ModelEntry {
    /// Table names of the model's target schema.
    pub fn table_names(&self) -> Vec<String> {
        self.trained
            .db_schema()
            .tables()
            .iter()
            .map(|t| t.name.clone())
            .collect()
    }
}

/// Concurrent name → model map. All methods take `&self`.
#[derive(Default)]
pub struct ModelRegistry {
    inner: RwLock<HashMap<String, Arc<ModelEntry>>>,
}

impl ModelRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or hot-swap) `trained` under `name`; returns the new version.
    pub fn insert(&self, name: &str, trained: TrainedSam) -> u64 {
        let mut map = self.inner.write().unwrap_or_else(|e| e.into_inner());
        let version = map.get(name).map_or(0, |e| e.version) + 1;
        map.insert(
            name.to_string(),
            Arc::new(ModelEntry {
                name: name.to_string(),
                version,
                trained: Arc::new(trained),
            }),
        );
        version
    }

    /// Load a persisted model (the `sam_ar::save_model` JSON format) from
    /// `path` and register it under `name`. A load of an already-registered
    /// name is a hot swap: the version bumps and new requests see the new
    /// model while in-flight ones finish on the old `Arc`.
    pub fn load_file(&self, name: &str, path: &str) -> Result<u64, ServeError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ServeError::BadRequest(format!("cannot read model file {path}: {e}")))?;
        let (model, db_schema) = sam_ar::load_model(&text)
            .map_err(|e| ServeError::BadRequest(format!("cannot load model {path}: {e}")))?;
        // Persisted models carry no training telemetry; serve with an empty report.
        let report = TrainReport {
            epoch_losses: Vec::new(),
            constraints_processed: 0,
            wall_seconds: 0.0,
        };
        Ok(self.insert(name, Sam::from_frozen(db_schema, model, report)))
    }

    /// Resolve a model by name.
    pub fn get(&self, name: &str) -> Option<Arc<ModelEntry>> {
        self.inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// All registered models, sorted by name.
    pub fn list(&self) -> Vec<Arc<ModelEntry>> {
        let mut entries: Vec<_> = self
            .inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .cloned()
            .collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        entries
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
