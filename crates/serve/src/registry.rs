//! Versioned model registry with lock-light reads and hot swap.
//!
//! Each named slot holds an [`Arc<ModelEntry>`]; readers clone the `Arc` and
//! release the lock, so in-flight estimates keep using the model version they
//! resolved even while a reload swaps the slot underneath them. Versions are
//! per-name and bump on every swap, letting clients detect reloads.

use crate::error::ServeError;
use crate::sync::{Lock, RwLock};
use sam_ar::{PrefixTrie, SampleBatch, TrainReport};
use sam_core::{Sam, TrainedSam};
use sam_nn::BackendKind;
use sam_storage::{csv::read_csv, Database, Table};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// One registered model version.
pub struct ModelEntry {
    /// Registry name the model is addressed by.
    pub name: String,
    /// Monotone per-name version, starting at 1.
    pub version: u64,
    /// The trained pipeline (shared with in-flight requests and jobs).
    pub trained: Arc<TrainedSam>,
    /// Shared sampled-prefix trie for this exact model version: batched
    /// estimates reuse conditionals cached by earlier batches
    /// ([`sam_ar::estimate_cardinality_batch_shared`]). Living on the entry
    /// means a hot swap starts a fresh trie — a version bump is the only
    /// invalidation needed, because cached conditionals are pure functions
    /// of this version's weights.
    pub trie: Lock<PrefixTrie>,
    /// Reusable batch-major sample state for this model version: the
    /// batcher stacks each flush's requests into it, so steady-state
    /// serving performs no activation/logits matrix allocations. Like the
    /// trie, it lives on the entry so a hot swap starts fresh buffers
    /// sized for the new model.
    pub batch: Lock<SampleBatch>,
    /// The relations this model was trained to represent, when the
    /// operator attached them (the `data` field of `POST /models`, or the
    /// third part of a `--models name=path=datadir` spec). With reference
    /// data present the quality monitor scores sampled estimates against
    /// *exact* cardinalities; without it, against the f32 reference
    /// backend only.
    pub reference: Option<Arc<Database>>,
}

impl ModelEntry {
    /// Table names of the model's target schema.
    pub fn table_names(&self) -> Vec<String> {
        self.trained
            .db_schema()
            .tables()
            .iter()
            .map(|t| t.name.clone())
            .collect()
    }
}

/// Concurrent name → model map. All methods take `&self`.
#[derive(Default)]
pub struct ModelRegistry {
    inner: RwLock<HashMap<String, Arc<ModelEntry>>>,
    /// Inference backend forced onto every loaded model; `None` honours the
    /// backend recorded in each checkpoint.
    backend_override: Option<BackendKind>,
}

impl ModelRegistry {
    /// Empty registry honouring each checkpoint's recorded backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty registry that re-targets every model loaded through
    /// [`load_file`](Self::load_file) onto `backend` (the server's
    /// `--backend` flag). Models inserted programmatically keep whatever
    /// backend they were frozen with.
    pub fn with_backend_override(backend: Option<BackendKind>) -> Self {
        ModelRegistry {
            inner: RwLock::default(),
            backend_override: backend,
        }
    }

    /// Register (or hot-swap) `trained` under `name`; returns the new version.
    pub fn insert(&self, name: &str, trained: TrainedSam) -> u64 {
        self.insert_entry(name, trained, None)
    }

    /// Register (or hot-swap) `trained` under `name` with its reference
    /// relations attached, enabling exact-mode quality scoring.
    pub fn insert_with_reference(
        &self,
        name: &str,
        trained: TrainedSam,
        reference: Arc<Database>,
    ) -> u64 {
        self.insert_entry(name, trained, Some(reference))
    }

    fn insert_entry(
        &self,
        name: &str,
        trained: TrainedSam,
        reference: Option<Arc<Database>>,
    ) -> u64 {
        let mut map = self.inner.write();
        let version = map.get(name).map_or(0, |e| e.version) + 1;
        map.insert(
            name.to_string(),
            Arc::new(ModelEntry {
                name: name.to_string(),
                version,
                trained: Arc::new(trained),
                trie: Lock::new(PrefixTrie::new()),
                batch: Lock::new(SampleBatch::new()),
                reference,
            }),
        );
        version
    }

    /// Load a persisted model (the `sam_ar::save_model` JSON format) from
    /// `path` and register it under `name`. A load of an already-registered
    /// name is a hot swap: the version bumps and new requests see the new
    /// model while in-flight ones finish on the old `Arc`.
    pub fn load_file(&self, name: &str, path: &str) -> Result<u64, ServeError> {
        self.load_file_with_data(name, path, None)
    }

    /// [`load_file`](Self::load_file), optionally also loading the model's
    /// reference relations from a directory of `{table}.csv` files (one per
    /// table of the model's target schema) so the quality monitor can score
    /// in exact mode.
    pub fn load_file_with_data(
        &self,
        name: &str,
        path: &str,
        data_dir: Option<&str>,
    ) -> Result<u64, ServeError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ServeError::BadRequest(format!("cannot read model file {path}: {e}")))?;
        let (model, db_schema) = sam_ar::load_model(&text)
            .map_err(|e| ServeError::BadRequest(format!("cannot load model {path}: {e}")))?;
        let model = match self.backend_override {
            Some(kind) => model.with_backend(kind),
            None => model,
        };
        let reference = match data_dir {
            Some(dir) => Some(Arc::new(load_reference_database(&db_schema, dir.as_ref())?)),
            None => None,
        };
        // Persisted models carry no training telemetry; serve with an empty report.
        let report = TrainReport {
            epoch_losses: Vec::new(),
            constraints_processed: 0,
            wall_seconds: 0.0,
        };
        Ok(self.insert_entry(name, Sam::from_frozen(db_schema, model, report), reference))
    }

    /// Resolve a model by name.
    pub fn get(&self, name: &str) -> Option<Arc<ModelEntry>> {
        self.inner.read().get(name).cloned()
    }

    /// All registered models, sorted by name.
    pub fn list(&self) -> Vec<Arc<ModelEntry>> {
        let mut entries: Vec<_> = self.inner.read().values().cloned().collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        entries
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Read `{table}.csv` for every table of `schema` from `dir` and assemble
/// the reference [`Database`] (with integrity checking — this is
/// operator-supplied data, not bytes we persisted ourselves).
fn load_reference_database(
    schema: &sam_storage::DatabaseSchema,
    dir: &Path,
) -> Result<Database, ServeError> {
    let mut tables: Vec<Table> = Vec::new();
    for table_schema in schema.tables() {
        let path = dir.join(format!("{}.csv", table_schema.name));
        let file = std::fs::File::open(&path).map_err(|e| {
            ServeError::BadRequest(format!("cannot open reference data {path:?}: {e}"))
        })?;
        let table = read_csv(table_schema.clone(), std::io::BufReader::new(file))
            .map_err(|e| ServeError::BadRequest(format!("cannot parse {path:?}: {e}")))?;
        tables.push(table);
    }
    Database::new(schema.clone(), tables, true)
        .map_err(|e| ServeError::BadRequest(format!("reference data inconsistent: {e}")))
}
