//! # sam-serve — concurrent model-serving subsystem
//!
//! Serves trained SAM models over HTTP for the two production workloads the
//! paper's pipeline produces: **cardinality estimation** (interactive, high
//! QPS) and **database generation** (long-running, asynchronous).
//!
//! Built entirely on `std` (TcpListener + threads + channels):
//!
//! * [`ModelRegistry`] — versioned, hot-swappable model store; reloads never
//!   disturb in-flight requests.
//! * [`Batcher`] — bounded micro-batching queue: concurrent estimates are
//!   fused into one batched progressive-sampling pass
//!   ([`sam_ar::estimate_cardinality_batch`]) with bit-identical results;
//!   a full queue is immediate 429 backpressure.
//! * [`JobRegistry`] — async generation jobs with stage/progress polling and
//!   cooperative cancellation ([`sam_core::JobControl`]).
//! * [`Journal`] — append-only on-disk job log ([`ServeConfig::journal_dir`]):
//!   completed jobs survive a restart (status + export), interrupted jobs
//!   resume bit-for-bit from their recorded seed
//!   ([`Server::replay_journal`]).
//! * [`TrainRegistry`] — train-as-a-service: `POST /train` ingests a
//!   streamed labelled workload (gzip/deflate request bodies accepted),
//!   trains a candidate on a background thread with journaled + checkpointed
//!   epochs (a SIGKILL mid-train resumes bit-for-bit on restart), shadow-
//!   evaluates it against the incumbent on a held-out slice, and promotes
//!   the winner as a new registry version — with
//!   `POST /models/{name}/rollback` to walk back a bad promotion.
//! * [`QualityMonitor`] — shadow-samples a fraction of live estimates and
//!   scores them off the hot path (exactly, against attached reference
//!   relations, or for parity against the f32 reference backend), keeping
//!   per-model-version sliding-window Q-Error stats behind `GET /quality`
//!   and streaming threshold breaches to a JSONL audit file.
//! * [`Server`] — hand-rolled HTTP/1.1 + JSON front end: **keep-alive
//!   connections by default** (pipelining honoured, idle timeout,
//!   per-connection request cap, negotiated `Connection` state echoed),
//!   streaming **chunked CSV/JSONL export** of finished jobs with bounded
//!   memory (≤ 64 KiB in flight per export), gzip/deflate content coding
//!   negotiated via `Accept-Encoding` ([`compress`] — a dependency-free
//!   DEFLATE), per-request deadlines, and graceful shutdown that drains
//!   queued estimates and running jobs.
//!
//! Operator guide (endpoints, flags, metrics, degradation):
//! `docs/SERVING.md` at the repository root.
//!
//! [`ServeConfig::journal_dir`]: server::ServeConfig::journal_dir
//! [`Server::replay_journal`]: server::Server::replay_journal

#![warn(missing_docs)]
// The vendored `json!` macro expands recursively per key; the estimate
// response document overflows the default limit.
#![recursion_limit = "512"]

pub mod batcher;
pub mod cache;
pub mod compress;
pub mod error;
pub mod http;
pub mod jobs;
pub mod journal;
pub mod metrics;
pub mod quality;
pub mod registry;
pub mod server;
pub mod sync;
pub mod training;

pub use batcher::{BatchReply, Batcher, EstimateJob};
pub use cache::{EstimateCache, EstimateKey};
pub use compress::{gunzip, zlib_decode, Coding, Encoder};
pub use error::ServeError;
pub use jobs::{JobRecord, JobRegistry, JobState};
pub use journal::{
    Journal, Replay, ReplayState, ReplayedJob, ReplayedTrain, RollbackRecord, TrainReplayState,
};
pub use metrics::ServeMetrics;
pub use quality::{QualityConfig, QualityCounters, QualityMonitor, QualityTask};
pub use registry::{ModelEntry, ModelRegistry};
pub use server::{ReplaySummary, ServeConfig, Server};
pub use training::{
    split_workload, SplitWorkload, TrainRecord, TrainRegistry, TrainSpec, TrainState,
};
