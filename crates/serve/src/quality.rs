//! Quality drift monitor: shadow-scores a sampled fraction of live
//! `/estimate` traffic and keeps per-model-version sliding-window Q-Error
//! statistics.
//!
//! The serving tier's throughput metrics say nothing about whether the
//! model's *answers* are still good — a drifting or mis-promoted model
//! looks healthy until someone runs an offline eval. This module closes
//! that gap on live traffic: the estimate path submits a configurable
//! fraction of answered requests (default 1%) to a background scorer,
//! which re-derives a reference answer and records the Q-Error:
//!
//! * **exact mode** — when the model entry carries its reference relations
//!   ([`crate::registry::ModelEntry::reference`]), the true cardinality is
//!   computed with [`sam_query::evaluate_cardinality`] and the Q-Error is
//!   real model error;
//! * **parity mode** — without reference data, the estimate is recomputed
//!   on a bit-exact f32 reference clone of the model
//!   ([`sam_ar::FrozenModel::reference_clone`], same query / samples /
//!   seed), so the Q-Error measures inference-backend divergence instead.
//!
//! Per (model, version) the monitor keeps a bounded sliding window of
//! Q-Errors (p50/p95/worst on demand), bumps an alert counter whenever a
//! score crosses the configured threshold, and appends threshold-crossing
//! offenders to a JSONL audit file whose lines `workgen mine` accepts as
//! seeds — the observe → mine → retrain loop.
//!
//! Scoring runs on one background thread behind a bounded channel:
//! submission is `try_send`, so the estimate hot path never blocks on the
//! monitor (a full queue increments a drop counter instead).

use crate::registry::ModelEntry;
use crate::sync::Lock;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sam_ar::{estimate_cardinality, FrozenModel};
use sam_metrics::q_error;
use sam_obs::{Counter, Gauge};
use sam_query::{evaluate_cardinality, Query};
use serde_json::{json, Value};
use std::collections::{BTreeMap, HashMap};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{SystemTime, UNIX_EPOCH};

/// Quality-monitor tunables (the `--quality-*` serve flags).
#[derive(Debug, Clone)]
pub struct QualityConfig {
    /// Fraction of answered `/estimate` requests to shadow-score, in
    /// `[0, 1]`. 0 disables the monitor.
    pub sample: f64,
    /// Sliding-window size per model version.
    pub window: usize,
    /// Q-Error above which a sample counts as an alert and is written to
    /// the audit file.
    pub alert_qerror: f64,
    /// JSONL audit file for threshold-crossing offenders; `None` keeps
    /// alerts in metrics only.
    pub audit_path: Option<PathBuf>,
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            sample: 0.01,
            window: 256,
            alert_qerror: 100.0,
            audit_path: None,
        }
    }
}

/// One answered estimate handed to the scorer.
pub struct QualityTask {
    /// Model entry the estimate ran against (pins the version).
    pub entry: Arc<ModelEntry>,
    /// The parsed query.
    pub query: Query,
    /// The estimate the client received.
    pub estimate: f64,
    /// Progressive-sampling paths used.
    pub samples: usize,
    /// RNG seed used (parity mode replays it exactly).
    pub seed: u64,
    /// Trace id of the originating request.
    pub trace_id: u64,
}

/// Counter bundle the monitor shares with the server's `/metrics` registry.
#[derive(Debug, Clone)]
pub struct QualityCounters {
    /// Estimates shadow-scored.
    pub samples: Arc<Counter>,
    /// Scores above the alert threshold.
    pub alerts: Arc<Counter>,
    /// Tasks dropped (scorer queue full or scoring failed).
    pub dropped: Arc<Counter>,
    /// Worst Q-Error currently in any model's sliding window.
    pub worst: Arc<Gauge>,
}

/// Sliding-window stats for one (model, version).
struct WindowStats {
    /// Most recent Q-Errors, oldest first, capped at the window size.
    qerrors: Vec<f64>,
    /// Worst Q-Error ever seen for this version (not just the window).
    all_time_worst: f64,
    /// Alert-threshold crossings for this version.
    alerts: u64,
    /// Scoring mode of the latest sample: "exact" or "parity".
    mode: &'static str,
}

impl WindowStats {
    fn new() -> WindowStats {
        WindowStats {
            qerrors: Vec::new(),
            all_time_worst: 0.0,
            alerts: 0,
            mode: "parity",
        }
    }

    fn push(&mut self, q: f64, window: usize) {
        if self.qerrors.len() == window.max(1) {
            self.qerrors.remove(0);
        }
        self.qerrors.push(q);
        if q > self.all_time_worst {
            self.all_time_worst = q;
        }
    }

    /// `p` in `[0, 1]` over the current window (nearest-rank).
    fn percentile(&self, p: f64) -> f64 {
        if self.qerrors.is_empty() {
            return 0.0;
        }
        let mut sorted = self.qerrors.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    fn worst_in_window(&self) -> f64 {
        self.qerrors.iter().copied().fold(0.0, f64::max)
    }
}

/// Shared between the submitting side and the scorer thread.
struct QualityShared {
    config: QualityConfig,
    counters: QualityCounters,
    /// (model, version) → window stats.
    windows: Lock<BTreeMap<(String, u64), WindowStats>>,
    /// Lazily built f32 reference clones for parity mode, keyed like
    /// `windows`. Bounded by the number of distinct versions scored.
    references: Lock<HashMap<(String, u64), Arc<FrozenModel>>>,
    /// Open audit sink (line-buffered; flushed per record so `workgen
    /// mine` can consume the file while the server runs).
    audit: Lock<Option<std::fs::File>>,
}

/// Handle owned by the server: sampling decision, task submission, report
/// rendering, shutdown.
pub struct QualityMonitor {
    shared: Arc<QualityShared>,
    tx: Lock<Option<SyncSender<QualityTask>>>,
    worker: Lock<Option<JoinHandle<()>>>,
    /// Every `sample_every`-th estimate is scored (0 = never).
    sample_every: u64,
    submitted: AtomicU64,
}

impl QualityMonitor {
    /// Start the scorer thread (no thread when sampling is disabled).
    pub fn start(config: QualityConfig, counters: QualityCounters) -> QualityMonitor {
        let sample_every = if config.sample <= 0.0 {
            0
        } else {
            (1.0 / config.sample.min(1.0)).round().max(1.0) as u64
        };
        let audit = config.audit_path.as_ref().and_then(|path| {
            std::fs::File::options()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| eprintln!("[quality] cannot open audit file {path:?}: {e}"))
                .ok()
        });
        let shared = Arc::new(QualityShared {
            config,
            counters,
            windows: Lock::new(BTreeMap::new()),
            references: Lock::new(HashMap::new()),
            audit: Lock::new(audit),
        });
        let (tx, worker) = if sample_every > 0 {
            let (tx, rx) = std::sync::mpsc::sync_channel::<QualityTask>(64);
            let worker_shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name("sam-serve-quality".to_string())
                .spawn(move || {
                    while let Ok(task) = rx.recv() {
                        score_task(&worker_shared, &task);
                    }
                })
                .expect("spawn quality scorer");
            (Some(tx), Some(handle))
        } else {
            (None, None)
        };
        QualityMonitor {
            shared,
            tx: Lock::new(tx),
            worker: Lock::new(worker),
            sample_every,
            submitted: AtomicU64::new(0),
        }
    }

    /// Whether the next answered estimate should be shadow-scored
    /// (counter-based: every `round(1/sample)`-th call returns true).
    pub fn should_sample(&self) -> bool {
        if self.sample_every == 0 {
            return false;
        }
        self.submitted
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.sample_every)
    }

    /// Hand a task to the scorer without blocking; a full queue counts a
    /// drop instead of stalling the estimate path.
    pub fn submit(&self, task: QualityTask) {
        let guard = self.tx.lock();
        let Some(tx) = guard.as_ref() else { return };
        match tx.try_send(task) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.shared.counters.dropped.inc();
            }
        }
    }

    /// The `GET /quality` document.
    pub fn report(&self) -> Value {
        let windows = self.shared.windows.lock();
        let models: Vec<Value> = windows
            .iter()
            .map(|((model, version), stats)| {
                json!({
                    "model": model.clone(),
                    "version": *version,
                    "mode": stats.mode,
                    "window": stats.qerrors.len(),
                    "p50_qerror": stats.percentile(0.50),
                    "p95_qerror": stats.percentile(0.95),
                    "worst_qerror": stats.worst_in_window(),
                    "all_time_worst_qerror": stats.all_time_worst,
                    "alerts": stats.alerts,
                })
            })
            .collect();
        json!({
            "sample": self.shared.config.sample,
            "window": self.shared.config.window,
            "alert_qerror": self.shared.config.alert_qerror,
            "audit_path": self.shared.config.audit_path.as_ref()
                .map_or(Value::Null, |p| json!(p.display().to_string())),
            "samples": self.shared.counters.samples.get(),
            "alerts": self.shared.counters.alerts.get(),
            "dropped": self.shared.counters.dropped.get(),
            "models": Value::Array(models),
        })
    }

    /// Stop accepting tasks, drain the queue, join the scorer, flush the
    /// audit file. Idempotent.
    pub fn shutdown(&self) {
        drop(self.tx.lock().take());
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
        if let Some(file) = self.shared.audit.lock().as_mut() {
            let _ = file.flush();
        }
    }
}

impl Drop for QualityMonitor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Score one task and fold the result into the shared state.
fn score_task(shared: &QualityShared, task: &QualityTask) {
    // Estimation can panic on a malformed model; a scoring panic must not
    // kill the monitor thread.
    let scored = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| score(shared, task)));
    match scored {
        Ok(Some((truth, mode))) => record(shared, task, truth, mode),
        Ok(None) | Err(_) => shared.counters.dropped.inc(),
    }
}

/// Reference answer for the task: exact truth when the entry carries its
/// relations, f32-reference re-estimate otherwise.
fn score(shared: &QualityShared, task: &QualityTask) -> Option<(f64, &'static str)> {
    if let Some(db) = &task.entry.reference {
        let truth = evaluate_cardinality(db, &task.query).ok()?;
        return Some((truth as f64, "exact"));
    }
    let key = (task.entry.name.clone(), task.entry.version);
    let reference = {
        let mut cache = shared.references.lock();
        Arc::clone(
            cache
                .entry(key)
                .or_insert_with(|| Arc::new(task.entry.trained.model().reference_clone())),
        )
    };
    let mut rng = StdRng::seed_from_u64(task.seed);
    let truth = estimate_cardinality(&reference, &task.query, task.samples, &mut rng).ok()?;
    Some((truth, "parity"))
}

/// Fold a scored sample into windows, counters, and the audit file.
fn record(shared: &QualityShared, task: &QualityTask, truth: f64, mode: &'static str) {
    let q = q_error(task.estimate, truth);
    shared.counters.samples.inc();
    let alert = q > shared.config.alert_qerror;
    let worst_anywhere;
    {
        let mut windows = shared.windows.lock();
        let stats = windows
            .entry((task.entry.name.clone(), task.entry.version))
            .or_insert_with(WindowStats::new);
        stats.mode = mode;
        stats.push(q, shared.config.window);
        if alert {
            stats.alerts += 1;
        }
        worst_anywhere = windows
            .values()
            .map(WindowStats::worst_in_window)
            .fold(0.0, f64::max);
    }
    shared.counters.worst.set(worst_anywhere);
    if alert {
        shared.counters.alerts.inc();
        append_audit(shared, task, truth, q, mode);
    }
}

/// Append one JSONL audit record (a shape `workgen mine` reads as seeds).
fn append_audit(shared: &QualityShared, task: &QualityTask, truth: f64, q: f64, mode: &str) {
    let mut guard = shared.audit.lock();
    let Some(file) = guard.as_mut() else { return };
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0);
    // Exact-mode truth is integral; emit it as an integer so the seed
    // reader treats it as a trusted cardinality label.
    let truth_value = if mode == "exact" && truth.fract() == 0.0 {
        json!(truth as u64)
    } else {
        json!(truth)
    };
    let line = json!({
        "ts_ms": ts_ms,
        "model": task.entry.name.clone(),
        "version": task.entry.version,
        "sql": task.query.to_string(),
        "estimate": task.estimate,
        "truth": truth_value,
        "q_error": q,
        "mode": mode,
        "trace_id": task.trace_id,
    });
    let text = serde_json::to_string(&line).unwrap_or_default();
    let _ = writeln!(file, "{text}");
    let _ = file.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_fraction_maps_to_stride() {
        let counters = test_counters();
        let m = QualityMonitor::start(
            QualityConfig {
                sample: 0.25,
                ..QualityConfig::default()
            },
            counters,
        );
        let hits = (0..100).filter(|_| m.should_sample()).count();
        assert_eq!(hits, 25);
        m.shutdown();
    }

    #[test]
    fn zero_sampling_disables_monitor() {
        let m = QualityMonitor::start(
            QualityConfig {
                sample: 0.0,
                ..QualityConfig::default()
            },
            test_counters(),
        );
        assert!((0..100).all(|_| !m.should_sample()));
        // No worker thread to join; shutdown is a no-op.
        m.shutdown();
    }

    #[test]
    fn window_stats_cap_and_percentiles() {
        let mut s = WindowStats::new();
        for q in [1.0, 2.0, 3.0, 4.0, 100.0] {
            s.push(q, 4);
        }
        // Window capped at 4: the 1.0 fell out.
        assert_eq!(s.qerrors, vec![2.0, 3.0, 4.0, 100.0]);
        assert_eq!(s.all_time_worst, 100.0);
        assert_eq!(s.percentile(0.5), 3.0);
        assert_eq!(s.percentile(1.0), 100.0);
        assert_eq!(s.worst_in_window(), 100.0);
    }

    fn test_counters() -> QualityCounters {
        let registry = sam_obs::Registry::new();
        QualityCounters {
            samples: registry.counter("q_samples_total"),
            alerts: registry.counter("q_alerts_total"),
            dropped: registry.counter("q_dropped_total"),
            worst: registry.gauge("q_worst"),
        }
    }
}
