//! LRU cache of completed estimates, sitting in front of the batcher.
//!
//! Estimation is deterministic given (model version, canonical query,
//! sample count, seed) — requests repeat heavily in serving traffic
//! (dashboards, retried optimizer calls) — so a repeated request can be
//! answered without touching the inference queue at all. The model version
//! is part of the key, so a hot swap naturally invalidates every cached
//! entry of the old version without any flush coordination.
//!
//! Implementation: a `HashMap` plus an access-stamp queue with lazy
//! deletion — no per-entry linked list. Each hit pushes a fresh stamp;
//! eviction pops stamps until one still matches its entry's latest stamp
//! (stale stamps are skipped). The queue is bounded to a small multiple of
//! capacity by compaction, keeping both operations amortised O(1). All
//! methods take `&self`; the single mutex is held only for map/queue
//! bookkeeping, never across an estimate.

use crate::sync::Lock;
use std::collections::{HashMap, VecDeque};

/// Cache key: everything that determines an estimate's value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EstimateKey {
    /// Registry name of the model.
    pub model: String,
    /// Model version (bumps on hot swap ⇒ old entries unreachable).
    pub version: u64,
    /// [`sam_query::Query::canonical_string`] of the parsed query.
    pub query: String,
    /// Progressive-sampling path count.
    pub samples: usize,
    /// Request RNG seed.
    pub seed: u64,
}

#[derive(Debug)]
struct Entry {
    value: f64,
    stamp: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<EstimateKey, Entry>,
    /// (stamp, key) in stamp order; entries whose stamp no longer matches
    /// the map are stale and skipped at eviction.
    order: VecDeque<(u64, EstimateKey)>,
    next_stamp: u64,
}

/// Bounded LRU map from [`EstimateKey`] to the computed estimate.
/// Capacity 0 disables caching entirely (every lookup misses, inserts are
/// dropped).
#[derive(Debug)]
pub struct EstimateCache {
    capacity: usize,
    inner: Lock<Inner>,
}

impl EstimateCache {
    /// Cache holding at most `capacity` estimates.
    pub fn new(capacity: usize) -> Self {
        EstimateCache {
            capacity,
            inner: Lock::new(Inner::default()),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when no estimates are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &EstimateKey) -> Option<f64> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.inner.lock();
        let stamp = inner.next_stamp;
        let value = match inner.map.get_mut(key) {
            None => return None,
            Some(entry) => {
                entry.stamp = stamp;
                entry.value
            }
        };
        inner.next_stamp += 1;
        inner.order.push_back((stamp, key.clone()));
        Self::compact(&mut inner, self.capacity);
        Some(value)
    }

    /// Insert (or refresh) `key` → `value`, evicting the least-recently
    /// used entry when full.
    pub fn insert(&self, key: EstimateKey, value: f64) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        inner.map.insert(key.clone(), Entry { value, stamp });
        inner.order.push_back((stamp, key));
        while inner.map.len() > self.capacity {
            match inner.order.pop_front() {
                None => break,
                Some((stamp, key)) => {
                    // Only evict if this is the entry's *latest* stamp;
                    // otherwise the stamp is stale and the entry was
                    // touched more recently.
                    if inner.map.get(&key).is_some_and(|e| e.stamp == stamp) {
                        inner.map.remove(&key);
                    }
                }
            }
        }
        Self::compact(&mut inner, self.capacity);
    }

    /// Drop stale stamps once they dominate the queue, restoring
    /// `order.len() == map.len()` — so the queue stays O(capacity) and
    /// every operation is amortised O(1).
    fn compact(inner: &mut Inner, capacity: usize) {
        if inner.order.len() <= capacity.saturating_mul(4).max(16) {
            return;
        }
        let Inner { map, order, .. } = inner;
        order.retain(|(stamp, key)| map.get(key).is_some_and(|e| e.stamp == *stamp));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(q: &str, seed: u64) -> EstimateKey {
        EstimateKey {
            model: "m".into(),
            version: 1,
            query: q.into(),
            samples: 100,
            seed,
        }
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = EstimateCache::new(4);
        assert_eq!(cache.get(&key("q1", 0)), None);
        cache.insert(key("q1", 0), 42.0);
        assert_eq!(cache.get(&key("q1", 0)), Some(42.0));
        // Any key component change misses.
        assert_eq!(cache.get(&key("q1", 1)), None);
        assert_eq!(
            cache.get(&EstimateKey {
                version: 2,
                ..key("q1", 0)
            }),
            None
        );
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = EstimateCache::new(2);
        cache.insert(key("a", 0), 1.0);
        cache.insert(key("b", 0), 2.0);
        // Touch "a" so "b" becomes the LRU entry.
        assert_eq!(cache.get(&key("a", 0)), Some(1.0));
        cache.insert(key("c", 0), 3.0);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key("a", 0)), Some(1.0));
        assert_eq!(cache.get(&key("b", 0)), None, "LRU entry evicted");
        assert_eq!(cache.get(&key("c", 0)), Some(3.0));
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = EstimateCache::new(0);
        cache.insert(key("a", 0), 1.0);
        assert_eq!(cache.get(&key("a", 0)), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn stamp_queue_stays_bounded() {
        let cache = EstimateCache::new(2);
        cache.insert(key("a", 0), 1.0);
        for _ in 0..1000 {
            assert_eq!(cache.get(&key("a", 0)), Some(1.0));
        }
        let inner = cache.inner.lock();
        assert!(
            inner.order.len() <= 2 * 4 + 16 + 1,
            "queue grew to {}",
            inner.order.len()
        );
    }
}
