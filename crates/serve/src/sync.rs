//! Poison-recovering synchronisation primitives.
//!
//! A `std::sync::Mutex` poisons when a holder panics, and every *later*
//! `.lock().unwrap()` then panics too — one crashed worker takes down every
//! thread that shares its state. The serving layer's invariants are all
//! single-operation (counters, map inserts, queue pops), so a panic mid-hold
//! cannot leave half-updated state worth refusing over; recovering the guard
//! is always the right call. [`Lock`] and [`RwLock`] bake that policy in so
//! call sites can't forget it.
//!
//! Neither wrapper exposes `std`'s poison flag, and no `Condvar` is used in
//! this crate, so the raw `std::sync::MutexGuard` never needs to escape.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutex whose `lock()` recovers from poisoning instead of panicking.
#[derive(Debug, Default)]
pub struct Lock<T>(StdMutex<T>);

impl<T> Lock<T> {
    /// Wrap `value` in a poison-recovering mutex.
    pub fn new(value: T) -> Self {
        Lock(StdMutex::new(value))
    }

    /// Acquire the lock, clearing any poison left by a panicked holder.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards recover from poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a poison-recovering reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Acquire a shared guard, clearing any poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive guard, clearing any poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// Best-effort text of a payload caught by `std::panic::catch_unwind`.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    #[test]
    fn lock_survives_poisoning() {
        let lock = Arc::new(Lock::new(7usize));
        let poisoner = Arc::clone(&lock);
        let _ = catch_unwind(AssertUnwindSafe(move || {
            let _guard = poisoner.lock();
            panic!("poison the mutex");
        }));
        assert_eq!(*lock.lock(), 7, "lock still usable after a panic");
        *lock.lock() = 9;
        assert_eq!(*lock.lock(), 9);
    }

    #[test]
    fn rwlock_survives_poisoning() {
        let lock = Arc::new(RwLock::new(vec![1, 2]));
        let poisoner = Arc::clone(&lock);
        let _ = catch_unwind(AssertUnwindSafe(move || {
            let _guard = poisoner.write();
            panic!("poison the rwlock");
        }));
        assert_eq!(lock.read().len(), 2);
        lock.write().push(3);
        assert_eq!(lock.read().len(), 3);
    }
}
