//! Server-side request counters and latency tracking for `/metrics`.

use sam_metrics::LatencyHistogram;
use serde_json::{json, Value};
use std::sync::atomic::{AtomicU64, Ordering};

/// Cheap concurrent counters + an estimate-latency histogram. One instance
/// per server, shared by every connection handler and inference worker.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// All HTTP requests routed (any endpoint, any outcome).
    pub http_requests: AtomicU64,
    /// `/estimate` calls answered 200.
    pub estimates_ok: AtomicU64,
    /// `/estimate` calls answered 4xx/5xx (excluding 429s/504s below).
    pub estimate_errors: AtomicU64,
    /// `/estimate` calls rejected with 429 (queue full).
    pub rejected_overload: AtomicU64,
    /// `/estimate` calls that missed their deadline (504).
    pub deadline_exceeded: AtomicU64,
    /// Micro-batches executed by inference workers.
    pub batches: AtomicU64,
    /// Requests summed over those micro-batches (ratio = mean batch size).
    pub batched_requests: AtomicU64,
    /// Generation jobs accepted.
    pub jobs_started: AtomicU64,
    /// Generation jobs that reached a terminal state.
    pub jobs_finished: AtomicU64,
    /// End-to-end `/estimate` latency (arrival → reply).
    pub estimate_latency: LatencyHistogram,
}

impl ServeMetrics {
    /// Increment a counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// JSON rendering for the `/metrics` endpoint.
    pub fn to_json(&self) -> Value {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let batches = load(&self.batches);
        let batched = load(&self.batched_requests);
        let lat = self.estimate_latency.snapshot();
        json!({
            "http_requests": load(&self.http_requests),
            "estimates_ok": load(&self.estimates_ok),
            "estimate_errors": load(&self.estimate_errors),
            "rejected_overload": load(&self.rejected_overload),
            "deadline_exceeded": load(&self.deadline_exceeded),
            "batches": batches,
            "batched_requests": batched,
            "mean_batch_size": if batches == 0 { 0.0 } else { batched as f64 / batches as f64 },
            "jobs_started": load(&self.jobs_started),
            "jobs_finished": load(&self.jobs_finished),
            "estimate_latency_ms": {
                "count": lat.count,
                "mean": lat.mean_ms,
                "p50": lat.p50_ms,
                "p90": lat.p90_ms,
                "p95": lat.p95_ms,
                "p99": lat.p99_ms,
                "max": lat.max_ms,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn json_reflects_counters() {
        let m = ServeMetrics::default();
        ServeMetrics::bump(&m.http_requests);
        ServeMetrics::bump(&m.http_requests);
        ServeMetrics::bump(&m.batches);
        m.batched_requests.fetch_add(8, Ordering::Relaxed);
        m.estimate_latency.record(Duration::from_millis(3));
        let v = m.to_json();
        assert_eq!(v.get("http_requests").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("mean_batch_size").unwrap().as_f64(), Some(8.0));
        let lat = v.get("estimate_latency_ms").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(1));
    }
}
