//! Server-side request counters and latency tracking for `/metrics`.
//!
//! All metrics live on a per-server [`sam_obs::Registry`] (so two servers in
//! one process never mix counts) and are exposed two ways:
//!
//! * `GET /metrics` — the original flat JSON document, shape-stable since
//!   the subsystem landed (dashboards parse it);
//! * `GET /metrics?format=prometheus` — Prometheus text exposition of the
//!   server registry *plus* the process-global registry (training /
//!   inference / pipeline instrumentation), rendered by `sam-obs`.
//!
//! The handles below are `Arc`s over atomics; bumping one is a single
//! relaxed `fetch_add` — the registry lock is only taken at construction.

use sam_metrics::LatencyHistogram;
use sam_obs::{Counter, Exemplars, Gauge, Registry};
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::Instant;

/// Cheap concurrent counters + an estimate-latency histogram. One instance
/// per server, shared by every connection handler and inference worker.
#[derive(Debug)]
pub struct ServeMetrics {
    registry: Registry,
    /// All HTTP requests routed (any endpoint, any outcome).
    pub http_requests: Arc<Counter>,
    /// TCP connections accepted. With keep-alive clients this grows much
    /// slower than `http_requests`; the ratio is the mean requests per
    /// connection.
    pub http_connections: Arc<Counter>,
    /// `/estimate` calls answered 200.
    pub estimates_ok: Arc<Counter>,
    /// `/estimate` calls answered 4xx/5xx (excluding 429s/504s below).
    pub estimate_errors: Arc<Counter>,
    /// `/estimate` calls rejected with 429 (queue full).
    pub rejected_overload: Arc<Counter>,
    /// `/estimate` calls that missed their deadline (504).
    pub deadline_exceeded: Arc<Counter>,
    /// Micro-batches executed by inference workers.
    pub batches: Arc<Counter>,
    /// Requests summed over those micro-batches (ratio = mean batch size).
    pub batched_requests: Arc<Counter>,
    /// Running mean batch size (batched_requests / batches; 0 until the
    /// first batch). Updated by the workers after every batch.
    pub mean_batch_size: Arc<Gauge>,
    /// `/estimate` calls answered from the LRU estimate cache (no batcher
    /// round trip).
    pub cache_hits: Arc<Counter>,
    /// `/estimate` calls that missed the cache and went to the batcher.
    pub cache_misses: Arc<Counter>,
    /// Generation jobs accepted.
    pub jobs_started: Arc<Counter>,
    /// Generation jobs that reached a terminal state.
    pub jobs_finished: Arc<Counter>,
    /// Training jobs accepted (`POST /train`).
    pub trains_started: Arc<Counter>,
    /// Training jobs whose candidate won shadow evaluation and was
    /// hot-swapped in as a new model version.
    pub trains_promoted: Arc<Counter>,
    /// Training jobs whose candidate lost shadow evaluation (incumbent
    /// kept serving).
    pub trains_rejected: Arc<Counter>,
    /// Training jobs that failed before a verdict.
    pub trains_failed: Arc<Counter>,
    /// Model rollbacks performed (`POST /models/{name}/rollback`).
    pub rollbacks: Arc<Counter>,
    /// Relation exports streamed to completion (`GET /jobs/{id}/export`).
    pub exports_ok: Arc<Counter>,
    /// Events appended to the on-disk job journal (0 without
    /// `--journal-dir`).
    pub journal_events: Arc<Counter>,
    /// Jobs reconstructed from the journal at startup (completed reloads +
    /// interrupted resumes + terminal re-inserts).
    pub jobs_replayed: Arc<Counter>,
    /// Corrupt journal records quarantined during recovery or skipped
    /// during replay.
    pub journal_corrupt_records: Arc<Counter>,
    /// Torn journal tails truncated during recovery.
    pub journal_torn_tails: Arc<Counter>,
    /// Journal compactions performed (manual or replay-triggered).
    pub journal_compactions: Arc<Counter>,
    /// Worker or job threads that panicked and were recovered (the request
    /// got a 500 / the job failed instead of hanging forever).
    pub worker_panics: Arc<Counter>,
    /// End-to-end `/estimate` latency (arrival → reply).
    pub estimate_latency: Arc<LatencyHistogram>,
    /// Per-bucket exemplars for `estimate_latency`: the latest trace id
    /// that landed in each latency bucket, rendered in the Prometheus
    /// exposition so slow buckets link to flight-recorder entries.
    pub estimate_exemplars: Arc<Exemplars>,
    /// Estimates shadow-scored by the quality monitor.
    pub quality_samples: Arc<Counter>,
    /// Shadow scores whose Q-Error crossed the alert threshold.
    pub quality_alerts: Arc<Counter>,
    /// Shadow-scoring tasks dropped (scorer queue full or scoring failed).
    pub quality_dropped: Arc<Counter>,
    /// Worst Q-Error currently in any model's sliding window.
    pub quality_worst_qerror: Arc<Gauge>,
    /// Seconds since the server started (derived at render time).
    pub uptime_seconds: Arc<Gauge>,
    /// Estimate-cache hit ratio `hits / (hits + misses)` (derived at
    /// render time; 0 before any lookup).
    pub cache_hit_ratio: Arc<Gauge>,
    /// When this server's metrics were created (≈ server start).
    pub started: Instant,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        let registry = Registry::new();
        for (name, help) in [
            ("sam_http_requests_total", "HTTP requests routed"),
            ("sam_estimates_ok_total", "Estimates answered 200"),
            (
                "sam_estimate_latency_seconds",
                "End-to-end /estimate latency (arrival to reply)",
            ),
            (
                "sam_estimate_cache_hit_ratio",
                "Estimate-cache hits / lookups",
            ),
            (
                "sam_quality_samples_total",
                "Estimates shadow-scored by the quality drift monitor",
            ),
            (
                "sam_quality_alerts_total",
                "Shadow scores whose Q-Error crossed the alert threshold",
            ),
            (
                "sam_quality_worst_qerror",
                "Worst Q-Error in any model's sliding window",
            ),
            ("sam_uptime_seconds", "Seconds since server start"),
            (
                "sam_build_info",
                "Constant 1; version/git_sha/backend in labels",
            ),
            ("sam_worker_panics_total", "Recovered worker panics"),
        ] {
            registry.describe(name, help);
        }
        let (estimate_latency, estimate_exemplars) =
            registry.histogram_with_exemplars("sam_estimate_latency_seconds");
        ServeMetrics {
            http_requests: registry.counter("sam_http_requests_total"),
            http_connections: registry.counter("sam_http_connections_total"),
            estimates_ok: registry.counter("sam_estimates_ok_total"),
            estimate_errors: registry.counter("sam_estimate_errors_total"),
            rejected_overload: registry.counter("sam_rejected_overload_total"),
            deadline_exceeded: registry.counter("sam_deadline_exceeded_total"),
            batches: registry.counter("sam_batches_total"),
            batched_requests: registry.counter("sam_batched_requests_total"),
            mean_batch_size: registry.gauge("sam_mean_batch_size"),
            cache_hits: registry.counter("sam_estimate_cache_hits_total"),
            cache_misses: registry.counter("sam_estimate_cache_misses_total"),
            jobs_started: registry.counter("sam_jobs_started_total"),
            jobs_finished: registry.counter("sam_jobs_finished_total"),
            trains_started: registry.counter("sam_trains_started_total"),
            trains_promoted: registry.counter("sam_trains_promoted_total"),
            trains_rejected: registry.counter("sam_trains_rejected_total"),
            trains_failed: registry.counter("sam_trains_failed_total"),
            rollbacks: registry.counter("sam_rollbacks_total"),
            exports_ok: registry.counter("sam_exports_ok_total"),
            journal_events: registry.counter("sam_journal_events_total"),
            jobs_replayed: registry.counter("sam_jobs_replayed_total"),
            journal_corrupt_records: registry.counter("sam_journal_corrupt_records_total"),
            journal_torn_tails: registry.counter("sam_journal_torn_tails_total"),
            journal_compactions: registry.counter("sam_journal_compactions_total"),
            worker_panics: registry.counter("sam_worker_panics_total"),
            estimate_latency,
            estimate_exemplars,
            quality_samples: registry.counter("sam_quality_samples_total"),
            quality_alerts: registry.counter("sam_quality_alerts_total"),
            quality_dropped: registry.counter("sam_quality_dropped_total"),
            quality_worst_qerror: registry.gauge("sam_quality_worst_qerror"),
            uptime_seconds: registry.gauge("sam_uptime_seconds"),
            cache_hit_ratio: registry.gauge("sam_estimate_cache_hit_ratio"),
            started: Instant::now(),
            registry,
        }
    }
}

impl ServeMetrics {
    /// JSON rendering for the `/metrics` endpoint. The document shape is
    /// frozen (see `json_shape_is_backward_compatible`): every key is always
    /// present, including `mean_batch_size` — `0.0` before the first batch,
    /// never absent.
    pub fn to_json(&self) -> Value {
        self.refresh_derived();
        let batches = self.batches.get();
        let batched = self.batched_requests.get();
        let lat = self.estimate_latency.snapshot();
        json!({
            "http_requests": self.http_requests.get(),
            "http_connections": self.http_connections.get(),
            "estimates_ok": self.estimates_ok.get(),
            "estimate_errors": self.estimate_errors.get(),
            "rejected_overload": self.rejected_overload.get(),
            "deadline_exceeded": self.deadline_exceeded.get(),
            "batches": batches,
            "batched_requests": batched,
            "mean_batch_size": if batches == 0 { 0.0 } else { batched as f64 / batches as f64 },
            "cache_hits": self.cache_hits.get(),
            "cache_misses": self.cache_misses.get(),
            "jobs_started": self.jobs_started.get(),
            "jobs_finished": self.jobs_finished.get(),
            "trains_started": self.trains_started.get(),
            "trains_promoted": self.trains_promoted.get(),
            "trains_rejected": self.trains_rejected.get(),
            "trains_failed": self.trains_failed.get(),
            "rollbacks": self.rollbacks.get(),
            "exports_ok": self.exports_ok.get(),
            "journal_events": self.journal_events.get(),
            "jobs_replayed": self.jobs_replayed.get(),
            "journal_corrupt_records": self.journal_corrupt_records.get(),
            "journal_torn_tails": self.journal_torn_tails.get(),
            "journal_compactions": self.journal_compactions.get(),
            "worker_panics": self.worker_panics.get(),
            "quality_samples": self.quality_samples.get(),
            "quality_alerts": self.quality_alerts.get(),
            "quality_dropped": self.quality_dropped.get(),
            "quality_worst_qerror": self.quality_worst_qerror.get(),
            "uptime_seconds": self.uptime_seconds.get(),
            "cache_hit_ratio": self.cache_hit_ratio.get(),
            "estimate_latency_ms": {
                "count": lat.count,
                "mean": lat.mean_ms,
                "p50": lat.p50_ms,
                "p90": lat.p90_ms,
                "p95": lat.p95_ms,
                "p99": lat.p99_ms,
                "max": lat.max_ms,
            },
        })
    }

    /// The journal's counter bundle, wired to this server's registry.
    pub fn journal_counters(&self) -> crate::journal::JournalCounters {
        crate::journal::JournalCounters {
            events: Arc::clone(&self.journal_events),
            corrupt_records: Arc::clone(&self.journal_corrupt_records),
            torn_tails: Arc::clone(&self.journal_torn_tails),
            compactions: Arc::clone(&self.journal_compactions),
        }
    }

    /// The quality monitor's counter bundle, wired to this registry.
    pub fn quality_counters(&self) -> crate::quality::QualityCounters {
        crate::quality::QualityCounters {
            samples: Arc::clone(&self.quality_samples),
            alerts: Arc::clone(&self.quality_alerts),
            dropped: Arc::clone(&self.quality_dropped),
            worst: Arc::clone(&self.quality_worst_qerror),
        }
    }

    /// Publish build identity as the conventional constant-1 `build_info`
    /// gauge with the identity in labels. Called once at server start.
    pub fn set_build_info(&self, version: &str, git_sha: &str, backend: &str) {
        self.registry
            .gauge_with(
                "sam_build_info",
                &[
                    ("version", version),
                    ("git_sha", git_sha),
                    ("backend", backend),
                ],
            )
            .set(1.0);
    }

    /// Recompute the derived gauges (uptime, cache hit ratio) from their
    /// sources. Cheap; called at every render so scrapes are current.
    fn refresh_derived(&self) {
        self.uptime_seconds
            .set(self.started.elapsed().as_secs_f64());
        let hits = self.cache_hits.get();
        let lookups = hits + self.cache_misses.get();
        self.cache_hit_ratio.set(if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        });
    }

    /// Prometheus text exposition: this server's registry followed by the
    /// process-global one (training / inference / pipeline metrics). Metric
    /// names are disjoint between the two, so the concatenation is valid.
    pub fn render_prometheus(&self) -> String {
        self.refresh_derived();
        let mut out = self.registry.render_prometheus();
        out.push_str(&Registry::global().render_prometheus());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn json_reflects_counters() {
        let m = ServeMetrics::default();
        m.http_requests.inc();
        m.http_requests.inc();
        m.batches.inc();
        m.batched_requests.add(8);
        m.estimate_latency.record(Duration::from_millis(3));
        let v = m.to_json();
        assert_eq!(v.get("http_requests").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("mean_batch_size").unwrap().as_f64(), Some(8.0));
        let lat = v.get("estimate_latency_ms").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(1));
    }

    /// The `/metrics` JSON document is an API: every key the original
    /// implementation emitted must stay present (with the same types), and
    /// `mean_batch_size` must be `0.0` — not absent — before any batch runs.
    #[test]
    fn json_shape_is_backward_compatible() {
        let m = ServeMetrics::default();
        let v = m.to_json();
        for key in [
            "http_requests",
            "estimates_ok",
            "estimate_errors",
            "rejected_overload",
            "deadline_exceeded",
            "batches",
            "batched_requests",
            "jobs_started",
            "jobs_finished",
        ] {
            assert_eq!(v.get(key).and_then(Value::as_u64), Some(0), "key {key}");
        }
        assert_eq!(
            v.get("mean_batch_size").and_then(Value::as_f64),
            Some(0.0),
            "mean_batch_size must be present (0.0) even with zero batches"
        );
        let lat = v.get("estimate_latency_ms").expect("histogram object");
        for key in ["count", "mean", "p50", "p90", "p95", "p99", "max"] {
            assert!(lat.get(key).is_some(), "latency key {key}");
        }
    }

    #[test]
    fn prometheus_rendering_includes_server_metrics() {
        let m = ServeMetrics::default();
        m.batches.inc();
        m.batched_requests.add(4);
        m.mean_batch_size.set(4.0);
        m.estimate_latency.record(Duration::from_micros(250));
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE sam_batches_total counter"));
        assert!(text.contains("sam_batches_total 1"));
        assert!(text.contains("sam_mean_batch_size 4.0"));
        assert!(text.contains("# TYPE sam_estimate_latency_seconds histogram"));
        assert!(text.contains("sam_estimate_latency_seconds_bucket{le=\""));
        assert!(text.contains("sam_estimate_latency_seconds_count 1"));
    }
}
