//! Train-as-a-service: background training jobs with checkpointed resume,
//! shadow evaluation on a held-out slice, and gated auto-promotion.
//!
//! `POST /train?model=M&...` accepts a streamed labelled workload body
//! (interchange format, optionally gzip/deflate content-coded — see
//! [`crate::http`]), splits off a holdout slice, and trains a candidate
//! model for `M` on a background thread. Every epoch end is journaled (and
//! checkpointed via [`sam_ar::CheckpointConfig`]), so a server killed
//! mid-train resumes the job bit-for-bit from the last checkpoint on the
//! next [`Server::replay_journal`]. When training completes, the candidate
//! is **shadow-evaluated**: candidate and incumbent both estimate every
//! holdout query with the same sample budget and seed, and the candidate is
//! promoted only if its p95 Q-Error passes the absolute gate
//! ([`ServeConfig::promote_max_qerror`], overridable per request with
//! `max_qerror=`) *and* does not regress the incumbent (ties promote — a
//! fresh model with equal quality wins). Promotion persists the candidate
//! weights in the job directory *before* the journal's `promoted` commit
//! event, then hot-swaps it into the [`ModelRegistry`] as a new version;
//! the superseded version stays available for `POST /models/{name}/rollback`.
//!
//! [`Server::replay_journal`]: crate::server::Server::replay_journal
//! [`ServeConfig::promote_max_qerror`]: crate::server::ServeConfig::promote_max_qerror

use crate::error::ServeError;
use crate::journal::Journal;
use crate::metrics::ServeMetrics;
use crate::registry::{ModelEntry, ModelRegistry};
use crate::sync::Lock;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sam_ar::{estimate_cardinality, save_model, CheckpointConfig, FrozenModel, TrainControl};
use sam_core::{Sam, SamConfig, TrainedSam};
use sam_metrics::q_error;
use sam_query::{format_workload, read_labeled_workload, Workload};
use sam_storage::DatabaseStats;
use serde_json::{json, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Hard cap on training epochs per job.
const MAX_EPOCHS: usize = 10_000;
/// Hard cap on progressive-sampling paths per holdout evaluation.
const MAX_EVAL_SAMPLES: usize = 100_000;

/// Everything a `POST /train` request pins down, parsed from its query
/// string. The workload itself travels in the request body. The spec
/// round-trips through the journal's `train_accepted` record
/// ([`to_value`](TrainSpec::to_value) / [`from_value`](TrainSpec::from_value))
/// so an interrupted job resumes under exactly the parameters it was
/// accepted with.
#[derive(Debug, Clone)]
pub struct TrainSpec {
    /// Registry name to retrain; must already be registered (the incumbent
    /// supplies the target schema and competes in shadow evaluation).
    pub model: String,
    /// Training epochs (`epochs=`, default 20).
    pub epochs: usize,
    /// Queries per gradient step (`batch=`, default 32).
    pub batch: usize,
    /// Adam learning rate (`lr=`, default 5e-3).
    pub lr: f32,
    /// Weight-init / shuffle seed (`seed=`, default 0) — with the spec and
    /// workload fixed, training is deterministic in this seed.
    pub seed: u64,
    /// Hidden layer widths, comma-separated (`hidden=24,16`, default `16`).
    pub hidden: Vec<usize>,
    /// Auto-split holdout fraction (`holdout=`, default 0.2). Ignored when
    /// any body line carries an explicit `"holdout":true` field.
    pub holdout: f64,
    /// Progressive-sampling paths per holdout estimate (`eval_samples=`,
    /// default 200).
    pub eval_samples: usize,
    /// RNG seed for holdout estimates (`eval_seed=`, default 0); candidate
    /// and incumbent are scored with identical seeds.
    pub eval_seed: u64,
    /// Checkpoint every N epochs (`checkpoint_every=`, default 1).
    pub checkpoint_every: usize,
    /// Per-request override of the server's absolute promotion gate
    /// (`max_qerror=`).
    pub max_qerror: Option<f64>,
    /// Directory of `{table}.csv` reference relations to derive training
    /// statistics from (`data=`); defaults to the incumbent's attached
    /// reference database.
    pub data: Option<String>,
}

impl TrainSpec {
    /// Parse a spec from a `POST /train` query string.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for a missing `model`, an unparsable
    /// number, or an out-of-range value.
    pub fn from_query(query: &str) -> Result<TrainSpec, ServeError> {
        let param = |key: &str| {
            query
                .split('&')
                .filter_map(|pair| pair.split_once('='))
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v)
        };
        let model = param("model")
            .filter(|m| !m.is_empty())
            .ok_or_else(|| ServeError::BadRequest("missing query parameter 'model'".to_string()))?
            .to_string();
        let num = |key: &str, default: u64| -> Result<u64, ServeError> {
            match param(key) {
                None => Ok(default),
                Some(v) => v.parse::<u64>().map_err(|_| {
                    ServeError::BadRequest(format!(
                        "parameter '{key}' must be an integer, got {v:?}"
                    ))
                }),
            }
        };
        let float = |key: &str| -> Result<Option<f64>, ServeError> {
            match param(key) {
                None => Ok(None),
                Some(v) => v.parse::<f64>().map(Some).map_err(|_| {
                    ServeError::BadRequest(format!("parameter '{key}' must be a number, got {v:?}"))
                }),
            }
        };
        let epochs = num("epochs", 20)?.clamp(1, MAX_EPOCHS as u64) as usize;
        let batch = num("batch", 32)?.max(1) as usize;
        let lr = float("lr")?.unwrap_or(5e-3) as f32;
        let holdout = float("holdout")?.unwrap_or(0.2);
        if !(0.0..1.0).contains(&holdout) {
            return Err(ServeError::BadRequest(format!(
                "parameter 'holdout' must be in [0, 1), got {holdout}"
            )));
        }
        let hidden = match param("hidden") {
            None => vec![16],
            Some(text) => text
                .split(',')
                .map(|w| {
                    w.parse::<usize>()
                        .ok()
                        .filter(|w| (1..=4096).contains(w))
                        .ok_or_else(|| {
                            ServeError::BadRequest(format!(
                                "parameter 'hidden' must be comma-separated widths, got {text:?}"
                            ))
                        })
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(TrainSpec {
            model,
            epochs,
            batch,
            lr,
            seed: num("seed", 0)?,
            hidden,
            holdout,
            eval_samples: num("eval_samples", 200)?.clamp(1, MAX_EVAL_SAMPLES as u64) as usize,
            eval_seed: num("eval_seed", 0)?,
            checkpoint_every: num("checkpoint_every", 1)?.max(1) as usize,
            max_qerror: float("max_qerror")?,
            data: param("data").map(str::to_string),
        })
    }

    /// The journal representation recorded with `train_accepted`.
    pub fn to_value(&self) -> Value {
        let hidden: Vec<Value> = self.hidden.iter().map(|w| json!(*w as u64)).collect();
        json!({
            "model": self.model.clone(),
            "epochs": self.epochs as u64,
            "batch": self.batch as u64,
            "lr": f64::from(self.lr),
            "seed": self.seed,
            "hidden": Value::Array(hidden),
            "holdout": self.holdout,
            "eval_samples": self.eval_samples as u64,
            "eval_seed": self.eval_seed,
            "checkpoint_every": self.checkpoint_every as u64,
            "max_qerror": self.max_qerror.map_or(Value::Null, |q| json!(q)),
            "data": self.data.clone().map_or(Value::Null, Value::String),
        })
    }

    /// Rebuild a spec from its journal representation (replay of an
    /// interrupted job).
    ///
    /// # Errors
    ///
    /// [`ServeError::Internal`] when required fields are missing — a journal
    /// record this code did not write.
    pub fn from_value(doc: &Value) -> Result<TrainSpec, ServeError> {
        let model = doc
            .get("model")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::Internal("train spec record has no model".to_string()))?
            .to_string();
        let num = |key: &str, default: u64| doc.get(key).and_then(Value::as_u64).unwrap_or(default);
        let float = |key: &str| doc.get(key).and_then(Value::as_f64);
        let hidden = doc
            .get("hidden")
            .and_then(Value::as_array)
            .map(|ws| {
                ws.iter()
                    .filter_map(Value::as_u64)
                    .map(|w| w as usize)
                    .collect()
            })
            .filter(|ws: &Vec<usize>| !ws.is_empty())
            .unwrap_or_else(|| vec![16]);
        Ok(TrainSpec {
            model,
            epochs: num("epochs", 20).clamp(1, MAX_EPOCHS as u64) as usize,
            batch: num("batch", 32).max(1) as usize,
            lr: float("lr").unwrap_or(5e-3) as f32,
            seed: num("seed", 0),
            hidden,
            holdout: float("holdout").unwrap_or(0.2),
            eval_samples: num("eval_samples", 200).clamp(1, MAX_EVAL_SAMPLES as u64) as usize,
            eval_seed: num("eval_seed", 0),
            checkpoint_every: num("checkpoint_every", 1).max(1) as usize,
            max_qerror: float("max_qerror"),
            data: doc.get("data").and_then(Value::as_str).map(str::to_string),
        })
    }
}

/// A workload body partitioned into its training and holdout slices.
pub struct SplitWorkload {
    /// Queries the candidate trains on.
    pub train: Workload,
    /// Held-out queries reserved for shadow evaluation.
    pub holdout: Workload,
}

/// Split a labelled workload body into training and holdout slices.
///
/// Routing is explicit when any JSONL line carries `"holdout": true` (those
/// lines — and only those — are held out); otherwise a deterministic
/// `fraction` of lines is held out, keyed on line index and `seed`, with at
/// least one line held out whenever `fraction > 0`.
///
/// # Errors
///
/// [`ServeError::BadRequest`] when the body fails to parse, a line lacks a
/// cardinality label, or either slice ends up empty.
pub fn split_workload(body: &str, fraction: f64, seed: u64) -> Result<SplitWorkload, ServeError> {
    let mut lines: Vec<(&str, bool)> = Vec::new();
    let mut explicit = false;
    for line in body.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with("--") {
            continue;
        }
        let flagged = trimmed.starts_with('{')
            && serde_json::parse_value(trimmed)
                .ok()
                .and_then(|doc| doc.get("holdout").and_then(Value::as_bool))
                == Some(true);
        explicit |= flagged;
        lines.push((trimmed, flagged));
    }
    if lines.is_empty() {
        return Err(ServeError::BadRequest(
            "empty workload body: send one labelled query per line".to_string(),
        ));
    }
    let mut held: Vec<bool> = if explicit {
        lines.iter().map(|(_, flagged)| *flagged).collect()
    } else {
        // Deterministic per-line hash split; stable across identical
        // requests so retries land the same partition.
        lines
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let h = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(seed.wrapping_mul(0xD1B5_4A32_D192_ED03))
                    .rotate_left(29);
                (h % 10_000) < (fraction * 10_000.0) as u64
            })
            .collect()
    };
    if !explicit && fraction > 0.0 && held.iter().all(|h| !h) {
        // Tiny workloads can hash entirely into the training slice; the
        // evaluation stage still needs something to score.
        *held.last_mut().expect("non-empty") = true;
    }
    let bucket = |want: bool| -> Result<Workload, ServeError> {
        let text: String = lines
            .iter()
            .zip(&held)
            .filter(|(_, h)| **h == want)
            .map(|((line, _), _)| format!("{line}\n"))
            .collect();
        read_labeled_workload(text.as_bytes())
            .map_err(|e| ServeError::BadRequest(format!("invalid workload: {e}")))
    };
    let train = bucket(false)?;
    let holdout = bucket(true)?;
    if train.is_empty() {
        return Err(ServeError::BadRequest(
            "training slice is empty: lower 'holdout' or unflag some lines".to_string(),
        ));
    }
    if holdout.is_empty() {
        return Err(ServeError::BadRequest(
            "holdout slice is empty: raise 'holdout' or flag lines with \"holdout\": true"
                .to_string(),
        ));
    }
    Ok(SplitWorkload { train, holdout })
}

/// Persist both slices of an accepted job's workload under its journal job
/// directory (`workload.sql` + `holdout.sql`, interchange format). Runs
/// **before** the `train_accepted` journal event, so an accepted record
/// implies the workload it promises is on disk — which is what makes an
/// interrupted job resumable with the exact same split.
///
/// # Errors
///
/// [`ServeError::Internal`] when the directory or files cannot be written.
pub fn persist_workload(
    journal: &Journal,
    id: u64,
    split: &SplitWorkload,
) -> Result<(), ServeError> {
    let dir = journal.job_dir(id);
    std::fs::create_dir_all(&dir)
        .map_err(|e| ServeError::Internal(format!("create {dir:?}: {e}")))?;
    for (name, workload) in [
        ("workload.sql", &split.train),
        ("holdout.sql", &split.holdout),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, format_workload(workload))
            .map_err(|e| ServeError::Internal(format!("write {path:?}: {e}")))?;
    }
    Ok(())
}

/// Reload the persisted slices of a journaled job (replay of an interrupted
/// train).
///
/// # Errors
///
/// [`ServeError::Internal`] when either file is missing or unparsable.
pub fn load_persisted_workload(journal: &Journal, id: u64) -> Result<SplitWorkload, ServeError> {
    let dir = journal.job_dir(id);
    let read = |name: &str| -> Result<Workload, ServeError> {
        let path = dir.join(name);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| ServeError::Internal(format!("read {path:?}: {e}")))?;
        read_labeled_workload(text.as_bytes())
            .map_err(|e| ServeError::Internal(format!("parse {path:?}: {e}")))
    };
    Ok(SplitWorkload {
        train: read("workload.sql")?,
        holdout: read("holdout.sql")?,
    })
}

/// Terminal or running state of a training job.
pub enum TrainState {
    /// Training or evaluating (see the record's stage/progress).
    Running,
    /// Candidate won shadow evaluation and now serves as `version`.
    Promoted {
        /// Version minted for the candidate in the model registry.
        version: u64,
        /// Evaluation summary (candidate/incumbent p95, gate, wall time).
        summary: Value,
    },
    /// Candidate lost shadow evaluation; the incumbent keeps serving.
    Rejected {
        /// Evaluation summary explaining the verdict.
        summary: Value,
    },
    /// Training or evaluation failed.
    Failed(String),
    /// Cancelled at an epoch boundary before completing.
    Cancelled,
}

/// One training job: progress snapshot plus current state.
pub struct TrainRecord {
    /// Job id, minted from the same space as generation jobs
    /// ([`crate::jobs::JobRegistry::allocate_id`]).
    pub id: u64,
    /// Model name being retrained.
    pub model: String,
    /// Incumbent version the candidate competes against.
    pub base_version: u64,
    cancel: AtomicBool,
    epoch: AtomicU64,
    total_epochs: AtomicU64,
    loss_bits: AtomicU64,
    stage: Lock<&'static str>,
    state: Lock<TrainState>,
}

impl TrainRecord {
    fn new(id: u64, model: &str, base_version: u64, total_epochs: usize) -> TrainRecord {
        TrainRecord {
            id,
            model: model.to_string(),
            base_version,
            cancel: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            total_epochs: AtomicU64::new(total_epochs as u64),
            loss_bits: AtomicU64::new(f64::NAN.to_bits()),
            stage: Lock::new("accepted"),
            state: Lock::new(TrainState::Running),
        }
    }

    /// Whether the job reached a terminal state.
    pub fn is_finished(&self) -> bool {
        !matches!(*self.state.lock(), TrainState::Running)
    }

    /// Status document served at `GET /jobs/{id}` — same envelope as a
    /// generation job's ([`crate::jobs::JobRecord::status_json`]) plus a
    /// `training` object with per-job training metrics.
    pub fn status_json(&self) -> Value {
        let state = self.state.lock();
        let (label, version, result, error) = match &*state {
            TrainState::Running => ("running", self.base_version, Value::Null, Value::Null),
            TrainState::Promoted { version, summary } => {
                ("promoted", *version, summary.clone(), Value::Null)
            }
            TrainState::Rejected { summary } => {
                ("rejected", self.base_version, summary.clone(), Value::Null)
            }
            TrainState::Failed(msg) => (
                "failed",
                self.base_version,
                Value::Null,
                Value::String(msg.clone()),
            ),
            TrainState::Cancelled => ("cancelled", self.base_version, Value::Null, Value::Null),
        };
        let epoch = self.epoch.load(Ordering::Relaxed);
        let total = self.total_epochs.load(Ordering::Relaxed).max(1);
        let loss = f64::from_bits(self.loss_bits.load(Ordering::Relaxed));
        json!({
            "id": self.id,
            "model": self.model.clone(),
            "model_version": version,
            "state": label,
            "stage": *self.stage.lock(),
            "progress": (epoch as f64 / total as f64).min(1.0),
            "result": result,
            "error": error,
            "training": {
                "epoch": epoch,
                "total_epochs": total,
                "loss": if loss.is_nan() { Value::Null } else { json!(loss) },
            },
        })
    }
}

/// Everything a training job needs, bundled for [`TrainRegistry::spawn`].
pub struct TrainJob {
    /// Pre-allocated job id (already journaled as accepted/resumed).
    pub id: u64,
    /// Accepted request parameters.
    pub spec: TrainSpec,
    /// The incumbent entry: supplies the target schema, competes in shadow
    /// evaluation, and donates its reference database to the winner.
    pub incumbent: Arc<ModelEntry>,
    /// Training and holdout slices.
    pub split: SplitWorkload,
    /// Metadata statistics for model-schema construction.
    pub stats: DatabaseStats,
    /// Registry the winner is promoted into.
    pub registry: Arc<ModelRegistry>,
    /// Server metrics (train counters).
    pub metrics: Arc<ServeMetrics>,
    /// Journal for lifecycle events, checkpoints, and candidate persistence.
    pub journal: Option<Arc<Journal>>,
    /// Absolute p95 Q-Error promotion gate (the server's
    /// `--promote-max-qerror`, unless the spec overrides it).
    pub promote_max_qerror: f64,
}

/// Concurrent training-job table. All methods take `&self`.
#[derive(Default)]
pub struct TrainRegistry {
    trains: Lock<HashMap<u64, Arc<TrainRecord>>>,
    handles: Lock<Vec<JoinHandle<()>>>,
}

impl TrainRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a training job on its own thread under its pre-allocated id.
    pub fn spawn(&self, job: TrainJob) {
        let record = Arc::new(TrainRecord::new(
            job.id,
            &job.spec.model,
            job.incumbent.version,
            job.spec.epochs,
        ));
        self.trains.lock().insert(job.id, Arc::clone(&record));
        job.metrics.trains_started.inc();
        let trace_id = sam_obs::current_trace_id();
        let handle = std::thread::Builder::new()
            .name(format!("sam-serve-train-{}", job.id))
            .spawn(move || {
                sam_obs::set_trace_id(trace_id);
                run_train_job(&job, &record);
            })
            .expect("spawn training job");
        self.handles.lock().push(handle);
    }

    /// Insert a record already in a terminal state (journal replay).
    pub fn insert_terminal(&self, id: u64, model: &str, version: u64, state: TrainState) {
        let record = TrainRecord::new(id, model, version, 1);
        *record.stage.lock() = "finished";
        record.epoch.store(1, Ordering::Relaxed);
        *record.state.lock() = state;
        self.trains.lock().insert(id, Arc::new(record));
    }

    /// Look up a training job by id.
    pub fn get(&self, id: u64) -> Option<Arc<TrainRecord>> {
        self.trains.lock().get(&id).cloned()
    }

    /// Request cancellation at the next epoch boundary; returns false for
    /// unknown ids.
    pub fn cancel(&self, id: u64) -> bool {
        match self.get(id) {
            Some(record) => {
                record.cancel.store(true, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Join every training thread (drain semantics: accepted jobs reach a
    /// terminal state — for a long train, request cancellation first).
    pub fn drain(&self) {
        let handles: Vec<_> = self.handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Nearest-rank p95 over per-query Q-Errors of `model` on `holdout`, every
/// estimate drawn with the same `samples` and `seed` — the scoring both
/// sides of a shadow evaluation get.
fn p95_qerror(model: &FrozenModel, holdout: &Workload, samples: usize, seed: u64) -> f64 {
    let mut errors: Vec<f64> = holdout
        .iter()
        .map(|lq| {
            let mut rng = StdRng::seed_from_u64(seed);
            let estimate =
                estimate_cardinality(model, &lq.query, samples, &mut rng).unwrap_or(f64::INFINITY);
            q_error(estimate, lq.cardinality as f64)
        })
        .collect();
    errors.sort_by(f64::total_cmp);
    let rank = ((errors.len() as f64 * 0.95).ceil() as usize).clamp(1, errors.len());
    errors[rank - 1]
}

fn run_train_job(job: &TrainJob, record: &Arc<TrainRecord>) {
    if let Some(journal) = &job.journal {
        journal.running(job.id);
    }
    *record.stage.lock() = "training";
    let config = SamConfig {
        model: sam_ar::ArModelConfig {
            hidden: job.spec.hidden.clone(),
            seed: job.spec.seed,
            residual: false,
            transformer: None,
        },
        train: sam_ar::TrainConfig {
            epochs: job.spec.epochs,
            batch_size: job.spec.batch,
            lr: job.spec.lr,
            seed: job.spec.seed,
            checkpoint: job.journal.as_ref().map(|j| {
                CheckpointConfig::new(j.job_dir(job.id).join("ckpt"), job.spec.checkpoint_every)
            }),
            ..Default::default()
        },
        encoding: Default::default(),
    };
    let schema = job.incumbent.trained.db_schema().clone();
    // A panicking trainer must still reach a terminal state (same contract
    // as generation jobs): contain the panic and fail the job.
    let fitted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Sam::fit_observed(&schema, &job.stats, &job.split.train, &config, &mut |p| {
            record.epoch.store(p.epoch as u64, Ordering::Relaxed);
            record
                .total_epochs
                .store(p.total_epochs as u64, Ordering::Relaxed);
            record
                .loss_bits
                .store(f64::from(p.loss).to_bits(), Ordering::Relaxed);
            if let Some(journal) = &job.journal {
                journal.epoch(job.id, p.epoch, p.total_epochs, p.loss);
            }
            if record.cancel.load(Ordering::Relaxed) {
                TrainControl::Stop
            } else {
                TrainControl::Continue
            }
        })
    }));
    let outcome = match fitted {
        Err(payload) => {
            job.metrics.worker_panics.inc();
            let msg = format!(
                "training panicked: {}",
                crate::sync::panic_message(payload.as_ref())
            );
            fail(job, &msg);
            TrainState::Failed(msg)
        }
        Ok(Err(_)) if record.cancel.load(Ordering::Relaxed) => {
            if let Some(journal) = &job.journal {
                journal.cancelled(job.id);
            }
            TrainState::Cancelled
        }
        Ok(Err(e)) => {
            let msg = e.to_string();
            fail(job, &msg);
            TrainState::Failed(msg)
        }
        Ok(Ok(trained)) => evaluate_and_promote(job, record, trained),
    };
    *record.stage.lock() = "finished";
    *record.state.lock() = outcome;
    job.metrics.jobs_finished.inc();
}

fn fail(job: &TrainJob, msg: &str) {
    if let Some(journal) = &job.journal {
        journal.failed(job.id, msg);
    }
    job.metrics.trains_failed.inc();
}

/// The shadow-evaluation + promotion stage: score candidate and incumbent
/// on the holdout slice, gate, and either hot-swap the winner into the
/// registry (persisting its weights first — persist-then-commit, so a
/// `promoted` journal event implies the weights it promises exist) or keep
/// the incumbent.
fn evaluate_and_promote(
    job: &TrainJob,
    record: &Arc<TrainRecord>,
    trained: TrainedSam,
) -> TrainState {
    *record.stage.lock() = "evaluating";
    if let Some(journal) = &job.journal {
        journal.evaluating(job.id);
    }
    let mut span = sam_obs::span!(
        "shadow_eval",
        job = job.id,
        holdout = job.split.holdout.len()
    );
    let candidate = Arc::new(trained);
    let samples = job.spec.eval_samples;
    let seed = job.spec.eval_seed;
    let candidate_p95 = p95_qerror(candidate.model(), &job.split.holdout, samples, seed);
    let incumbent_p95 = p95_qerror(
        job.incumbent.trained.model(),
        &job.split.holdout,
        samples,
        seed,
    );
    let gate = job.spec.max_qerror.unwrap_or(job.promote_max_qerror);
    // Ties promote: an equal candidate trained on fresher data wins.
    let promote = candidate_p95 <= gate && candidate_p95 <= incumbent_p95;
    span.record("candidate_p95", candidate_p95);
    span.record("promote", promote);
    let summary = json!({
        "candidate_p95": candidate_p95,
        "incumbent_p95": incumbent_p95,
        "incumbent_version": job.incumbent.version,
        "max_qerror": gate,
        "holdout_queries": job.split.holdout.len() as u64,
        "eval_samples": samples as u64,
        "epochs": job.spec.epochs as u64,
        "wall_seconds": candidate.report.wall_seconds,
    });
    if !promote {
        if let Some(journal) = &job.journal {
            journal.rejected(job.id, &summary);
        }
        job.metrics.trains_rejected.inc();
        return TrainState::Rejected { summary };
    }
    if let Some(journal) = &job.journal {
        let path = journal.job_dir(job.id).join("model.json");
        let text = save_model(candidate.model(), candidate.db_schema());
        if let Err(e) = std::fs::write(&path, text) {
            let msg = format!("persist candidate {path:?}: {e}");
            fail(job, &msg);
            return TrainState::Failed(msg);
        }
    }
    let version = job.registry.promote(
        &job.spec.model,
        Arc::clone(&candidate),
        job.incumbent.reference.clone(),
    );
    if let Some(journal) = &job.journal {
        journal.promoted(job.id, version, &summary);
    }
    job.metrics.trains_promoted.inc();
    TrainState::Promoted { version, summary }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_journal_value() {
        let spec = TrainSpec::from_query(
            "model=census&epochs=7&batch=4&lr=0.01&seed=9&hidden=24,12&holdout=0.3\
             &eval_samples=50&eval_seed=3&checkpoint_every=2&max_qerror=8.5&data=/tmp/d",
        )
        .unwrap();
        let back = TrainSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(back.model, "census");
        assert_eq!(back.epochs, 7);
        assert_eq!(back.batch, 4);
        assert_eq!(back.hidden, vec![24, 12]);
        assert_eq!(back.seed, 9);
        assert_eq!(back.eval_samples, 50);
        assert_eq!(back.eval_seed, 3);
        assert_eq!(back.checkpoint_every, 2);
        assert_eq!(back.max_qerror, Some(8.5));
        assert_eq!(back.data.as_deref(), Some("/tmp/d"));
        assert!((back.holdout - 0.3).abs() < 1e-9);
        assert!((f64::from(back.lr) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn spec_rejects_bad_parameters() {
        assert!(TrainSpec::from_query("").is_err());
        assert!(TrainSpec::from_query("model=m&epochs=abc").is_err());
        assert!(TrainSpec::from_query("model=m&holdout=1.5").is_err());
        assert!(TrainSpec::from_query("model=m&hidden=12,zero").is_err());
    }

    #[test]
    fn fraction_split_is_deterministic_and_nonempty() {
        let body: String = (0..20)
            .map(|i| format!("SELECT COUNT(*) FROM A WHERE A.x = {i} -- card={}\n", i + 1))
            .collect();
        let a = split_workload(&body, 0.25, 7).unwrap();
        let b = split_workload(&body, 0.25, 7).unwrap();
        assert_eq!(a.train.len(), b.train.len());
        assert_eq!(a.holdout.len(), b.holdout.len());
        assert_eq!(a.train.len() + a.holdout.len(), 20);
        assert!(!a.holdout.is_empty());

        // Tiny workloads still hold something out.
        let tiny = "SELECT COUNT(*) FROM A WHERE A.x = 1 -- card=1\n\
                    SELECT COUNT(*) FROM A WHERE A.x = 2 -- card=2\n";
        let s = split_workload(tiny, 0.01, 0).unwrap();
        assert_eq!(s.holdout.len(), 1);
        assert_eq!(s.train.len(), 1);
    }

    #[test]
    fn explicit_holdout_flags_override_fraction() {
        let body = r#"{"sql": "SELECT COUNT(*) FROM A WHERE A.x = 1", "card": 3}
{"sql": "SELECT COUNT(*) FROM A WHERE A.x = 2", "card": 4, "holdout": true}
SELECT COUNT(*) FROM A WHERE A.x = 3 -- card=5
"#;
        let s = split_workload(body, 0.9, 0).unwrap();
        assert_eq!(s.holdout.len(), 1);
        assert_eq!(s.holdout.queries[0].cardinality, 4);
        assert_eq!(s.train.len(), 2);
    }

    #[test]
    fn empty_slices_are_rejected() {
        assert!(split_workload("", 0.2, 0).is_err());
        let one = "SELECT COUNT(*) FROM A WHERE A.x = 1 -- card=1\n";
        // One line cannot fill both slices.
        assert!(split_workload(one, 0.5, 0).is_err());
        let all_held =
            r#"{"sql": "SELECT COUNT(*) FROM A WHERE A.x = 1", "card": 1, "holdout": true}"#;
        assert!(split_workload(all_held, 0.2, 0).is_err());
    }
}
