//! Asynchronous generation jobs.
//!
//! `POST /generate` is accepted immediately: generation runs on its own
//! thread through [`TrainedSam::generate_controlled`], which reports stage +
//! progress and honours cancellation via [`JobControl`]. Clients poll
//! `GET /jobs/{id}` and stream finished relations from
//! `GET /jobs/{id}/export` (the record keeps the generated [`Database`]
//! alive for exactly that). Shutdown *drains*: [`JobRegistry::drain`] joins
//! every job thread, so accepted jobs always reach a terminal state.
//!
//! With a [`Journal`] attached, every lifecycle transition is appended to
//! the on-disk log and completed results are persisted as CSV, which is
//! what makes jobs replayable across a server restart (see
//! [`crate::journal`]).

use crate::journal::Journal;
use crate::metrics::ServeMetrics;
use crate::registry::ModelEntry;
use crate::sync::Lock;
use sam_core::{GenerationConfig, JobControl, JobStage, SamError, TrainedSam};
use sam_storage::Database;
use serde_json::{json, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Terminal or running state of a generation job.
pub enum JobState {
    /// Still generating (see [`JobControl`] for stage/progress).
    Running,
    /// Finished successfully.
    Done {
        /// Result summary served at `GET /jobs/{id}`.
        summary: Value,
        /// The generated database, held for streamed export.
        db: Arc<Database>,
    },
    /// Failed with an error message.
    Failed(String),
    /// Cancelled before completion.
    Cancelled,
}

/// One generation job: control handle plus current state.
pub struct JobRecord {
    /// Job id (unique per server, stable across journal replays).
    pub id: u64,
    /// Model name the job runs against.
    pub model: String,
    /// Model version pinned at submission.
    pub version: u64,
    /// Cooperative cancel / progress handle shared with the job thread.
    pub control: JobControl,
    state: Lock<JobState>,
}

impl JobRecord {
    /// Whether the job reached a terminal state.
    pub fn is_finished(&self) -> bool {
        !matches!(*self.state.lock(), JobState::Running)
    }

    /// The generated database, once the job is done (`None` while running
    /// or after failure/cancellation).
    pub fn result_database(&self) -> Option<Arc<Database>> {
        match &*self.state.lock() {
            JobState::Done { db, .. } => Some(Arc::clone(db)),
            _ => None,
        }
    }

    /// Short state label (`running` / `done` / `failed` / `cancelled`),
    /// for error messages and logs.
    pub fn state_label(&self) -> &'static str {
        match &*self.state.lock() {
            JobState::Running => "running",
            JobState::Done { .. } => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Status document served at `GET /jobs/{id}`.
    pub fn status_json(&self) -> Value {
        let state = self.state.lock();
        let (label, result, error) = match &*state {
            JobState::Running => ("running", Value::Null, Value::Null),
            JobState::Done { summary, .. } => ("done", summary.clone(), Value::Null),
            JobState::Failed(msg) => ("failed", Value::Null, Value::String(msg.clone())),
            JobState::Cancelled => ("cancelled", Value::Null, Value::Null),
        };
        json!({
            "id": self.id,
            "model": self.model.clone(),
            "model_version": self.version,
            "state": label,
            "stage": self.control.stage().to_string(),
            "progress": self.control.progress(),
            "result": result,
            "error": error,
        })
    }
}

/// Summary document for a finished generation run.
fn summary_json(db: &Database, foj_samples: usize, wall_seconds: f64) -> Value {
    let tables: Vec<Value> = db
        .tables()
        .iter()
        .map(|t| json!({"table": t.name(), "rows": t.num_rows()}))
        .collect();
    json!({
        "tables": Value::Array(tables),
        "foj_samples": foj_samples,
        "wall_seconds": wall_seconds,
    })
}

/// Concurrent job table. All methods take `&self`.
#[derive(Default)]
pub struct JobRegistry {
    next_id: AtomicU64,
    jobs: Lock<HashMap<u64, Arc<JobRecord>>>,
    handles: Lock<Vec<JoinHandle<()>>>,
    journal: Option<Arc<Journal>>,
}

impl JobRegistry {
    /// Empty registry without journaling.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty registry; with `Some(journal)`, every job lifecycle event is
    /// appended to it and completed results are persisted as CSV.
    pub fn with_journal(journal: Option<Arc<Journal>>) -> Self {
        JobRegistry {
            journal,
            ..Self::default()
        }
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// Ensure freshly assigned ids start after `id` (journal replay keeps
    /// original job ids; new jobs must not collide with them).
    pub fn reserve_through(&self, id: u64) {
        self.next_id.fetch_max(id, Ordering::Relaxed);
    }

    /// Mint a fresh id from the shared job-id space. Generation jobs,
    /// training jobs ([`crate::training::TrainRegistry`]), and rollback
    /// audit records all draw from this one counter, so `GET /jobs/{id}`
    /// and the journal are unambiguous about what an id names.
    pub fn allocate_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Start a generation job on its own thread; returns the job id.
    pub fn spawn(
        &self,
        entry: Arc<ModelEntry>,
        config: GenerationConfig,
        metrics: Arc<ServeMetrics>,
    ) -> u64 {
        let id = self.allocate_id();
        if let Some(journal) = &self.journal {
            journal.accepted(id, &entry.name, entry.version, &config);
        }
        self.spawn_with_id(id, entry, config, metrics);
        id
    }

    /// Re-spawn a journal-replayed interrupted job under its original id.
    /// The recorded config carries the RNG seed, so the regenerated
    /// database is bit-for-bit what the interrupted run would have produced.
    pub fn respawn(
        &self,
        id: u64,
        entry: Arc<ModelEntry>,
        config: GenerationConfig,
        metrics: Arc<ServeMetrics>,
    ) {
        self.reserve_through(id);
        if let Some(journal) = &self.journal {
            journal.resumed(id);
        }
        self.spawn_with_id(id, entry, config, metrics);
    }

    fn spawn_with_id(
        &self,
        id: u64,
        entry: Arc<ModelEntry>,
        config: GenerationConfig,
        metrics: Arc<ServeMetrics>,
    ) {
        let record = Arc::new(JobRecord {
            id,
            model: entry.name.clone(),
            version: entry.version,
            control: JobControl::new(),
            state: Lock::new(JobState::Running),
        });
        self.jobs.lock().insert(id, Arc::clone(&record));
        metrics.jobs_started.inc();
        let journal = self.journal.clone();
        // Carry the submitting request's trace id onto the job thread so the
        // job's generation spans correlate with the POST /generate request.
        let trace_id = sam_obs::current_trace_id();
        let handle = std::thread::Builder::new()
            .name(format!("sam-serve-job-{id}"))
            .spawn(move || {
                sam_obs::set_trace_id(trace_id);
                run_job(
                    &entry.trained,
                    &config,
                    &record,
                    &metrics,
                    journal.as_deref(),
                )
            })
            .expect("spawn generation job");
        self.handles.lock().push(handle);
    }

    /// Insert a job record already in a terminal state (journal replay of
    /// completed / failed / cancelled jobs). No thread is spawned.
    pub fn insert_terminal(&self, id: u64, model: &str, version: u64, state: JobState) {
        self.reserve_through(id);
        let control = JobControl::new();
        if matches!(state, JobState::Done { .. }) {
            control.set_stage(JobStage::Finished);
            control.set_progress(1, 1);
        }
        let record = Arc::new(JobRecord {
            id,
            model: model.to_string(),
            version,
            control,
            state: Lock::new(state),
        });
        self.jobs.lock().insert(id, record);
    }

    /// Look up a job by id.
    pub fn get(&self, id: u64) -> Option<Arc<JobRecord>> {
        self.jobs.lock().get(&id).cloned()
    }

    /// Request cancellation; returns false for unknown ids.
    pub fn cancel(&self, id: u64) -> bool {
        match self.get(id) {
            Some(record) => {
                record.control.cancel();
                true
            }
            None => false,
        }
    }

    /// Join every job thread (drain semantics — jobs run to completion or to
    /// their next cancellation check; none are abandoned mid-write).
    pub fn drain(&self) {
        let handles: Vec<_> = self.handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn run_job(
    trained: &TrainedSam,
    config: &GenerationConfig,
    record: &JobRecord,
    metrics: &ServeMetrics,
    journal: Option<&Journal>,
) {
    // Deterministic worker-kill points for the sharded-serving failover
    // tests: before any work, after generation (results in memory only),
    // and after results are persisted-and-committed. A journal replay must
    // recover the accepted job bit-for-bit from each of them.
    sam_fault::crash_point("serve.job.pre_run");
    if let Some(journal) = journal {
        journal.running(record.id);
    }
    // A panicking generation must still reach a terminal state: an abandoned
    // `Running` record would poll as in-flight forever and block `drain` on
    // restart-time accounting. Contain the panic and fail the job instead.
    let generated = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        trained.generate_controlled(config, &record.control)
    }));
    let generated = match generated {
        Ok(result) => result,
        Err(payload) => {
            metrics.worker_panics.inc();
            let msg = format!(
                "generation panicked: {}",
                crate::sync::panic_message(payload.as_ref())
            );
            if let Some(journal) = journal {
                journal.failed(record.id, &msg);
            }
            *record.state.lock() = JobState::Failed(msg);
            metrics.jobs_finished.inc();
            return;
        }
    };
    sam_fault::crash_point("serve.job.generated");
    let outcome = match generated {
        Ok((db, report)) => {
            let summary = summary_json(&db, report.foj_samples, report.wall_seconds);
            if let Some(journal) = journal {
                // Persist-then-commit: CSVs land on disk before the
                // `completed` event, so a `completed` in the log implies the
                // results it promises exist.
                match journal.persist_results(record.id, &db) {
                    Ok(()) => {
                        sam_fault::crash_point("serve.job.persisted");
                        journal.completed(record.id, &summary);
                    }
                    Err(e) => {
                        sam_obs::counter("sam_journal_persist_errors_total").inc();
                        journal.failed(record.id, &format!("persist results: {e}"));
                    }
                }
            }
            JobState::Done {
                summary,
                db: Arc::new(db),
            }
        }
        Err(SamError::Cancelled) => {
            if let Some(journal) = journal {
                journal.cancelled(record.id);
            }
            JobState::Cancelled
        }
        Err(e) => {
            if let Some(journal) = journal {
                journal.failed(record.id, &e.to_string());
            }
            JobState::Failed(e.to_string())
        }
    };
    *record.state.lock() = outcome;
    metrics.jobs_finished.inc();
}
