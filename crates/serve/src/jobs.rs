//! Asynchronous generation jobs.
//!
//! `POST /generate` is accepted immediately: generation runs on its own
//! thread through [`TrainedSam::generate_controlled`], which reports stage +
//! progress and honours cancellation via [`JobControl`]. Clients poll
//! `GET /jobs/{id}`. Shutdown *drains*: [`JobRegistry::drain`] joins every
//! job thread, so accepted jobs always reach a terminal state.

use crate::metrics::ServeMetrics;
use crate::registry::ModelEntry;
use sam_core::{GenerationConfig, JobControl, SamError, TrainedSam};
use serde_json::{json, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Terminal or running state of a generation job.
pub enum JobState {
    /// Still generating (see [`JobControl`] for stage/progress).
    Running,
    /// Finished successfully; payload is the result summary JSON.
    Done(Value),
    /// Failed with an error message.
    Failed(String),
    /// Cancelled before completion.
    Cancelled,
}

/// One generation job: control handle plus current state.
pub struct JobRecord {
    /// Job id (unique per server).
    pub id: u64,
    /// Model name the job runs against.
    pub model: String,
    /// Model version pinned at submission.
    pub version: u64,
    /// Cooperative cancel / progress handle shared with the job thread.
    pub control: JobControl,
    state: Mutex<JobState>,
}

impl JobRecord {
    /// Whether the job reached a terminal state.
    pub fn is_finished(&self) -> bool {
        !matches!(
            *self.state.lock().unwrap_or_else(|e| e.into_inner()),
            JobState::Running
        )
    }

    /// Status document served at `GET /jobs/{id}`.
    pub fn status_json(&self) -> Value {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let (label, result, error) = match &*state {
            JobState::Running => ("running", Value::Null, Value::Null),
            JobState::Done(summary) => ("done", summary.clone(), Value::Null),
            JobState::Failed(msg) => ("failed", Value::Null, Value::String(msg.clone())),
            JobState::Cancelled => ("cancelled", Value::Null, Value::Null),
        };
        json!({
            "id": self.id,
            "model": self.model.clone(),
            "model_version": self.version,
            "state": label,
            "stage": self.control.stage().to_string(),
            "progress": self.control.progress(),
            "result": result,
            "error": error,
        })
    }
}

/// Concurrent job table. All methods take `&self`.
#[derive(Default)]
pub struct JobRegistry {
    next_id: AtomicU64,
    jobs: Mutex<HashMap<u64, Arc<JobRecord>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl JobRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a generation job on its own thread; returns the job id.
    pub fn spawn(
        &self,
        entry: Arc<ModelEntry>,
        config: GenerationConfig,
        metrics: Arc<ServeMetrics>,
    ) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let record = Arc::new(JobRecord {
            id,
            model: entry.name.clone(),
            version: entry.version,
            control: JobControl::new(),
            state: Mutex::new(JobState::Running),
        });
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, Arc::clone(&record));
        metrics.jobs_started.inc();
        // Carry the submitting request's trace id onto the job thread so the
        // job's generation spans correlate with the POST /generate request.
        let trace_id = sam_obs::current_trace_id();
        let handle = std::thread::Builder::new()
            .name(format!("sam-serve-job-{id}"))
            .spawn(move || {
                sam_obs::set_trace_id(trace_id);
                run_job(&entry.trained, &config, &record, &metrics)
            })
            .expect("spawn generation job");
        self.handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
        id
    }

    /// Look up a job by id.
    pub fn get(&self, id: u64) -> Option<Arc<JobRecord>> {
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
            .cloned()
    }

    /// Request cancellation; returns false for unknown ids.
    pub fn cancel(&self, id: u64) -> bool {
        match self.get(id) {
            Some(record) => {
                record.control.cancel();
                true
            }
            None => false,
        }
    }

    /// Join every job thread (drain semantics — jobs run to completion or to
    /// their next cancellation check; none are abandoned mid-write).
    pub fn drain(&self) {
        let handles: Vec<_> = self
            .handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn run_job(
    trained: &TrainedSam,
    config: &GenerationConfig,
    record: &JobRecord,
    metrics: &ServeMetrics,
) {
    let outcome = match trained.generate_controlled(config, &record.control) {
        Ok((db, report)) => {
            let tables: Vec<Value> = db
                .tables()
                .iter()
                .map(|t| json!({"table": t.name(), "rows": t.num_rows()}))
                .collect();
            JobState::Done(json!({
                "tables": Value::Array(tables),
                "foj_samples": report.foj_samples,
                "wall_seconds": report.wall_seconds,
            }))
        }
        Err(SamError::Cancelled) => JobState::Cancelled,
        Err(e) => JobState::Failed(e.to_string()),
    };
    *record.state.lock().unwrap_or_else(|e| e.into_inner()) = outcome;
    metrics.jobs_finished.inc();
}
