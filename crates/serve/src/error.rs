//! Serving-layer error type with HTTP status mapping.

use std::fmt;

/// Errors surfaced to HTTP clients (each maps to a status code) or to
/// embedding callers of the serving primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Malformed request (bad JSON, unparsable SQL, bad parameters) → 400.
    BadRequest(String),
    /// Unknown model, job, or route → 404.
    NotFound(String),
    /// The resource exists but is in the wrong state for the request
    /// (e.g. exporting a job that has not finished) → 409.
    Conflict(String),
    /// The micro-batch queue is full → 429 (backpressure).
    Overloaded,
    /// The request's deadline passed before a worker produced a result → 504.
    DeadlineExceeded,
    /// The server is shutting down and no longer accepts work → 503.
    ShuttingDown,
    /// The shard is quiesced for a rebalance (`POST /admin/drain`) and
    /// rejects new generate/train work until resumed → 503.
    Draining,
    /// Internal failure (I/O, poisoned state) → 500.
    Internal(String),
}

impl ServeError {
    /// The HTTP status code this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadRequest(_) => 400,
            ServeError::NotFound(_) => 404,
            ServeError::Conflict(_) => 409,
            ServeError::Overloaded => 429,
            ServeError::DeadlineExceeded => 504,
            ServeError::ShuttingDown => 503,
            ServeError::Draining => 503,
            ServeError::Internal(_) => 500,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::NotFound(m) => write!(f, "not found: {m}"),
            ServeError::Conflict(m) => write!(f, "conflict: {m}"),
            ServeError::Overloaded => write!(f, "estimate queue is full, retry later"),
            ServeError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Draining => write!(f, "shard is draining for rebalance, retry shortly"),
            ServeError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_match_semantics() {
        assert_eq!(ServeError::BadRequest("x".into()).status(), 400);
        assert_eq!(ServeError::NotFound("x".into()).status(), 404);
        assert_eq!(ServeError::Conflict("x".into()).status(), 409);
        assert_eq!(ServeError::Overloaded.status(), 429);
        assert_eq!(ServeError::DeadlineExceeded.status(), 504);
        assert_eq!(ServeError::ShuttingDown.status(), 503);
        assert_eq!(ServeError::Draining.status(), 503);
        assert_eq!(ServeError::Internal("x".into()).status(), 500);
    }
}
