//! Minimal HTTP/1.1 framing over `std::io` — just enough for a JSON API.
//!
//! One request per connection (`Connection: close`). Requests are parsed
//! from any [`BufRead`] so the parser is unit-testable without sockets;
//! responses are written to any [`Write`].

use crate::error::ServeError;
use std::io::{BufRead, Write};

/// Largest accepted request body (1 MiB) — estimates and job submissions
/// are small; anything bigger is a client error.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// A parsed HTTP request: method, path, and (possibly empty) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercased method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (no query-string splitting; the API is
    /// JSON-body based).
    pub path: String,
    /// Raw UTF-8 body.
    pub body: String,
}

/// Read and parse one HTTP/1.1 request from `reader`.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, ServeError> {
    let bad = |m: &str| ServeError::BadRequest(m.to_string());
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| ServeError::Internal(format!("read request line: {e}")))?;
    if line.is_empty() {
        return Err(bad("empty request"));
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("missing method"))?
        .to_string();
    let path = parts.next().ok_or_else(|| bad("missing path"))?.to_string();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1") => {}
        _ => return Err(bad("expected HTTP/1.x request")),
    }

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| ServeError::Internal(format!("read header: {e}")))?;
        if n == 0 || header.trim().is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| bad("invalid Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad("request body too large"));
    }
    let mut buf = vec![0u8; content_length];
    reader
        .read_exact(&mut buf)
        .map_err(|e| ServeError::BadRequest(format!("short body: {e}")))?;
    let body = String::from_utf8(buf).map_err(|_| bad("body is not UTF-8"))?;
    Ok(Request { method, path, body })
}

/// Write a JSON response with the given status and serialised body.
pub fn write_json_response<W: Write>(out: &mut W, status: u16, body: &str) -> std::io::Result<()> {
    write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        reason(status),
        body.len(),
    )?;
    out.flush()
}

/// Write a plain-text response (Prometheus exposition uses text/plain with
/// the format version parameter).
pub fn write_text_response<W: Write>(out: &mut W, status: u16, body: &str) -> std::io::Result<()> {
    write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        reason(status),
        body.len(),
    )?;
    out.flush()
}

/// Canonical reason phrases for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_post_with_body() {
        let raw = "POST /estimate HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"a\": 1}x";
        let req = read_request(&mut Cursor::new(raw)).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/estimate");
        assert_eq!(req.body, "{\"a\": 1}x");
    }

    #[test]
    fn parses_get_without_body() {
        let req = read_request(&mut Cursor::new("GET /healthz HTTP/1.1\r\n\r\n")).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.body, "");
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_request(&mut Cursor::new("")).is_err());
        assert!(read_request(&mut Cursor::new("nonsense\r\n\r\n")).is_err());
        let oversize = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(read_request(&mut Cursor::new(oversize)).is_err());
        // Declared body longer than what arrives.
        let short = "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(read_request(&mut Cursor::new(short)).is_err());
    }

    #[test]
    fn writes_framed_response() {
        let mut out = Vec::new();
        write_json_response(&mut out, 429, "{\"error\":\"full\"}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 16\r\n"));
        assert!(text.ends_with("{\"error\":\"full\"}"));
    }
}
