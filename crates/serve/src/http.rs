//! Minimal HTTP/1.1 framing over `std::io` — request parsing, framed JSON /
//! text responses, and chunked transfer encoding for streamed bodies.
//!
//! Connections are **persistent by default** (HTTP/1.1 keep-alive): the
//! parser records the negotiated connection state on each [`Request`] and
//! the response writers echo it, so a client can issue many requests over
//! one socket. `Connection: close` (or HTTP/1.0 without
//! `Connection: keep-alive`) downgrades to one-request-per-connection.
//! Requests are parsed from any [`BufRead`] so the parser is unit-testable
//! without sockets; responses are written to any [`Write`].
//!
//! Streaming bodies (the CSV export endpoint) use [`ChunkedWriter`], which
//! frames an arbitrary `Write` stream as HTTP/1.1 chunked transfer encoding
//! through a fixed-size buffer — memory stays bounded no matter how large
//! the streamed relation is.

use crate::error::ServeError;
use std::io::{BufRead, Write};

/// Largest accepted request body (1 MiB) — estimates and job submissions
/// are small; anything bigger is a client error. The limit applies to the
/// bytes on the wire: a gzip/deflate-coded body (`Content-Encoding`) may
/// decode to more, up to [`MAX_DECODED_BODY_BYTES`] — which is how large
/// workload uploads reach `POST /train` without raising the wire cap.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Largest accepted request body *after* content decoding (64 MiB) — the
/// decompression-bomb guard for `Content-Encoding: gzip|deflate` uploads.
pub const MAX_DECODED_BODY_BYTES: usize = 64 << 20;

/// Largest accepted header section (64 KiB across all header lines).
pub const MAX_HEADER_BYTES: usize = 64 << 10;

/// Buffered bytes per chunk emitted by [`ChunkedWriter`] (64 KiB). This is
/// the whole per-connection memory footprint of a streamed export.
pub const CHUNK_BYTES: usize = 64 << 10;

/// A parsed HTTP request: method, path, body, and negotiated connection
/// state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercased method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (query string included; the router splits it).
    pub path: String,
    /// Raw UTF-8 body.
    pub body: String,
    /// Whether the client negotiated a persistent connection: HTTP/1.1
    /// unless `Connection: close`, HTTP/1.0 only with
    /// `Connection: keep-alive`. The response **must** echo this (a `close`
    /// response on a keep-alive request strands the client's next request).
    pub keep_alive: bool,
    /// Content codings the client accepts (`Accept-Encoding` tokens,
    /// lowercased, in client order, `q=0` entries dropped). Empty when the
    /// header is absent — responses must then be sent identity-coded.
    pub accept_encoding: Vec<String>,
    /// First byte offset of a `Range: bytes=N-` header (the
    /// resume-a-download form). Only this open-ended single-range shape is
    /// honoured; any other `Range` value is ignored per RFC 9110 (the
    /// server may then answer 200 with the full representation).
    pub range_start: Option<u64>,
}

impl Request {
    /// Whether the client listed `coding` (or the `*` wildcard) in
    /// `Accept-Encoding` with a non-zero quality.
    pub fn accepts_encoding(&self, coding: &str) -> bool {
        self.accept_encoding.iter().any(|t| t == coding || t == "*")
    }
}

/// Parse a `Range` header value of the open-ended single-range form
/// `bytes=N-` into `N`. Every other shape (closed ranges, suffix ranges,
/// multiple ranges, non-byte units) yields `None` — the caller then serves
/// the full representation, which RFC 9110 permits for any `Range` a server
/// chooses not to honour.
fn parse_range_start(value: &str) -> Option<u64> {
    let spec = value.trim().strip_prefix("bytes=")?;
    let start = spec.strip_suffix('-')?;
    start.trim().parse::<u64>().ok()
}

/// Parse an `Accept-Encoding` header value into accepted coding tokens
/// (lowercased, client order preserved, entries with `q=0` dropped).
fn parse_accept_encoding(value: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    for part in value.split(',') {
        let mut items = part.split(';');
        let token = items.next().unwrap_or("").trim().to_ascii_lowercase();
        if token.is_empty() {
            continue;
        }
        let mut quality = 1.0f64;
        for param in items {
            if let Some(q) = param.trim().strip_prefix("q=") {
                quality = q.trim().parse().unwrap_or(0.0);
            }
        }
        if quality > 0.0 {
            tokens.push(token);
        }
    }
    tokens
}

/// Read and parse one HTTP/1.1 request from `reader`.
///
/// Returns `Ok(None)` on clean end-of-stream before any byte of a request —
/// the normal way a keep-alive client ends a connection between requests.
///
/// # Errors
///
/// [`ServeError::BadRequest`] on malformed framing: garbled request line,
/// oversized header section, a `Content-Length` above [`MAX_BODY_BYTES`]
/// (rejected *before* reading the body, so oversized uploads get an
/// immediate 400 instead of a slow drain), or a body shorter than declared.
/// [`ServeError::Internal`] on transport I/O errors. After any error the
/// connection must be closed: request framing can no longer be trusted.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, ServeError> {
    let bad = |m: &str| ServeError::BadRequest(m.to_string());
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| ServeError::Internal(format!("read request line: {e}")))?;
    if n == 0 {
        return Ok(None);
    }
    if line.trim().is_empty() {
        return Err(bad("empty request line"));
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("missing method"))?
        .to_string();
    let path = parts.next().ok_or_else(|| bad("missing path"))?.to_string();
    let http10 = match parts.next() {
        Some("HTTP/1.0") => true,
        Some(v) if v.starts_with("HTTP/1") => false,
        _ => return Err(bad("expected HTTP/1.x request")),
    };

    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
    let mut keep_alive = !http10;
    let mut accept_encoding = Vec::new();
    let mut content_encoding: Option<String> = None;
    let mut range_start = None;
    let mut header_bytes = 0usize;
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| ServeError::Internal(format!("read header: {e}")))?;
        if n == 0 || header.trim().is_empty() {
            break;
        }
        header_bytes += n;
        if header_bytes > MAX_HEADER_BYTES {
            return Err(bad("header section too large"));
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim();
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .parse::<usize>()
                    .map_err(|_| bad("invalid Content-Length"))?;
            } else if name.eq_ignore_ascii_case("connection") {
                // Token list; `close` wins over anything else.
                let mut close = false;
                let mut ka = false;
                for token in value.split(',') {
                    let token = token.trim();
                    close |= token.eq_ignore_ascii_case("close");
                    ka |= token.eq_ignore_ascii_case("keep-alive");
                }
                keep_alive = if close { false } else { ka || !http10 };
            } else if name.eq_ignore_ascii_case("accept-encoding") {
                accept_encoding = parse_accept_encoding(value);
            } else if name.eq_ignore_ascii_case("content-encoding") {
                content_encoding = Some(value.to_ascii_lowercase());
            } else if name.eq_ignore_ascii_case("range") {
                range_start = parse_range_start(value);
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        // Reject before reading: the client learns immediately (400) instead
        // of pushing a megabyte-scale body into a dead connection.
        return Err(bad("request body too large"));
    }
    let mut buf = vec![0u8; content_length];
    reader
        .read_exact(&mut buf)
        .map_err(|e| ServeError::BadRequest(format!("short body: {e}")))?;
    let buf = decode_request_body(buf, content_encoding.as_deref())?;
    let body = String::from_utf8(buf).map_err(|_| bad("body is not UTF-8"))?;
    Ok(Some(Request {
        method,
        path,
        body,
        keep_alive,
        accept_encoding,
        range_start,
    }))
}

/// Apply the request's `Content-Encoding` to the raw body bytes. Supports
/// `gzip` (and its legacy `x-gzip` alias) and `deflate` — the same codings
/// the export path emits — with zlib-wrapped **and** raw DEFLATE both
/// accepted for `deflate` (clients disagree on which the token means).
/// Decoded output above [`MAX_DECODED_BODY_BYTES`] is rejected.
fn decode_request_body(buf: Vec<u8>, coding: Option<&str>) -> Result<Vec<u8>, ServeError> {
    let bad = |m: String| ServeError::BadRequest(m);
    let decoded = match coding {
        None | Some("identity") => return Ok(buf),
        Some("gzip") | Some("x-gzip") => crate::compress::gunzip(&buf)
            .map_err(|e| bad(format!("cannot decode gzip body: {e}")))?,
        Some("deflate") => crate::compress::zlib_decode(&buf)
            .or_else(|_| crate::compress::inflate(&buf))
            .map_err(|e| bad(format!("cannot decode deflate body: {e}")))?,
        Some(other) => {
            return Err(bad(format!(
                "unsupported Content-Encoding {other:?} (gzip|deflate|identity)"
            )))
        }
    };
    if decoded.len() > MAX_DECODED_BODY_BYTES {
        return Err(bad("decoded request body too large".into()));
    }
    Ok(decoded)
}

fn connection_token(keep_alive: bool) -> &'static str {
    if keep_alive {
        "keep-alive"
    } else {
        "close"
    }
}

/// Write a JSON response with the given status and serialised body, echoing
/// the negotiated connection state.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_json_response<W: Write>(
    out: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_json_response_with_headers(out, status, body, &[], keep_alive)
}

/// [`write_json_response`] with additional response headers (name, value)
/// — e.g. the `Content-Range: bytes */N` a 416 answer carries.
///
/// Degradation statuses (429 Overloaded, 503 Shutting Down / draining,
/// 504 Deadline Exceeded) automatically carry `Retry-After: 1` unless the
/// caller supplied its own `Retry-After` — well-behaved clients (and the
/// router in front of a worker pool) back off briefly instead of
/// hammering a shard that already said it cannot take the request.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_json_response_with_headers<W: Write>(
    out: &mut W,
    status: u16,
    body: &str,
    extra_headers: &[(&str, &str)],
    keep_alive: bool,
) -> std::io::Result<()> {
    write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        reason(status),
        body.len(),
    )?;
    if matches!(status, 429 | 503 | 504)
        && !extra_headers
            .iter()
            .any(|(name, _)| name.eq_ignore_ascii_case("retry-after"))
    {
        write!(out, "Retry-After: 1\r\n")?;
    }
    for (name, value) in extra_headers {
        write!(out, "{name}: {value}\r\n")?;
    }
    write!(
        out,
        "Connection: {}\r\n\r\n{body}",
        connection_token(keep_alive)
    )?;
    out.flush()
}

/// Write a plain-text response (Prometheus exposition uses text/plain with
/// the format version parameter), echoing the negotiated connection state.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_text_response<W: Write>(
    out: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        reason(status),
        body.len(),
        connection_token(keep_alive),
    )?;
    out.flush()
}

/// Write the status line + headers of a chunked streaming response. The
/// body follows through a [`ChunkedWriter`] over the same stream.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_chunked_header<W: Write>(
    out: &mut W,
    status: u16,
    content_type: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_chunked_header_encoded(out, status, content_type, None, keep_alive)
}

/// Like [`write_chunked_header`], with an optional `Content-Encoding`
/// header for compressed streams (the chunked framing wraps the *encoded*
/// bytes, per RFC 9112 — content coding applies before transfer coding).
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_chunked_header_encoded<W: Write>(
    out: &mut W,
    status: u16,
    content_type: &str,
    content_encoding: Option<&str>,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_chunked_headers(
        out,
        status,
        content_type,
        content_encoding,
        None,
        keep_alive,
    )
}

/// Like [`write_chunked_header_encoded`], additionally carrying a
/// `Content-Range` header for 206 partial-content streams (ranged
/// responses are always identity-coded, so the two options are mutually
/// exclusive in practice).
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_chunked_headers<W: Write>(
    out: &mut W,
    status: u16,
    content_type: &str,
    content_encoding: Option<&str>,
    content_range: Option<&str>,
    keep_alive: bool,
) -> std::io::Result<()> {
    write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n",
        reason(status),
    )?;
    if let Some(coding) = content_encoding {
        write!(
            out,
            "Content-Encoding: {coding}\r\nVary: Accept-Encoding\r\n"
        )?;
    }
    if let Some(range) = content_range {
        write!(out, "Content-Range: {range}\r\n")?;
    }
    write!(
        out,
        "Transfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
        connection_token(keep_alive),
    )
}

/// [`Write`] adapter that frames everything written through it as HTTP/1.1
/// chunked transfer encoding.
///
/// Bytes accumulate in a fixed [`CHUNK_BYTES`] buffer; each time it fills, a
/// `<hex len>\r\n<data>\r\n` chunk goes out. [`finish`](Self::finish) flushes
/// the tail and writes the terminal `0\r\n\r\n` chunk. Because the buffer
/// never grows, streaming a 100-million-row relation costs the same memory
/// as streaming ten rows.
pub struct ChunkedWriter<'a, W: Write> {
    inner: &'a mut W,
    buf: Vec<u8>,
}

impl<'a, W: Write> ChunkedWriter<'a, W> {
    /// Wrap `inner`; headers (with `Transfer-Encoding: chunked`) must
    /// already have been written via [`write_chunked_header`].
    pub fn new(inner: &'a mut W) -> Self {
        ChunkedWriter {
            inner,
            buf: Vec::with_capacity(CHUNK_BYTES),
        }
    }

    fn emit_chunk(&mut self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        write!(self.inner, "{:x}\r\n", self.buf.len())?;
        self.inner.write_all(&self.buf)?;
        self.inner.write_all(b"\r\n")?;
        self.buf.clear();
        Ok(())
    }

    /// Flush buffered bytes and write the terminal chunk. Must be called
    /// exactly once; dropping without it leaves the stream unterminated
    /// (which clients correctly treat as a truncated response).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.emit_chunk()?;
        self.inner.write_all(b"0\r\n\r\n")?;
        self.inner.flush()
    }
}

impl<W: Write> Write for ChunkedWriter<'_, W> {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        // Fill the buffer only up to CHUNK_BYTES, emitting whenever it is
        // exactly full — the buffer (and so every chunk) never exceeds
        // CHUNK_BYTES no matter how large a single write is.
        let mut rest = data;
        while !rest.is_empty() {
            let take = (CHUNK_BYTES - self.buf.len()).min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() == CHUNK_BYTES {
                self.emit_chunk()?;
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.emit_chunk()?;
        self.inner.flush()
    }
}

/// Decode an HTTP/1.1 chunked body back into bytes (test + client helper).
///
/// # Errors
///
/// [`ServeError::BadRequest`] on malformed chunk framing (bad size line,
/// truncated chunk, missing terminal chunk).
pub fn decode_chunked(raw: &[u8]) -> Result<Vec<u8>, ServeError> {
    let bad = |m: &str| ServeError::BadRequest(m.to_string());
    let mut out = Vec::new();
    let mut rest = raw;
    loop {
        let line_end = rest
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or_else(|| bad("missing chunk-size CRLF"))?;
        let size_line = std::str::from_utf8(&rest[..line_end])
            .map_err(|_| bad("chunk size is not UTF-8"))?
            .trim();
        let size = usize::from_str_radix(size_line, 16).map_err(|_| bad("invalid chunk size"))?;
        rest = &rest[line_end + 2..];
        if size == 0 {
            return Ok(out);
        }
        if rest.len() < size + 2 {
            return Err(bad("truncated chunk"));
        }
        out.extend_from_slice(&rest[..size]);
        if &rest[size..size + 2] != b"\r\n" {
            return Err(bad("missing chunk-data CRLF"));
        }
        rest = &rest[size + 2..];
    }
}

/// Canonical reason phrases for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        206 => "Partial Content",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        416 => "Range Not Satisfiable",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_post_with_body() {
        let raw = "POST /estimate HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"a\": 1}x";
        let req = read_request(&mut Cursor::new(raw)).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/estimate");
        assert_eq!(req.body, "{\"a\": 1}x");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_get_without_body() {
        let req = read_request(&mut Cursor::new("GET /healthz HTTP/1.1\r\n\r\n"))
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.body, "");
    }

    #[test]
    fn negotiates_connection_state() {
        let close = read_request(&mut Cursor::new(
            "GET / HTTP/1.1\r\nConnection: close\r\n\r\n",
        ))
        .unwrap()
        .unwrap();
        assert!(!close.keep_alive);
        let old = read_request(&mut Cursor::new("GET / HTTP/1.0\r\n\r\n"))
            .unwrap()
            .unwrap();
        assert!(!old.keep_alive, "HTTP/1.0 defaults to close");
        let old_ka = read_request(&mut Cursor::new(
            "GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n",
        ))
        .unwrap()
        .unwrap();
        assert!(old_ka.keep_alive, "HTTP/1.0 opts in explicitly");
        // `close` wins inside a token list, case-insensitively.
        let mixed = read_request(&mut Cursor::new(
            "GET / HTTP/1.1\r\nConnection: keep-alive, CLOSE\r\n\r\n",
        ))
        .unwrap()
        .unwrap();
        assert!(!mixed.keep_alive);
    }

    #[test]
    fn parses_accept_encoding() {
        let req = read_request(&mut Cursor::new(
            "GET / HTTP/1.1\r\nAccept-Encoding: GZip, deflate;q=0.5, br;q=0\r\n\r\n",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(req.accept_encoding, vec!["gzip", "deflate"]);
        assert!(req.accepts_encoding("gzip"));
        assert!(req.accepts_encoding("deflate"));
        assert!(!req.accepts_encoding("br"), "q=0 means not acceptable");

        let plain = read_request(&mut Cursor::new("GET / HTTP/1.1\r\n\r\n"))
            .unwrap()
            .unwrap();
        assert!(plain.accept_encoding.is_empty());
        assert!(!plain.accepts_encoding("gzip"));

        let wild = read_request(&mut Cursor::new(
            "GET / HTTP/1.1\r\nAccept-Encoding: *\r\n\r\n",
        ))
        .unwrap()
        .unwrap();
        assert!(wild.accepts_encoding("gzip"), "wildcard accepts anything");
    }

    #[test]
    fn chunked_header_carries_content_encoding() {
        let mut out = Vec::new();
        write_chunked_header_encoded(&mut out, 200, "text/csv", Some("gzip"), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Encoding: gzip\r\n"));
        assert!(text.contains("Vary: Accept-Encoding\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        let mut out = Vec::new();
        write_chunked_header(&mut out, 200, "text/csv", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(!text.contains("Content-Encoding"));
    }

    #[test]
    fn parses_resume_range_and_ignores_other_shapes() {
        let req = read_request(&mut Cursor::new(
            "GET /jobs/1/export HTTP/1.1\r\nRange: bytes=1024-\r\n\r\n",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(req.range_start, Some(1024));
        for other in [
            "bytes=0-99",  // closed range
            "bytes=-500",  // suffix range
            "bytes=1-,5-", // multiple ranges
            "items=3-",    // non-byte unit
            "garbage",
        ] {
            let raw = format!("GET / HTTP/1.1\r\nRange: {other}\r\n\r\n");
            let req = read_request(&mut Cursor::new(raw)).unwrap().unwrap();
            assert_eq!(req.range_start, None, "shape {other:?} must be ignored");
        }
        let plain = read_request(&mut Cursor::new("GET / HTTP/1.1\r\n\r\n"))
            .unwrap()
            .unwrap();
        assert_eq!(plain.range_start, None);
    }

    #[test]
    fn decodes_gzip_and_deflate_request_bodies() {
        use crate::compress::{Coding, Encoder};
        let payload = "SELECT COUNT(*) FROM t WHERE a = 1 -- card=7\n".repeat(64);
        for coding in [Coding::Gzip, Coding::Deflate] {
            let mut enc = Encoder::new(Vec::new(), coding);
            enc.write_all(payload.as_bytes()).unwrap();
            let compressed = enc.finish().unwrap();
            let raw = format!(
                "POST /train HTTP/1.1\r\nContent-Encoding: {}\r\nContent-Length: {}\r\n\r\n",
                coding.token(),
                compressed.len()
            );
            let mut framed = raw.into_bytes();
            framed.extend_from_slice(&compressed);
            let req = read_request(&mut Cursor::new(framed)).unwrap().unwrap();
            assert_eq!(req.body, payload, "{coding:?} body must round-trip");
        }
    }

    #[test]
    fn unknown_content_encoding_is_rejected() {
        let raw = "POST / HTTP/1.1\r\nContent-Encoding: br\r\nContent-Length: 2\r\n\r\nxx";
        let err = read_request(&mut Cursor::new(raw)).unwrap_err();
        assert!(err.to_string().contains("unsupported Content-Encoding"));
        assert_eq!(err.status(), 400);
        // identity is a no-op, not an error.
        let raw = "POST / HTTP/1.1\r\nContent-Encoding: identity\r\nContent-Length: 2\r\n\r\nok";
        let req = read_request(&mut Cursor::new(raw)).unwrap().unwrap();
        assert_eq!(req.body, "ok");
    }

    #[test]
    fn eof_between_requests_is_clean() {
        assert_eq!(read_request(&mut Cursor::new("")).unwrap(), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_request(&mut Cursor::new("nonsense\r\n\r\n")).is_err());
        assert!(read_request(&mut Cursor::new("\r\n")).is_err());
        // Declared body longer than what arrives.
        let short = "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(read_request(&mut Cursor::new(short)).is_err());
    }

    #[test]
    fn oversized_body_is_rejected_without_reading_it() {
        // The body bytes never arrive; the 400 must not wait for them.
        let oversize = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = read_request(&mut Cursor::new(oversize)).unwrap_err();
        assert!(err.to_string().contains("too large"), "{err}");
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn oversized_header_section_is_rejected() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..9000 {
            raw.push_str(&format!("X-Filler-{i}: aaaaaaaa\r\n"));
        }
        raw.push_str("\r\n");
        let err = read_request(&mut Cursor::new(raw)).unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");
    }

    #[test]
    fn writes_framed_response() {
        let mut out = Vec::new();
        write_json_response(&mut out, 429, "{\"error\":\"full\"}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 16\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"full\"}"));
    }

    #[test]
    fn degradation_statuses_carry_retry_after() {
        for status in [429u16, 503, 504] {
            let mut out = Vec::new();
            write_json_response(&mut out, status, "{}", false).unwrap();
            let text = String::from_utf8(out).unwrap();
            assert!(
                text.contains("Retry-After: 1\r\n"),
                "status {status} missing Retry-After: {text}"
            );
        }
        // Success statuses never carry it.
        let mut out = Vec::new();
        write_json_response(&mut out, 200, "{}", false).unwrap();
        assert!(!String::from_utf8(out).unwrap().contains("Retry-After"));
        // A caller-supplied Retry-After wins over the automatic one.
        let mut out = Vec::new();
        write_json_response_with_headers(&mut out, 503, "{}", &[("Retry-After", "7")], false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Retry-After: 7\r\n"));
        assert!(!text.contains("Retry-After: 1\r\n"));
    }

    #[test]
    fn responses_echo_keep_alive() {
        let mut out = Vec::new();
        write_json_response(&mut out, 200, "{}", true).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("Connection: keep-alive\r\n"));
        let mut out = Vec::new();
        write_text_response(&mut out, 200, "x 1", true).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("Connection: keep-alive\r\n"));
    }

    #[test]
    fn chunked_round_trip() {
        let mut raw = Vec::new();
        {
            let mut w = ChunkedWriter::new(&mut raw);
            w.write_all(b"hello ").unwrap();
            w.write_all(&vec![b'x'; CHUNK_BYTES]).unwrap();
            w.write_all(b" world").unwrap();
            w.finish().unwrap();
        }
        let decoded = decode_chunked(&raw).unwrap();
        assert_eq!(decoded.len(), 12 + CHUNK_BYTES);
        assert!(decoded.starts_with(b"hello "));
        assert!(decoded.ends_with(b" world"));
        assert!(raw.ends_with(b"0\r\n\r\n"));
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut raw = Vec::new();
        {
            let mut w = ChunkedWriter::new(&mut raw);
            w.write_all(b"data").unwrap();
            w.finish().unwrap();
        }
        assert!(decode_chunked(&raw[..raw.len() - 5]).is_err());
    }
}
