//! Registry version-history semantics: unique monotone version minting
//! under concurrent loads (the `POST /models` vs journal-replay race), and
//! bit-for-bit rollback through the retained history.

mod support;

use sam_serve::registry::{ModelRegistry, HISTORY_CAP};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sam_registry_{tag}_{}.json", std::process::id()))
}

/// Regression: two concurrent loads of the same name must never mint the
/// same version id. Version assignment happens under one registry write
/// lock, so N racing loads produce exactly the versions 1..=N.
#[test]
fn concurrent_loads_mint_unique_monotone_versions() {
    let trained = support::tiny_model(11);
    let path = temp_file("race");
    std::fs::write(
        &path,
        sam_ar::save_model(trained.model(), trained.db_schema()),
    )
    .unwrap();

    const LOADERS: usize = 8;
    let registry = Arc::new(ModelRegistry::new());
    let barrier = Arc::new(std::sync::Barrier::new(LOADERS));
    let mut handles = Vec::new();
    for _ in 0..LOADERS {
        let registry = registry.clone();
        let barrier = barrier.clone();
        let path = path.to_str().unwrap().to_string();
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            registry.load_file("census", &path).unwrap()
        }));
    }
    let versions: BTreeSet<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(
        versions,
        (1..=LOADERS as u64).collect::<BTreeSet<_>>(),
        "each racing load must mint a distinct version"
    );
    assert_eq!(registry.get("census").unwrap().version, LOADERS as u64);
    let _ = std::fs::remove_file(&path);
}

/// Rollback restores the prior version's weights bit-for-bit under a fresh
/// monotone version; versions never repeat, and repeated rollbacks walk
/// back through the history rather than toggling.
#[test]
fn rollback_restores_prior_weights_under_new_version() {
    let registry = ModelRegistry::new();
    let a = support::tiny_model(1);
    let b = support::tiny_model(2);
    let a_json = sam_ar::save_model(a.model(), a.db_schema());
    let b_json = sam_ar::save_model(b.model(), b.db_schema());
    assert_ne!(a_json, b_json, "distinct seeds must give distinct models");

    assert_eq!(registry.insert("m", a), 1);
    assert_eq!(registry.insert("m", b), 2);
    assert_eq!(registry.history_versions("m"), vec![1]);

    // Roll back v2 -> the v1 weights, re-registered as v3.
    let (version, restored_from) = registry.rollback("m").unwrap();
    assert_eq!((version, restored_from), (3, 1));
    let entry = registry.get("m").unwrap();
    assert_eq!(entry.version, 3);
    let served = sam_ar::save_model(entry.trained.model(), entry.trained.db_schema());
    assert_eq!(
        served, a_json,
        "rollback must serve prior weights bit-for-bit"
    );

    // History is now empty (the rolled-back v2 is dropped, v1 was popped):
    // a second rollback has nothing to restore.
    let err = registry.rollback("m").unwrap_err();
    assert!(err.to_string().contains("no prior version"), "{err}");

    // Unknown names are NotFound, not Conflict.
    assert!(registry.rollback("ghost").is_err());
}

/// The history is bounded: only the last `HISTORY_CAP` superseded versions
/// stay rollback-able.
#[test]
fn history_is_bounded_to_cap() {
    let registry = ModelRegistry::new();
    let total = HISTORY_CAP as u64 + 3;
    for i in 0..total {
        registry.insert("m", support::tiny_model(i % 2));
        assert_eq!(registry.get("m").unwrap().version, i + 1);
    }
    let history = registry.history_versions("m");
    assert_eq!(history.len(), HISTORY_CAP);
    assert_eq!(
        history,
        ((total - HISTORY_CAP as u64)..total).collect::<Vec<_>>(),
        "history keeps the most recent superseded versions, oldest first"
    );
}
