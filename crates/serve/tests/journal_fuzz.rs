//! Property sweep over journal corruption: for *every* prefix truncation
//! and *every* single-bit flip of a real journal file, reopening must
//! recover (truncate the torn tail / quarantine the corrupt record) and
//! replay must yield a consistent subset of the original history — never
//! panic, never invent a job id, never report a terminal state the
//! original log did not record for that job.
//!
//! No fuzzing crate is vendored, so the sweep is exhaustive and
//! deterministic instead of sampled: the journal fixture is ~1 KiB, small
//! enough to try every truncation point and every byte's flip.

use sam_core::{GenerationConfig, JoinKeyStrategy};
use sam_serve::journal::{Journal, JOURNAL_FILE};
use sam_serve::ReplayState;
use serde_json::json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sam_journal_fuzz_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn gen_config(seed: u64) -> GenerationConfig {
    GenerationConfig {
        foj_samples: 640,
        batch: 8,
        seed,
        strategy: JoinKeyStrategy::GroupAndMerge,
    }
}

/// Write the reference history and return its raw log bytes plus the
/// baseline replay (id → state).
fn reference_journal(dir: &Path) -> (Vec<u8>, BTreeMap<u64, ReplayState>) {
    let journal = Journal::open(dir, sam_obs::counter("fuzz_ref_events")).unwrap();
    journal.accepted(1, "m", 1, &gen_config(1));
    journal.running(1);
    journal.relation(1, "A", 10);
    journal.completed(1, &json!({"tables": [{"name": "A", "rows": 10}]}));
    journal.accepted(2, "m", 1, &gen_config(2));
    journal.running(2);
    journal.failed(2, "boom");
    journal.accepted(3, "m", 2, &gen_config(3));
    journal.cancelled(3);
    journal.accepted(4, "m", 2, &gen_config(4));
    journal.running(4);
    let baseline: BTreeMap<u64, ReplayState> = journal
        .replay()
        .unwrap()
        .into_iter()
        .map(|j| (j.id, j.state))
        .collect();
    assert_eq!(baseline.len(), 4);
    let bytes = std::fs::read(dir.join(JOURNAL_FILE)).unwrap();
    (bytes, baseline)
}

/// The invariant every corrupted replay must satisfy: a subset of the
/// original job ids, each in its original state or — when the corruption
/// ate its terminal event — rolled back to `Interrupted`. Any other state
/// would be a resurrected or invented job.
fn assert_consistent(
    jobs: &[sam_serve::ReplayedJob],
    baseline: &BTreeMap<u64, ReplayState>,
    what: &str,
) {
    for job in jobs {
        let Some(original) = baseline.get(&job.id) else {
            panic!("{what}: replay invented job id {}", job.id);
        };
        assert!(
            job.state == *original || job.state == ReplayState::Interrupted,
            "{what}: job {} replayed as {:?}, original was {:?}",
            job.id,
            job.state,
            original
        );
        // The recorded config must be the original one whenever the job
        // survives at all (its `accepted` line passed the CRC).
        assert_eq!(
            job.config.seed, job.id,
            "{what}: job {} resurrected with a foreign config",
            job.id
        );
    }
}

/// Every prefix truncation of the log — a crash freezing the file at any
/// byte — recovers and replays consistently.
#[test]
fn any_prefix_truncation_replays_cleanly() {
    let ref_dir = scratch("trunc_ref");
    let (bytes, baseline) = reference_journal(&ref_dir);
    let dir = scratch("trunc");
    for len in 0..=bytes.len() {
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(JOURNAL_FILE), &bytes[..len]).unwrap();
        let journal = Journal::open(&dir, sam_obs::counter("fuzz_trunc_events")).unwrap();
        let jobs = journal.replay().unwrap();
        assert_consistent(&jobs, &baseline, &format!("truncated to {len} bytes"));
        // A pure truncation never quarantines: the damage is a torn tail,
        // and every surviving complete line is CRC-intact.
        assert!(
            !dir.join(sam_serve::journal::QUARANTINE_FILE).exists(),
            "truncation to {len} bytes quarantined a record"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
    let _ = std::fs::remove_dir_all(&ref_dir);
}

/// Every single-bit flip of the log — disk rot, a misdirected write —
/// recovers (quarantining the hit record) and replays consistently.
#[test]
fn any_single_bit_flip_replays_or_quarantines() {
    let ref_dir = scratch("flip_ref");
    let (bytes, baseline) = reference_journal(&ref_dir);
    let dir = scratch("flip");
    for (i, bit) in (0..bytes.len()).map(|i| (i, i % 8)) {
        let mut mutated = bytes.clone();
        mutated[i] ^= 1 << bit;
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(JOURNAL_FILE), &mutated).unwrap();
        let what = format!("bit {bit} of byte {i} flipped");
        let journal = Journal::open(&dir, sam_obs::counter("fuzz_flip_events")).unwrap();
        let jobs = journal.replay().unwrap();
        assert_consistent(&jobs, &baseline, &what);
        // After recovery the log itself is clean: a second open must see
        // nothing left to repair, and replay must be unchanged.
        let again = Journal::open(&dir, sam_obs::counter("fuzz_flip_events2")).unwrap();
        let jobs2 = again.replay().unwrap();
        assert_eq!(jobs.len(), jobs2.len(), "{what}: recovery did not converge");
        std::fs::remove_dir_all(&dir).unwrap();
    }
    let _ = std::fs::remove_dir_all(&ref_dir);
}
