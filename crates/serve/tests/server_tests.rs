//! Integration tests for the serving subsystem: happy paths, graceful
//! degradation (429 / 400 / 404 / 504), hot swap, and drain-on-shutdown.

use sam_core::{Sam, SamConfig, TrainedSam};
use sam_query::{label_workload, WorkloadGenerator};
use sam_serve::{ServeConfig, Server};
use sam_storage::{paper_example, DatabaseStats};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Train a small model on the paper's Figure-3 database.
fn tiny_model(arch_seed: u64) -> TrainedSam {
    let db = paper_example::figure3_database();
    let stats = DatabaseStats::from_database(&db);
    let mut gen = WorkloadGenerator::new(&db, 7);
    let workload = label_workload(&db, gen.multi_workload(24, 2)).unwrap();
    let config = SamConfig {
        model: sam_ar::ArModelConfig {
            hidden: vec![12],
            seed: arch_seed,
            residual: false,
            transformer: None,
        },
        train: sam_ar::TrainConfig {
            epochs: 4,
            batch_size: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    Sam::fit(db.schema(), &stats, &workload, &config).unwrap()
}

/// Blocking one-shot HTTP client: send a request (downgrading to
/// `Connection: close` so reading to EOF frames the response), read the
/// full response.
fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, Value) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    parse_response(&raw)
}

fn parse_response(raw: &str) -> (u16, Value) {
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let json = raw.split("\r\n\r\n").nth(1).expect("body");
    (status, serde_json::parse_value(json).expect("JSON body"))
}

fn start_server(config: ServeConfig) -> Server {
    let server = Server::start(config).expect("start server");
    server.registry().insert("demo", tiny_model(3));
    server
}

#[test]
fn health_models_and_estimate_roundtrip() {
    let server = start_server(ServeConfig::default());
    let addr = server.addr();

    let (status, health) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(health.get("models").and_then(Value::as_u64), Some(1));

    let (status, models) = http(addr, "GET", "/models", "");
    assert_eq!(status, 200);
    let list = models.get("models").and_then(Value::as_array).unwrap();
    assert_eq!(list.len(), 1);
    assert_eq!(list[0].get("name").and_then(Value::as_str), Some("demo"));
    assert_eq!(list[0].get("version").and_then(Value::as_u64), Some(1));

    let body = r#"{"model": "demo", "sql": "SELECT COUNT(*) FROM A", "samples": 64, "seed": 1}"#;
    let (status, est) = http(addr, "POST", "/estimate", body);
    assert_eq!(status, 200, "estimate failed: {est:?}");
    let value = est.get("estimate").and_then(Value::as_f64).unwrap();
    assert!(value.is_finite() && value >= 0.0);
    assert!(est.get("batch_size").and_then(Value::as_u64).unwrap() >= 1);

    let (status, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert_eq!(metrics.get("estimates_ok").and_then(Value::as_u64), Some(1));
    server.shutdown();
}

#[test]
fn malformed_and_missing_requests_degrade_cleanly() {
    let server = start_server(ServeConfig::default());
    let addr = server.addr();

    // Invalid JSON → 400.
    let (status, body) = http(addr, "POST", "/estimate", "{not json");
    assert_eq!(status, 400, "{body:?}");

    // Missing required field → 400.
    let (status, _) = http(addr, "POST", "/estimate", r#"{"model": "demo"}"#);
    assert_eq!(status, 400);

    // Unparsable SQL → 400.
    let (status, body) = http(
        addr,
        "POST",
        "/estimate",
        r#"{"model": "demo", "sql": "DELETE FROM A"}"#,
    );
    assert_eq!(status, 400);
    assert!(body
        .get("error")
        .and_then(Value::as_str)
        .unwrap()
        .contains("SQL"));

    // Unknown model → 404.
    let (status, _) = http(
        addr,
        "POST",
        "/estimate",
        r#"{"model": "nope", "sql": "SELECT COUNT(*) FROM A"}"#,
    );
    assert_eq!(status, 404);

    // Unknown job → 404; bad job id → 400.
    let (status, _) = http(addr, "GET", "/jobs/999", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET", "/jobs/abc", "");
    assert_eq!(status, 400);

    // Unknown route → 404.
    let (status, _) = http(addr, "GET", "/nope", "");
    assert_eq!(status, 404);

    // Wrongly typed field → 400.
    let (status, _) = http(
        addr,
        "POST",
        "/estimate",
        r#"{"model": "demo", "sql": "SELECT COUNT(*) FROM A", "samples": "many"}"#,
    );
    assert_eq!(status, 400);

    let (_, metrics) = http(addr, "GET", "/metrics", "");
    assert!(
        metrics
            .get("estimate_errors")
            .and_then(Value::as_u64)
            .unwrap()
            >= 4
    );
    server.shutdown();
}

#[test]
fn full_queue_rejects_with_429() {
    // One worker, one queue slot, no co-batching: while the worker chews on a
    // big request and one more waits in the queue, further requests bounce.
    let server = start_server(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        max_batch: 1,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let slow = r#"{"model": "demo", "sql": "SELECT COUNT(*) FROM A, B, C", "samples": 100000, "timeout_ms": 120000}"#;

    // Fire several requests on parallel connections without waiting for
    // replies; with capacity worker+queue = 2, at least one of 6 must get 429.
    let clients: Vec<_> = (0..6)
        .map(|_| {
            let body = slow.to_string();
            std::thread::spawn(move || http(addr, "POST", "/estimate", &body).0)
        })
        .collect();
    let statuses: Vec<u16> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    let rejected = statuses.iter().filter(|&&s| s == 429).count();
    let served = statuses.iter().filter(|&&s| s == 200).count();
    assert!(rejected >= 1, "expected at least one 429, got {statuses:?}");
    assert!(
        served >= 1,
        "expected at least one success, got {statuses:?}"
    );

    let (_, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(
        metrics.get("rejected_overload").and_then(Value::as_u64),
        Some(rejected as u64)
    );
    server.shutdown();
}

#[test]
fn missed_deadline_returns_504() {
    let server = start_server(ServeConfig::default());
    let addr = server.addr();
    let body = r#"{"model": "demo", "sql": "SELECT COUNT(*) FROM A, B, C", "samples": 400000, "timeout_ms": 1}"#;
    let (status, payload) = http(addr, "POST", "/estimate", body);
    assert_eq!(status, 504, "{payload:?}");
    let (_, metrics) = http(addr, "GET", "/metrics", "");
    assert!(
        metrics
            .get("deadline_exceeded")
            .and_then(Value::as_u64)
            .unwrap()
            >= 1
    );
    server.shutdown();
}

#[test]
fn hot_swap_bumps_version_without_downtime() {
    let server = start_server(ServeConfig::default());
    let addr = server.addr();
    assert_eq!(server.registry().insert("demo", tiny_model(9)), 2);
    let (status, est) = http(
        addr,
        "POST",
        "/estimate",
        r#"{"model": "demo", "sql": "SELECT COUNT(*) FROM A", "samples": 32}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(est.get("model_version").and_then(Value::as_u64), Some(2));
    server.shutdown();
}

#[test]
fn repeated_estimate_is_served_from_cache() {
    let server = start_server(ServeConfig::default());
    let addr = server.addr();
    let body = r#"{"model": "demo", "sql": "SELECT COUNT(*) FROM A, B", "samples": 64, "seed": 5}"#;

    let (status, first) = http(addr, "POST", "/estimate", body);
    assert_eq!(status, 200, "{first:?}");
    assert_eq!(first.get("cached").and_then(Value::as_bool), Some(false));
    let estimate = first.get("estimate").and_then(Value::as_f64).unwrap();

    let (status, second) = http(addr, "POST", "/estimate", body);
    assert_eq!(status, 200);
    assert_eq!(second.get("cached").and_then(Value::as_bool), Some(true));
    assert_eq!(second.get("batch_size").and_then(Value::as_u64), Some(0));
    assert_eq!(
        second.get("estimate").and_then(Value::as_f64),
        Some(estimate),
        "cached answer must equal the computed one"
    );

    // A different seed is a different key — computed, not served stale.
    let other =
        r#"{"model": "demo", "sql": "SELECT COUNT(*) FROM A, B", "samples": 64, "seed": 6}"#;
    let (_, third) = http(addr, "POST", "/estimate", other);
    assert_eq!(third.get("cached").and_then(Value::as_bool), Some(false));

    let (_, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(metrics.get("cache_hits").and_then(Value::as_u64), Some(1));
    assert_eq!(metrics.get("cache_misses").and_then(Value::as_u64), Some(2));

    // Hot swap bumps the version, which invalidates every old cache key.
    server.registry().insert("demo", tiny_model(9));
    let (_, after_swap) = http(addr, "POST", "/estimate", body);
    assert_eq!(
        after_swap.get("cached").and_then(Value::as_bool),
        Some(false),
        "swap must not serve the old version's estimate"
    );
    assert_eq!(
        after_swap.get("model_version").and_then(Value::as_u64),
        Some(2)
    );
    server.shutdown();
}

#[test]
fn zero_capacity_disables_estimate_cache() {
    let server = start_server(ServeConfig {
        cache_capacity: 0,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let body = r#"{"model": "demo", "sql": "SELECT COUNT(*) FROM A", "samples": 32, "seed": 1}"#;
    let (_, first) = http(addr, "POST", "/estimate", body);
    let (_, second) = http(addr, "POST", "/estimate", body);
    assert_eq!(first.get("cached").and_then(Value::as_bool), Some(false));
    assert_eq!(second.get("cached").and_then(Value::as_bool), Some(false));
    // Determinism holds without the cache (same seed → same estimate).
    assert_eq!(
        first.get("estimate").and_then(Value::as_f64),
        second.get("estimate").and_then(Value::as_f64)
    );
    let (_, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(metrics.get("cache_hits").and_then(Value::as_u64), Some(0));
    server.shutdown();
}

#[test]
fn backend_override_applies_to_loaded_models() {
    let trained = tiny_model(11);
    let json = sam_ar::save_model(trained.model(), trained.db_schema());
    let path =
        std::env::temp_dir().join(format!("sam_backend_override_{}.json", std::process::id()));
    std::fs::write(&path, &json).unwrap();

    let server = Server::start(ServeConfig {
        backend: Some(sam_nn::BackendKind::BlockedF16),
        ..ServeConfig::default()
    })
    .expect("start server");
    let addr = server.addr();
    let load = format!(
        r#"{{"name": "f16demo", "path": "{}"}}"#,
        path.display().to_string().replace('\\', "/")
    );
    let (status, _) = http(addr, "POST", "/models", &load);
    assert_eq!(status, 200);
    let entry = server.registry().get("f16demo").unwrap();
    assert_eq!(
        entry.trained.model().backend_kind(),
        sam_nn::BackendKind::BlockedF16
    );

    // Estimates on the f16 backend stay close to the f32 reference.
    let q = sam_query::parse_query("SELECT COUNT(*) FROM A, B").unwrap();
    let reference = sam_ar::estimate_cardinality(
        trained.model(),
        &q,
        256,
        &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1),
    )
    .unwrap();
    let body =
        r#"{"model": "f16demo", "sql": "SELECT COUNT(*) FROM A, B", "samples": 256, "seed": 1}"#;
    let (status, est) = http(addr, "POST", "/estimate", body);
    assert_eq!(status, 200, "{est:?}");
    let value = est.get("estimate").and_then(Value::as_f64).unwrap();
    assert!(
        (value - reference).abs() <= 0.05 * (1.0 + reference.abs()),
        "f16 {value} vs f32 {reference}"
    );
    let _ = std::fs::remove_file(&path);
    server.shutdown();
}

#[test]
fn shutdown_drains_running_generation_job() {
    let server = start_server(ServeConfig::default());
    let addr = server.addr();
    let (status, accepted) = http(
        addr,
        "POST",
        "/generate",
        r#"{"model": "demo", "foj_samples": 2000, "batch": 64, "seed": 2}"#,
    );
    assert_eq!(status, 202, "{accepted:?}");
    let id = accepted.get("job_id").and_then(Value::as_u64).unwrap();

    // Poll once over HTTP while the server is still up.
    let (status, polled) = http(addr, "GET", &format!("/jobs/{id}"), "");
    assert_eq!(status, 200);
    assert!(matches!(
        polled.get("state").and_then(Value::as_str),
        Some("running") | Some("done")
    ));

    // Shutdown must block until the job reached a terminal state (drain).
    server.shutdown();
    let record = server.jobs().get(id).expect("job record survives shutdown");
    assert!(
        record.is_finished(),
        "shutdown returned with job unfinished"
    );
    let status = record.status_json();
    assert_eq!(status.get("state").and_then(Value::as_str), Some("done"));
    let tables = status
        .get("result")
        .and_then(|r| r.get("tables"))
        .and_then(Value::as_array)
        .unwrap();
    assert_eq!(tables.len(), 3);
}

#[test]
fn cancel_endpoint_cancels_long_job() {
    let server = start_server(ServeConfig::default());
    let addr = server.addr();
    let (status, accepted) = http(
        addr,
        "POST",
        "/generate",
        r#"{"model": "demo", "foj_samples": 2000000, "batch": 64, "seed": 2}"#,
    );
    assert_eq!(status, 202);
    let id = accepted.get("job_id").and_then(Value::as_u64).unwrap();
    let (status, cancelled) = http(addr, "POST", &format!("/jobs/{id}/cancel"), "");
    assert_eq!(status, 200);
    assert_eq!(
        cancelled.get("cancelled").and_then(Value::as_bool),
        Some(true)
    );

    // The job must reach a terminal state quickly (next chunk boundary).
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, polled) = http(addr, "GET", &format!("/jobs/{id}"), "");
        match polled.get("state").and_then(Value::as_str) {
            Some("cancelled") | Some("done") => break,
            _ if Instant::now() > deadline => panic!("job did not terminate: {polled:?}"),
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    server.shutdown();
}
