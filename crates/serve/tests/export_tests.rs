//! Streamed CSV/JSONL export: chunked framing, bit-for-bit round-trips
//! through `sam-storage`, negotiated gzip/deflate content coding, error
//! statuses, and bounded chunk sizes on large tables.

mod support;

use sam_serve::http::decode_chunked;
use sam_serve::{gunzip, zlib_decode, JobState, ServeConfig, Server};
use sam_storage::csv::{read_csv, write_csv};
use sam_storage::jsonl::write_jsonl;
use sam_storage::{ColumnDef, DataType, Database, Table, TableSchema, Value as Dv};
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};
use support::{http, tiny_model, wait_done, Conn};

fn start_server(config: ServeConfig) -> Server {
    let server = Server::start(config).expect("start server");
    server.registry().insert("demo", tiny_model(3));
    server
}

/// Every relation of a finished job streams as chunked CSV that decodes to
/// exactly the bytes `sam_storage::csv::write_csv` produces, and parses
/// back into an identical table — and the keep-alive connection stays
/// usable after the streamed body.
#[test]
fn chunked_export_round_trips_through_storage() {
    let server = start_server(ServeConfig::default());
    let addr = server.addr();
    let (status, accepted) = http(
        addr,
        "POST",
        "/generate",
        r#"{"model": "demo", "foj_samples": 400, "batch": 64, "seed": 11}"#,
    );
    assert_eq!(status, 202, "{accepted:?}");
    let id = accepted.get("job_id").and_then(Value::as_u64).unwrap();
    wait_done(addr, id);

    let db = server
        .jobs()
        .get(id)
        .unwrap()
        .result_database()
        .expect("finished job keeps its database");
    let mut conn = Conn::open(addr);
    for table in db.tables() {
        let response = conn.request(
            "GET",
            &format!("/jobs/{id}/export?relation={}", table.name()),
            "",
        );
        assert_eq!(response.status, 200);
        assert_eq!(response.header("transfer-encoding"), Some("chunked"));
        assert_eq!(response.header("content-type"), Some("text/csv"));
        assert!(
            response.header("content-length").is_none(),
            "chunked responses must not carry Content-Length"
        );
        assert_eq!(response.header("connection"), Some("keep-alive"));

        let decoded = decode_chunked(&response.body).expect("well-formed chunked stream");
        let mut direct = Vec::new();
        write_csv(table, &mut direct).unwrap();
        assert_eq!(
            decoded,
            direct,
            "table {}: streamed bytes differ from write_csv",
            table.name()
        );

        let back = read_csv(table.schema().clone(), decoded.as_slice()).unwrap();
        assert_eq!(back.num_rows(), table.num_rows());
        for r in 0..table.num_rows() {
            assert_eq!(back.row(r), table.row(r), "table {} row {r}", table.name());
        }
    }
    // Chunked framing must leave the connection in a clean state.
    assert_eq!(conn.request("GET", "/healthz", "").status, 200);

    let (_, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(
        metrics.get("exports_ok").and_then(Value::as_u64),
        Some(db.tables().len() as u64)
    );
    server.shutdown();
}

/// Run one small generation job to completion and return its id plus the
/// server-side result database.
fn finished_job(server: &Server) -> (u64, Arc<Database>) {
    let addr = server.addr();
    let (status, accepted) = http(
        addr,
        "POST",
        "/generate",
        r#"{"model": "demo", "foj_samples": 400, "batch": 64, "seed": 11}"#,
    );
    assert_eq!(status, 202, "{accepted:?}");
    let id = accepted.get("job_id").and_then(Value::as_u64).unwrap();
    wait_done(addr, id);
    let db = server
        .jobs()
        .get(id)
        .unwrap()
        .result_database()
        .expect("finished job keeps its database");
    (id, db)
}

/// `Accept-Encoding: gzip` compresses the CSV export: the chunked body is
/// a valid gzip stream that decodes to exactly the `write_csv` bytes, is
/// smaller than the plaintext, and leaves the keep-alive connection clean.
/// Without the header the body stays identity-coded.
#[test]
fn gzip_negotiated_export_round_trips() {
    let server = start_server(ServeConfig::default());
    let addr = server.addr();
    // A relation big enough that the compression ratio is meaningful.
    let schema = TableSchema::new(
        "big",
        vec![
            ColumnDef::content("id", DataType::Int),
            ColumnDef::content("label", DataType::Str),
        ],
    );
    let rows: Vec<Vec<Dv>> = (0..20_000)
        .map(|i| vec![Dv::Int(i as i64), Dv::str(format!("row-{i:06}"))])
        .collect();
    let table = Table::from_rows(schema, &rows).unwrap();
    server.jobs().insert_terminal(
        9,
        "demo",
        1,
        JobState::Done {
            summary: json!({"tables": [{"table": "big", "rows": 20_000}]}),
            db: Arc::new(Database::single(table.clone())),
        },
    );
    let mut direct = Vec::new();
    write_csv(&table, &mut direct).unwrap();

    let mut conn = Conn::open(addr);
    let path = format!("/jobs/9/export?relation={}", table.name());
    conn.send_with("GET", &path, "", &["Accept-Encoding: gzip, deflate"]);
    let response = conn.read_response().expect("response");
    assert_eq!(response.status, 200);
    assert_eq!(
        response.header("content-encoding"),
        Some("gzip"),
        "gzip preferred when the client lists both"
    );
    assert_eq!(response.header("vary"), Some("Accept-Encoding"));
    assert_eq!(response.header("transfer-encoding"), Some("chunked"));
    let compressed = decode_chunked(&response.body).expect("chunked stream");
    assert_eq!(gunzip(&compressed).expect("valid gzip"), direct);
    assert!(
        compressed.len() < direct.len(),
        "CSV must compress: {} -> {}",
        direct.len(),
        compressed.len()
    );

    // Same connection, no Accept-Encoding: identity body, no Vary.
    let response = conn.request("GET", &path, "");
    assert_eq!(response.status, 200);
    assert_eq!(response.header("content-encoding"), None);
    assert_eq!(response.header("vary"), None);
    assert_eq!(decode_chunked(&response.body).unwrap(), direct);
    server.shutdown();
}

/// A client that only accepts `deflate` gets a zlib-framed body (the HTTP
/// `deflate` coding), and `q=0` rules a coding out.
#[test]
fn deflate_fallback_and_q_zero() {
    let server = start_server(ServeConfig::default());
    let addr = server.addr();
    let (id, db) = finished_job(&server);
    let table = &db.tables()[0];
    let mut direct = Vec::new();
    write_csv(table, &mut direct).unwrap();
    let path = format!("/jobs/{id}/export?relation={}", table.name());

    let mut conn = Conn::open(addr);
    conn.send_with("GET", &path, "", &["Accept-Encoding: deflate"]);
    let response = conn.read_response().expect("response");
    assert_eq!(response.header("content-encoding"), Some("deflate"));
    let compressed = decode_chunked(&response.body).unwrap();
    assert_eq!(zlib_decode(&compressed).expect("valid zlib"), direct);

    conn.send_with("GET", &path, "", &["Accept-Encoding: gzip;q=0, deflate"]);
    let response = conn.read_response().expect("response");
    assert_eq!(
        response.header("content-encoding"),
        Some("deflate"),
        "gzip;q=0 must fall through to deflate"
    );
    server.shutdown();
}

/// `?format=jsonl` streams the relation as JSON Lines — bit-identical to
/// `write_jsonl`, every line a JSON object — and composes with gzip.
#[test]
fn jsonl_export_round_trips_and_compresses() {
    let server = start_server(ServeConfig::default());
    let addr = server.addr();
    let (id, db) = finished_job(&server);
    let mut conn = Conn::open(addr);
    for table in db.tables() {
        let mut direct = Vec::new();
        write_jsonl(table, &mut direct).unwrap();
        let path = format!("/jobs/{id}/export?relation={}&format=jsonl", table.name());

        let response = conn.request("GET", &path, "");
        assert_eq!(response.status, 200);
        assert_eq!(response.header("content-type"), Some("application/jsonl"));
        let decoded = decode_chunked(&response.body).expect("chunked stream");
        assert_eq!(decoded, direct, "table {}", table.name());
        let text = std::str::from_utf8(&decoded).unwrap();
        assert_eq!(text.lines().count(), table.num_rows(), "no header line");
        for line in text.lines() {
            let doc = serde_json::parse_value(line).expect("each line is JSON");
            let Value::Object(fields) = doc else {
                panic!("line is not a JSON object: {line}");
            };
            assert_eq!(
                fields.len(),
                table.schema().arity(),
                "one key per column: {line}"
            );
        }

        conn.send_with("GET", &path, "", &["Accept-Encoding: gzip"]);
        let response = conn.read_response().expect("response");
        assert_eq!(response.header("content-encoding"), Some("gzip"));
        let compressed = decode_chunked(&response.body).unwrap();
        assert_eq!(gunzip(&compressed).unwrap(), direct);
    }
    let (_, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(
        metrics.get("exports_ok").and_then(Value::as_u64),
        Some(2 * db.tables().len() as u64)
    );
    server.shutdown();
}

/// `Range: bytes=N-` resumes an interrupted export of a completed job:
/// 206 with `Content-Range` and exactly the byte suffix of the identity
/// CSV (prefix + suffix reassemble the representation bit-for-bit), forced
/// identity coding, and 416 with the representation size for a start past
/// the end.
#[test]
fn ranged_export_resumes_mid_stream() {
    let server = start_server(ServeConfig::default());
    let addr = server.addr();
    let (id, db) = finished_job(&server);
    let table = &db.tables()[0];
    let mut direct = Vec::new();
    write_csv(table, &mut direct).unwrap();
    let total = direct.len();
    assert!(total > 3, "need a non-trivial export to cut");
    let path = format!("/jobs/{id}/export?relation={}", table.name());

    // Simulate an interrupted download: client kept the first third, then
    // reconnects and asks for the rest.
    let cut = total / 3;
    let mut conn = Conn::open(addr);
    conn.send_with("GET", &path, "", &[&format!("Range: bytes={cut}-")]);
    let response = conn.read_response().expect("response");
    assert_eq!(response.status, 206);
    assert_eq!(
        response.header("content-range"),
        Some(format!("bytes {cut}-{}/{total}", total - 1).as_str())
    );
    assert_eq!(response.header("transfer-encoding"), Some("chunked"));
    let suffix = decode_chunked(&response.body).expect("chunked stream");
    assert_eq!(
        suffix,
        &direct[cut..],
        "suffix continues the stream exactly"
    );
    let mut resumed = direct[..cut].to_vec();
    resumed.extend_from_slice(&suffix);
    assert_eq!(resumed, direct, "prefix + suffix reassemble the export");

    // Ranges address identity bytes: compression stays off even when the
    // client would accept it.
    conn.send_with(
        "GET",
        &path,
        "",
        &[&format!("Range: bytes={cut}-"), "Accept-Encoding: gzip"],
    );
    let response = conn.read_response().expect("response");
    assert_eq!(response.status, 206);
    assert_eq!(response.header("content-encoding"), None);
    assert_eq!(decode_chunked(&response.body).unwrap(), &direct[cut..]);

    // `bytes=0-` is the whole representation — still a 206 partial answer.
    conn.send_with("GET", &path, "", &["Range: bytes=0-"]);
    let response = conn.read_response().expect("response");
    assert_eq!(response.status, 206);
    assert_eq!(
        response.header("content-range"),
        Some(format!("bytes 0-{}/{total}", total - 1).as_str())
    );
    assert_eq!(decode_chunked(&response.body).unwrap(), direct);

    // Start at/past the end: 416 naming the representation size.
    conn.send_with("GET", &path, "", &[&format!("Range: bytes={total}-")]);
    let response = conn.read_response().expect("response");
    assert_eq!(response.status, 416);
    assert_eq!(
        response.header("content-range"),
        Some(format!("bytes */{total}").as_str())
    );

    // A closed range is ignored (RFC 9110 lets the server serve 200 full).
    conn.send_with("GET", &path, "", &["Range: bytes=0-99"]);
    let response = conn.read_response().expect("response");
    assert_eq!(response.status, 200);
    assert_eq!(decode_chunked(&response.body).unwrap(), direct);

    // The keep-alive connection stays clean after ranged streams.
    assert_eq!(conn.request("GET", "/healthz", "").status, 200);
    server.shutdown();
}

/// Export error statuses: 404 for unknown jobs and relations, 400 for a
/// missing relation parameter or unsupported format, 409 while the job is
/// not done (running or cancelled).
#[test]
fn export_errors_are_statused_not_hung() {
    let server = start_server(ServeConfig::default());
    let addr = server.addr();

    let (status, _) = http(addr, "GET", "/jobs/99/export?relation=A", "");
    assert_eq!(status, 404, "unknown job");

    // A job big enough that it is still running when we poke at it.
    let (status, accepted) = http(
        addr,
        "POST",
        "/generate",
        r#"{"model": "demo", "foj_samples": 2000000, "batch": 64, "seed": 2}"#,
    );
    assert_eq!(status, 202);
    let id = accepted.get("job_id").and_then(Value::as_u64).unwrap();
    let (status, body) = http(addr, "GET", &format!("/jobs/{id}/export?relation=A"), "");
    assert_eq!(status, 409, "running job must refuse export: {body:?}");
    assert!(body
        .get("error")
        .and_then(Value::as_str)
        .unwrap()
        .contains("not done"));

    // Cancel and wait for the terminal state; export still refuses.
    let (status, _) = http(addr, "POST", &format!("/jobs/{id}/cancel"), "");
    assert_eq!(status, 200);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, polled) = http(addr, "GET", &format!("/jobs/{id}"), "");
        match polled.get("state").and_then(Value::as_str) {
            Some("cancelled") | Some("done") => break,
            _ if Instant::now() > deadline => panic!("job did not terminate: {polled:?}"),
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let (status, _) = http(addr, "GET", &format!("/jobs/{id}/export?relation=A"), "");
    assert!(
        status == 409 || status == 200,
        "cancelled-or-done job gave {status}"
    );

    // A small job run to completion, for parameter errors.
    let (_, accepted) = http(
        addr,
        "POST",
        "/generate",
        r#"{"model": "demo", "foj_samples": 300, "batch": 64, "seed": 3}"#,
    );
    let id = accepted.get("job_id").and_then(Value::as_u64).unwrap();
    wait_done(addr, id);

    let (status, body) = http(addr, "GET", &format!("/jobs/{id}/export"), "");
    assert_eq!(status, 400, "missing relation parameter: {body:?}");
    let (status, _) = http(addr, "GET", &format!("/jobs/{id}/export?relation=Nope"), "");
    assert_eq!(status, 404, "unknown relation");
    let (status, _) = http(
        addr,
        "GET",
        &format!("/jobs/{id}/export?relation=A&format=parquet"),
        "",
    );
    assert_eq!(status, 400, "unsupported format");
    server.shutdown();
}

/// A 100k-row relation streams in many bounded chunks (none larger than
/// the 64 KiB streaming buffer), and the decoded CSV is complete — the
/// acceptance test for memory-bounded export.
#[test]
fn hundred_thousand_row_export_streams_in_bounded_chunks() {
    const ROWS: usize = 100_000;
    let server = start_server(ServeConfig::default());
    let addr = server.addr();

    let schema = TableSchema::new(
        "big",
        vec![
            ColumnDef::content("id", DataType::Int),
            ColumnDef::content("label", DataType::Str),
        ],
    );
    let rows: Vec<Vec<Dv>> = (0..ROWS)
        .map(|i| vec![Dv::Int(i as i64), Dv::str(format!("row-{i:06}"))])
        .collect();
    let table = Table::from_rows(schema, &rows).unwrap();
    server.jobs().insert_terminal(
        7,
        "demo",
        1,
        JobState::Done {
            summary: json!({"tables": [{"table": "big", "rows": ROWS}]}),
            db: Arc::new(Database::single(table)),
        },
    );

    let mut conn = Conn::open(addr);
    let response = conn.request("GET", "/jobs/7/export?relation=big", "");
    assert_eq!(response.status, 200);
    assert!(
        response.chunks >= 4,
        "a ~1.7 MB table must stream in many chunks, got {}",
        response.chunks
    );
    assert!(
        response.max_chunk <= 64 * 1024,
        "chunk of {} bytes exceeds the 64 KiB streaming buffer",
        response.max_chunk
    );

    let decoded = decode_chunked(&response.body).expect("well-formed chunked stream");
    let newlines = decoded.iter().filter(|&&b| b == b'\n').count();
    assert_eq!(newlines, ROWS + 1, "header + one line per row");
    let text = String::from_utf8(decoded).unwrap();
    assert!(text.starts_with("id,label\n"));
    assert!(text.ends_with(&format!("{},row-{:06}\n", ROWS - 1, ROWS - 1)));
    server.shutdown();
}
