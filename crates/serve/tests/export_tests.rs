//! Streamed CSV export: chunked framing, bit-for-bit round-trips through
//! `sam-storage`, error statuses, and bounded chunk sizes on large tables.

mod support;

use sam_serve::http::decode_chunked;
use sam_serve::{JobState, ServeConfig, Server};
use sam_storage::csv::{read_csv, write_csv};
use sam_storage::{ColumnDef, DataType, Database, Table, TableSchema, Value as Dv};
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};
use support::{http, tiny_model, wait_done, Conn};

fn start_server(config: ServeConfig) -> Server {
    let server = Server::start(config).expect("start server");
    server.registry().insert("demo", tiny_model(3));
    server
}

/// Every relation of a finished job streams as chunked CSV that decodes to
/// exactly the bytes `sam_storage::csv::write_csv` produces, and parses
/// back into an identical table — and the keep-alive connection stays
/// usable after the streamed body.
#[test]
fn chunked_export_round_trips_through_storage() {
    let server = start_server(ServeConfig::default());
    let addr = server.addr();
    let (status, accepted) = http(
        addr,
        "POST",
        "/generate",
        r#"{"model": "demo", "foj_samples": 400, "batch": 64, "seed": 11}"#,
    );
    assert_eq!(status, 202, "{accepted:?}");
    let id = accepted.get("job_id").and_then(Value::as_u64).unwrap();
    wait_done(addr, id);

    let db = server
        .jobs()
        .get(id)
        .unwrap()
        .result_database()
        .expect("finished job keeps its database");
    let mut conn = Conn::open(addr);
    for table in db.tables() {
        let response = conn.request(
            "GET",
            &format!("/jobs/{id}/export?relation={}", table.name()),
            "",
        );
        assert_eq!(response.status, 200);
        assert_eq!(response.header("transfer-encoding"), Some("chunked"));
        assert_eq!(response.header("content-type"), Some("text/csv"));
        assert!(
            response.header("content-length").is_none(),
            "chunked responses must not carry Content-Length"
        );
        assert_eq!(response.header("connection"), Some("keep-alive"));

        let decoded = decode_chunked(&response.body).expect("well-formed chunked stream");
        let mut direct = Vec::new();
        write_csv(table, &mut direct).unwrap();
        assert_eq!(
            decoded,
            direct,
            "table {}: streamed bytes differ from write_csv",
            table.name()
        );

        let back = read_csv(table.schema().clone(), decoded.as_slice()).unwrap();
        assert_eq!(back.num_rows(), table.num_rows());
        for r in 0..table.num_rows() {
            assert_eq!(back.row(r), table.row(r), "table {} row {r}", table.name());
        }
    }
    // Chunked framing must leave the connection in a clean state.
    assert_eq!(conn.request("GET", "/healthz", "").status, 200);

    let (_, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(
        metrics.get("exports_ok").and_then(Value::as_u64),
        Some(db.tables().len() as u64)
    );
    server.shutdown();
}

/// Export error statuses: 404 for unknown jobs and relations, 400 for a
/// missing relation parameter or unsupported format, 409 while the job is
/// not done (running or cancelled).
#[test]
fn export_errors_are_statused_not_hung() {
    let server = start_server(ServeConfig::default());
    let addr = server.addr();

    let (status, _) = http(addr, "GET", "/jobs/99/export?relation=A", "");
    assert_eq!(status, 404, "unknown job");

    // A job big enough that it is still running when we poke at it.
    let (status, accepted) = http(
        addr,
        "POST",
        "/generate",
        r#"{"model": "demo", "foj_samples": 2000000, "batch": 64, "seed": 2}"#,
    );
    assert_eq!(status, 202);
    let id = accepted.get("job_id").and_then(Value::as_u64).unwrap();
    let (status, body) = http(addr, "GET", &format!("/jobs/{id}/export?relation=A"), "");
    assert_eq!(status, 409, "running job must refuse export: {body:?}");
    assert!(body
        .get("error")
        .and_then(Value::as_str)
        .unwrap()
        .contains("not done"));

    // Cancel and wait for the terminal state; export still refuses.
    let (status, _) = http(addr, "POST", &format!("/jobs/{id}/cancel"), "");
    assert_eq!(status, 200);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, polled) = http(addr, "GET", &format!("/jobs/{id}"), "");
        match polled.get("state").and_then(Value::as_str) {
            Some("cancelled") | Some("done") => break,
            _ if Instant::now() > deadline => panic!("job did not terminate: {polled:?}"),
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let (status, _) = http(addr, "GET", &format!("/jobs/{id}/export?relation=A"), "");
    assert!(
        status == 409 || status == 200,
        "cancelled-or-done job gave {status}"
    );

    // A small job run to completion, for parameter errors.
    let (_, accepted) = http(
        addr,
        "POST",
        "/generate",
        r#"{"model": "demo", "foj_samples": 300, "batch": 64, "seed": 3}"#,
    );
    let id = accepted.get("job_id").and_then(Value::as_u64).unwrap();
    wait_done(addr, id);

    let (status, body) = http(addr, "GET", &format!("/jobs/{id}/export"), "");
    assert_eq!(status, 400, "missing relation parameter: {body:?}");
    let (status, _) = http(addr, "GET", &format!("/jobs/{id}/export?relation=Nope"), "");
    assert_eq!(status, 404, "unknown relation");
    let (status, _) = http(
        addr,
        "GET",
        &format!("/jobs/{id}/export?relation=A&format=parquet"),
        "",
    );
    assert_eq!(status, 400, "unsupported format");
    server.shutdown();
}

/// A 100k-row relation streams in many bounded chunks (none larger than
/// the 64 KiB streaming buffer), and the decoded CSV is complete — the
/// acceptance test for memory-bounded export.
#[test]
fn hundred_thousand_row_export_streams_in_bounded_chunks() {
    const ROWS: usize = 100_000;
    let server = start_server(ServeConfig::default());
    let addr = server.addr();

    let schema = TableSchema::new(
        "big",
        vec![
            ColumnDef::content("id", DataType::Int),
            ColumnDef::content("label", DataType::Str),
        ],
    );
    let rows: Vec<Vec<Dv>> = (0..ROWS)
        .map(|i| vec![Dv::Int(i as i64), Dv::str(format!("row-{i:06}"))])
        .collect();
    let table = Table::from_rows(schema, &rows).unwrap();
    server.jobs().insert_terminal(
        7,
        "demo",
        1,
        JobState::Done {
            summary: json!({"tables": [{"table": "big", "rows": ROWS}]}),
            db: Arc::new(Database::single(table)),
        },
    );

    let mut conn = Conn::open(addr);
    let response = conn.request("GET", "/jobs/7/export?relation=big", "");
    assert_eq!(response.status, 200);
    assert!(
        response.chunks >= 4,
        "a ~1.7 MB table must stream in many chunks, got {}",
        response.chunks
    );
    assert!(
        response.max_chunk <= 64 * 1024,
        "chunk of {} bytes exceeds the 64 KiB streaming buffer",
        response.max_chunk
    );

    let decoded = decode_chunked(&response.body).expect("well-formed chunked stream");
    let newlines = decoded.iter().filter(|&&b| b == b'\n').count();
    assert_eq!(newlines, ROWS + 1, "header + one line per row");
    let text = String::from_utf8(decoded).unwrap();
    assert!(text.starts_with("id,label\n"));
    assert!(text.ends_with(&format!("{},row-{:06}\n", ROWS - 1, ROWS - 1)));
    server.shutdown();
}
