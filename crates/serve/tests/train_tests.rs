//! Train-as-a-service integration tests over live HTTP: promotion of a
//! tying candidate, rejection of worse candidates and gate breaches with
//! the incumbent left untouched, and rollback restoring prior answers
//! bit-for-bit.

mod support;

use sam_core::{Sam, SamConfig};
use sam_query::Workload;
use sam_query::{label_workload, WorkloadGenerator};
use sam_serve::{ServeConfig, Server};
use sam_storage::{paper_example, Database, DatabaseStats};
use serde_json::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};
use support::{http, tiny_model};

/// The deterministic 24-query labelled workload every test trains on.
fn demo_workload(db: &Database) -> Workload {
    let mut gen = WorkloadGenerator::new(db, 7);
    label_workload(db, gen.multi_workload(24, 2)).unwrap()
}

/// Minimal JSON string escape for SQL text (quotes and backslashes).
fn escape(sql: &str) -> String {
    sql.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serialize `workload` as a JSONL `/train` body, flagging the last
/// `holdout` queries with `"holdout": true` (explicit-split mode).
fn jsonl_body(workload: &Workload, holdout: usize) -> String {
    let n = workload.len();
    let mut body = String::new();
    for (i, lq) in workload.iter().enumerate() {
        let flag = if i >= n - holdout {
            ", \"holdout\": true"
        } else {
            ""
        };
        body.push_str(&format!(
            "{{\"sql\": \"{}\", \"card\": {}{flag}}}\n",
            escape(&lq.query.to_string()),
            lq.cardinality
        ));
    }
    body
}

/// Poll `GET /jobs/{id}` until the training job leaves `running`.
fn wait_terminal(addr: std::net::SocketAddr, id: u64) -> Value {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, polled) = http(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200, "{polled:?}");
        match polled.get("state").and_then(Value::as_str) {
            Some("running") => {
                assert!(Instant::now() < deadline, "train {id} did not finish");
                std::thread::sleep(Duration::from_millis(20));
            }
            Some(_) => return polled,
            None => panic!("no state in {polled:?}"),
        }
    }
}

fn current_version(addr: std::net::SocketAddr, name: &str) -> u64 {
    let (status, models) = http(addr, "GET", "/models", "");
    assert_eq!(status, 200);
    models
        .get("models")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .find(|m| m.get("name").and_then(Value::as_str) == Some(name))
        .and_then(|m| m.get("version"))
        .and_then(Value::as_u64)
        .unwrap()
}

/// A candidate trained with the incumbent's exact architecture, seed, and
/// training slice ties the shadow evaluation — and a tie promotes (a fresh
/// model with identical quality is preferred, because its training run is
/// the more recent evidence).
#[test]
fn tying_candidate_is_promoted_and_serves() {
    let db = paper_example::figure3_database();
    let workload = demo_workload(&db);
    let holdout = 6;

    // Train the incumbent on exactly the slice the server will train the
    // candidate on (everything but the flagged holdout), replicating the
    // SamConfig `/train` builds from its spec.
    let train_slice = Workload::new(workload.queries[..workload.len() - holdout].to_vec());
    let stats = DatabaseStats::from_database(&db);
    let config = SamConfig {
        model: sam_ar::ArModelConfig {
            hidden: vec![12],
            seed: 5,
            residual: false,
            transformer: None,
        },
        train: sam_ar::TrainConfig {
            epochs: 4,
            batch_size: 8,
            lr: 5e-3,
            seed: 5,
            checkpoint: None,
            ..Default::default()
        },
        encoding: Default::default(),
    };
    let incumbent = Sam::fit(db.schema(), &stats, &train_slice, &config).unwrap();

    let server = Server::start(ServeConfig::default()).unwrap();
    server
        .registry()
        .insert_with_reference("demo", incumbent, Arc::new(db.clone()));
    let addr = server.addr();

    let (status, accepted) = http(
        addr,
        "POST",
        "/train?model=demo&epochs=4&batch=8&hidden=12&seed=5&lr=0.005",
        &jsonl_body(&workload, holdout),
    );
    assert_eq!(status, 202, "{accepted:?}");
    let id = accepted.get("job_id").and_then(Value::as_u64).unwrap();

    let done = wait_terminal(addr, id);
    assert_eq!(
        done.get("state").and_then(Value::as_str),
        Some("promoted"),
        "{done:?}"
    );
    assert_eq!(done.get("model_version").and_then(Value::as_u64), Some(2));
    let result = done.get("result").unwrap();
    let candidate = result.get("candidate_p95").and_then(Value::as_f64).unwrap();
    let incumbent_p95 = result.get("incumbent_p95").and_then(Value::as_f64).unwrap();
    assert_eq!(
        candidate, incumbent_p95,
        "identical training must tie exactly: {result:?}"
    );

    // The registry now serves the candidate as v2.
    assert_eq!(current_version(addr, "demo"), 2);
    let (status, est) = http(
        addr,
        "POST",
        "/estimate",
        r#"{"model": "demo", "sql": "SELECT COUNT(*) FROM A", "samples": 64, "seed": 1}"#,
    );
    assert_eq!(status, 200, "{est:?}");
    assert_eq!(est.get("model_version").and_then(Value::as_u64), Some(2));

    let (_, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(
        metrics.get("trains_promoted").and_then(Value::as_u64),
        Some(1)
    );
    server.shutdown();
}

/// An undertrained candidate (single epoch, tiny width, fresh seed)
/// scores worse than the incumbent and must be rejected even when the
/// absolute gate is wide open — the incumbent keeps serving, version
/// unchanged. Everything here is seeded, so the head-to-head outcome is
/// deterministic.
#[test]
fn worse_candidate_is_rejected_and_incumbent_keeps_serving() {
    let db = paper_example::figure3_database();
    let workload = demo_workload(&db);

    let server = Server::start(ServeConfig::default()).unwrap();
    server
        .registry()
        .insert_with_reference("demo", tiny_model(1), Arc::new(db.clone()));
    let addr = server.addr();

    let (status, accepted) = http(
        addr,
        "POST",
        "/train?model=demo&epochs=1&batch=8&hidden=2&seed=999&max_qerror=1e15",
        &jsonl_body(&workload, 6),
    );
    assert_eq!(status, 202, "{accepted:?}");
    let id = accepted.get("job_id").and_then(Value::as_u64).unwrap();

    let done = wait_terminal(addr, id);
    assert_eq!(
        done.get("state").and_then(Value::as_str),
        Some("rejected"),
        "{done:?}"
    );
    let result = done.get("result").unwrap();
    let candidate = result.get("candidate_p95").and_then(Value::as_f64).unwrap();
    let incumbent = result.get("incumbent_p95").and_then(Value::as_f64).unwrap();
    assert!(
        candidate > incumbent,
        "rejection must come from losing to the incumbent: {result:?}"
    );

    assert_eq!(current_version(addr, "demo"), 1);
    let (_, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(
        metrics.get("trains_rejected").and_then(Value::as_u64),
        Some(1)
    );
    server.shutdown();
}

/// `max_qerror` below 1 is an impossible bar (Q-Error is ≥ 1 by
/// definition), so even a candidate that ties the incumbent is rejected:
/// the absolute gate binds before the head-to-head comparison.
#[test]
fn promotion_gate_rejects_candidates_above_max_qerror() {
    let db = paper_example::figure3_database();
    let workload = demo_workload(&db);

    let server = Server::start(ServeConfig::default()).unwrap();
    server
        .registry()
        .insert_with_reference("demo", tiny_model(1), Arc::new(db.clone()));
    let addr = server.addr();

    // Plain SQL `-- card=` body this time: both ingest formats feed /train.
    let body = sam_query::format_workload(&workload);
    let (status, accepted) = http(
        addr,
        "POST",
        "/train?model=demo&epochs=4&batch=8&hidden=12&seed=1&max_qerror=0.99",
        &body,
    );
    assert_eq!(status, 202, "{accepted:?}");
    let id = accepted.get("job_id").and_then(Value::as_u64).unwrap();

    let done = wait_terminal(addr, id);
    assert_eq!(
        done.get("state").and_then(Value::as_str),
        Some("rejected"),
        "{done:?}"
    );
    assert_eq!(current_version(addr, "demo"), 1);
    server.shutdown();
}

/// Training against an unregistered name is a 404 up front, not a failed
/// background job.
#[test]
fn train_without_incumbent_is_a_404() {
    let db = paper_example::figure3_database();
    let workload = demo_workload(&db);
    let server = Server::start(ServeConfig::default()).unwrap();
    let (status, body) = http(
        server.addr(),
        "POST",
        "/train?model=ghost",
        &sam_query::format_workload(&workload),
    );
    assert_eq!(status, 404, "{body:?}");
    server.shutdown();
}

/// Rollback re-registers the superseded weights under a new version and
/// must serve the **exact** pre-swap answers; a second rollback with no
/// history left is a 409.
#[test]
fn rollback_restores_prior_answers_bit_for_bit() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.addr();
    server.registry().insert("demo", tiny_model(1));

    let estimate = |expect_version: u64| -> f64 {
        let (status, est) = http(
            addr,
            "POST",
            "/estimate",
            r#"{"model": "demo", "sql": "SELECT COUNT(*) FROM A WHERE A.a = 'm'", "samples": 64, "seed": 9}"#,
        );
        assert_eq!(status, 200, "{est:?}");
        assert_eq!(
            est.get("model_version").and_then(Value::as_u64),
            Some(expect_version),
            "{est:?}"
        );
        est.get("estimate").and_then(Value::as_f64).unwrap()
    };

    let v1_answer = estimate(1);
    server.registry().insert("demo", tiny_model(2));
    let v2_answer = estimate(2);

    let (status, rolled) = http(addr, "POST", "/models/demo/rollback", "");
    assert_eq!(status, 200, "{rolled:?}");
    assert_eq!(rolled.get("model").and_then(Value::as_str), Some("demo"));
    assert_eq!(rolled.get("version").and_then(Value::as_u64), Some(3));
    assert_eq!(rolled.get("restored_from").and_then(Value::as_u64), Some(1));

    let restored = estimate(3);
    assert_eq!(
        restored.to_bits(),
        v1_answer.to_bits(),
        "rollback must serve v1's answers exactly (v1 {v1_answer}, v2 {v2_answer}, restored {restored})"
    );

    // v1's entry was consumed by the rollback; nothing left to restore.
    let (status, conflict) = http(addr, "POST", "/models/demo/rollback", "");
    assert_eq!(status, 409, "{conflict:?}");
    let (status, _) = http(addr, "POST", "/models/ghost/rollback", "");
    assert_eq!(status, 404);

    let (_, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(metrics.get("rollbacks").and_then(Value::as_u64), Some(1));
    server.shutdown();
}
