//! Restart-safety through the job journal: completed jobs are re-servable
//! after a restart, interrupted jobs resume bit-for-bit from their recorded
//! seed, and unrecoverable jobs are restored as failed — never dropped.

mod support;

use sam_core::{GenerationConfig, JoinKeyStrategy};
use sam_serve::http::decode_chunked;
use sam_serve::{Journal, ServeConfig, Server};
use sam_storage::csv::write_csv;
use serde_json::Value;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use support::{http, tiny_model, wait_done, Conn};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sam_journal_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn journalled_config(dir: &Path) -> ServeConfig {
    ServeConfig {
        journal_dir: Some(dir.to_path_buf()),
        ..ServeConfig::default()
    }
}

fn export(addr: std::net::SocketAddr, id: u64, relation: &str) -> Vec<u8> {
    let mut conn = Conn::open(addr);
    let response = conn.request("GET", &format!("/jobs/{id}/export?relation={relation}"), "");
    assert_eq!(response.status, 200);
    decode_chunked(&response.body).expect("well-formed chunked stream")
}

/// A job completed before shutdown is re-servable after a restart: same
/// status document, byte-identical export (reloaded from persisted CSVs),
/// and fresh submissions get ids above the replayed ones.
#[test]
fn completed_job_is_reservable_after_restart() {
    let dir = temp_dir("completed");

    let first = Server::start(journalled_config(&dir)).expect("start server");
    first.registry().insert("demo", tiny_model(3));
    let addr = first.addr();
    let (status, accepted) = http(
        addr,
        "POST",
        "/generate",
        r#"{"model": "demo", "foj_samples": 400, "batch": 64, "seed": 11}"#,
    );
    assert_eq!(status, 202, "{accepted:?}");
    let id = accepted.get("job_id").and_then(Value::as_u64).unwrap();
    let done = wait_done(addr, id);
    let before = export(addr, id, "A");
    first.shutdown();
    drop(first);

    let second = Server::start(journalled_config(&dir)).expect("restart server");
    second.registry().insert("demo", tiny_model(3));
    let replay = second.replay_journal().expect("replay");
    assert_eq!(replay.completed, 1, "{replay:?}");
    assert_eq!(replay.resumed, 0);
    assert_eq!(replay.failed, 0);
    let addr = second.addr();

    let (status, polled) = http(addr, "GET", &format!("/jobs/{id}"), "");
    assert_eq!(status, 200, "replayed job must be known");
    assert_eq!(polled.get("state").and_then(Value::as_str), Some("done"));
    assert_eq!(polled.get("progress").and_then(Value::as_f64), Some(1.0));
    assert_eq!(
        polled.get("result").and_then(|r| r.get("tables")),
        done.get("result").and_then(|r| r.get("tables")),
        "summary must survive the restart"
    );

    assert_eq!(
        export(addr, id, "A"),
        before,
        "export after restart must be byte-identical"
    );

    // New ids must not collide with replayed ones.
    let (status, accepted) = http(
        addr,
        "POST",
        "/generate",
        r#"{"model": "demo", "foj_samples": 200, "batch": 64, "seed": 1}"#,
    );
    assert_eq!(status, 202);
    assert!(accepted.get("job_id").and_then(Value::as_u64).unwrap() > id);

    let (_, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(
        metrics.get("jobs_replayed").and_then(Value::as_u64),
        Some(1)
    );
    // The fresh submission journaled at least its `accepted` event.
    assert!(
        metrics
            .get("journal_events")
            .and_then(Value::as_u64)
            .unwrap()
            >= 1
    );
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A job interrupted mid-run (journal records accepted + running, no
/// terminal event — exactly what a crash leaves behind) is re-spawned
/// under its original id and, because the config carries the RNG seed,
/// regenerates a bit-for-bit identical database.
#[test]
fn interrupted_job_resumes_bit_for_bit() {
    let dir = temp_dir("resume");
    let config = GenerationConfig {
        foj_samples: 400,
        batch: 64,
        seed: 11,
        strategy: JoinKeyStrategy::GroupAndMerge,
    };
    let trained = tiny_model(3);
    let (direct, _) = trained.generate(&config).expect("direct generate");

    // Simulate the crash: lifecycle written up to `running`, then nothing.
    {
        let journal = Journal::open(&dir, sam_obs::counter("test_resume_events")).unwrap();
        journal.accepted(5, "demo", 1, &config);
        journal.running(5);
    }

    let server = Server::start(journalled_config(&dir)).expect("start server");
    server.registry().insert("demo", trained);
    let replay = server.replay_journal().expect("replay");
    assert_eq!(replay.resumed, 1, "{replay:?}");

    let record = server.jobs().get(5).expect("resumed under original id");
    let deadline = Instant::now() + Duration::from_secs(120);
    while !record.is_finished() {
        assert!(Instant::now() < deadline, "resumed job did not finish");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(record.state_label(), "done");

    let addr = server.addr();
    for table in direct.tables() {
        let mut want = Vec::new();
        write_csv(table, &mut want).unwrap();
        assert_eq!(
            export(addr, 5, table.name()),
            want,
            "table {}: resumed run differs from the uninterrupted one",
            table.name()
        );
    }

    // Fresh ids continue above the resumed job's.
    let (status, accepted) = http(
        addr,
        "POST",
        "/generate",
        r#"{"model": "demo", "foj_samples": 200, "batch": 64, "seed": 1}"#,
    );
    assert_eq!(status, 202);
    assert_eq!(accepted.get("job_id").and_then(Value::as_u64), Some(6));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Jobs that cannot be restored — model no longer registered, persisted
/// results missing, or recorded as failed — come back as failed records
/// with explanatory errors, not silently dropped.
#[test]
fn unrecoverable_jobs_are_restored_as_failed() {
    let dir = temp_dir("unrecoverable");
    let config = GenerationConfig {
        foj_samples: 100,
        batch: 32,
        seed: 1,
        strategy: JoinKeyStrategy::GroupAndMerge,
    };
    {
        let journal = Journal::open(&dir, sam_obs::counter("test_unrecoverable_events")).unwrap();
        // Model gone after restart.
        journal.accepted(1, "ghost", 1, &config);
        // Completed, but its persisted CSVs are missing (e.g. pruned).
        journal.accepted(2, "demo", 1, &config);
        journal.completed(2, &serde_json::json!({"tables": []}));
        // Failed before the restart.
        journal.accepted(3, "demo", 1, &config);
        journal.failed(3, "boom");
    }

    let server = Server::start(journalled_config(&dir)).expect("start server");
    server.registry().insert("demo", tiny_model(3));
    let replay = server.replay_journal().expect("replay");
    assert_eq!(replay.failed, 3, "{replay:?}");
    assert_eq!(replay.completed, 0);
    assert_eq!(replay.resumed, 0);

    let addr = server.addr();
    let expect_failed = |id: u64, needle: &str| {
        let (status, polled) = http(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200);
        assert_eq!(polled.get("state").and_then(Value::as_str), Some("failed"));
        let error = polled.get("error").and_then(Value::as_str).unwrap();
        assert!(error.contains(needle), "job {id}: {error:?}");
    };
    expect_failed(1, "not registered");
    expect_failed(2, "results unavailable");
    expect_failed(3, "boom");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
