//! Shared test support: a keep-alive-capable HTTP client that frames
//! responses by `Content-Length` / chunked transfer encoding (so one
//! connection can carry many requests), and a tiny deterministic model.
#![allow(dead_code)]

use sam_core::{Sam, SamConfig, TrainedSam};
use sam_query::{label_workload, WorkloadGenerator};
use sam_storage::{paper_example, DatabaseStats};
use serde_json::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Train a small model on the paper's Figure-3 database. Training is
/// deterministic in `arch_seed`, so two calls with the same seed produce
/// bit-identical models — restart tests rely on this.
pub fn tiny_model(arch_seed: u64) -> TrainedSam {
    let db = paper_example::figure3_database();
    let stats = DatabaseStats::from_database(&db);
    let mut gen = WorkloadGenerator::new(&db, 7);
    let workload = label_workload(&db, gen.multi_workload(24, 2)).unwrap();
    let config = SamConfig {
        model: sam_ar::ArModelConfig {
            hidden: vec![12],
            seed: arch_seed,
            residual: false,
            transformer: None,
        },
        train: sam_ar::TrainConfig {
            epochs: 4,
            batch_size: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    Sam::fit(db.schema(), &stats, &workload, &config).unwrap()
}

/// One framed HTTP response.
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body bytes. For chunked responses this is the **raw** chunked stream
    /// (size lines and CRLFs included) — decode it with
    /// `sam_serve::http::decode_chunked`.
    pub body: Vec<u8>,
    /// Number of data chunks (0 for non-chunked responses).
    pub chunks: usize,
    /// Largest single chunk observed (0 for non-chunked responses).
    pub max_chunk: usize,
}

impl Response {
    /// Value of the first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parse the (non-chunked) body as JSON.
    pub fn json(&self) -> Value {
        let text = std::str::from_utf8(&self.body).expect("UTF-8 body");
        serde_json::parse_value(text).expect("JSON body")
    }
}

/// A client connection that can carry many requests (keep-alive).
pub struct Conn {
    reader: BufReader<TcpStream>,
}

impl Conn {
    /// Connect to the server.
    pub fn open(addr: SocketAddr) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        Conn {
            reader: BufReader::new(stream),
        }
    }

    /// Write raw bytes (for hand-crafted / malformed requests).
    pub fn send_raw(&mut self, raw: &str) {
        self.reader
            .get_mut()
            .write_all(raw.as_bytes())
            .expect("write request");
    }

    /// Send an HTTP/1.1 request without a `Connection` header (keep-alive
    /// by default), plus any extra header lines (no trailing CRLF).
    pub fn send_with(&mut self, method: &str, path: &str, body: &str, extra: &[&str]) {
        let mut req = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n",
            body.len()
        );
        for header in extra {
            req.push_str(header);
            req.push_str("\r\n");
        }
        req.push_str("\r\n");
        req.push_str(body);
        self.send_raw(&req);
    }

    /// Send a plain keep-alive request.
    pub fn send(&mut self, method: &str, path: &str, body: &str) {
        self.send_with(method, path, body, &[]);
    }

    /// Send and read the response, panicking if the server closed.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> Response {
        self.send(method, path, body);
        self.read_response().expect("server closed the connection")
    }

    fn read_line(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end_matches(['\r', '\n']).to_string()),
            Err(e) => panic!("read line: {e}"),
        }
    }

    /// Read one framed response; `None` on clean EOF (server closed).
    pub fn read_response(&mut self) -> Option<Response> {
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut headers = Vec::new();
        loop {
            let line = self.read_line().expect("headers cut short");
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
            }
        }
        let header = |name: &str| {
            headers
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.as_str())
        };
        let mut body = Vec::new();
        let mut chunks = 0usize;
        let mut max_chunk = 0usize;
        if header("transfer-encoding") == Some("chunked") {
            // Preserve the raw chunked stream so tests can feed it to
            // `decode_chunked` and reason about chunk sizes.
            loop {
                let size_line = self.read_line().expect("chunk size line");
                let size = usize::from_str_radix(&size_line, 16).expect("hex chunk size");
                body.extend_from_slice(size_line.as_bytes());
                body.extend_from_slice(b"\r\n");
                if size == 0 {
                    let terminal = self.read_line().expect("terminal CRLF");
                    assert!(terminal.is_empty(), "bytes after terminal chunk");
                    body.extend_from_slice(b"\r\n");
                    break;
                }
                chunks += 1;
                max_chunk = max_chunk.max(size);
                let mut data = vec![0u8; size];
                self.reader.read_exact(&mut data).expect("chunk data");
                body.extend_from_slice(&data);
                let crlf = self.read_line().expect("chunk terminator");
                assert!(crlf.is_empty(), "chunk data not CRLF-terminated");
                body.extend_from_slice(b"\r\n");
            }
        } else {
            let len: usize = header("content-length")
                .expect("Content-Length or chunked framing")
                .parse()
                .expect("numeric Content-Length");
            body = vec![0u8; len];
            self.reader.read_exact(&mut body).expect("response body");
        }
        Some(Response {
            status,
            headers,
            body,
            chunks,
            max_chunk,
        })
    }
}

/// One-shot request on its own connection (`Connection: close`).
pub fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Value) {
    let mut conn = Conn::open(addr);
    conn.send_with(method, path, body, &["Connection: close"]);
    let response = conn.read_response().expect("response before close");
    (response.status, response.json())
}

/// Poll `GET /jobs/{id}` until the job is done; panic on failure states.
pub fn wait_done(addr: SocketAddr, id: u64) -> Value {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, polled) = http(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200, "{polled:?}");
        match polled.get("state").and_then(Value::as_str) {
            Some("done") => return polled,
            Some("running") => {
                assert!(Instant::now() < deadline, "job {id} did not finish in time");
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("job {id} reached unexpected state {other:?}: {polled:?}"),
        }
    }
}
