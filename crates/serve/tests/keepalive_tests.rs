//! Keep-alive connection handling: request pipelining over one socket,
//! `Connection` negotiation, the per-connection request cap, idle timeout,
//! and prompt rejection of oversized bodies.

mod support;

use sam_serve::{ServeConfig, Server};
use serde_json::Value;
use std::time::{Duration, Instant};
use support::{tiny_model, Conn};

fn start_server(config: ServeConfig) -> Server {
    let server = Server::start(config).expect("start server");
    server.registry().insert("demo", tiny_model(3));
    server
}

/// N pipelined requests written back-to-back over one socket must all be
/// answered on that socket: the connection counter stays at 1 while the
/// request counter sees every request.
#[test]
fn pipelined_requests_share_one_connection() {
    const N: usize = 5;
    let server = start_server(ServeConfig::default());
    let mut conn = Conn::open(server.addr());

    // Pipelining proper: all N requests hit the wire before any response
    // is read.
    for _ in 0..N {
        conn.send("GET", "/healthz", "");
    }
    for i in 0..N {
        let response = conn.read_response().expect("pipelined response");
        assert_eq!(response.status, 200, "request {i}");
        assert_eq!(response.header("connection"), Some("keep-alive"));
    }

    // The metrics request itself rides the same connection.
    let metrics = conn.request("GET", "/metrics", "").json();
    assert_eq!(
        metrics.get("http_connections").and_then(Value::as_u64),
        Some(1),
        "all requests must share one connection"
    );
    assert_eq!(
        metrics.get("http_requests").and_then(Value::as_u64),
        Some(N as u64 + 1)
    );
    server.shutdown();
}

/// `Connection: close` is echoed and honoured; HTTP/1.0 defaults to close.
#[test]
fn connection_close_is_echoed_and_honoured() {
    let server = start_server(ServeConfig::default());

    let mut conn = Conn::open(server.addr());
    conn.send_with("GET", "/healthz", "", &["Connection: close"]);
    let response = conn.read_response().expect("response");
    assert_eq!(response.status, 200);
    assert_eq!(response.header("connection"), Some("close"));
    assert!(
        conn.read_response().is_none(),
        "server must close after Connection: close"
    );

    // HTTP/1.0 without a Connection header defaults to close.
    let mut conn = Conn::open(server.addr());
    conn.send_raw("GET /healthz HTTP/1.0\r\nHost: test\r\nContent-Length: 0\r\n\r\n");
    let response = conn.read_response().expect("response");
    assert_eq!(response.status, 200);
    assert_eq!(response.header("connection"), Some("close"));
    assert!(conn.read_response().is_none());
    server.shutdown();
}

/// The per-connection request cap closes the connection after the limit,
/// announcing it on the last response.
#[test]
fn request_cap_closes_connection() {
    let server = start_server(ServeConfig {
        max_conn_requests: 2,
        ..ServeConfig::default()
    });
    let mut conn = Conn::open(server.addr());

    let first = conn.request("GET", "/healthz", "");
    assert_eq!(first.header("connection"), Some("keep-alive"));
    let second = conn.request("GET", "/healthz", "");
    assert_eq!(
        second.header("connection"),
        Some("close"),
        "response at the cap must announce the close"
    );
    assert!(conn.read_response().is_none(), "cap reached → close");

    // A fresh connection serves again.
    let mut conn = Conn::open(server.addr());
    assert_eq!(conn.request("GET", "/healthz", "").status, 200);
    server.shutdown();
}

/// A connection idle between requests is closed once the idle timeout
/// passes — without disturbing a request that arrives in time.
#[test]
fn idle_connection_times_out() {
    let server = start_server(ServeConfig {
        idle_timeout_ms: 300,
        ..ServeConfig::default()
    });

    // Active use within the window keeps the connection alive.
    let mut conn = Conn::open(server.addr());
    assert_eq!(conn.request("GET", "/healthz", "").status, 200);
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(conn.request("GET", "/healthz", "").status, 200);

    // Going idle past the timeout gets the connection closed.
    let started = Instant::now();
    assert!(
        conn.read_response().is_none(),
        "idle connection must be closed by the server"
    );
    let waited = started.elapsed();
    assert!(
        waited < Duration::from_secs(10),
        "close took {waited:?}, expected roughly the 300ms idle timeout"
    );
    server.shutdown();
}

/// A `Content-Length` beyond the body cap is rejected with 400 *before*
/// the server tries to read the body — the client gets an answer promptly
/// even though it never sends a byte of payload.
#[test]
fn oversized_body_is_rejected_promptly() {
    let server = start_server(ServeConfig::default());
    let mut conn = Conn::open(server.addr());
    let oversized = (1usize << 20) + 1;
    conn.send_raw(&format!(
        "POST /estimate HTTP/1.1\r\nHost: test\r\nContent-Length: {oversized}\r\n\r\n"
    ));
    let started = Instant::now();
    let response = conn.read_response().expect("prompt 400");
    assert_eq!(response.status, 400);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "server must answer without waiting for the declared body"
    );
    // Framing can't be trusted after the refusal: connection closes.
    assert_eq!(response.header("connection"), Some("close"));
    assert!(conn.read_response().is_none());
    server.shutdown();
}

/// A malformed request line gets a 400 and the connection is closed (the
/// parser cannot re-synchronise on the next request boundary).
#[test]
fn parse_error_answers_then_closes() {
    let server = start_server(ServeConfig::default());
    let mut conn = Conn::open(server.addr());
    conn.send_raw("NONSENSE\r\n\r\n");
    let response = conn.read_response().expect("error response");
    assert_eq!(response.status, 400);
    assert_eq!(response.header("connection"), Some("close"));
    assert!(conn.read_response().is_none());
    server.shutdown();
}
