//! Property-based tests for the PGM baseline's structural and numerical
//! machinery.

use proptest::prelude::*;
use sam_pgm::{junction_tree, solve_nonneg_least_squares, LinearSystem, MarkovNet};
use std::collections::BTreeSet;

proptest! {
    /// Triangulation output covers every original edge with some clique,
    /// and cliques are maximal (no clique contains another).
    #[test]
    fn triangulation_covers_edges(
        n in 2usize..8,
        edges in prop::collection::vec((0usize..8, 0usize..8), 0..12),
    ) {
        let mut net = MarkovNet::new(n);
        let mut real_edges = Vec::new();
        for (a, b) in edges {
            let (a, b) = (a % n, b % n);
            if a != b {
                net.add_edge(a, b);
                real_edges.push((a.min(b), a.max(b)));
            }
        }
        let cliques = net.triangulate();
        // Every vertex appears in some clique.
        for v in 0..n {
            prop_assert!(cliques.iter().any(|c| c.contains(&v)), "vertex {} lost", v);
        }
        // Every original edge is inside some clique.
        for (a, b) in real_edges {
            prop_assert!(
                cliques.iter().any(|c| c.contains(&a) && c.contains(&b)),
                "edge ({},{}) uncovered", a, b
            );
        }
        // Maximality.
        for (i, c1) in cliques.iter().enumerate() {
            for (j, c2) in cliques.iter().enumerate() {
                if i != j {
                    prop_assert!(!c1.is_subset(c2), "clique {:?} ⊆ {:?}", c1, c2);
                }
            }
        }
    }

    /// The junction forest satisfies the running intersection property:
    /// for any vertex, the cliques containing it form a connected subtree.
    #[test]
    fn junction_tree_running_intersection(
        n in 2usize..7,
        edges in prop::collection::vec((0usize..7, 0usize..7), 0..10),
    ) {
        let mut net = MarkovNet::new(n);
        for (a, b) in edges {
            net.add_edge(a % n, b % n);
        }
        let cliques = net.triangulate();
        let jt = junction_tree(cliques);
        let k = jt.cliques.len();

        for v in 0..n {
            let holders: BTreeSet<usize> = (0..k)
                .filter(|&c| jt.cliques[c].contains(&v))
                .collect();
            if holders.len() <= 1 {
                continue;
            }
            // BFS within holders over edges whose sepset contains v.
            let mut seen = BTreeSet::new();
            let start = *holders.iter().next().unwrap();
            let mut stack = vec![start];
            while let Some(c) = stack.pop() {
                if !seen.insert(c) {
                    continue;
                }
                for (a, b, sep) in &jt.edges {
                    if sep.contains(&v) {
                        if *a == c && holders.contains(b) {
                            stack.push(*b);
                        } else if *b == c && holders.contains(a) {
                            stack.push(*a);
                        }
                    }
                }
            }
            prop_assert_eq!(
                &seen, &holders,
                "cliques holding vertex {} are not connected", v
            );
        }
    }

    /// The NNLS solver reaches near-zero residual on random *consistent*
    /// systems (constraints generated from a known non-negative solution).
    #[test]
    fn solver_fits_consistent_systems(
        x_true in prop::collection::vec(0.0f64..1.0, 2..10),
        picks in prop::collection::vec(
            prop::collection::vec(any::<bool>(), 2..10),
            1..6
        ),
    ) {
        let n = x_true.len();
        let mut system = LinearSystem::new(n);
        // Normalisation-style full-sum row.
        let total: f64 = x_true.iter().sum();
        system.push((0..n).map(|v| (v, 1.0)).collect(), total, 2.0);
        // Random subset-sum rows.
        for pick in picks {
            let coefs: Vec<(usize, f64)> = pick
                .iter()
                .cycle()
                .take(n)
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(v, _)| (v, 1.0))
                .collect();
            if coefs.is_empty() {
                continue;
            }
            let rhs: f64 = coefs.iter().map(|&(v, _)| x_true[v]).sum();
            system.push(coefs, rhs, 1.0);
        }
        let (x, report) = solve_nonneg_least_squares(&system, 8000, 1e-10);
        prop_assert!(report.residual < 5e-3, "residual {}", report.residual);
        prop_assert!(x.iter().all(|&v| v >= 0.0));
    }
}
