//! # sam-pgm — the PGM baseline (Arasu et al. \[4\])
//!
//! The prior database-generation method SAM is compared against, as
//! described in paper §2.3: a Markov network of co-filtered attributes,
//! chordal triangulation into a junction tree of clique distributions over
//! intervalized domains, a non-negative least-squares solve for the cell
//! probabilities, and per-view models for multi-relation workloads with the
//! naive pairwise foreign-key assignment of Figure 4. The unknown count
//! grows polynomially with the workload — the scalability wall of Figure 5.

#![warn(missing_docs)]

pub mod graph;
pub mod multi;
pub mod single;
pub mod solver;

pub use graph::{junction_tree, JunctionTree, MarkovNet};
pub use multi::{fit_multi_pgm, view_sizes_from_database, MultiPgm, ViewSizes};
pub use single::{fit_single_pgm, PgmConfig, TablePgm};
pub use solver::{solve_nonneg_least_squares, ConstraintRow, LinearSystem, SolveReport};
