//! Sparse non-negative least squares via projected gradient descent.
//!
//! The PGM baseline's computational core (paper §2.3): clique-cell
//! probabilities are the unknowns; normalisation, sepset-consistency, and
//! query-selectivity constraints are the rows. The variable count is
//! `Σ_cliques Π bins` — it grows polynomially with the number of constraints
//! (more literals → more bins → bigger cliques), which is exactly the
//! scalability cliff the paper measures in Figure 5.

/// One linear constraint `Σ coef·x = rhs`, scaled by `weight`.
#[derive(Debug, Clone)]
pub struct ConstraintRow {
    /// Sparse coefficients (variable, coefficient).
    pub coefs: Vec<(usize, f64)>,
    /// Right-hand side.
    pub rhs: f64,
    /// Row weight (soft-constraint importance).
    pub weight: f64,
}

/// A sparse linear system `Ax ≈ b` with `x ≥ 0`.
#[derive(Debug, Clone, Default)]
pub struct LinearSystem {
    /// Number of unknowns.
    pub num_vars: usize,
    /// The constraint rows.
    pub rows: Vec<ConstraintRow>,
}

impl LinearSystem {
    /// Empty system over `num_vars` unknowns.
    pub fn new(num_vars: usize) -> Self {
        LinearSystem {
            num_vars,
            rows: Vec::new(),
        }
    }

    /// Append a constraint.
    pub fn push(&mut self, coefs: Vec<(usize, f64)>, rhs: f64, weight: f64) {
        self.rows.push(ConstraintRow { coefs, rhs, weight });
    }

    fn residual(&self, x: &[f64], out: &mut [f64]) {
        for (r, row) in self.rows.iter().enumerate() {
            let mut acc = 0.0;
            for &(v, c) in &row.coefs {
                acc += c * x[v];
            }
            out[r] = row.weight * (acc - row.rhs);
        }
    }

    fn grad(&self, res: &[f64], out: &mut [f64]) {
        out.iter_mut().for_each(|g| *g = 0.0);
        for (r, row) in self.rows.iter().enumerate() {
            let s = res[r] * row.weight;
            for &(v, c) in &row.coefs {
                out[v] += c * s;
            }
        }
    }

    /// Estimate the Lipschitz constant `‖AᵀA‖` by power iteration.
    fn lipschitz(&self) -> f64 {
        let mut v = vec![1.0f64; self.num_vars];
        let mut res = vec![0.0f64; self.rows.len()];
        let mut g = vec![0.0f64; self.num_vars];
        let mut lambda = 1.0f64;
        for _ in 0..12 {
            // g = AᵀA v  (reuse residual with rhs folded out).
            for (r, row) in self.rows.iter().enumerate() {
                let mut acc = 0.0;
                for &(vi, c) in &row.coefs {
                    acc += c * v[vi];
                }
                res[r] = row.weight * row.weight * acc;
            }
            g.iter_mut().for_each(|x| *x = 0.0);
            for (r, row) in self.rows.iter().enumerate() {
                for &(vi, c) in &row.coefs {
                    g[vi] += c * res[r];
                }
            }
            lambda = g.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
            let inv = 1.0 / lambda;
            v.iter_mut().zip(&g).for_each(|(vi, gi)| *vi = gi * inv);
        }
        lambda.max(1e-9)
    }
}

/// Convergence summary.
#[derive(Debug, Clone, Copy)]
pub struct SolveReport {
    /// Iterations performed.
    pub iterations: usize,
    /// Final weighted RMS residual.
    pub residual: f64,
}

/// Solve `min ‖Ax − b‖²` s.t. `x ≥ 0` by projected gradient descent.
pub fn solve_nonneg_least_squares(
    system: &LinearSystem,
    max_iters: usize,
    tol: f64,
) -> (Vec<f64>, SolveReport) {
    let n = system.num_vars;
    let m = system.rows.len();
    let mut x = vec![0.0f64; n];
    if n == 0 || m == 0 {
        return (
            x,
            SolveReport {
                iterations: 0,
                residual: 0.0,
            },
        );
    }
    let step = 1.0 / system.lipschitz();
    let mut res = vec![0.0f64; m];
    let mut g = vec![0.0f64; n];
    let mut iterations = 0;
    let mut rms = f64::INFINITY;
    for it in 0..max_iters {
        system.residual(&x, &mut res);
        rms = (res.iter().map(|r| r * r).sum::<f64>() / m as f64).sqrt();
        iterations = it;
        if rms < tol {
            break;
        }
        system.grad(&res, &mut g);
        for (xi, gi) in x.iter_mut().zip(&g) {
            *xi = (*xi - step * gi).max(0.0);
        }
    }
    (
        x,
        SolveReport {
            iterations,
            residual: rms,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_exact_system() {
        // x0 + x1 = 1; x0 - rhs 0.3 → x0 = 0.3, x1 = 0.7.
        let mut s = LinearSystem::new(2);
        s.push(vec![(0, 1.0), (1, 1.0)], 1.0, 1.0);
        s.push(vec![(0, 1.0)], 0.3, 1.0);
        let (x, report) = solve_nonneg_least_squares(&s, 5000, 1e-9);
        assert!((x[0] - 0.3).abs() < 1e-4, "x0 {}", x[0]);
        assert!((x[1] - 0.7).abs() < 1e-4, "x1 {}", x[1]);
        assert!(report.residual < 1e-6);
    }

    #[test]
    fn respects_nonnegativity() {
        // x0 = -1 is infeasible; best non-negative answer is x0 = 0.
        let mut s = LinearSystem::new(1);
        s.push(vec![(0, 1.0)], -1.0, 1.0);
        let (x, _) = solve_nonneg_least_squares(&s, 2000, 1e-12);
        assert_eq!(x[0], 0.0);
    }

    #[test]
    fn weights_prioritise_rows() {
        // Conflicting constraints; the heavier one wins.
        let mut s = LinearSystem::new(1);
        s.push(vec![(0, 1.0)], 1.0, 10.0);
        s.push(vec![(0, 1.0)], 0.0, 1.0);
        let (x, _) = solve_nonneg_least_squares(&s, 5000, 1e-12);
        assert!(x[0] > 0.9, "heavy row should dominate: {}", x[0]);
    }

    #[test]
    fn empty_system_is_trivial() {
        let s = LinearSystem::new(0);
        let (x, r) = solve_nonneg_least_squares(&s, 10, 1e-9);
        assert!(x.is_empty());
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn overdetermined_consistent_system() {
        // 3 consistent equations in 2 unknowns.
        let mut s = LinearSystem::new(2);
        s.push(vec![(0, 1.0)], 0.25, 1.0);
        s.push(vec![(1, 1.0)], 0.75, 1.0);
        s.push(vec![(0, 1.0), (1, 1.0)], 1.0, 1.0);
        let (x, _) = solve_nonneg_least_squares(&s, 5000, 1e-10);
        assert!((x[0] - 0.25).abs() < 1e-4);
        assert!((x[1] - 0.75).abs() < 1e-4);
    }
}
