//! Markov network construction, chordal triangulation, maximal cliques,
//! and junction trees — the structural machinery of the PGM baseline \[4\]
//! (paper §2.3).
//!
//! Vertices are attributes; an edge connects two attributes filtered
//! together in some cardinality constraint. The graph is triangulated with
//! the min-fill heuristic; maximal cliques fall out of the perfect
//! elimination ordering; the junction tree is a maximum spanning tree over
//! sepset sizes (one per connected component — a junction forest).

use std::collections::BTreeSet;

/// An undirected graph over `n` attribute vertices.
#[derive(Debug, Clone)]
pub struct MarkovNet {
    n: usize,
    adj: Vec<BTreeSet<usize>>,
}

impl MarkovNet {
    /// Empty graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        MarkovNet {
            n,
            adj: vec![BTreeSet::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Add an undirected edge.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        if a != b {
            self.adj[a].insert(b);
            self.adj[b].insert(a);
        }
    }

    /// Connect every pair among `vertices` (a query filtering k attributes
    /// together contributes a k-clique).
    pub fn add_clique(&mut self, vertices: &[usize]) {
        for (i, &a) in vertices.iter().enumerate() {
            for &b in &vertices[i + 1..] {
                self.add_edge(a, b);
            }
        }
    }

    /// Neighbours of `v`.
    pub fn neighbors(&self, v: usize) -> &BTreeSet<usize> {
        &self.adj[v]
    }

    /// Triangulate in place (min-fill heuristic) and return the maximal
    /// cliques of the resulting chordal graph.
    pub fn triangulate(&mut self) -> Vec<BTreeSet<usize>> {
        let mut work = self.adj.clone();
        let mut eliminated = vec![false; self.n];
        let mut cliques: Vec<BTreeSet<usize>> = Vec::new();

        for _ in 0..self.n {
            // Pick the uneliminated vertex adding fewest fill edges.
            let mut best: Option<(usize, usize)> = None; // (fill, vertex)
            for v in 0..self.n {
                if eliminated[v] {
                    continue;
                }
                let nb: Vec<usize> = work[v]
                    .iter()
                    .copied()
                    .filter(|&u| !eliminated[u])
                    .collect();
                let mut fill = 0usize;
                for (i, &a) in nb.iter().enumerate() {
                    for &b in &nb[i + 1..] {
                        if !work[a].contains(&b) {
                            fill += 1;
                        }
                    }
                }
                if best.is_none_or(|(bf, _)| fill < bf) {
                    best = Some((fill, v));
                }
            }
            let Some((_, v)) = best else { break };

            // The elimination clique: v plus its uneliminated neighbours.
            let nb: Vec<usize> = work[v]
                .iter()
                .copied()
                .filter(|&u| !eliminated[u])
                .collect();
            let mut clique: BTreeSet<usize> = nb.iter().copied().collect();
            clique.insert(v);
            // Add fill edges to both the working copy and self.
            for (i, &a) in nb.iter().enumerate() {
                for &b in &nb[i + 1..] {
                    if !work[a].contains(&b) {
                        work[a].insert(b);
                        work[b].insert(a);
                        self.add_edge(a, b);
                    }
                }
            }
            eliminated[v] = true;
            // Keep only maximal cliques.
            if !cliques.iter().any(|c| clique.is_subset(c)) {
                cliques.retain(|c| !c.is_subset(&clique));
                cliques.push(clique);
            }
        }
        cliques
    }
}

/// A junction forest over maximal cliques.
#[derive(Debug, Clone)]
pub struct JunctionTree {
    /// The maximal cliques.
    pub cliques: Vec<BTreeSet<usize>>,
    /// Edges `(a, b, sepset)` of the forest.
    pub edges: Vec<(usize, usize, BTreeSet<usize>)>,
    /// A traversal order: `(clique, Some(parent edge index))`, roots first.
    pub order: Vec<(usize, Option<usize>)>,
}

/// Build the junction forest (max spanning tree on sepset size).
pub fn junction_tree(cliques: Vec<BTreeSet<usize>>) -> JunctionTree {
    let k = cliques.len();
    // Candidate edges weighted by sepset size.
    let mut candidates: Vec<(usize, usize, usize)> = Vec::new();
    for i in 0..k {
        for j in i + 1..k {
            let sep = cliques[i].intersection(&cliques[j]).count();
            if sep > 0 {
                candidates.push((sep, i, j));
            }
        }
    }
    candidates.sort_by_key(|c| std::cmp::Reverse(c.0));

    // Kruskal.
    let mut parent: Vec<usize> = (0..k).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    let mut edges = Vec::new();
    for (_, i, j) in candidates {
        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
        if ri != rj {
            parent[ri] = rj;
            let sep: BTreeSet<usize> = cliques[i].intersection(&cliques[j]).copied().collect();
            edges.push((i, j, sep));
        }
    }

    // Traversal order: BFS per component.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (e, (a, b, _)) in edges.iter().enumerate() {
        adj[*a].push(e);
        adj[*b].push(e);
    }
    let mut seen = vec![false; k];
    let mut order = Vec::with_capacity(k);
    for start in 0..k {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        let mut queue = std::collections::VecDeque::from([(start, None::<usize>)]);
        while let Some((c, via)) = queue.pop_front() {
            order.push((c, via));
            for &e in &adj[c] {
                let (a, b, _) = &edges[e];
                let other = if *a == c { *b } else { *a };
                if !seen[other] {
                    seen[other] = true;
                    queue.push_back((other, Some(e)));
                }
            }
        }
    }

    JunctionTree {
        cliques,
        edges,
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[usize]) -> BTreeSet<usize> {
        v.iter().copied().collect()
    }

    #[test]
    fn chain_graph_cliques() {
        // 0-1, 1-2: already chordal; cliques {0,1}, {1,2}.
        let mut g = MarkovNet::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let mut cliques = g.triangulate();
        cliques.sort();
        assert_eq!(cliques, vec![set(&[0, 1]), set(&[1, 2])]);
    }

    #[test]
    fn cycle_gets_fill_edge() {
        // 4-cycle 0-1-2-3-0 needs one chord → two triangles.
        let mut g = MarkovNet::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 0);
        let cliques = g.triangulate();
        assert_eq!(cliques.len(), 2);
        for c in &cliques {
            assert_eq!(c.len(), 3);
        }
    }

    #[test]
    fn isolated_vertices_become_singletons() {
        let mut g = MarkovNet::new(3);
        g.add_edge(0, 1);
        let mut cliques = g.triangulate();
        cliques.sort();
        assert_eq!(cliques, vec![set(&[0, 1]), set(&[2])]);
    }

    #[test]
    fn add_clique_connects_all_pairs() {
        let mut g = MarkovNet::new(4);
        g.add_clique(&[0, 1, 2]);
        assert!(g.neighbors(0).contains(&1));
        assert!(g.neighbors(0).contains(&2));
        assert!(g.neighbors(1).contains(&2));
        assert!(!g.neighbors(0).contains(&3));
        let cliques = g.triangulate();
        assert!(cliques.contains(&set(&[0, 1, 2])));
    }

    #[test]
    fn junction_tree_has_running_intersection() {
        // Cliques {0,1,2}, {1,2,3}, {3,4}: tree edges must carry the right
        // sepsets and the order must start at a root.
        let cliques = vec![set(&[0, 1, 2]), set(&[1, 2, 3]), set(&[3, 4])];
        let jt = junction_tree(cliques);
        assert_eq!(jt.edges.len(), 2);
        assert_eq!(jt.order.len(), 3);
        assert!(jt.order[0].1.is_none(), "first clique is a root");
        // Every non-root is connected via an edge whose sepset is inside
        // both endpoint cliques.
        for (a, b, sep) in &jt.edges {
            assert!(sep.is_subset(&jt.cliques[*a]));
            assert!(sep.is_subset(&jt.cliques[*b]));
            assert!(!sep.is_empty());
        }
    }

    #[test]
    fn junction_forest_handles_disconnected_components() {
        let cliques = vec![set(&[0, 1]), set(&[2, 3])];
        let jt = junction_tree(cliques);
        assert!(jt.edges.is_empty());
        let roots = jt.order.iter().filter(|(_, via)| via.is_none()).count();
        assert_eq!(roots, 2);
    }
}
