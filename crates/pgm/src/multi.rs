//! Multi-relation PGM generation: one model per *view* (paper §2.3).
//!
//! The baseline builds a separate PGM for each distinct set of joined
//! relations appearing in the workload, each fitted only to its own
//! queries — the source of the cross-view inconsistencies the paper blames
//! for PGM's tail errors on join queries. Views are flattened into virtual
//! single relations (columns named `table.column`) so the single-relation
//! machinery is reused verbatim. Foreign keys are then assigned from the
//! pairwise (pk, fk) views by matching parent *content* only — the naive
//! procedure the paper's Figure 4 dissects.

use crate::single::{fit_single_pgm, PgmConfig, TablePgm};
use rand::prelude::*;
use rand::rngs::StdRng;
use sam_query::{LabeledQuery, Predicate, Query};
use sam_storage::{
    ColumnDef, ColumnRole, ColumnStats, Database, DatabaseSchema, DatabaseStats, JoinGraph,
    StorageError, Table, Value,
};
use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

/// A fitted multi-relation PGM.
pub struct MultiPgm {
    graph: JoinGraph,
    /// Per sorted table-set view: the flattened model.
    views: BTreeMap<Vec<usize>, ViewModel>,
    /// Total fit wall-clock seconds.
    pub fit_seconds: f64,
    /// Total unknowns across all view systems.
    pub num_variables: usize,
    /// True when any view blew the variable budget and degraded to uniform.
    pub exceeded: bool,
}

struct ViewModel {
    /// Flattened virtual schema (content columns named `table.column`).
    schema: sam_storage::TableSchema,
    /// Virtual column index → (table, base column index).
    col_map: Vec<(usize, usize)>,
    pgm: TablePgm,
}

/// Sizes of the unfiltered inner joins per view (the baseline's selectivity
/// normalisers — assumed known, equivalent to one unfiltered query per view
/// in the workload).
pub type ViewSizes = HashMap<Vec<usize>, u64>;

/// Compute every view size appearing in `workload` by evaluating the
/// unfiltered join on the target database (harness helper).
pub fn view_sizes_from_database(
    db: &Database,
    workload: &[LabeledQuery],
) -> Result<ViewSizes, StorageError> {
    let mut out = ViewSizes::new();
    for lq in workload {
        let closure = lq
            .query
            .table_closure(db.graph())
            .ok_or_else(|| StorageError::UnknownTable(lq.query.tables.join(",")))?;
        if out.contains_key(&closure) {
            continue;
        }
        let tables = closure
            .iter()
            .map(|&t| db.graph().tables()[t].clone())
            .collect();
        let size = sam_query::evaluate_cardinality(db, &Query::join(tables, vec![]))?;
        out.insert(closure, size);
    }
    Ok(out)
}

fn flatten_view(
    db_schema: &DatabaseSchema,
    graph: &JoinGraph,
    stats: &DatabaseStats,
    tables: &[usize],
) -> (
    sam_storage::TableSchema,
    Vec<(usize, usize)>,
    Vec<ColumnStats>,
) {
    let mut columns = Vec::new();
    let mut col_map = Vec::new();
    let mut col_stats = Vec::new();
    for &t in tables {
        let tname = &graph.tables()[t];
        let tschema = db_schema.table(tname).expect("graph table in schema");
        for (stat_idx, ci) in tschema.content_indices().into_iter().enumerate() {
            let stat = &stats.table(t).columns[stat_idx];
            let vname = format!("{tname}.{}", stat.name);
            columns.push(ColumnDef::content(vname.clone(), stat.dtype));
            col_map.push((t, ci));
            col_stats.push(ColumnStats {
                name: vname,
                dtype: stat.dtype,
                domain: stat.domain.clone(),
            });
        }
    }
    (
        sam_storage::TableSchema::new("view", columns),
        col_map,
        col_stats,
    )
}

/// Rewrite a query's predicates onto the flattened view columns.
fn rewrite_query(lq: &LabeledQuery) -> LabeledQuery {
    let predicates = lq
        .query
        .predicates
        .iter()
        .map(|p| Predicate {
            table: "view".into(),
            column: format!("{}.{}", p.table, p.column),
            constraint: p.constraint.clone(),
        })
        .collect();
    LabeledQuery {
        query: Query::single("view", predicates),
        cardinality: lq.cardinality,
    }
}

/// Fit the multi-relation PGM: one flattened model per view.
pub fn fit_multi_pgm(
    db_schema: &DatabaseSchema,
    stats: &DatabaseStats,
    workload: &[LabeledQuery],
    view_sizes: &ViewSizes,
    config: &PgmConfig,
) -> Result<MultiPgm, StorageError> {
    let start = Instant::now();
    let graph = JoinGraph::new(db_schema)?;

    // Group queries by their closure table set.
    let mut groups: BTreeMap<Vec<usize>, Vec<LabeledQuery>> = BTreeMap::new();
    for lq in workload {
        let closure = lq
            .query
            .table_closure(&graph)
            .ok_or_else(|| StorageError::UnknownTable(lq.query.tables.join(",")))?;
        groups.entry(closure).or_default().push(lq.clone());
    }
    // Ensure every base relation has a (possibly empty) singleton view so it
    // can be generated.
    for t in 0..graph.len() {
        groups.entry(vec![t]).or_default();
    }

    let mut views = BTreeMap::new();
    let mut num_variables = 0usize;
    let mut exceeded = false;
    for (tables, queries) in groups {
        let (schema, col_map, col_stats) = flatten_view(db_schema, &graph, stats, &tables);
        let normalizer = match tables.as_slice() {
            [t] => stats.table(*t).num_rows,
            _ => view_sizes
                .get(&tables)
                .copied()
                .unwrap_or_else(|| tables.iter().map(|&t| stats.table(t).num_rows).sum()),
        };
        let rewritten: Vec<LabeledQuery> = queries.iter().map(rewrite_query).collect();
        let pgm = fit_single_pgm(&schema, &col_stats, normalizer, &rewritten, config);
        num_variables += pgm.num_variables();
        exceeded |= pgm.exceeded;
        views.insert(
            tables,
            ViewModel {
                schema,
                col_map,
                pgm,
            },
        );
    }

    Ok(MultiPgm {
        graph,
        views,
        fit_seconds: start.elapsed().as_secs_f64(),
        num_variables,
        exceeded,
    })
}

impl MultiPgm {
    /// Generate a database: every base relation from its singleton view,
    /// foreign keys resolved from the pairwise views by content matching
    /// (Figure 4's procedure).
    pub fn generate(
        &self,
        db_schema: &DatabaseSchema,
        stats: &DatabaseStats,
        seed: u64,
    ) -> Result<Database, StorageError> {
        let graph = &self.graph;
        let n = graph.len();
        let mut rng = StdRng::seed_from_u64(seed);

        // Per table: generated content rows (content values only, keyed by
        // base column index), assigned pk.
        let mut generated: Vec<Vec<HashMap<usize, Value>>> = vec![Vec::new(); n];

        for &t in graph.topo_order() {
            let view = &self.views[&vec![t]];
            let rows = stats.table(t).num_rows as usize;
            let table = view
                .pgm
                .generate(&view.schema, rows, seed ^ (t as u64) << 8);
            for r in 0..table.num_rows() {
                let mut content = HashMap::new();
                for (vc, &(_, base_ci)) in view.col_map.iter().enumerate() {
                    content.insert(base_ci, table.value(r, vc));
                }
                generated[t].push(content);
            }
        }

        // FK assignment: match parent content via the pairwise view.
        let mut tables_out: Vec<Table> = Vec::with_capacity(n);
        for t in 0..n {
            let tname = &graph.tables()[t];
            let tschema = db_schema.table(tname).expect("schema table").clone();
            let parent = graph.parent(t);

            // Parent content index under the pair view's encodings.
            let pair_view = parent.and_then(|p| {
                let mut key = vec![p.min(t), p.max(t)];
                key.dedup();
                self.views.get(&key)
            });
            let parent_index: Option<HashMap<Vec<usize>, Vec<u64>>> = parent.map(|p| {
                let mut idx: HashMap<Vec<usize>, Vec<u64>> = HashMap::new();
                for (r, content) in generated[p].iter().enumerate() {
                    let sig = self.parent_signature(pair_view, p, content);
                    idx.entry(sig).or_default().push((r + 1) as u64);
                }
                idx
            });

            let mut out_rows = Vec::with_capacity(generated[t].len());
            for (r, content) in generated[t].iter().enumerate() {
                let fk: Option<u64> = match (parent, &parent_index) {
                    (Some(p), Some(idx)) => {
                        let sig = self.sample_parent_signature(pair_view, p, t, content, &mut rng);
                        let keys = sig.and_then(|s| idx.get(&s));
                        match keys {
                            Some(ks) if !ks.is_empty() => ks.choose(&mut rng).copied(),
                            _ => {
                                let total = generated[p].len() as u64;
                                (total > 0).then(|| rng.gen_range(1..=total))
                            }
                        }
                    }
                    _ => None,
                };
                let mut seq = r as u64;
                let row: Vec<Value> = tschema
                    .columns
                    .iter()
                    .enumerate()
                    .map(|(ci, col)| match &col.role {
                        ColumnRole::Content => content.get(&ci).cloned().unwrap_or(Value::Null),
                        ColumnRole::PrimaryKey => {
                            seq = (r + 1) as u64;
                            Value::Int(seq as i64)
                        }
                        ColumnRole::ForeignKey { .. } => match fk {
                            Some(k) => Value::Int(k as i64),
                            None => Value::Null,
                        },
                    })
                    .collect();
                out_rows.push(row);
            }
            tables_out.push(Table::from_rows(tschema, &out_rows)?);
        }

        let ordered = db_schema
            .tables()
            .iter()
            .map(|ts| {
                let idx = graph.index_of(&ts.name).expect("table in graph");
                tables_out[idx].clone()
            })
            .collect();
        Database::new(db_schema.clone(), ordered, false)
    }

    /// A parent row's content signature as pair-view bins (or raw values'
    /// hash when no pair view exists — content equality fallback).
    fn parent_signature(
        &self,
        pair_view: Option<&ViewModel>,
        p: usize,
        content: &HashMap<usize, Value>,
    ) -> Vec<usize> {
        match pair_view {
            Some(v) => v
                .col_map
                .iter()
                .enumerate()
                .filter(|(_, &(t, _))| t == p)
                .map(|(vc, &(_, base_ci))| {
                    let value = content.get(&base_ci).cloned().unwrap_or(Value::Null);
                    self.bin_of(v, vc, &value)
                })
                .collect(),
            None => vec![0],
        }
    }

    /// Sample the parent-content signature for a child row: condition the
    /// pair view on the child's content and read off the parent bins.
    fn sample_parent_signature(
        &self,
        pair_view: Option<&ViewModel>,
        p: usize,
        t: usize,
        child_content: &HashMap<usize, Value>,
        rng: &mut StdRng,
    ) -> Option<Vec<usize>> {
        let v = pair_view?;
        // Evidence: the child's attributes pinned to their bins.
        let mut evidence = Vec::new();
        for (vc, &(vt, base_ci)) in v.col_map.iter().enumerate() {
            if vt != t {
                continue;
            }
            if let Some(a) = v.pgm.attr_of_column(vc) {
                let value = child_content.get(&base_ci).cloned().unwrap_or(Value::Null);
                if let Some(code) = v.pgm.encoding(a).base_domain().code_of(&value) {
                    evidence.push((a, v.pgm.encoding(a).bin_of_code(code)));
                }
            }
        }
        let bins = v.pgm.sample_bins_with_evidence(&evidence, rng);
        // Parent signature: per parent virtual column, its bin (modelled) or
        // 0 (unmodelled columns contribute nothing to matching).
        let sig = v
            .col_map
            .iter()
            .enumerate()
            .filter(|(_, &(vt, _))| vt == p)
            .map(|(vc, _)| v.pgm.attr_of_column(vc).map_or(0, |a| bins[a]))
            .collect();
        Some(sig)
    }

    /// Bin of a concrete value under a view column's encoding (0 when the
    /// column is unmodelled — it then never discriminates).
    fn bin_of(&self, view: &ViewModel, vc: usize, value: &Value) -> usize {
        match view.pgm.attr_of_column(vc) {
            Some(a) => view
                .pgm
                .encoding(a)
                .base_domain()
                .code_of(value)
                .map_or(0, |code| view.pgm.encoding(a).bin_of_code(code)),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_query::{label_workload, WorkloadGenerator};
    use sam_storage::paper_example;

    fn fit_figure3(n_queries: usize) -> (Database, MultiPgm, Vec<LabeledQuery>) {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let mut gen = WorkloadGenerator::new(&db, 7);
        let workload = label_workload(&db, gen.multi_workload(n_queries, 2)).unwrap();
        let sizes = view_sizes_from_database(&db, &workload.queries).unwrap();
        let pgm = fit_multi_pgm(
            db.schema(),
            &stats,
            &workload.queries,
            &sizes,
            &PgmConfig::default(),
        )
        .unwrap();
        (db, pgm, workload.queries)
    }

    #[test]
    fn fits_views_per_table_set() {
        let (_, pgm, _) = fit_figure3(24);
        // At minimum the three singleton views exist.
        assert!(pgm.views.contains_key(&vec![0]));
        assert!(pgm.views.contains_key(&vec![1]));
        assert!(pgm.views.contains_key(&vec![2]));
        assert!(pgm.num_variables > 0);
        assert!(pgm.fit_seconds >= 0.0);
    }

    #[test]
    fn generates_full_size_relations() {
        let (db, pgm, _) = fit_figure3(24);
        let stats = DatabaseStats::from_database(&db);
        let gen = pgm.generate(db.schema(), &stats, 3).unwrap();
        assert_eq!(gen.table_by_name("A").unwrap().num_rows(), 4);
        assert_eq!(gen.table_by_name("B").unwrap().num_rows(), 3);
        assert_eq!(gen.table_by_name("C").unwrap().num_rows(), 4);
        // FKs reference existing keys (1..=|A|).
        for t in ["B", "C"] {
            for v in gen
                .table_by_name(t)
                .unwrap()
                .column_by_name("x")
                .unwrap()
                .iter()
            {
                let k = v.as_int().unwrap();
                assert!((1..=4).contains(&k));
            }
        }
    }

    #[test]
    fn view_sizes_helper_matches_evaluator() {
        let db = paper_example::figure3_database();
        let q = LabeledQuery {
            query: Query::join(vec!["A".into(), "B".into()], vec![]),
            cardinality: 3,
        };
        let sizes = view_sizes_from_database(&db, &[q]).unwrap();
        assert_eq!(sizes[&vec![0, 1]], 3);
    }
}
