//! Single-relation PGM database generation (the chordal-graph method of
//! Arasu et al. \[4\], as described in paper §2.3).
//!
//! Pipeline: co-filtered attributes form a Markov network → min-fill
//! triangulation → maximal cliques → junction tree. Each clique carries a
//! joint distribution over the *intervalized* domains of its attributes;
//! the distributions are recovered by solving a non-negative least-squares
//! system of normalisation, sepset-consistency, and query-selectivity
//! constraints. Generation samples the junction tree clique by clique.

use crate::graph::{junction_tree, JunctionTree, MarkovNet};
use crate::solver::{solve_nonneg_least_squares, LinearSystem, SolveReport};
use rand::prelude::*;
use rand::rngs::StdRng;
use sam_ar::ColumnEncoding;
use sam_query::{CodeSet, LabeledQuery};
use sam_storage::{ColumnRole, ColumnStats, Table, TableSchema, Value};
use std::collections::{BTreeSet, HashMap};
use std::time::Instant;

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct PgmConfig {
    /// Projected-gradient iterations.
    pub max_iters: usize,
    /// RMS residual target.
    pub tol: f64,
    /// Hard budget on unknowns: beyond this the fit is declared infeasible
    /// (the model falls back to uniform and flags `exceeded`). This is the
    /// honest stand-in for the paper's 12 h / 48 h frames — clique tables
    /// genuinely explode with workload size (§2.3 Limitation 2).
    pub max_variables: usize,
}

impl Default for PgmConfig {
    fn default() -> Self {
        PgmConfig {
            max_iters: 4000,
            tol: 1e-8,
            max_variables: 200_000,
        }
    }
}

/// A fitted single-relation PGM.
pub struct TablePgm {
    /// Model attribute → schema column index.
    attr_cols: Vec<usize>,
    /// Intervalized encoding per model attribute.
    encodings: Vec<ColumnEncoding>,
    /// The junction forest.
    jt: JunctionTree,
    /// Variable offset of each clique's cell block.
    cell_offsets: Vec<usize>,
    /// Solved cell probabilities.
    probs: Vec<f64>,
    /// Columns never filtered: (schema column, domain) sampled uniformly.
    unfiltered: Vec<(usize, std::sync::Arc<sam_storage::Domain>)>,
    /// Solver summary.
    pub report: SolveReport,
    /// Wall-clock seconds to build + solve.
    pub fit_seconds: f64,
    /// Number of unknowns (the §2.3 complexity driver).
    pub num_variables: usize,
    /// True when the unknown count blew past `max_variables` and the model
    /// degraded to the uniform fallback.
    pub exceeded: bool,
}

/// Mixed-radix strides for a clique's attribute bins.
fn strides(sizes: &[usize]) -> (Vec<usize>, usize) {
    let mut s = vec![0usize; sizes.len()];
    let mut acc = 1usize;
    for (i, &d) in sizes.iter().enumerate().rev() {
        s[i] = acc;
        acc *= d;
    }
    (s, acc)
}

/// Fit a PGM from single-relation cardinality constraints.
///
/// `columns` are the table's content-column stats (name, domain); queries
/// must all target this relation.
pub fn fit_single_pgm(
    schema: &TableSchema,
    columns: &[ColumnStats],
    table_size: u64,
    workload: &[LabeledQuery],
    config: &PgmConfig,
) -> TablePgm {
    let start = Instant::now();
    let content_cols = schema.content_indices();

    // Per-attribute predicate code sets (for intervalization) and the set of
    // filtered attributes.
    let mut per_attr_sets: HashMap<usize, Vec<CodeSet>> = HashMap::new();
    for lq in workload {
        for p in &lq.query.predicates {
            let ci = schema
                .column_index(&p.column)
                .expect("workload filters known columns");
            let stat = columns
                .iter()
                .find(|c| c.name == p.column)
                .expect("stats cover content columns");
            per_attr_sets
                .entry(ci)
                .or_default()
                .push(p.code_set(&stat.domain));
        }
    }
    let mut attr_cols: Vec<usize> = per_attr_sets.keys().copied().collect();
    attr_cols.sort_unstable();

    let encodings: Vec<ColumnEncoding> = attr_cols
        .iter()
        .map(|ci| {
            let name = &schema.columns[*ci].name;
            let stat = columns
                .iter()
                .find(|c| &c.name == name)
                .expect("stats cover content columns");
            ColumnEncoding::from_code_sets(stat.domain.clone(), &per_attr_sets[ci])
        })
        .collect();
    let attr_of_col: HashMap<usize, usize> =
        attr_cols.iter().enumerate().map(|(a, &c)| (c, a)).collect();

    // Markov network: co-filtered attributes get clique edges.
    let mut net = MarkovNet::new(attr_cols.len());
    for lq in workload {
        let attrs: Vec<usize> = lq
            .query
            .predicates
            .iter()
            .filter_map(|p| schema.column_index(&p.column))
            .filter_map(|c| attr_of_col.get(&c).copied())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        net.add_clique(&attrs);
    }
    let cliques = net.triangulate();
    let jt = junction_tree(cliques);

    // Variable layout.
    let clique_attrs: Vec<Vec<usize>> = jt
        .cliques
        .iter()
        .map(|c| c.iter().copied().collect())
        .collect();
    let clique_sizes: Vec<Vec<usize>> = clique_attrs
        .iter()
        .map(|attrs| attrs.iter().map(|&a| encodings[a].num_bins()).collect())
        .collect();
    let mut cell_offsets = Vec::with_capacity(jt.cliques.len());
    let mut num_vars = 0usize;
    for sizes in &clique_sizes {
        cell_offsets.push(num_vars);
        num_vars = num_vars.saturating_add(sizes.iter().product::<usize>());
    }
    if num_vars > config.max_variables {
        // Infeasible within budget: degrade to the uniform model but report
        // the would-be size so sweeps can show the blow-up.
        let mut fallback = fit_single_pgm(schema, columns, table_size, &[], config);
        fallback.num_variables = num_vars;
        fallback.exceeded = true;
        fallback.fit_seconds = start.elapsed().as_secs_f64();
        return fallback;
    }

    let mut system = LinearSystem::new(num_vars);

    // Normalisation per clique.
    for (k, sizes) in clique_sizes.iter().enumerate() {
        let total: usize = sizes.iter().product();
        let coefs = (0..total).map(|c| (cell_offsets[k] + c, 1.0)).collect();
        system.push(coefs, 1.0, 4.0);
    }

    // Sepset consistency.
    for (a, b, sep) in &jt.edges {
        let sep_attrs: Vec<usize> = sep.iter().copied().collect();
        let sep_sizes: Vec<usize> = sep_attrs.iter().map(|&x| encodings[x].num_bins()).collect();
        let (sep_strides, sep_total) = strides(&sep_sizes);
        // For each sepset cell: Σ matching a-cells − Σ matching b-cells = 0.
        for cell in 0..sep_total {
            let sep_bins: Vec<usize> = sep_strides
                .iter()
                .zip(&sep_sizes)
                .map(|(&s, &d)| (cell / s) % d)
                .collect();
            let mut coefs = Vec::new();
            for (sign, &k) in [(1.0, a), (-1.0, b)] {
                let attrs = &clique_attrs[k];
                let sizes = &clique_sizes[k];
                let (st, total) = strides(sizes);
                for c in 0..total {
                    let matches = sep_attrs.iter().zip(&sep_bins).all(|(&sa, &sb)| {
                        let pos = attrs.iter().position(|&x| x == sa).expect("sep ⊆ clique");
                        (c / st[pos]) % sizes[pos] == sb
                    });
                    if matches {
                        coefs.push((cell_offsets[k] + c, sign));
                    }
                }
            }
            system.push(coefs, 0.0, 2.0);
        }
    }

    // Query constraints.
    for lq in workload {
        // Combine per-attribute code sets.
        let mut per_attr: HashMap<usize, CodeSet> = HashMap::new();
        for p in &lq.query.predicates {
            let Some(&a) = schema
                .column_index(&p.column)
                .and_then(|c| attr_of_col.get(&c))
            else {
                continue;
            };
            let set = p.code_set(encodings[a].base_domain());
            per_attr
                .entry(a)
                .and_modify(|e| *e = e.intersect(&set))
                .or_insert(set);
        }
        if per_attr.is_empty() {
            continue;
        }
        // Smallest clique containing all the query's attributes.
        let qattrs: BTreeSet<usize> = per_attr.keys().copied().collect();
        let Some(k) = (0..jt.cliques.len())
            .filter(|&k| qattrs.is_subset(&jt.cliques[k]))
            .min_by_key(|&k| jt.cliques[k].len())
        else {
            continue; // should not happen: query attrs form a clique
        };
        let attrs = &clique_attrs[k];
        let sizes = &clique_sizes[k];
        let (st, total) = strides(sizes);
        // Per-attribute frac weights (1.0 rows for unconstrained attrs).
        let fracs: Vec<Vec<f32>> = attrs
            .iter()
            .map(|&a| match per_attr.get(&a) {
                Some(set) => encodings[a].frac_weights(set),
                None => vec![1.0; encodings[a].num_bins()],
            })
            .collect();
        let mut coefs = Vec::new();
        for c in 0..total {
            let mut w = 1.0f64;
            for (pos, f) in fracs.iter().enumerate() {
                w *= f[(c / st[pos]) % sizes[pos]] as f64;
                if w == 0.0 {
                    break;
                }
            }
            if w > 0.0 {
                coefs.push((cell_offsets[k] + c, w));
            }
        }
        let sel = lq.cardinality as f64 / table_size.max(1) as f64;
        system.push(coefs, sel, 1.0);
    }

    let (probs, report) = solve_nonneg_least_squares(&system, config.max_iters, config.tol);

    let unfiltered = content_cols
        .iter()
        .filter(|c| !attr_of_col.contains_key(c))
        .map(|&c| {
            let name = &schema.columns[c].name;
            let stat = columns
                .iter()
                .find(|s| &s.name == name)
                .expect("stats cover content columns");
            (c, stat.domain.clone())
        })
        .collect();

    TablePgm {
        attr_cols,
        encodings,
        jt,
        cell_offsets,
        probs,
        unfiltered,
        report,
        fit_seconds: start.elapsed().as_secs_f64(),
        num_variables: num_vars,
        exceeded: false,
    }
}

impl TablePgm {
    /// Number of unknowns in the solved system.
    pub fn num_variables(&self) -> usize {
        self.num_variables
    }

    /// Model attribute index of schema column `ci`, if it was filtered.
    pub fn attr_of_column(&self, ci: usize) -> Option<usize> {
        self.attr_cols.iter().position(|&c| c == ci)
    }

    /// The intervalized encoding of model attribute `a`.
    pub fn encoding(&self, a: usize) -> &ColumnEncoding {
        &self.encodings[a]
    }

    /// Sample bins for every modelled attribute by walking the junction
    /// forest (roots unconditioned, children conditioned on sepsets).
    /// `evidence` pins attributes to given bins (conditional sampling).
    pub fn sample_bins_with_evidence(
        &self,
        evidence: &[(usize, usize)],
        rng: &mut StdRng,
    ) -> Vec<usize> {
        let mut bins: Vec<Option<usize>> = vec![None; self.attr_cols.len()];
        for &(a, b) in evidence {
            bins[a] = Some(b);
        }
        self.sample_remaining(bins, rng)
    }

    /// Sample bins for every modelled attribute (unconditional).
    fn sample_bins(&self, rng: &mut StdRng) -> Vec<usize> {
        let bins: Vec<Option<usize>> = vec![None; self.attr_cols.len()];
        self.sample_remaining(bins, rng)
    }

    fn sample_remaining(&self, mut bins: Vec<Option<usize>>, rng: &mut StdRng) -> Vec<usize> {
        for &(k, via) in &self.jt.order {
            let attrs: Vec<usize> = self.jt.cliques[k].iter().copied().collect();
            let sizes: Vec<usize> = attrs
                .iter()
                .map(|&a| self.encodings[a].num_bins())
                .collect();
            let (st, total) = strides(&sizes);
            let offset = self.cell_offsets[k];
            // Evidence: attrs already assigned (the sepset, by RIP).
            let _ = via;
            let weights: Vec<f64> = (0..total)
                .map(|c| {
                    let consistent = attrs
                        .iter()
                        .enumerate()
                        .all(|(pos, &a)| bins[a].is_none_or(|b| (c / st[pos]) % sizes[pos] == b));
                    if consistent {
                        self.probs[offset + c].max(0.0)
                    } else {
                        0.0
                    }
                })
                .collect();
            let total_w: f64 = weights.iter().sum();
            let cell = if total_w > 0.0 {
                let mut u = rng.gen_range(0.0..total_w);
                let mut chosen = total - 1;
                for (c, &w) in weights.iter().enumerate() {
                    if w <= 0.0 {
                        continue;
                    }
                    if u < w {
                        chosen = c;
                        break;
                    }
                    u -= w;
                }
                chosen
            } else {
                // Degenerate: uniform over consistent cells.
                let consistent: Vec<usize> = (0..total)
                    .filter(|&c| {
                        attrs.iter().enumerate().all(|(pos, &a)| {
                            bins[a].is_none_or(|b| (c / st[pos]) % sizes[pos] == b)
                        })
                    })
                    .collect();
                *consistent.choose(rng).unwrap_or(&0)
            };
            for (pos, &a) in attrs.iter().enumerate() {
                bins[a] = Some((cell / st[pos]) % sizes[pos]);
            }
        }
        bins.into_iter().map(|b| b.unwrap_or(0)).collect()
    }

    /// Generate a relation of `rows` tuples against `schema`.
    pub fn generate(&self, schema: &TableSchema, rows: usize, seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(rows);
        let mut seq = 0i64;
        for _ in 0..rows {
            let bins = self.sample_bins(&mut rng);
            let mut row: Vec<Value> = vec![Value::Null; schema.arity()];
            for (a, &ci) in self.attr_cols.iter().enumerate() {
                let code = self.encodings[a].decode(bins[a], &mut rng);
                row[ci] = self.encodings[a].base_domain().value(code).clone();
            }
            for (ci, domain) in &self.unfiltered {
                let code = rng.gen_range(0..domain.len().max(1)) as u32;
                row[*ci] = domain.value(code).clone();
            }
            for (ci, col) in schema.columns.iter().enumerate() {
                if col.role == ColumnRole::PrimaryKey {
                    seq += 1;
                    row[ci] = Value::Int(seq);
                }
            }
            out.push(row);
        }
        Table::from_rows(schema.clone(), &out).expect("generated rows match schema")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_query::{evaluate_cardinality, label_workload, WorkloadGenerator};
    use sam_storage::{paper_example, Database, DatabaseStats};

    fn fixture() -> (Database, Vec<ColumnStats>) {
        let db = paper_example::figure3_database();
        let single = Database::single(db.table_by_name("A").unwrap().clone());
        let stats = DatabaseStats::from_database(&single);
        let cols = stats.table(0).columns.clone();
        (single, cols)
    }

    #[test]
    fn fits_and_satisfies_small_workload() {
        let (db, cols) = fixture();
        let schema = db.schema().table("A").unwrap().clone();
        let mut gen = WorkloadGenerator::new(&db, 1);
        let workload = label_workload(&db, gen.single_workload("A", 8)).unwrap();
        let pgm = fit_single_pgm(&schema, &cols, 4, &workload.queries, &PgmConfig::default());
        assert!(pgm.num_variables() > 0);
        assert!(
            pgm.report.residual < 0.05,
            "residual {}",
            pgm.report.residual
        );

        let table = pgm.generate(&schema, 4, 3);
        let gen_db = Database::single(table);
        // Input constraints roughly satisfied on the tiny generated data.
        let mut ok = 0;
        for lq in workload.iter() {
            let got = evaluate_cardinality(&gen_db, &lq.query).unwrap();
            if (got as i64 - lq.cardinality as i64).abs() <= 2 {
                ok += 1;
            }
        }
        assert!(ok * 2 >= workload.len(), "{ok}/{} close", workload.len());
    }

    #[test]
    fn variables_grow_with_workload() {
        // More queries → more literals → more bins → more unknowns: the
        // §2.3 complexity driver.
        let (db, cols) = fixture();
        let schema = db.schema().table("A").unwrap().clone();
        let mut gen = WorkloadGenerator::new(&db, 2);
        let w_small = label_workload(&db, gen.single_workload("A", 2)).unwrap();
        let w_big = label_workload(&db, gen.single_workload("A", 30)).unwrap();
        let p_small = fit_single_pgm(&schema, &cols, 4, &w_small.queries, &PgmConfig::default());
        let p_big = fit_single_pgm(&schema, &cols, 4, &w_big.queries, &PgmConfig::default());
        assert!(p_big.num_variables() >= p_small.num_variables());
    }

    #[test]
    fn generates_exact_row_count_with_pk() {
        let (db, cols) = fixture();
        let schema = db.schema().table("A").unwrap().clone();
        let mut gen = WorkloadGenerator::new(&db, 3);
        let workload = label_workload(&db, gen.single_workload("A", 4)).unwrap();
        let pgm = fit_single_pgm(&schema, &cols, 4, &workload.queries, &PgmConfig::default());
        let t = pgm.generate(&schema, 10, 1);
        assert_eq!(t.num_rows(), 10);
        // pk sequential.
        assert_eq!(t.value(0, 0), Value::Int(1));
        assert_eq!(t.value(9, 0), Value::Int(10));
    }

    #[test]
    fn empty_workload_generates_uniform() {
        let (db, cols) = fixture();
        let schema = db.schema().table("A").unwrap().clone();
        let pgm = fit_single_pgm(&schema, &cols, 4, &[], &PgmConfig::default());
        assert_eq!(pgm.num_variables(), 0);
        let t = pgm.generate(&schema, 5, 2);
        assert_eq!(t.num_rows(), 5);
        // Content values still drawn from the known domain.
        for v in t.column_by_name("a").unwrap().iter() {
            assert!(v == Value::str("m") || v == Value::str("n"));
        }
    }
}
