//! # sam-storage — relational substrate for the SAM reproduction
//!
//! Dictionary-encoded in-memory relations, schemas with foreign-key join
//! graphs (validated tree structure, paper §2.2), full-outer-join
//! materialisation with indicator/fanout virtual columns (paper §4.1), the
//! Theorem-2 *identifier columns* used by Group-and-Merge, CSV/JSONL I/O,
//! and the
//! metadata summary ([`stats::DatabaseStats`]) that is the only channel
//! through which a workload-driven generator may observe the target database.

#![warn(missing_docs)]

pub mod column;
pub mod csv;
pub mod database;
pub mod domain;
pub mod error;
pub mod foj;
pub mod join_graph;
pub mod jsonl;
pub mod paper_example;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use column::Column;
pub use database::Database;
pub use domain::{Domain, NULL_CODE};
pub use error::StorageError;
pub use foj::{foj_size, materialize_foj, Foj, FojColumn, FojColumnKind, FojSchema};
pub use join_graph::JoinGraph;
pub use schema::{ColumnDef, ColumnRole, DatabaseSchema, ForeignKeyEdge, TableSchema};
pub use stats::{ColumnStats, DatabaseStats, TableStats};
pub use table::{Table, TableBuilder};
pub use value::{DataType, Value};
