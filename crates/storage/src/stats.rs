//! Schema-level metadata available to a workload-driven generator.
//!
//! SAM never reads the target database's *rows*; it learns from (query,
//! cardinality) pairs. It does, however, need coarse metadata that a cloud
//! provider realistically has (paper §2.2, §4): table sizes `|T|` (used for
//! normalisation and scaling), per-column categorical domains or numeric
//! ranges (domain sizes are quoted for every dataset in §5.1), the full
//! outer join size, and a cap on fk fanout (to bound the fanout-column
//! domain). [`DatabaseStats::from_database`] extracts exactly this summary —
//! the only channel through which the original data reaches the generator.

use crate::database::Database;
use crate::domain::Domain;
use crate::value::DataType;
use std::sync::Arc;

/// Metadata for one content column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Logical type.
    pub dtype: DataType,
    /// The column's value domain (categorical dictionary, or the distinct
    /// values for numerics; intervalization may shrink it later).
    pub domain: Arc<Domain>,
}

/// Metadata for one relation.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Relation name.
    pub name: String,
    /// `|T|` — the row count the generated relation must match.
    pub num_rows: u64,
    /// Stats for content columns only, in schema order.
    pub columns: Vec<ColumnStats>,
    /// Largest fanout of this table's fk into its parent (0 for the root);
    /// bounds the fanout-column domain of the AR model.
    pub max_fanout: u64,
}

/// Metadata for the whole database.
#[derive(Debug, Clone)]
pub struct DatabaseStats {
    /// Per-table stats in schema order.
    pub tables: Vec<TableStats>,
    /// `|FOJ|` — the full-outer-join size (normaliser for join cardinalities).
    pub foj_size: u128,
}

impl DatabaseStats {
    /// Extract the metadata summary from a database instance.
    pub fn from_database(db: &Database) -> Self {
        let graph = db.graph();
        let tables = db
            .tables()
            .iter()
            .enumerate()
            .map(|(t, table)| {
                let columns = table
                    .schema()
                    .content_indices()
                    .into_iter()
                    .map(|ci| ColumnStats {
                        name: table.schema().columns[ci].name.clone(),
                        dtype: table.schema().columns[ci].dtype,
                        domain: Arc::clone(table.column(ci).domain()),
                    })
                    .collect();
                let max_fanout = if graph.parent(t).is_some() {
                    db.fanout_of(t)
                        .map(|m| m.values().copied().max().unwrap_or(0))
                        .unwrap_or(0)
                } else {
                    0
                };
                TableStats {
                    name: table.name().to_string(),
                    num_rows: table.num_rows() as u64,
                    columns,
                    max_fanout,
                }
            })
            .collect();
        DatabaseStats {
            tables,
            foj_size: crate::foj::foj_size(db),
        }
    }

    /// Stats of the table at join-graph index `t`.
    pub fn table(&self, t: usize) -> &TableStats {
        &self.tables[t]
    }

    /// Stats of the table named `name`.
    pub fn table_by_name(&self, name: &str) -> Option<&TableStats> {
        self.tables.iter().find(|t| t.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;

    #[test]
    fn figure3_stats() {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        assert_eq!(stats.foj_size, 8);
        let a = stats.table_by_name("A").unwrap();
        assert_eq!(a.num_rows, 4);
        assert_eq!(a.max_fanout, 0);
        assert_eq!(a.columns.len(), 1); // content column "a" only
        assert_eq!(a.columns[0].domain.len(), 2); // {m, n}
        let b = stats.table_by_name("B").unwrap();
        assert_eq!(b.max_fanout, 2);
        let c = stats.table_by_name("C").unwrap();
        assert_eq!(c.max_fanout, 2);
    }
}
