//! Full outer join with virtual columns (paper §4.1 "Join Handling").
//!
//! SAM models the joint distribution of the *full outer join* of all
//! relations. The FOJ's virtual schema contains, per table in topological
//! order: an **indicator** column `I_T` (1 if `T` participates in the row)
//! and a **fanout** column `F_T.key` (how many rows of `T` carry the row's
//! join-key value) for every non-root table, followed by `T`'s content
//! columns. Join-key columns themselves are *not* part of the virtual schema.
//!
//! This module materialises the FOJ of a [`Database`] (for ground truth and
//! tests), computes its size without materialisation, and derives the
//! *identifier columns* of a primary key (Theorem 2) used by Group-and-Merge.

use crate::column::Column;
use crate::database::Database;
use crate::domain::{Domain, NULL_CODE};
use crate::join_graph::JoinGraph;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// What a virtual-schema column refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FojColumnKind {
    /// Content column `column` (index into the table schema) of table `table`
    /// (join-graph index).
    Content {
        /// Join-graph table index.
        table: usize,
        /// Column index within the base table schema.
        column: usize,
    },
    /// Indicator `I_T` of non-root table `table`: 1 if present in the row.
    Indicator {
        /// Join-graph table index.
        table: usize,
    },
    /// Fanout `F_{T.key}` of non-root table `table`: occurrences of the row's
    /// join-key value in `table`'s fk column (0 when the key joins nothing).
    Fanout {
        /// Join-graph table index.
        table: usize,
    },
}

/// One column of the FOJ virtual schema.
#[derive(Debug, Clone)]
pub struct FojColumn {
    /// What this column refers to.
    pub kind: FojColumnKind,
    /// Human-readable name, e.g. `A.a`, `I_B`, `F_B.x`.
    pub name: String,
}

/// The FOJ virtual schema: ordered [`FojColumn`]s over a join graph.
#[derive(Debug, Clone)]
pub struct FojSchema {
    columns: Vec<FojColumn>,
    /// `indicator_index[t]` = position of `I_t`, if `t` is non-root.
    indicator_index: Vec<Option<usize>>,
    /// `fanout_index[t]` = position of `F_t`, if `t` is non-root.
    fanout_index: Vec<Option<usize>>,
    /// `content_index[t]` = positions of `t`'s content columns, in order.
    content_index: Vec<Vec<usize>>,
}

impl FojSchema {
    /// Build the virtual schema for a database's join graph.
    ///
    /// Column order: tables in root-first topological order; per non-root
    /// table first `I_T` then `F_T`, then the table's content columns.
    pub fn new(db: &Database) -> Self {
        let graph = db.graph();
        let n = graph.len();
        let mut columns = Vec::new();
        let mut indicator_index = vec![None; n];
        let mut fanout_index = vec![None; n];
        let mut content_index = vec![Vec::new(); n];

        for &t in graph.topo_order() {
            let table = db.table(t);
            let tname = table.name();
            if graph.parent(t).is_some() {
                indicator_index[t] = Some(columns.len());
                columns.push(FojColumn {
                    kind: FojColumnKind::Indicator { table: t },
                    name: format!("I_{tname}"),
                });
                fanout_index[t] = Some(columns.len());
                let fk = graph.fk_column(t).expect("non-root has fk");
                columns.push(FojColumn {
                    kind: FojColumnKind::Fanout { table: t },
                    name: format!("F_{tname}.{fk}"),
                });
            }
            for ci in table.schema().content_indices() {
                content_index[t].push(columns.len());
                columns.push(FojColumn {
                    kind: FojColumnKind::Content {
                        table: t,
                        column: ci,
                    },
                    name: format!("{tname}.{}", table.schema().columns[ci].name),
                });
            }
        }

        FojSchema {
            columns,
            indicator_index,
            fanout_index,
            content_index,
        }
    }

    /// Number of virtual columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True iff the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// All virtual columns in order.
    pub fn columns(&self) -> &[FojColumn] {
        &self.columns
    }

    /// Position of `I_t` (non-root tables only).
    pub fn indicator_index(&self, t: usize) -> Option<usize> {
        self.indicator_index[t]
    }

    /// Position of `F_t` (non-root tables only).
    pub fn fanout_index(&self, t: usize) -> Option<usize> {
        self.fanout_index[t]
    }

    /// Positions of table `t`'s content columns.
    pub fn content_indices(&self, t: usize) -> &[usize] {
        &self.content_index[t]
    }

    /// Position of the virtual column for base column (`t`, `col`).
    pub fn content_position(&self, t: usize, col: usize) -> Option<usize> {
        self.columns.iter().position(|c| {
            c.kind
                == FojColumnKind::Content {
                    table: t,
                    column: col,
                }
        })
    }

    /// All virtual-column positions belonging to table `t`'s subtree
    /// (used to NULL-out an absent child subtree).
    pub fn subtree_positions(&self, graph: &JoinGraph, t: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for s in graph.subtree(t) {
            if let Some(i) = self.indicator_index[s] {
                out.push(i);
            }
            if let Some(i) = self.fanout_index[s] {
                out.push(i);
            }
            out.extend(self.content_index[s].iter().copied());
        }
        out
    }

    /// The *identifier columns* of `t`'s primary key (Theorem 2): indicator
    /// and content columns of `{t} ∪ Ancestors(t)`, plus fanout columns of
    /// every fk table whose parent lies in `{t} ∪ Ancestors(t)`.
    ///
    /// FOJ rows sharing the join key `t.pk` agree on all of these columns.
    pub fn identifier_columns(&self, graph: &JoinGraph, t: usize) -> Vec<usize> {
        let mut closure = graph.ancestors(t);
        closure.push(t);
        let mut out = Vec::new();
        for &s in &closure {
            if let Some(i) = self.indicator_index[s] {
                out.push(i);
            }
            out.extend(self.content_index[s].iter().copied());
        }
        for other in 0..graph.len() {
            if let Some(p) = graph.parent(other) {
                if closure.contains(&p) {
                    if let Some(i) = self.fanout_index[other] {
                        out.push(i);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// A materialised full outer join: virtual schema plus dictionary-encoded
/// columns. Content columns share their base tables' domains, indicators use
/// `{0, 1}`, and fanouts use the set of observed fanout values.
#[derive(Debug, Clone)]
pub struct Foj {
    /// The virtual schema.
    pub schema: FojSchema,
    /// One column per virtual-schema entry.
    pub columns: Vec<Column>,
    rows: usize,
}

impl Foj {
    /// Number of FOJ rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Decoded value at (`row`, virtual column `col`).
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// One decoded row.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(row)).collect()
    }
}

/// Per-table, per-non-root fanout dictionaries used when materialising:
/// `fanout_domains[t]` maps every parent pk value to its fanout in `t`
/// (including 0), plus the [`Domain`] of distinct fanout values.
struct FanoutInfo {
    /// Per parent-pk-value fanout counts (0 for unmatched keys).
    per_key: HashMap<Value, u64>,
    /// Domain of distinct observed fanout values.
    domain: Arc<Domain>,
}

fn fanout_info(db: &Database, t: usize) -> FanoutInfo {
    let graph = db.graph();
    let parent = graph.parent(t).expect("fanout only for non-root");
    let pk_idx = db.table(parent).schema().pk_index().expect("parent has pk");
    let counts = db.fanout_of(t).expect("non-root table has fanout");
    let mut per_key = HashMap::new();
    let mut distinct: Vec<Value> = Vec::new();
    for v in db.table(parent).column(pk_idx).iter() {
        let c = counts.get(&v).copied().unwrap_or(0);
        distinct.push(Value::Int(c as i64));
        per_key.insert(v, c);
    }
    FanoutInfo {
        per_key,
        domain: Domain::new(distinct).shared(),
    }
}

/// Materialise the full outer join of `db`.
///
/// Memory is `O(|FOJ| × columns)`; intended for ground truth at test scale.
/// Use [`foj_size`] when only the row count is needed.
pub fn materialize_foj(db: &Database) -> Foj {
    let schema = FojSchema::new(db);
    let graph = db.graph();
    let width = schema.len();
    let n = graph.len();

    let indicator_domain = Domain::new(vec![Value::Int(0), Value::Int(1)]).shared();
    let fanouts: Vec<Option<FanoutInfo>> = (0..n)
        .map(|t| graph.parent(t).is_some().then(|| fanout_info(db, t)))
        .collect();

    // expand(t): full-width rows covering t's subtree slots, grouped by t's
    // fk value (root: single group under Value::Null).
    fn expand(
        db: &Database,
        schema: &FojSchema,
        fanouts: &[Option<FanoutInfo>],
        t: usize,
        width: usize,
    ) -> HashMap<Value, Vec<Vec<u32>>> {
        let graph = db.graph();
        let table = db.table(t);
        let children = graph.children(t).to_vec();
        let child_frags: Vec<HashMap<Value, Vec<Vec<u32>>>> = children
            .iter()
            .map(|&c| expand(db, schema, fanouts, c, width))
            .collect();
        let null_slots: Vec<Vec<usize>> = children
            .iter()
            .map(|&c| schema.subtree_positions(graph, c))
            .collect();

        let pk_idx = table.schema().pk_index();
        let fk_idx = graph
            .fk_column(t)
            .and_then(|name| table.schema().column_index(name));
        let content_cols = table.schema().content_indices();

        let mut out: HashMap<Value, Vec<Vec<u32>>> = HashMap::new();
        for r in 0..table.num_rows() {
            let mut base = vec![NULL_CODE; width];
            if let Some(ind) = schema.indicator_index(t) {
                base[ind] = 1; // indicator domain {0,1}: code 1 == value 1
            }
            if let Some(fan) = schema.fanout_index(t) {
                // This row's own fanout value: fanout of its fk value in t.
                let info = fanouts[t].as_ref().expect("non-root fanout");
                let fkv = table.value(r, fk_idx.expect("non-root fk idx"));
                let f = info.per_key.get(&fkv).copied().unwrap_or(0);
                base[fan] = info
                    .domain
                    .code_of(&Value::Int(f as i64))
                    .expect("observed fanout in domain");
            }
            for (&ci, &pos) in content_cols.iter().zip(schema.content_indices(t)) {
                base[pos] = table.column(ci).code(r);
            }

            let mut frags = vec![base];
            let pkv = pk_idx.map(|i| table.value(r, i));
            for (k, &c) in children.iter().enumerate() {
                let info = fanouts[c].as_ref().expect("child fanout");
                let pkv = pkv.as_ref().expect("table with children has pk");
                let fanout_val = info.per_key.get(pkv).copied().unwrap_or(0);
                let fanout_code = info
                    .domain
                    .code_of(&Value::Int(fanout_val as i64))
                    .expect("fanout value in domain");
                let matches = child_frags[k].get(pkv);
                match matches {
                    Some(ms) if !ms.is_empty() => {
                        let mut next = Vec::with_capacity(frags.len() * ms.len());
                        for f in &frags {
                            for m in ms {
                                let mut merged = f.clone();
                                for &slot in &null_slots[k] {
                                    merged[slot] = m[slot];
                                }
                                // The child fragment already carries I_c=1 and
                                // its own fanout code; fanout code equals
                                // fanout_code by construction.
                                debug_assert_eq!(
                                    merged[schema.fanout_index(c).unwrap()],
                                    fanout_code
                                );
                                next.push(merged);
                            }
                        }
                        frags = next;
                    }
                    _ => {
                        // Child subtree absent: indicators 0, fanouts 0,
                        // content NULL across the whole subtree.
                        for f in frags.iter_mut() {
                            for &slot in &null_slots[k] {
                                f[slot] = NULL_CODE;
                            }
                            for s in graph.subtree(c) {
                                if let Some(i) = schema.indicator_index(s) {
                                    f[i] = 0; // value 0 at code 0
                                }
                                if let Some(i) = schema.fanout_index(s) {
                                    let dom = &fanouts[s].as_ref().unwrap().domain;
                                    // 0 is in the domain whenever any key is
                                    // unmatched; otherwise fall back to NULL.
                                    f[i] = dom.code_of(&Value::Int(0)).unwrap_or(NULL_CODE);
                                }
                            }
                        }
                    }
                }
            }

            let key = match fk_idx {
                Some(i) => table.value(r, i),
                None => Value::Null,
            };
            out.entry(key).or_default().extend(frags);
        }
        out
    }

    let grouped = expand(db, &schema, &fanouts, graph.root(), width);
    let rows: Vec<Vec<u32>> = grouped.into_values().flatten().collect();
    let nrows = rows.len();

    // Assemble columnar storage with the right domains.
    let mut columns = Vec::with_capacity(width);
    for (pos, col) in schema.columns().iter().enumerate() {
        let domain = match col.kind {
            FojColumnKind::Content { table, column } => {
                Arc::clone(db.table(table).column(column).domain())
            }
            FojColumnKind::Indicator { .. } => Arc::clone(&indicator_domain),
            FojColumnKind::Fanout { table } => Arc::clone(&fanouts[table].as_ref().unwrap().domain),
        };
        let codes = rows.iter().map(|r| r[pos]).collect();
        columns.push(Column::new(domain, codes));
    }

    Foj {
        schema,
        columns,
        rows: nrows,
    }
}

/// The FOJ row count, computed bottom-up without materialisation.
///
/// For each table, a row's subtree weight is the product over children of
/// the summed subtree weights of matching child rows (1 when none match,
/// because the outer join keeps the row with a NULL side).
pub fn foj_size(db: &Database) -> u128 {
    let graph = db.graph();
    let n = graph.len();
    // weights[t]: per-row subtree weight.
    let mut weights: Vec<Vec<u128>> = vec![Vec::new(); n];
    // Process children before parents: reverse topological order.
    for &t in graph.topo_order().iter().rev() {
        let table = db.table(t);
        let mut w = vec![1u128; table.num_rows()];
        if !graph.children(t).is_empty() {
            let pk_idx = table.schema().pk_index().expect("table with children");
            for &c in graph.children(t) {
                let fk_name = graph.fk_column(c).expect("child fk");
                let fk_idx = db
                    .table(c)
                    .schema()
                    .column_index(fk_name)
                    .expect("fk column");
                // Sum child subtree weights per key value.
                let mut sums: HashMap<Value, u128> = HashMap::new();
                let child = db.table(c);
                for (r, wc) in weights[c].iter().enumerate() {
                    *sums.entry(child.value(r, fk_idx)).or_insert(0) += wc;
                }
                for (r, wt) in w.iter_mut().enumerate() {
                    let key = table.value(r, pk_idx);
                    let s = sums.get(&key).copied().unwrap_or(0);
                    *wt *= s.max(1);
                }
            }
        }
        weights[t] = w;
    }
    weights[graph.root()].iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;

    #[test]
    fn figure3_foj_has_8_rows() {
        let db = paper_example::figure3_database();
        let foj = materialize_foj(&db);
        assert_eq!(foj.num_rows(), 8);
        assert_eq!(foj_size(&db), 8);
    }

    #[test]
    fn figure3_marginals_match_paper() {
        // P((1,m)) = 2/8, P((2,m)) = 4/8 in the FOJ (paper §4.3.1).
        let db = paper_example::figure3_database();
        let foj = materialize_foj(&db);
        let a = db.graph().index_of("A").unwrap();
        let a_content = foj.schema.content_indices(a)[0];
        let count_m_x = |x: &str| {
            (0..foj.num_rows())
                .filter(|&r| foj.value(r, a_content) == Value::str(x))
                .count()
        };
        assert_eq!(count_m_x("m"), 6); // rows for (1,m) + (2,m)
        assert_eq!(count_m_x("n"), 2); // the two non-joining tuples
    }

    #[test]
    fn figure3_fanout_columns() {
        let db = paper_example::figure3_database();
        let foj = materialize_foj(&db);
        let g = db.graph();
        let (a, b, c) = (
            g.index_of("A").unwrap(),
            g.index_of("B").unwrap(),
            g.index_of("C").unwrap(),
        );
        let a_col = foj.schema.content_indices(a)[0];
        let fb = foj.schema.fanout_index(b).unwrap();
        let fc = foj.schema.fanout_index(c).unwrap();
        let ib = foj.schema.indicator_index(b).unwrap();

        for r in 0..foj.num_rows() {
            match foj.value(r, a_col).as_str().unwrap() {
                "m" => {
                    let fb_v = foj.value(r, fb).as_int().unwrap();
                    let fc_v = foj.value(r, fc).as_int().unwrap();
                    assert_eq!(fc_v, 2);
                    assert!(fb_v == 1 || fb_v == 2);
                    assert_eq!(foj.value(r, ib), Value::Int(1));
                }
                "n" => {
                    assert_eq!(foj.value(r, ib), Value::Int(0));
                    assert_eq!(foj.value(r, fb), Value::Int(0));
                    assert_eq!(foj.value(r, fc), Value::Int(0));
                }
                other => panic!("unexpected content {other}"),
            }
        }
    }

    #[test]
    fn identifier_columns_match_paper_example() {
        // Identifier(A.x) = {A.a, F_B.x, F_C.x} (plus I_A, which does not
        // exist for the root under fk integrity).
        let db = paper_example::figure3_database();
        let foj = materialize_foj(&db);
        let g = db.graph();
        let a = g.index_of("A").unwrap();
        let ids = foj.schema.identifier_columns(g, a);
        let names: Vec<&str> = ids
            .iter()
            .map(|&i| foj.schema.columns()[i].name.as_str())
            .collect();
        assert_eq!(names, vec!["A.a", "F_B.x", "F_C.x"]);
    }

    #[test]
    fn rows_sharing_pk_share_identifier_columns() {
        // Theorem 2 sanity check on the materialised FOJ: group rows by the
        // originating A pk (recoverable here because content determines pk in
        // the fixture for joined rows).
        let db = paper_example::figure3_database();
        let foj = materialize_foj(&db);
        let g = db.graph();
        let a = g.index_of("A").unwrap();
        let b = g.index_of("B").unwrap();
        let ids = foj.schema.identifier_columns(g, a);
        let fb = foj.schema.fanout_index(b).unwrap();

        // Rows with F_B = 2 all originate from pk 2: identifiers must agree.
        let sig = |r: usize| -> Vec<Value> { ids.iter().map(|&i| foj.value(r, i)).collect() };
        let rows2: Vec<usize> = (0..foj.num_rows())
            .filter(|&r| foj.value(r, fb) == Value::Int(2))
            .collect();
        assert_eq!(rows2.len(), 4);
        for &r in &rows2[1..] {
            assert_eq!(sig(r), sig(rows2[0]));
        }
    }

    #[test]
    fn schema_layout() {
        let db = paper_example::figure3_database();
        let schema = FojSchema::new(&db);
        let names: Vec<&str> = schema.columns().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["A.a", "I_B", "F_B.x", "B.b", "I_C", "F_C.x", "C.c"]
        );
    }

    #[test]
    fn deeper_tree_foj_size() {
        use crate::schema::{ColumnDef, DatabaseSchema, ForeignKeyEdge, TableSchema};
        use crate::table::Table;
        use crate::value::{DataType, Value};

        // A(pk) -> B(pk, fk A) -> D(fk B); B rows fan out via D.
        let a_schema = TableSchema::new(
            "A",
            vec![
                ColumnDef::primary_key("id"),
                ColumnDef::content("a", DataType::Int),
            ],
        );
        let b_schema = TableSchema::new(
            "B",
            vec![
                ColumnDef::primary_key("id"),
                ColumnDef::foreign_key("aid", "A"),
                ColumnDef::content("b", DataType::Int),
            ],
        );
        let d_schema = TableSchema::new(
            "D",
            vec![
                ColumnDef::foreign_key("bid", "B"),
                ColumnDef::content("d", DataType::Int),
            ],
        );
        let schema = DatabaseSchema::new(
            vec![a_schema.clone(), b_schema.clone(), d_schema.clone()],
            vec![
                ForeignKeyEdge {
                    pk_table: "A".into(),
                    fk_table: "B".into(),
                    fk_column: "aid".into(),
                },
                ForeignKeyEdge {
                    pk_table: "B".into(),
                    fk_table: "D".into(),
                    fk_column: "bid".into(),
                },
            ],
        )
        .unwrap();
        let a = Table::from_rows(
            a_schema,
            &[
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(20)],
            ],
        )
        .unwrap();
        let b = Table::from_rows(
            b_schema,
            &[
                vec![Value::Int(1), Value::Int(1), Value::Int(100)],
                vec![Value::Int(2), Value::Int(1), Value::Int(200)],
            ],
        )
        .unwrap();
        let d = Table::from_rows(
            d_schema,
            &[
                vec![Value::Int(1), Value::Int(7)],
                vec![Value::Int(1), Value::Int(8)],
                vec![Value::Int(1), Value::Int(9)],
            ],
        )
        .unwrap();
        let db = Database::new(schema, vec![a, b, d], true).unwrap();
        // A1 joins B1 (3 D rows) and B2 (no D rows → 1) = 3 + 1 = 4 rows;
        // A2 joins nothing → 1 row. Total 5.
        assert_eq!(foj_size(&db), 5);
        let foj = materialize_foj(&db);
        assert_eq!(foj.num_rows(), 5);
    }
}
