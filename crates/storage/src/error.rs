//! Error types for the storage layer.

use std::fmt;

/// Errors raised while constructing or manipulating relational data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table name was not found in the schema.
    UnknownTable(String),
    /// A column name was not found in a table (table, column).
    UnknownColumn(String, String),
    /// A structural schema rule was violated (message).
    SchemaViolation(String),
    /// The join graph is not an acyclic tree as required by the paper (§2.2).
    NotATree(String),
    /// Row data did not match the declared schema (message).
    RowShape(String),
    /// CSV parsing failed (line number, message).
    Csv(usize, String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            StorageError::UnknownColumn(t, c) => write!(f, "unknown column: {t}.{c}"),
            StorageError::SchemaViolation(m) => write!(f, "schema violation: {m}"),
            StorageError::NotATree(m) => write!(f, "join graph is not a tree: {m}"),
            StorageError::RowShape(m) => write!(f, "row does not match schema: {m}"),
            StorageError::Csv(line, m) => write!(f, "csv error at line {line}: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}
