//! The join graph: a tree-structured DAG over relations (paper §2.2).
//!
//! Vertices are relations; a directed edge runs from table `T1` to `T2` when
//! `T1`'s primary key joins `T2`'s foreign key. SAM (like the paper) requires
//! the graph to be a rooted tree: acyclic, one parent per table, connected.

use crate::error::StorageError;
use crate::schema::DatabaseSchema;

/// Validated tree view of a [`DatabaseSchema`]'s foreign-key edges.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    /// Table names in schema declaration order.
    tables: Vec<String>,
    /// `parent[i]` = index of the pk-side table `i` joins into, if any.
    parent: Vec<Option<usize>>,
    /// `fk_column[i]` = the fk column in table `i` joining its parent.
    fk_column: Vec<Option<String>>,
    /// `children[i]` = fk-side tables referencing table `i`.
    children: Vec<Vec<usize>>,
    /// Index of the root (single-relation databases: table 0).
    root: usize,
    /// Tables in a root-first topological order.
    topo: Vec<usize>,
}

impl JoinGraph {
    /// Build and validate the join graph from a schema.
    ///
    /// Errors if a table has more than one parent, the edges contain a cycle,
    /// or (for multi-table schemas) the graph is disconnected.
    pub fn new(schema: &DatabaseSchema) -> Result<Self, StorageError> {
        let n = schema.tables().len();
        let tables: Vec<String> = schema.tables().iter().map(|t| t.name.clone()).collect();
        let mut parent = vec![None; n];
        let mut fk_column = vec![None; n];
        let mut children = vec![Vec::new(); n];

        for e in schema.edges() {
            let pk = schema
                .table_index(&e.pk_table)
                .ok_or_else(|| StorageError::UnknownTable(e.pk_table.clone()))?;
            let fk = schema
                .table_index(&e.fk_table)
                .ok_or_else(|| StorageError::UnknownTable(e.fk_table.clone()))?;
            if parent[fk].is_some() {
                return Err(StorageError::NotATree(format!(
                    "table {} has multiple parents",
                    e.fk_table
                )));
            }
            parent[fk] = Some(pk);
            fk_column[fk] = Some(e.fk_column.clone());
            children[pk].push(fk);
        }

        let roots: Vec<usize> = (0..n).filter(|&i| parent[i].is_none()).collect();
        if n > 0 && roots.len() != 1 {
            return Err(StorageError::NotATree(format!(
                "expected exactly one root, found {} ({:?})",
                roots.len(),
                roots.iter().map(|&i| &tables[i]).collect::<Vec<_>>()
            )));
        }
        let root = roots.first().copied().unwrap_or(0);

        // Root-first topological order; also detects cycles/disconnection.
        let mut topo = Vec::with_capacity(n);
        let mut stack = vec![root];
        let mut seen = vec![false; n];
        while let Some(t) = stack.pop() {
            if seen[t] {
                return Err(StorageError::NotATree(format!(
                    "cycle detected at table {}",
                    tables[t]
                )));
            }
            seen[t] = true;
            topo.push(t);
            // Push reversed so children pop in declaration order.
            for &c in children[t].iter().rev() {
                stack.push(c);
            }
        }
        if topo.len() != n {
            return Err(StorageError::NotATree(
                "join graph is disconnected".to_string(),
            ));
        }

        Ok(JoinGraph {
            tables,
            parent,
            fk_column,
            children,
            root,
            topo,
        })
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True iff the graph has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Table names in schema order.
    pub fn tables(&self) -> &[String] {
        &self.tables
    }

    /// Index of the root relation.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Index of a table by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.tables.iter().position(|t| t == name)
    }

    /// Parent (pk-side) table of `t`, if `t` is not the root.
    pub fn parent(&self, t: usize) -> Option<usize> {
        self.parent[t]
    }

    /// The fk column in `t` joining its parent, if `t` is not the root.
    pub fn fk_column(&self, t: usize) -> Option<&str> {
        self.fk_column[t].as_deref()
    }

    /// Children (fk-side) tables of `t`.
    pub fn children(&self, t: usize) -> &[usize] {
        &self.children[t]
    }

    /// Strict ancestors of `t` (parent, grandparent, …, root).
    pub fn ancestors(&self, t: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = t;
        while let Some(p) = self.parent[cur] {
            out.push(p);
            cur = p;
        }
        out
    }

    /// `t` plus every table reachable below it.
    pub fn subtree(&self, t: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![t];
        while let Some(x) = stack.pop() {
            out.push(x);
            stack.extend(self.children[x].iter().copied());
        }
        out
    }

    /// Root-first topological order of all tables.
    pub fn topo_order(&self) -> &[usize] {
        &self.topo
    }

    /// Non-root tables (those owning a fanout/indicator virtual column) in
    /// topological order.
    pub fn fk_tables(&self) -> Vec<usize> {
        self.topo
            .iter()
            .copied()
            .filter(|&t| self.parent[t].is_some())
            .collect()
    }

    /// The smallest connected subtree containing `tables` (the tables a join
    /// query over `tables` must touch). Assumes `tables` is non-empty.
    pub fn steiner_tree(&self, tables: &[usize]) -> Vec<usize> {
        // Union of root-paths, then trim prefixes above the highest branching
        // point is unnecessary for fk-join semantics: any query joining a set
        // of tables in a tree schema must include every table on the paths
        // between them, which equals the union of paths to their LCA.
        let mut paths: Vec<Vec<usize>> = tables
            .iter()
            .map(|&t| {
                let mut p = self.ancestors(t);
                p.reverse(); // root .. parent
                p.push(t);
                p
            })
            .collect();
        // Depth of the LCA = longest common prefix of all root-paths.
        let mut lca_depth = paths[0].len();
        for p in &paths[1..] {
            let common = paths[0]
                .iter()
                .zip(p.iter())
                .take_while(|(a, b)| a == b)
                .count();
            lca_depth = lca_depth.min(common);
        }
        let mut out: Vec<usize> = Vec::new();
        for p in paths.iter_mut() {
            for &t in &p[lca_depth.saturating_sub(1)..] {
                if !out.contains(&t) {
                    out.push(t);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DatabaseSchema, ForeignKeyEdge, TableSchema};
    use crate::value::DataType;

    fn edge(pk: &str, fk: &str, col: &str) -> ForeignKeyEdge {
        ForeignKeyEdge {
            pk_table: pk.into(),
            fk_table: fk.into(),
            fk_column: col.into(),
        }
    }

    fn pk_table(name: &str) -> TableSchema {
        TableSchema::new(
            name,
            vec![
                ColumnDef::primary_key("id"),
                ColumnDef::content("v", DataType::Int),
            ],
        )
    }

    fn fk_table(name: &str, parent: &str) -> TableSchema {
        TableSchema::new(
            name,
            vec![
                ColumnDef::primary_key("id"),
                ColumnDef::foreign_key("pid", parent),
                ColumnDef::content("v", DataType::Int),
            ],
        )
    }

    /// A -> {B, C}, B -> D (a depth-2 tree).
    fn tree() -> JoinGraph {
        let schema = DatabaseSchema::new(
            vec![
                pk_table("A"),
                fk_table("B", "A"),
                fk_table("C", "A"),
                fk_table("D", "B"),
            ],
            vec![
                edge("A", "B", "pid"),
                edge("A", "C", "pid"),
                edge("B", "D", "pid"),
            ],
        )
        .unwrap();
        JoinGraph::new(&schema).unwrap()
    }

    #[test]
    fn root_and_parents() {
        let g = tree();
        assert_eq!(g.root(), 0);
        assert_eq!(g.parent(1), Some(0));
        assert_eq!(g.parent(3), Some(1));
        assert_eq!(g.parent(0), None);
        assert_eq!(g.fk_column(1), Some("pid"));
    }

    #[test]
    fn ancestors_and_subtree() {
        let g = tree();
        assert_eq!(g.ancestors(3), vec![1, 0]);
        assert_eq!(g.ancestors(0), Vec::<usize>::new());
        let mut sub = g.subtree(1);
        sub.sort_unstable();
        assert_eq!(sub, vec![1, 3]);
    }

    #[test]
    fn topo_order_is_root_first() {
        let g = tree();
        let topo = g.topo_order();
        assert_eq!(topo[0], 0);
        let pos = |t: usize| topo.iter().position(|&x| x == t).unwrap();
        assert!(pos(1) < pos(3));
    }

    #[test]
    fn steiner_tree_includes_connecting_tables() {
        let g = tree();
        // D and C connect through B and A.
        assert_eq!(g.steiner_tree(&[3, 2]), vec![0, 1, 2, 3]);
        // B alone.
        assert_eq!(g.steiner_tree(&[1]), vec![1]);
        // A and D connect through B.
        assert_eq!(g.steiner_tree(&[0, 3]), vec![0, 1, 3]);
    }

    #[test]
    fn rejects_two_parents() {
        let schema = DatabaseSchema::new(
            vec![
                pk_table("A"),
                pk_table("B"),
                TableSchema::new(
                    "C",
                    vec![
                        ColumnDef::foreign_key("pa", "A"),
                        ColumnDef::foreign_key("pb", "B"),
                    ],
                ),
            ],
            vec![edge("A", "C", "pa"), edge("B", "C", "pb")],
        )
        .unwrap();
        let err = JoinGraph::new(&schema).unwrap_err();
        assert!(matches!(err, StorageError::NotATree(_)));
    }

    #[test]
    fn rejects_disconnected_forest() {
        let schema = DatabaseSchema::new(vec![pk_table("A"), pk_table("B")], vec![]).unwrap();
        let err = JoinGraph::new(&schema).unwrap_err();
        assert!(matches!(err, StorageError::NotATree(_)));
    }

    #[test]
    fn single_table_graph() {
        let schema = DatabaseSchema::single(pk_table("A"));
        let g = JoinGraph::new(&schema).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.root(), 0);
        assert!(g.fk_tables().is_empty());
    }
}
