//! Databases: a set of tables with a validated join graph.

use crate::error::StorageError;
use crate::join_graph::JoinGraph;
use crate::schema::DatabaseSchema;
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;

/// A materialised database instance.
#[derive(Debug, Clone)]
pub struct Database {
    schema: DatabaseSchema,
    graph: JoinGraph,
    /// Tables in schema declaration order.
    tables: Vec<Table>,
}

impl Database {
    /// Assemble a database from tables matching the schema.
    ///
    /// Validates the join graph (tree), table presence/order, and — when
    /// `check_integrity` — referential integrity of every fk edge.
    pub fn new(
        schema: DatabaseSchema,
        tables: Vec<Table>,
        check_integrity: bool,
    ) -> Result<Self, StorageError> {
        let graph = JoinGraph::new(&schema)?;
        if tables.len() != schema.tables().len() {
            return Err(StorageError::SchemaViolation(format!(
                "schema declares {} tables but {} were provided",
                schema.tables().len(),
                tables.len()
            )));
        }
        for (decl, tab) in schema.tables().iter().zip(&tables) {
            if decl != tab.schema() {
                return Err(StorageError::SchemaViolation(format!(
                    "table {} does not match its declared schema",
                    decl.name
                )));
            }
        }
        let db = Database {
            schema,
            graph,
            tables,
        };
        if check_integrity {
            db.check_referential_integrity()?;
        }
        Ok(db)
    }

    /// A single-relation database.
    pub fn single(table: Table) -> Self {
        let schema = DatabaseSchema::single(table.schema().clone());
        let graph = JoinGraph::new(&schema).expect("single table is a trivial tree");
        Database {
            schema,
            graph,
            tables: vec![table],
        }
    }

    fn check_referential_integrity(&self) -> Result<(), StorageError> {
        for &t in self.graph.topo_order() {
            let Some(p) = self.graph.parent(t) else {
                continue;
            };
            let fk_col = self.graph.fk_column(t).expect("non-root has fk column");
            let fk_idx = self.tables[t]
                .schema()
                .column_index(fk_col)
                .ok_or_else(|| {
                    StorageError::UnknownColumn(self.tables[t].name().into(), fk_col.into())
                })?;
            let pk_idx = self.tables[p].schema().pk_index().ok_or_else(|| {
                StorageError::SchemaViolation(format!(
                    "table {} has no primary key",
                    self.tables[p].name()
                ))
            })?;
            let pk_values: std::collections::HashSet<Value> =
                self.tables[p].column(pk_idx).iter().collect();
            for v in self.tables[t].column(fk_idx).iter() {
                if !v.is_null() && !pk_values.contains(&v) {
                    return Err(StorageError::SchemaViolation(format!(
                        "fk violation: {}.{} = {} has no match in {}",
                        self.tables[t].name(),
                        fk_col,
                        v,
                        self.tables[p].name()
                    )));
                }
            }
        }
        Ok(())
    }

    /// The database schema.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// The validated join graph.
    pub fn graph(&self) -> &JoinGraph {
        &self.graph
    }

    /// Tables in schema order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// The table at graph index `t`.
    pub fn table(&self, t: usize) -> &Table {
        &self.tables[t]
    }

    /// Look up a table by name.
    pub fn table_by_name(&self, name: &str) -> Option<&Table> {
        self.graph.index_of(name).map(|i| &self.tables[i])
    }

    /// Per-pk-value fanout of fk table `t` into its parent: how many rows of
    /// `t` carry each join-key value. Keys absent from the map have fanout 0.
    pub fn fanout_of(&self, t: usize) -> Result<HashMap<Value, u64>, StorageError> {
        let fk_col = self.graph.fk_column(t).ok_or_else(|| {
            StorageError::SchemaViolation(format!("table {} is the root", self.tables[t].name()))
        })?;
        let fk_idx = self.tables[t]
            .schema()
            .column_index(fk_col)
            .ok_or_else(|| {
                StorageError::UnknownColumn(self.tables[t].name().into(), fk_col.into())
            })?;
        Ok(self.tables[t].value_counts(fk_idx))
    }

    /// Total rows across all relations.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::num_rows).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;

    #[test]
    fn paper_example_database_is_valid() {
        let db = paper_example::figure3_database();
        assert_eq!(db.tables().len(), 3);
        assert_eq!(db.table_by_name("A").unwrap().num_rows(), 4);
        assert_eq!(db.table_by_name("B").unwrap().num_rows(), 3);
        assert_eq!(db.table_by_name("C").unwrap().num_rows(), 4);
        assert_eq!(db.total_rows(), 11);
    }

    #[test]
    fn fanout_matches_paper_figure3() {
        let db = paper_example::figure3_database();
        let b = db.graph().index_of("B").unwrap();
        let c = db.graph().index_of("C").unwrap();
        let fan_b = db.fanout_of(b).unwrap();
        let fan_c = db.fanout_of(c).unwrap();
        // B has one row with x=1 and two rows with x=2.
        assert_eq!(fan_b.get(&Value::Int(1)), Some(&1));
        assert_eq!(fan_b.get(&Value::Int(2)), Some(&2));
        // C has two rows with x=1 and two with x=2.
        assert_eq!(fan_c.get(&Value::Int(1)), Some(&2));
        assert_eq!(fan_c.get(&Value::Int(2)), Some(&2));
        // x=3 and x=4 join nothing.
        assert_eq!(fan_b.get(&Value::Int(3)), None);
    }

    #[test]
    fn integrity_check_rejects_dangling_fk() {
        use crate::schema::{ColumnDef, DatabaseSchema, ForeignKeyEdge, TableSchema};
        use crate::table::Table;
        use crate::value::DataType;

        let a_schema = TableSchema::new(
            "A",
            vec![
                ColumnDef::primary_key("x"),
                ColumnDef::content("a", DataType::Str),
            ],
        );
        let b_schema = TableSchema::new(
            "B",
            vec![
                ColumnDef::foreign_key("x", "A"),
                ColumnDef::content("b", DataType::Str),
            ],
        );
        let schema = DatabaseSchema::new(
            vec![a_schema.clone(), b_schema.clone()],
            vec![ForeignKeyEdge {
                pk_table: "A".into(),
                fk_table: "B".into(),
                fk_column: "x".into(),
            }],
        )
        .unwrap();
        let a = Table::from_rows(a_schema, &[vec![Value::Int(1), Value::str("m")]]).unwrap();
        let b = Table::from_rows(
            b_schema,
            &[vec![Value::Int(9), Value::str("a")]], // dangling fk
        )
        .unwrap();
        let err = Database::new(schema, vec![a, b], true).unwrap_err();
        assert!(matches!(err, StorageError::SchemaViolation(_)));
    }
}
