//! In-memory relations (columnar, dictionary-encoded).

use crate::column::Column;
use crate::domain::{Domain, NULL_CODE};
use crate::error::StorageError;
use crate::schema::TableSchema;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// A materialised relation: a [`TableSchema`] plus one [`Column`] per
/// declared column, all with equal row counts.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Build a table from pre-encoded columns.
    ///
    /// Errors if the column count or row counts do not match the schema.
    pub fn new(schema: TableSchema, columns: Vec<Column>) -> Result<Self, StorageError> {
        if columns.len() != schema.arity() {
            return Err(StorageError::RowShape(format!(
                "table {} declares {} columns but {} were provided",
                schema.name,
                schema.arity(),
                columns.len()
            )));
        }
        let rows = columns.first().map_or(0, Column::len);
        if columns.iter().any(|c| c.len() != rows) {
            return Err(StorageError::RowShape(format!(
                "table {}: ragged column lengths",
                schema.name
            )));
        }
        Ok(Table {
            schema,
            columns,
            rows,
        })
    }

    /// Build a table from row-major values, deriving per-column domains.
    pub fn from_rows(schema: TableSchema, rows: &[Vec<Value>]) -> Result<Self, StorageError> {
        let arity = schema.arity();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != arity {
                return Err(StorageError::RowShape(format!(
                    "table {} row {i} has {} values, expected {arity}",
                    schema.name,
                    r.len()
                )));
            }
        }
        let mut columns = Vec::with_capacity(arity);
        for c in 0..arity {
            let vals: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
            columns.push(Column::from_values(&vals));
        }
        Table::new(schema, columns)
    }

    /// The table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of rows (`|T|`).
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The column at index `col`.
    pub fn column(&self, col: usize) -> &Column {
        &self.columns[col]
    }

    /// The column named `name`.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.schema.column_index(name).map(|i| &self.columns[i])
    }

    /// The decoded value at (`row`, `col`).
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// One decoded row.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(row)).collect()
    }

    /// Iterate decoded rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.rows).map(move |r| self.row(r))
    }

    /// Per-value occurrence counts of column `col` keyed by decoded value
    /// (used to compute fanout columns of fk join keys).
    pub fn value_counts(&self, col: usize) -> HashMap<Value, u64> {
        let column = &self.columns[col];
        let hist = column.histogram();
        let mut out = HashMap::with_capacity(hist.len());
        for (code, count) in hist.into_iter().enumerate() {
            if count > 0 {
                out.insert(column.domain().value(code as u32).clone(), count);
            }
        }
        out
    }

    /// A hash index from join-key value to row indices for column `col`
    /// (NULL keys are skipped).
    pub fn hash_index(&self, col: usize) -> HashMap<Value, Vec<usize>> {
        let column = &self.columns[col];
        let mut idx: HashMap<Value, Vec<usize>> = HashMap::new();
        for row in 0..self.rows {
            let code = column.code(row);
            if code != NULL_CODE {
                idx.entry(column.domain().value(code).clone())
                    .or_default()
                    .push(row);
            }
        }
        idx
    }

    /// New table containing only the rows in `rows` (same schema/domains).
    pub fn gather(&self, rows: &[usize]) -> Table {
        Table {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.gather(rows)).collect(),
            rows: rows.len(),
        }
    }
}

/// Incremental row-at-a-time builder with fixed per-column domains.
///
/// Use this when the domains are known up front (e.g. when generating
/// synthetic tuples whose values were sampled from model domains).
#[derive(Debug)]
pub struct TableBuilder {
    schema: TableSchema,
    columns: Vec<Column>,
    rows: usize,
}

impl TableBuilder {
    /// Start building a table whose columns draw from the given domains.
    ///
    /// # Panics
    /// Panics if `domains.len() != schema.arity()`.
    pub fn new(schema: TableSchema, domains: Vec<Arc<Domain>>) -> Self {
        assert_eq!(
            domains.len(),
            schema.arity(),
            "one domain per schema column required"
        );
        let columns = domains
            .into_iter()
            .map(|d| Column::new(d, Vec::new()))
            .collect();
        TableBuilder {
            schema,
            columns,
            rows: 0,
        }
    }

    /// Append one decoded row.
    ///
    /// # Panics
    /// Panics if the row arity mismatches or a value is outside its domain.
    pub fn push_row(&mut self, row: &[Value]) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        for (c, v) in self.columns.iter_mut().zip(row) {
            c.push_value(v);
        }
        self.rows += 1;
    }

    /// Append one row of raw codes ([`NULL_CODE`] for NULL).
    pub fn push_codes(&mut self, codes: &[u32]) {
        assert_eq!(codes.len(), self.columns.len(), "row arity mismatch");
        for (c, &code) in self.columns.iter_mut().zip(codes) {
            c.push_code(code);
        }
        self.rows += 1;
    }

    /// Number of rows appended so far.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True iff no rows were appended.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Finish into an immutable [`Table`].
    pub fn finish(self) -> Table {
        Table {
            schema: self.schema,
            columns: self.columns,
            rows: self.rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::DataType;

    fn schema() -> TableSchema {
        TableSchema::new(
            "T",
            vec![
                ColumnDef::content("a", DataType::Int),
                ColumnDef::content("b", DataType::Str),
            ],
        )
    }

    fn rows() -> Vec<Vec<Value>> {
        vec![
            vec![Value::Int(1), Value::str("m")],
            vec![Value::Int(2), Value::str("m")],
            vec![Value::Int(2), Value::str("n")],
        ]
    }

    #[test]
    fn from_rows_round_trips() {
        let t = Table::from_rows(schema(), &rows()).unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.value(1, 0), Value::Int(2));
        assert_eq!(t.value(2, 1), Value::str("n"));
        let collected: Vec<_> = t.iter_rows().collect();
        assert_eq!(collected, rows());
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = Table::from_rows(schema(), &[vec![Value::Int(1)]]).unwrap_err();
        assert!(matches!(err, StorageError::RowShape(_)));
    }

    #[test]
    fn value_counts() {
        let t = Table::from_rows(schema(), &rows()).unwrap();
        let counts = t.value_counts(0);
        assert_eq!(counts[&Value::Int(1)], 1);
        assert_eq!(counts[&Value::Int(2)], 2);
    }

    #[test]
    fn hash_index_groups_rows() {
        let t = Table::from_rows(schema(), &rows()).unwrap();
        let idx = t.hash_index(1);
        assert_eq!(idx[&Value::str("m")], vec![0, 1]);
        assert_eq!(idx[&Value::str("n")], vec![2]);
    }

    #[test]
    fn gather_subsets_rows() {
        let t = Table::from_rows(schema(), &rows()).unwrap();
        let g = t.gather(&[2, 0]);
        assert_eq!(g.num_rows(), 2);
        assert_eq!(g.value(0, 0), Value::Int(2));
        assert_eq!(g.value(1, 0), Value::Int(1));
    }

    #[test]
    fn builder_appends_rows() {
        let t0 = Table::from_rows(schema(), &rows()).unwrap();
        let domains = vec![
            Arc::clone(t0.column(0).domain()),
            Arc::clone(t0.column(1).domain()),
        ];
        let mut b = TableBuilder::new(schema(), domains);
        assert!(b.is_empty());
        b.push_row(&[Value::Int(2), Value::str("n")]);
        b.push_codes(&[0, NULL_CODE]);
        let t = b.finish();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(0, 0), Value::Int(2));
        assert_eq!(t.value(1, 0), Value::Int(1));
        assert!(t.value(1, 1).is_null());
    }
}
