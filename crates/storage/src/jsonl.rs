//! JSON Lines export for relations (no external dependencies).
//!
//! One JSON object per row, keys in schema column order, `\n` terminated —
//! the `application/jsonl` sibling of [`crate::csv`]. SQL NULL maps to JSON
//! `null`; strings are escaped per RFC 8259 (control characters as `\u00XX`).

use crate::schema::TableSchema;
use crate::table::Table;
use crate::value::Value;
use std::io::Write;

/// Append `s` to `out` as a JSON string literal.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incremental JSONL writer: the streaming seam mirrors [`crate::csv::CsvWriter`]
/// so the serving layer's bounded-chunk export can swap formats freely. Rows
/// flow straight through to the underlying [`Write`]; memory stays bounded
/// regardless of row count.
pub struct JsonlWriter<W: Write> {
    writer: W,
    /// Pre-encoded JSON keys (`"name":`) in schema column order.
    keys: Vec<String>,
}

impl<W: Write> JsonlWriter<W> {
    /// Build a writer for `schema`'s columns. JSONL has no header row; the
    /// schema fixes the key order of every emitted object.
    pub fn new(schema: &TableSchema, writer: W) -> Self {
        let keys = schema
            .columns
            .iter()
            .map(|c| {
                let mut key = String::new();
                push_json_str(&mut key, &c.name);
                key.push(':');
                key
            })
            .collect();
        JsonlWriter { writer, keys }
    }

    /// Write one record as a JSON object line (the caller guarantees arity
    /// matches the schema).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_row(&mut self, row: &[Value]) -> std::io::Result<()> {
        let mut line = String::with_capacity(64);
        line.push('{');
        for (i, (key, v)) in self.keys.iter().zip(row).enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(key);
            match v {
                Value::Null => line.push_str("null"),
                Value::Int(x) => line.push_str(&x.to_string()),
                Value::Float(x) => {
                    // JSON has no NaN/Inf; encode them as null rather than
                    // emitting an unparseable document.
                    if x.is_finite() {
                        line.push_str(&x.to_string());
                    } else {
                        line.push_str("null");
                    }
                }
                Value::Str(s) => push_json_str(&mut line, s),
            }
        }
        line.push_str("}\n");
        self.writer.write_all(line.as_bytes())
    }

    /// Flush and hand back the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

/// Write a table as JSON Lines (one object per row), streaming row by row
/// through [`JsonlWriter`].
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_jsonl<W: Write>(table: &Table, writer: &mut W) -> std::io::Result<()> {
    let mut jsonl = JsonlWriter::new(table.schema(), writer);
    for row in table.iter_rows() {
        jsonl.write_row(&row)?;
    }
    jsonl.finish()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::DataType;

    fn schema() -> TableSchema {
        TableSchema::new(
            "T",
            vec![
                ColumnDef::content("a", DataType::Int),
                ColumnDef::content("b", DataType::Str),
                ColumnDef::content("c", DataType::Float),
            ],
        )
    }

    #[test]
    fn rows_become_object_lines() {
        let t = Table::from_rows(
            schema(),
            &[
                vec![Value::Int(1), Value::str("hello"), Value::Float(1.5)],
                vec![Value::Null, Value::str("a,b"), Value::Float(-2.0)],
                vec![Value::Int(3), Value::str("say \"hi\"\n"), Value::Null],
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "one line per row, no header");
        assert_eq!(lines[0], r#"{"a":1,"b":"hello","c":1.5}"#);
        assert_eq!(lines[1], r#"{"a":null,"b":"a,b","c":-2}"#);
        assert_eq!(lines[2], r#"{"a":3,"b":"say \"hi\"\n","c":null}"#);
        assert!(text.ends_with('\n'), "every record is newline-terminated");
    }

    #[test]
    fn control_chars_and_non_finite_floats_stay_valid_json() {
        let t = Table::from_rows(
            schema(),
            &[vec![
                Value::Int(0),
                Value::str("bell\u{7}tab\t"),
                Value::Float(f64::NAN),
            ]],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "{\"a\":0,\"b\":\"bell\\u0007tab\\t\",\"c\":null}\n");
    }
}
