//! Minimal CSV import/export for relations (no external dependencies).
//!
//! The dialect: comma separator, `"`-quoted fields with `""` escapes, a
//! header row of column names, and the literal token `NULL` (unquoted) for
//! SQL NULL. Typed parsing is driven by the [`TableSchema`].

use crate::error::StorageError;
use crate::schema::TableSchema;
use crate::table::Table;
use crate::value::{DataType, Value};
use std::io::{BufRead, Write};

/// Split one CSV record into fields, honouring quotes.
fn split_record(line: &str, line_no: usize) -> Result<Vec<(String, bool)>, StorageError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => cur.push(c),
            }
        } else {
            match c {
                '"' if cur.is_empty() => {
                    in_quotes = true;
                    quoted = true;
                }
                ',' => {
                    fields.push((std::mem::take(&mut cur), quoted));
                    quoted = false;
                }
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(StorageError::Csv(line_no, "unterminated quote".into()));
    }
    fields.push((cur, quoted));
    Ok(fields)
}

fn parse_field(
    raw: &str,
    quoted: bool,
    dtype: DataType,
    line_no: usize,
) -> Result<Value, StorageError> {
    if !quoted && raw == "NULL" {
        return Ok(Value::Null);
    }
    match dtype {
        DataType::Int => raw
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| StorageError::Csv(line_no, format!("bad int {raw:?}: {e}"))),
        DataType::Float => raw
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|e| StorageError::Csv(line_no, format!("bad float {raw:?}: {e}"))),
        DataType::Str => Ok(Value::str(raw)),
    }
}

/// Read a table from CSV with a header row matching `schema`'s column names.
pub fn read_csv<R: BufRead>(schema: TableSchema, reader: R) -> Result<Table, StorageError> {
    let mut lines = reader.lines().enumerate();
    let header = match lines.next() {
        Some((_, Ok(h))) => h,
        Some((_, Err(e))) => return Err(StorageError::Csv(1, e.to_string())),
        None => return Err(StorageError::Csv(1, "empty input".into())),
    };
    let header_fields = split_record(&header, 1)?;
    if header_fields.len() != schema.arity() {
        return Err(StorageError::Csv(
            1,
            format!(
                "header has {} fields, schema has {}",
                header_fields.len(),
                schema.arity()
            ),
        ));
    }
    for ((name, _), decl) in header_fields.iter().zip(&schema.columns) {
        if name != &decl.name {
            return Err(StorageError::Csv(
                1,
                format!(
                    "header field {name:?} does not match column {:?}",
                    decl.name
                ),
            ));
        }
    }

    let mut rows = Vec::new();
    for (i, line) in lines {
        let line_no = i + 1;
        let line = line.map_err(|e| StorageError::Csv(line_no, e.to_string()))?;
        if line.is_empty() {
            continue;
        }
        let fields = split_record(&line, line_no)?;
        if fields.len() != schema.arity() {
            return Err(StorageError::Csv(
                line_no,
                format!("expected {} fields, got {}", schema.arity(), fields.len()),
            ));
        }
        let row: Result<Vec<Value>, _> = fields
            .iter()
            .zip(&schema.columns)
            .map(|((raw, quoted), decl)| parse_field(raw, *quoted, decl.dtype, line_no))
            .collect();
        rows.push(row?);
    }
    Table::from_rows(schema, &rows)
}

fn needs_quoting(s: &str) -> bool {
    s == "NULL" || s.contains([',', '"', '\n'])
}

/// Incremental CSV writer: header on construction, then one record at a
/// time. This is the streaming seam the serving layer's chunked export
/// builds on — rows flow straight through to the underlying [`Write`]
/// (e.g. an HTTP chunked-encoding adapter), so memory stays bounded
/// regardless of how many rows are written.
///
/// [`write_csv`] is the convenience wrapper for whole in-memory tables.
pub struct CsvWriter<W: Write> {
    writer: W,
}

impl<W: Write> CsvWriter<W> {
    /// Write the header row for `schema` and return the writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(schema: &TableSchema, mut writer: W) -> std::io::Result<Self> {
        let header: Vec<&str> = schema.columns.iter().map(|c| c.name.as_str()).collect();
        writeln!(writer, "{}", header.join(","))?;
        Ok(CsvWriter { writer })
    }

    /// Write one record (the caller guarantees arity matches the schema).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_row(&mut self, row: &[Value]) -> std::io::Result<()> {
        let mut first = true;
        for v in row {
            if !first {
                write!(self.writer, ",")?;
            }
            first = false;
            match v {
                Value::Null => write!(self.writer, "NULL")?,
                Value::Int(x) => write!(self.writer, "{x}")?,
                Value::Float(x) => write!(self.writer, "{x}")?,
                Value::Str(s) => {
                    if needs_quoting(s) {
                        write!(self.writer, "\"{}\"", s.replace('"', "\"\""))?;
                    } else {
                        write!(self.writer, "{s}")?;
                    }
                }
            }
        }
        writeln!(self.writer)
    }

    /// Flush and hand back the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

/// Write a table as CSV (header row + one record per row), streaming row
/// by row through [`CsvWriter`].
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_csv<W: Write>(table: &Table, writer: &mut W) -> std::io::Result<()> {
    let mut csv = CsvWriter::new(table.schema(), writer)?;
    for row in table.iter_rows() {
        csv.write_row(&row)?;
    }
    csv.finish()?;
    Ok(())
}

/// Durably write a table as CSV to `path` through a [`sam_fault::FaultFs`]:
/// the bytes go to a `.tmp` sibling, are fsynced, and renamed into place —
/// a crash at any instant leaves either the old file (or nothing) or the
/// complete new CSV, never a torn one. Crash points: `csv.pre_write` plus
/// the generic `atomic.*` points inside the commit protocol.
///
/// # Errors
///
/// Propagates I/O errors (including injected faults) from the filesystem.
pub fn write_csv_atomic(
    table: &Table,
    path: &std::path::Path,
    fs: &dyn sam_fault::FaultFs,
) -> std::io::Result<()> {
    let mut buf = Vec::new();
    write_csv(table, &mut buf)?;
    sam_fault::crash_point("csv.pre_write");
    sam_fault::write_atomic(fs, path, &buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn schema() -> TableSchema {
        TableSchema::new(
            "T",
            vec![
                ColumnDef::content("a", DataType::Int),
                ColumnDef::content("b", DataType::Str),
                ColumnDef::content("c", DataType::Float),
            ],
        )
    }

    #[test]
    fn round_trip() {
        let t = Table::from_rows(
            schema(),
            &[
                vec![Value::Int(1), Value::str("hello"), Value::Float(1.5)],
                vec![Value::Null, Value::str("a,b"), Value::Float(-2.0)],
                vec![Value::Int(3), Value::str("say \"hi\""), Value::Null],
                vec![Value::Int(4), Value::str("NULL"), Value::Float(0.0)],
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(schema(), buf.as_slice()).unwrap();
        assert_eq!(back.num_rows(), 4);
        for r in 0..4 {
            assert_eq!(back.row(r), t.row(r));
        }
        // The quoted string "NULL" survives as a string, not SQL NULL.
        assert_eq!(back.value(3, 1), Value::str("NULL"));
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_csv(schema(), "x,y,z\n".as_bytes()).unwrap_err();
        assert!(matches!(err, StorageError::Csv(1, _)));
    }

    #[test]
    fn rejects_bad_arity() {
        let err = read_csv(schema(), "a,b,c\n1,2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, StorageError::Csv(2, _)));
    }

    #[test]
    fn rejects_bad_int() {
        let err = read_csv(schema(), "a,b,c\nxx,s,1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, StorageError::Csv(2, _)));
    }

    #[test]
    fn rejects_unterminated_quote() {
        let err = read_csv(schema(), "a,b,c\n1,\"oops,2.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, StorageError::Csv(2, _)));
    }

    #[test]
    fn skips_blank_lines() {
        let t = read_csv(schema(), "a,b,c\n1,x,2.0\n\n2,y,3.0\n".as_bytes()).unwrap();
        assert_eq!(t.num_rows(), 2);
    }
}
