//! Logical schemas: columns, tables, foreign-key edges, databases.

use crate::error::StorageError;
use crate::value::DataType;
use std::fmt;

/// The role a column plays in its table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnRole {
    /// A value attribute; the only kind queries may filter (paper §2.2).
    Content,
    /// The table's primary key (at most one per table).
    PrimaryKey,
    /// A foreign key referencing `references`' primary key.
    ForeignKey {
        /// Name of the referenced (primary-key) table.
        references: String,
    },
}

/// Definition of one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name, unique within its table.
    pub name: String,
    /// Logical data type.
    pub dtype: DataType,
    /// Role (content / pk / fk).
    pub role: ColumnRole,
}

impl ColumnDef {
    /// A content (value) column.
    pub fn content(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            dtype,
            role: ColumnRole::Content,
        }
    }

    /// An integer primary-key column.
    pub fn primary_key(name: impl Into<String>) -> Self {
        ColumnDef {
            name: name.into(),
            dtype: DataType::Int,
            role: ColumnRole::PrimaryKey,
        }
    }

    /// An integer foreign-key column referencing `references`.
    pub fn foreign_key(name: impl Into<String>, references: impl Into<String>) -> Self {
        ColumnDef {
            name: name.into(),
            dtype: DataType::Int,
            role: ColumnRole::ForeignKey {
                references: references.into(),
            },
        }
    }
}

/// Schema of one relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Relation name, unique within the database.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Create a table schema.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        TableSchema {
            name: name.into(),
            columns,
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the column named `name`.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Index of the primary-key column, if declared.
    pub fn pk_index(&self) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.role == ColumnRole::PrimaryKey)
    }

    /// Indices of foreign-key columns together with the referenced table.
    pub fn fk_indices(&self) -> Vec<(usize, &str)> {
        self.columns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| match &c.role {
                ColumnRole::ForeignKey { references } => Some((i, references.as_str())),
                _ => None,
            })
            .collect()
    }

    /// Indices of content columns.
    pub fn content_indices(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.role == ColumnRole::Content)
            .map(|(i, _)| i)
            .collect()
    }
}

/// A foreign-key join edge: `fk_table.fk_column` references
/// `pk_table`'s primary key. In the paper's join graph the edge is directed
/// `pk_table -> fk_table`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKeyEdge {
    /// Table owning the referenced primary key.
    pub pk_table: String,
    /// Table owning the foreign-key column.
    pub fk_table: String,
    /// Name of the foreign-key column in `fk_table`.
    pub fk_column: String,
}

impl fmt::Display for ForeignKeyEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {}.{}",
            self.pk_table, self.fk_table, self.fk_column
        )
    }
}

/// Schema of a whole database: tables plus foreign-key edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatabaseSchema {
    tables: Vec<TableSchema>,
    edges: Vec<ForeignKeyEdge>,
}

impl DatabaseSchema {
    /// Single-relation database schema (no joins).
    pub fn single(table: TableSchema) -> Self {
        DatabaseSchema {
            tables: vec![table],
            edges: vec![],
        }
    }

    /// Multi-relation schema. Validates that every edge references declared
    /// tables and a declared fk column, and that referenced tables have a
    /// primary key.
    pub fn new(tables: Vec<TableSchema>, edges: Vec<ForeignKeyEdge>) -> Result<Self, StorageError> {
        let schema = DatabaseSchema { tables, edges };
        for e in &schema.edges {
            let pk = schema
                .table(&e.pk_table)
                .ok_or_else(|| StorageError::UnknownTable(e.pk_table.clone()))?;
            if pk.pk_index().is_none() {
                return Err(StorageError::SchemaViolation(format!(
                    "table {} is referenced by {} but has no primary key",
                    e.pk_table, e
                )));
            }
            let fk = schema
                .table(&e.fk_table)
                .ok_or_else(|| StorageError::UnknownTable(e.fk_table.clone()))?;
            match fk.column_index(&e.fk_column) {
                Some(i) => {
                    let role = &fk.columns[i].role;
                    let ok = matches!(role, ColumnRole::ForeignKey { references } if *references == e.pk_table);
                    if !ok {
                        return Err(StorageError::SchemaViolation(format!(
                            "column {}.{} is not a foreign key to {}",
                            e.fk_table, e.fk_column, e.pk_table
                        )));
                    }
                }
                None => {
                    return Err(StorageError::UnknownColumn(
                        e.fk_table.clone(),
                        e.fk_column.clone(),
                    ))
                }
            }
        }
        Ok(schema)
    }

    /// All tables in declaration order.
    pub fn tables(&self) -> &[TableSchema] {
        &self.tables
    }

    /// All foreign-key edges.
    pub fn edges(&self) -> &[ForeignKeyEdge] {
        &self.edges
    }

    /// Look up a table schema by name.
    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Index of a table in declaration order.
    pub fn table_index(&self, name: &str) -> Option<usize> {
        self.tables.iter().position(|t| t.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_schema() -> DatabaseSchema {
        let a = TableSchema::new(
            "A",
            vec![
                ColumnDef::primary_key("x"),
                ColumnDef::content("a", DataType::Str),
            ],
        );
        let b = TableSchema::new(
            "B",
            vec![
                ColumnDef::foreign_key("x", "A"),
                ColumnDef::content("b", DataType::Str),
            ],
        );
        DatabaseSchema::new(
            vec![a, b],
            vec![ForeignKeyEdge {
                pk_table: "A".into(),
                fk_table: "B".into(),
                fk_column: "x".into(),
            }],
        )
        .unwrap()
    }

    #[test]
    fn builds_and_indexes() {
        let s = star_schema();
        assert_eq!(s.tables().len(), 2);
        assert_eq!(s.table_index("B"), Some(1));
        let a = s.table("A").unwrap();
        assert_eq!(a.pk_index(), Some(0));
        assert_eq!(a.content_indices(), vec![1]);
        let b = s.table("B").unwrap();
        assert_eq!(b.fk_indices(), vec![(0, "A")]);
    }

    #[test]
    fn rejects_edge_to_unknown_table() {
        let a = TableSchema::new("A", vec![ColumnDef::primary_key("x")]);
        let err = DatabaseSchema::new(
            vec![a],
            vec![ForeignKeyEdge {
                pk_table: "A".into(),
                fk_table: "Z".into(),
                fk_column: "x".into(),
            }],
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::UnknownTable(_)));
    }

    #[test]
    fn rejects_edge_without_pk() {
        let a = TableSchema::new("A", vec![ColumnDef::content("a", DataType::Int)]);
        let b = TableSchema::new("B", vec![ColumnDef::foreign_key("x", "A")]);
        let err = DatabaseSchema::new(
            vec![a, b],
            vec![ForeignKeyEdge {
                pk_table: "A".into(),
                fk_table: "B".into(),
                fk_column: "x".into(),
            }],
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::SchemaViolation(_)));
    }

    #[test]
    fn rejects_non_fk_column_edge() {
        let a = TableSchema::new("A", vec![ColumnDef::primary_key("x")]);
        let b = TableSchema::new("B", vec![ColumnDef::content("x", DataType::Int)]);
        let err = DatabaseSchema::new(
            vec![a, b],
            vec![ForeignKeyEdge {
                pk_table: "A".into(),
                fk_table: "B".into(),
                fk_column: "x".into(),
            }],
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::SchemaViolation(_)));
    }
}
