//! Dictionary-encoded columns.

use crate::domain::{Domain, NULL_CODE};
use crate::value::Value;
use std::sync::Arc;

/// A dictionary-encoded column: a shared [`Domain`] plus one `u32` code per
/// row ([`NULL_CODE`] encodes SQL NULL).
#[derive(Debug, Clone)]
pub struct Column {
    domain: Arc<Domain>,
    codes: Vec<u32>,
}

impl Column {
    /// Build from a domain and codes.
    ///
    /// # Panics
    /// Panics (debug builds) if any non-NULL code is out of domain range.
    pub fn new(domain: Arc<Domain>, codes: Vec<u32>) -> Self {
        debug_assert!(codes
            .iter()
            .all(|&c| c == NULL_CODE || (c as usize) < domain.len()));
        Column { domain, codes }
    }

    /// Build from raw values, deriving the domain from the distinct values.
    pub fn from_values(values: &[Value]) -> Self {
        let domain = Domain::new(values.to_vec()).shared();
        let codes = values
            .iter()
            .map(|v| {
                if v.is_null() {
                    NULL_CODE
                } else {
                    domain.code_of(v).expect("value must be in derived domain")
                }
            })
            .collect();
        Column { domain, codes }
    }

    /// Build from raw values against a pre-existing (possibly wider) domain.
    ///
    /// Returns `None` if some non-null value is absent from `domain`.
    pub fn from_values_with_domain(values: &[Value], domain: Arc<Domain>) -> Option<Self> {
        let mut codes = Vec::with_capacity(values.len());
        for v in values {
            if v.is_null() {
                codes.push(NULL_CODE);
            } else {
                codes.push(domain.code_of(v)?);
            }
        }
        Some(Column { domain, codes })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The column's dictionary.
    pub fn domain(&self) -> &Arc<Domain> {
        &self.domain
    }

    /// The raw code for a row.
    pub fn code(&self, row: usize) -> u32 {
        self.codes[row]
    }

    /// All raw codes.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The decoded value for a row (NULL-aware).
    pub fn value(&self, row: usize) -> Value {
        let c = self.codes[row];
        if c == NULL_CODE {
            Value::Null
        } else {
            self.domain.value(c).clone()
        }
    }

    /// Iterate decoded values.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        self.codes.iter().map(move |&c| {
            if c == NULL_CODE {
                Value::Null
            } else {
                self.domain.value(c).clone()
            }
        })
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.codes.iter().filter(|&&c| c == NULL_CODE).count()
    }

    /// Gather rows by index into a new column sharing the same domain.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather(&self, rows: &[usize]) -> Column {
        Column {
            domain: Arc::clone(&self.domain),
            codes: rows.iter().map(|&r| self.codes[r]).collect(),
        }
    }

    /// Append a decoded value, which must already be in the domain.
    ///
    /// # Panics
    /// Panics if the value is non-null and absent from the domain.
    pub fn push_value(&mut self, v: &Value) {
        if v.is_null() {
            self.codes.push(NULL_CODE);
        } else {
            let c = self
                .domain
                .code_of(v)
                .expect("pushed value must be in column domain");
            self.codes.push(c);
        }
    }

    /// Append a raw code.
    pub fn push_code(&mut self, code: u32) {
        debug_assert!(code == NULL_CODE || (code as usize) < self.domain.len());
        self.codes.push(code);
    }

    /// Per-code occurrence counts (`counts[code]`), ignoring NULLs.
    pub fn histogram(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.domain.len()];
        for &c in &self.codes {
            if c != NULL_CODE {
                counts[c as usize] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals() -> Vec<Value> {
        vec![
            Value::Int(3),
            Value::Int(1),
            Value::Null,
            Value::Int(3),
            Value::Int(7),
        ]
    }

    #[test]
    fn from_values_round_trips() {
        let vs = vals();
        let c = Column::from_values(&vs);
        assert_eq!(c.len(), 5);
        for (i, v) in vs.iter().enumerate() {
            assert_eq!(&c.value(i), v);
        }
    }

    #[test]
    fn null_handling() {
        let c = Column::from_values(&vals());
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.code(2), NULL_CODE);
        assert!(c.value(2).is_null());
        // NULL is not a dictionary entry.
        assert_eq!(c.domain().len(), 3);
    }

    #[test]
    fn histogram_counts_occurrences() {
        let c = Column::from_values(&vals()); // domain: 1, 3, 7
        assert_eq!(c.histogram(), vec![1, 2, 1]);
    }

    #[test]
    fn gather_preserves_domain_and_values() {
        let c = Column::from_values(&vals());
        let g = c.gather(&[4, 0, 2]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.value(0), Value::Int(7));
        assert_eq!(g.value(1), Value::Int(3));
        assert!(g.value(2).is_null());
        assert!(Arc::ptr_eq(g.domain(), c.domain()));
    }

    #[test]
    fn from_values_with_domain_rejects_unknown() {
        let wide = Domain::int_range(0, 10).shared();
        let ok = Column::from_values_with_domain(&[Value::Int(2)], Arc::clone(&wide));
        assert!(ok.is_some());
        let bad = Column::from_values_with_domain(&[Value::Int(99)], wide);
        assert!(bad.is_none());
    }

    #[test]
    fn push_value_and_code() {
        let mut c = Column::from_values(&vals());
        c.push_value(&Value::Int(1));
        c.push_value(&Value::Null);
        assert_eq!(c.len(), 7);
        assert_eq!(c.value(5), Value::Int(1));
        assert!(c.value(6).is_null());
    }
}
