//! The worked example from Figure 3 of the paper, used as a shared fixture.
//!
//! Relation `A` (pk `x`, content `a`) is joined by `B` and `C` through fk
//! column `x`:
//!
//! ```text
//! A: (1,m) (2,m) (3,n) (4,n)
//! B: (1,a) (2,b) (2,c)
//! C: (1,i) (1,j) (2,i) (2,j)
//! ```
//!
//! The full outer join has 8 rows: tuple `(1,m)` is fanned out twice (two `C`
//! matches), `(2,m)` four times (two `B` × two `C` matches), and `(3,n)`,
//! `(4,n)` appear once each with NULL `B`/`C` sides — exactly the numbers the
//! paper's inverse-probability-weighting walkthrough relies on.

use crate::database::Database;
use crate::schema::{ColumnDef, DatabaseSchema, ForeignKeyEdge, TableSchema};
use crate::table::Table;
use crate::value::{DataType, Value};

/// Schema of the Figure 3 database (`A -> {B, C}` star).
pub fn figure3_schema() -> DatabaseSchema {
    let a = TableSchema::new(
        "A",
        vec![
            ColumnDef::primary_key("x"),
            ColumnDef::content("a", DataType::Str),
        ],
    );
    let b = TableSchema::new(
        "B",
        vec![
            ColumnDef::foreign_key("x", "A"),
            ColumnDef::content("b", DataType::Str),
        ],
    );
    let c = TableSchema::new(
        "C",
        vec![
            ColumnDef::foreign_key("x", "A"),
            ColumnDef::content("c", DataType::Str),
        ],
    );
    DatabaseSchema::new(
        vec![a, b, c],
        vec![
            ForeignKeyEdge {
                pk_table: "A".into(),
                fk_table: "B".into(),
                fk_column: "x".into(),
            },
            ForeignKeyEdge {
                pk_table: "A".into(),
                fk_table: "C".into(),
                fk_column: "x".into(),
            },
        ],
    )
    .expect("figure 3 schema is valid")
}

/// The Figure 3 database instance.
pub fn figure3_database() -> Database {
    let schema = figure3_schema();
    let a = Table::from_rows(
        schema.table("A").unwrap().clone(),
        &[
            vec![Value::Int(1), Value::str("m")],
            vec![Value::Int(2), Value::str("m")],
            vec![Value::Int(3), Value::str("n")],
            vec![Value::Int(4), Value::str("n")],
        ],
    )
    .unwrap();
    let b = Table::from_rows(
        schema.table("B").unwrap().clone(),
        &[
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(2), Value::str("b")],
            vec![Value::Int(2), Value::str("c")],
        ],
    )
    .unwrap();
    let c = Table::from_rows(
        schema.table("C").unwrap().clone(),
        &[
            vec![Value::Int(1), Value::str("i")],
            vec![Value::Int(1), Value::str("j")],
            vec![Value::Int(2), Value::str("i")],
            vec![Value::Int(2), Value::str("j")],
        ],
    )
    .unwrap();
    Database::new(schema, vec![a, b, c], true).expect("figure 3 instance is consistent")
}
