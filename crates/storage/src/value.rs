//! Scalar values and data types.
//!
//! Every cell in a relation is a [`Value`]. Columns are dictionary-encoded
//! (see [`crate::domain`]), so `Value` comparisons and hashing must be total:
//! floats are ordered with [`f64::total_cmp`] and hashed by bit pattern.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The logical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integers (also used for dates encoded as days, booleans, …).
    Int,
    /// 64-bit IEEE floats with total ordering.
    Float,
    /// Interned UTF-8 strings.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "TEXT"),
        }
    }
}

/// A single scalar value.
///
/// `Null` sorts before every non-null value; across types the order is
/// `Int < Float < Str` (mixed-type columns never occur in practice, but the
/// ordering must still be total for dictionary encoding).
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL (appears in full-outer-join results for non-matching rows).
    Null,
    /// Integer value.
    Int(i64),
    /// Floating-point value.
    Float(f64),
    /// String value (cheaply cloneable).
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The [`DataType`] of a non-null value; `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// Interpret the value as `i64`, if it is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret the value as `f64` (integers are widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret the value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            // Mixed types / NULL: order by type rank so the order stays total.
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Int(v) => v.hash(state),
            Value::Float(v) => v.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Float(f64::NEG_INFINITY));
        assert!(Value::Null < Value::str(""));
    }

    #[test]
    fn int_ordering() {
        assert!(Value::Int(-5) < Value::Int(3));
        assert_eq!(Value::Int(7), Value::Int(7));
    }

    #[test]
    fn float_total_ordering_handles_nan() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Float(1.0) < nan);
    }

    #[test]
    fn string_ordering_is_lexicographic() {
        assert!(Value::str("abc") < Value::str("abd"));
        assert_eq!(Value::str("x"), Value::str("x"));
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::Int(42)), hash_of(&Value::Int(42)));
        assert_eq!(hash_of(&Value::str("hi")), hash_of(&Value::str("hi")));
        assert_eq!(hash_of(&Value::Float(2.5)), hash_of(&Value::Float(2.5)));
    }

    #[test]
    fn data_type_accessors() {
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::str("a").as_str(), Some("a"));
        assert!(Value::Null.is_null());
    }

    #[test]
    fn display_round_trips_readably() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::str("q").to_string(), "'q'");
    }
}
