//! Sorted dictionaries of distinct column values.
//!
//! Every column stores `u32` *codes* into a [`Domain`]: the sorted list of the
//! column's distinct values. Because the domain is sorted, a range predicate
//! on values maps to a contiguous code interval — the representation both the
//! query evaluator and the autoregressive model operate on.

use crate::value::Value;
use std::sync::Arc;

/// Sentinel code representing SQL NULL inside dictionary-encoded columns.
pub const NULL_CODE: u32 = u32::MAX;

/// A sorted, deduplicated dictionary of non-null values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    values: Vec<Value>,
}

impl Domain {
    /// Build a domain from arbitrary values (sorted and deduplicated; NULLs
    /// are dropped — NULL is represented by [`NULL_CODE`], not a dictionary
    /// entry).
    pub fn new(mut values: Vec<Value>) -> Self {
        values.retain(|v| !v.is_null());
        values.sort_unstable();
        values.dedup();
        Domain { values }
    }

    /// Domain of consecutive integers `lo..=hi`.
    pub fn int_range(lo: i64, hi: i64) -> Self {
        Domain {
            values: (lo..=hi).map(Value::Int).collect(),
        }
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff the domain holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The sorted values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at `code`.
    ///
    /// # Panics
    /// Panics if `code` is out of range (including [`NULL_CODE`]).
    pub fn value(&self, code: u32) -> &Value {
        &self.values[code as usize]
    }

    /// The code of `v`, if the exact value is in the dictionary.
    pub fn code_of(&self, v: &Value) -> Option<u32> {
        self.values.binary_search(v).ok().map(|i| i as u32)
    }

    /// Codes whose values satisfy `value <= bound`, as a half-open code range.
    pub fn codes_le(&self, bound: &Value) -> std::ops::Range<u32> {
        let end = self.values.partition_point(|v| v <= bound);
        0..end as u32
    }

    /// Codes whose values satisfy `value < bound`.
    pub fn codes_lt(&self, bound: &Value) -> std::ops::Range<u32> {
        let end = self.values.partition_point(|v| v < bound);
        0..end as u32
    }

    /// Codes whose values satisfy `value >= bound`.
    pub fn codes_ge(&self, bound: &Value) -> std::ops::Range<u32> {
        let start = self.values.partition_point(|v| v < bound);
        start as u32..self.values.len() as u32
    }

    /// Codes whose values satisfy `value > bound`.
    pub fn codes_gt(&self, bound: &Value) -> std::ops::Range<u32> {
        let start = self.values.partition_point(|v| v <= bound);
        start as u32..self.values.len() as u32
    }

    /// Smallest value, if any.
    pub fn min(&self) -> Option<&Value> {
        self.values.first()
    }

    /// Largest value, if any.
    pub fn max(&self) -> Option<&Value> {
        self.values.last()
    }

    /// Wrap in an [`Arc`] for sharing between columns and models.
    pub fn shared(self) -> Arc<Domain> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom() -> Domain {
        Domain::new(vec![
            Value::Int(5),
            Value::Int(1),
            Value::Int(3),
            Value::Int(3),
            Value::Null,
        ])
    }

    #[test]
    fn builds_sorted_deduped_without_nulls() {
        let d = dom();
        assert_eq!(d.len(), 3);
        assert_eq!(d.values(), &[Value::Int(1), Value::Int(3), Value::Int(5)]);
    }

    #[test]
    fn code_round_trip() {
        let d = dom();
        for (i, v) in d.values().iter().enumerate() {
            assert_eq!(d.code_of(v), Some(i as u32));
            assert_eq!(d.value(i as u32), v);
        }
        assert_eq!(d.code_of(&Value::Int(2)), None);
    }

    #[test]
    fn range_code_mapping() {
        let d = dom(); // values 1, 3, 5 at codes 0, 1, 2
        assert_eq!(d.codes_le(&Value::Int(3)), 0..2);
        assert_eq!(d.codes_lt(&Value::Int(3)), 0..1);
        assert_eq!(d.codes_ge(&Value::Int(3)), 1..3);
        assert_eq!(d.codes_gt(&Value::Int(3)), 2..3);
        // Bounds not present in the dictionary still partition correctly.
        assert_eq!(d.codes_le(&Value::Int(4)), 0..2);
        assert_eq!(d.codes_ge(&Value::Int(0)), 0..3);
        assert_eq!(d.codes_ge(&Value::Int(6)), 3..3);
    }

    #[test]
    fn int_range_constructor() {
        let d = Domain::int_range(2, 4);
        assert_eq!(d.len(), 3);
        assert_eq!(d.value(0), &Value::Int(2));
        assert_eq!(d.value(2), &Value::Int(4));
    }

    #[test]
    fn min_max() {
        let d = dom();
        assert_eq!(d.min(), Some(&Value::Int(1)));
        assert_eq!(d.max(), Some(&Value::Int(5)));
        assert_eq!(Domain::new(vec![]).min(), None);
    }
}
