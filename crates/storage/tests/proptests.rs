//! Property-based tests for the storage substrate.

use proptest::prelude::*;
use sam_storage::{csv, ColumnDef, DataType, Domain, Table, TableSchema, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        3 => any::<i64>().prop_map(Value::Int),
        1 => Just(Value::Null),
    ]
}

fn arb_string_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        4 => "[a-z,\"\n ]{0,12}".prop_map(Value::str),
        1 => Just(Value::str("NULL")), // the tricky literal
        1 => Just(Value::Null),
    ]
}

proptest! {
    /// Dictionary round trip: every value encodes to a code that decodes
    /// back to itself.
    #[test]
    fn domain_round_trip(values in prop::collection::vec(arb_value(), 0..50)) {
        let domain = Domain::new(values.clone());
        for v in values.iter().filter(|v| !v.is_null()) {
            let code = domain.code_of(v).expect("value present");
            prop_assert_eq!(domain.value(code), v);
        }
        // Sortedness.
        let vs = domain.values();
        for w in vs.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Range code sets agree with a linear scan for every bound.
    #[test]
    fn range_codes_agree_with_scan(
        values in prop::collection::vec(any::<i64>().prop_map(Value::Int), 1..40),
        bound in any::<i64>().prop_map(Value::Int),
    ) {
        let domain = Domain::new(values);
        let le = domain.codes_le(&bound);
        let expect = domain.values().iter().filter(|v| **v <= bound).count();
        prop_assert_eq!(le.len(), expect);
        let gt = domain.codes_gt(&bound);
        prop_assert_eq!(gt.len(), domain.len() - expect);
    }

    /// CSV round trip over mixed int/string tables with NULLs, quotes,
    /// commas, and the literal string "NULL".
    #[test]
    fn csv_round_trip(
        rows in prop::collection::vec((arb_value(), arb_string_value()), 0..30)
    ) {
        let schema = TableSchema::new(
            "T",
            vec![
                ColumnDef::content("a", DataType::Int),
                ColumnDef::content("b", DataType::Str),
            ],
        );
        let data: Vec<Vec<Value>> = rows.into_iter().map(|(a, b)| vec![a, b]).collect();
        // Skip rows with embedded newlines in strings — our CSV dialect is
        // line-oriented (documented limitation).
        let data: Vec<Vec<Value>> = data
            .into_iter()
            .filter(|r| r[1].as_str().is_none_or(|s| !s.contains('\n')))
            .collect();
        let table = Table::from_rows(schema.clone(), &data).unwrap();
        let mut buf = Vec::new();
        csv::write_csv(&table, &mut buf).unwrap();
        let back = csv::read_csv(schema, buf.as_slice()).unwrap();
        prop_assert_eq!(back.num_rows(), table.num_rows());
        for r in 0..table.num_rows() {
            prop_assert_eq!(back.row(r), table.row(r));
        }
    }

    /// Gather then gather composes.
    #[test]
    fn gather_composes(
        values in prop::collection::vec(any::<i64>().prop_map(Value::Int), 1..30),
        picks in prop::collection::vec(any::<prop::sample::Index>(), 1..10),
    ) {
        let schema = TableSchema::new("T", vec![ColumnDef::content("a", DataType::Int)]);
        let rows: Vec<Vec<Value>> = values.iter().map(|v| vec![v.clone()]).collect();
        let table = Table::from_rows(schema, &rows).unwrap();
        let idx: Vec<usize> = picks.iter().map(|p| p.index(table.num_rows())).collect();
        let gathered = table.gather(&idx);
        for (out_row, &src) in idx.iter().enumerate() {
            prop_assert_eq!(gathered.row(out_row), table.row(src));
        }
    }
}
