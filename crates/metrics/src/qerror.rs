//! Q-Error (Moerkotte et al. \[25\]) — the paper's fidelity metric.

/// `Q-Error(est, truth) = max(est/truth, truth/est)` with both sides clamped
/// to at least 1 (the convention learned-cardinality papers use so empty
/// results do not divide by zero).
pub fn q_error(estimate: f64, truth: f64) -> f64 {
    let e = estimate.max(1.0);
    let t = truth.max(1.0);
    (e / t).max(t / e)
}

/// Q-Errors for paired (estimate, truth) slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn q_errors(estimates: &[f64], truths: &[f64]) -> Vec<f64> {
    assert_eq!(estimates.len(), truths.len(), "paired slices required");
    estimates
        .iter()
        .zip(truths)
        .map(|(&e, &t)| q_error(e, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_and_at_least_one() {
        assert_eq!(q_error(10.0, 100.0), 10.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(42.0, 42.0), 1.0);
    }

    #[test]
    fn zero_clamps_to_one() {
        assert_eq!(q_error(0.0, 5.0), 5.0);
        assert_eq!(q_error(5.0, 0.0), 5.0);
        assert_eq!(q_error(0.0, 0.0), 1.0);
    }

    #[test]
    fn batch_matches_scalar() {
        let e = [1.0, 10.0, 100.0];
        let t = [2.0, 10.0, 1.0];
        assert_eq!(q_errors(&e, &t), vec![2.0, 1.0, 100.0]);
    }
}
