//! Percentile summaries and plain-text table rendering in the paper's
//! format (Median / 75th / 90th / Mean / Max).

/// Percentile summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// 50th percentile.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
    /// Sample count.
    pub count: usize,
}

impl Percentiles {
    /// Compute from raw values (NaNs are dropped; empty input yields NaNs).
    pub fn from_values(values: &[f64]) -> Self {
        let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return Percentiles {
                median: f64::NAN,
                p75: f64::NAN,
                p90: f64::NAN,
                p95: f64::NAN,
                mean: f64::NAN,
                max: f64::NAN,
                count: 0,
            };
        }
        v.sort_unstable_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| -> f64 {
            // Nearest-rank with linear interpolation.
            let rank = p * (v.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            if lo == hi {
                v[lo]
            } else {
                let f = rank - lo as f64;
                v[lo] * (1.0 - f) + v[hi] * f
            }
        };
        Percentiles {
            median: pct(0.50),
            p75: pct(0.75),
            p90: pct(0.90),
            p95: pct(0.95),
            mean: v.iter().sum::<f64>() / v.len() as f64,
            max: *v.last().expect("non-empty"),
            count: v.len(),
        }
    }

    /// The paper's standard row: `[median, 75th, 90th, mean, max]`.
    pub fn paper_row(&self) -> [f64; 5] {
        [self.median, self.p75, self.p90, self.mean, self.max]
    }
}

/// Format a value the way the paper's tables do: two decimals below 100,
/// scientific beyond 10⁴.
pub fn format_paper(v: f64) -> String {
    if !v.is_finite() {
        return "-".into();
    }
    let a = v.abs();
    if a >= 1e4 {
        format!("{:.0e}", v)
    } else if a >= 100.0 {
        format!("{:.1}", v)
    } else {
        format!("{:.2}", v)
    }
}

/// Render an aligned plain-text table: a header row plus labelled rows.
pub fn render_table(title: &str, header: &[&str], rows: &[(String, Vec<f64>)]) -> String {
    let mut cells: Vec<Vec<String>> = Vec::new();
    let mut head: Vec<String> = vec!["Model".to_string()];
    head.extend(header.iter().map(|s| s.to_string()));
    cells.push(head);
    for (label, values) in rows {
        let mut row = vec![label.clone()];
        row.extend(values.iter().map(|&v| format_paper(v)));
        cells.push(row);
    }
    let cols = cells.iter().map(Vec::len).max().unwrap_or(0);
    let widths: Vec<usize> = (0..cols)
        .map(|c| {
            cells
                .iter()
                .filter_map(|r| r.get(c))
                .map(String::len)
                .max()
                .unwrap_or(0)
        })
        .collect();
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    for (i, row) in cells.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(c, s)| format!("{:>width$}", s, width = widths[c]))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
        if i == 0 {
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_sample() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p = Percentiles::from_values(&v);
        assert!((p.median - 50.5).abs() < 1e-9);
        assert!((p.p90 - 90.1).abs() < 1e-9);
        assert!((p.mean - 50.5).abs() < 1e-9);
        assert_eq!(p.max, 100.0);
        assert_eq!(p.count, 100);
    }

    #[test]
    fn empty_and_nan_inputs() {
        let p = Percentiles::from_values(&[]);
        assert!(p.median.is_nan());
        assert_eq!(p.count, 0);
        let p = Percentiles::from_values(&[f64::NAN, 2.0]);
        assert_eq!(p.count, 1);
        assert_eq!(p.median, 2.0);
    }

    #[test]
    fn paper_formatting() {
        assert_eq!(format_paper(1.2345), "1.23");
        assert_eq!(format_paper(149.5), "149.5");
        assert_eq!(format_paper(2.0e6), "2e6");
        assert_eq!(format_paper(f64::NAN), "-");
    }

    #[test]
    fn table_renders_aligned() {
        let s = render_table(
            "Table X",
            &["Median", "Mean"],
            &[
                ("SAM".to_string(), vec![1.27, 1.8]),
                ("PGM".to_string(), vec![46.0, 1097.0]),
            ],
        );
        assert!(s.contains("Table X"));
        assert!(s.contains("SAM"));
        assert!(s.contains("1.27"));
        assert!(s.lines().count() >= 4);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Percentiles are ordered and bracket the mean.
        #[test]
        fn percentiles_are_monotone(values in prop::collection::vec(0.0f64..1e6, 1..200)) {
            let p = Percentiles::from_values(&values);
            prop_assert!(p.median <= p.p75 + 1e-9);
            prop_assert!(p.p75 <= p.p90 + 1e-9);
            prop_assert!(p.p90 <= p.p95 + 1e-9);
            prop_assert!(p.p95 <= p.max + 1e-9);
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            prop_assert!(p.mean >= min - 1e-9 && p.mean <= p.max + 1e-9);
            prop_assert_eq!(p.count, values.len());
        }

        /// Percentiles are permutation-invariant.
        #[test]
        fn permutation_invariant(mut values in prop::collection::vec(0.0f64..1e3, 2..100)) {
            let a = Percentiles::from_values(&values);
            values.reverse();
            let b = Percentiles::from_values(&values);
            prop_assert!((a.median - b.median).abs() < 1e-9);
            prop_assert!((a.mean - b.mean).abs() < 1e-9);
            prop_assert!((a.max - b.max).abs() < 1e-9);
        }

        /// Scaling the sample scales every statistic linearly.
        #[test]
        fn positive_scaling_commutes(values in prop::collection::vec(0.0f64..1e3, 1..100),
                                     k in 0.5f64..10.0) {
            let a = Percentiles::from_values(&values);
            let scaled: Vec<f64> = values.iter().map(|v| v * k).collect();
            let b = Percentiles::from_values(&scaled);
            prop_assert!((a.median * k - b.median).abs() < 1e-6 * (1.0 + b.median.abs()));
            prop_assert!((a.mean * k - b.mean).abs() < 1e-6 * (1.0 + b.mean.abs()));
        }
    }
}
