//! Cross entropy between original and generated relations (paper Eq 1).
//!
//! `H(T, T̂) = −E_{x∼T}[log₂ Ŝel(x)]` where `Ŝel(x)` is the selectivity of
//! tuple `x` in the generated relation. Tuples are compared on **content
//! columns only** (primary/foreign keys are synthetic identifiers whose raw
//! values carry no distributional meaning). Unseen tuples get add-one
//! (Laplace) smoothing over the generated relation's observed support —
//! without smoothing a single missing tuple would make the entropy infinite.

use sam_storage::{Table, Value};
use std::collections::HashMap;

fn content_tuple(table: &Table, row: usize) -> Vec<Value> {
    table
        .schema()
        .content_indices()
        .into_iter()
        .map(|c| table.value(row, c))
        .collect()
}

/// Cross entropy in bits between `original` and `generated` (same schema).
pub fn cross_entropy(original: &Table, generated: &Table) -> f64 {
    assert_eq!(
        original.schema().columns.len(),
        generated.schema().columns.len(),
        "schemas must match"
    );
    if original.num_rows() == 0 {
        return 0.0;
    }
    let mut counts: HashMap<Vec<Value>, u64> = HashMap::new();
    for r in 0..generated.num_rows() {
        *counts.entry(content_tuple(generated, r)).or_insert(0) += 1;
    }
    let support = counts.len().max(1) as f64;
    let denom = generated.num_rows() as f64 + support;

    let mut h = 0.0f64;
    for r in 0..original.num_rows() {
        let t = content_tuple(original, r);
        let c = counts.get(&t).copied().unwrap_or(0) as f64;
        let sel = (c + 1.0) / denom;
        h -= sel.log2();
    }
    h / original.num_rows() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_storage::{ColumnDef, DataType, TableSchema};

    fn table(rows: &[(i64, &str)]) -> Table {
        let schema = TableSchema::new(
            "T",
            vec![
                ColumnDef::content("a", DataType::Int),
                ColumnDef::content("b", DataType::Str),
            ],
        );
        let rows: Vec<Vec<Value>> = rows
            .iter()
            .map(|(a, b)| vec![Value::Int(*a), Value::str(*b)])
            .collect();
        Table::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn identical_tables_have_low_entropy() {
        let t = table(&[(1, "x"), (1, "x"), (2, "y"), (3, "z")]);
        let h_same = cross_entropy(&t, &t);
        let other = table(&[(9, "q"), (9, "q"), (9, "q"), (9, "q")]);
        let h_diff = cross_entropy(&t, &other);
        assert!(h_same < h_diff, "{h_same} !< {h_diff}");
    }

    #[test]
    fn entropy_is_finite_for_disjoint_supports() {
        let a = table(&[(1, "x")]);
        let b = table(&[(2, "y")]);
        let h = cross_entropy(&a, &b);
        assert!(h.is_finite());
        assert!(h > 0.0);
    }

    #[test]
    fn closer_distributions_score_lower() {
        let orig = table(&[(1, "x"), (1, "x"), (1, "x"), (2, "y")]);
        let close = table(&[(1, "x"), (1, "x"), (2, "y"), (2, "y")]);
        let far = table(&[(2, "y"), (2, "y"), (2, "y"), (2, "y")]);
        assert!(cross_entropy(&orig, &close) < cross_entropy(&orig, &far));
    }

    #[test]
    fn pk_columns_are_ignored() {
        let schema = TableSchema::new(
            "T",
            vec![
                ColumnDef::primary_key("id"),
                ColumnDef::content("a", DataType::Int),
            ],
        );
        let t1 = Table::from_rows(schema.clone(), &[vec![Value::Int(1), Value::Int(7)]]).unwrap();
        let t2 = Table::from_rows(schema, &[vec![Value::Int(999), Value::Int(7)]]).unwrap();
        // Same content, different pks → as good as identical.
        assert_eq!(cross_entropy(&t1, &t2), cross_entropy(&t1, &t1));
    }

    #[test]
    fn empty_original_is_zero() {
        let t = table(&[]);
        let g = table(&[(1, "x")]);
        assert_eq!(cross_entropy(&t, &g), 0.0);
    }
}
