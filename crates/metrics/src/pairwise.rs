//! Pairwise quantized cross entropy — the practical instantiation of Eq 1
//! at laptop scale.
//!
//! Eq 1 measures `−E_{x∼T}[log₂ Ŝel(x)]` with `Ŝel` the *exact-tuple*
//! selectivity in the generated relation. Over 11–14 columns the joint
//! space is so sparse that at our scaled-down sizes virtually no original
//! tuple reappears verbatim, collapsing the exact metric to a constant
//! (`log₂` of the smoothing denominator) for every generator. We therefore
//! evaluate the same cross entropy on all **column pairs** at a bounded
//! quantization: each column is bucketed to at most `B` code ranges, and
//! the Eq-1 cross entropy of the 2-D joints (with add-one smoothing) is
//! averaged over pairs. This keeps the histograms dense enough to
//! discriminate while still scoring cross-column *correlation*, not just
//! marginals. DESIGN.md documents the substitution.

use sam_storage::{Domain, Table, Value};

/// Bucket a value by its rank in the reference (original) domain.
fn bucket_of(domain: &Domain, v: &Value, buckets: usize) -> usize {
    if domain.is_empty() {
        return 0;
    }
    // Rank via partition point so unseen values land in the right bucket.
    let rank = domain.codes_le(v).end.saturating_sub(1) as usize;
    (rank * buckets / domain.len()).min(buckets - 1)
}

/// Column-pair averaged cross entropy in bits (see module docs). `buckets`
/// caps the per-column resolution (32 is a good default).
pub fn pairwise_cross_entropy(original: &Table, generated: &Table, buckets: usize) -> f64 {
    let buckets = buckets.max(2);
    let cols = original.schema().content_indices();
    assert!(!cols.is_empty(), "need content columns");
    if original.num_rows() == 0 || generated.num_rows() == 0 {
        return f64::NAN;
    }

    // Reference bucketizers from the original domains.
    let bucketize = |table: &Table, ci: usize, row: usize| -> usize {
        let reference = original.column(ci).domain();
        bucket_of(reference, &table.value(row, ci), buckets)
    };

    let mut total = 0.0f64;
    let mut pairs = 0usize;
    let singles = cols.len() == 1;
    for (a_idx, &ca) in cols.iter().enumerate() {
        let partners: Vec<usize> = if singles {
            vec![ca]
        } else {
            cols[a_idx + 1..].to_vec()
        };
        for cb in partners {
            let cells = buckets * buckets;
            let mut gen_hist = vec![0u64; cells];
            for r in 0..generated.num_rows() {
                let ba = bucketize(generated, ca, r);
                let bb = bucketize(generated, cb, r);
                gen_hist[ba * buckets + bb] += 1;
            }
            let denom = generated.num_rows() as f64 + cells as f64;
            let mut h = 0.0f64;
            for r in 0..original.num_rows() {
                let ba = bucketize(original, ca, r);
                let bb = bucketize(original, cb, r);
                let sel = (gen_hist[ba * buckets + bb] as f64 + 1.0) / denom;
                h -= sel.log2();
            }
            total += h / original.num_rows() as f64;
            pairs += 1;
            if singles {
                break;
            }
        }
        if singles {
            break;
        }
    }
    total / pairs.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_storage::{ColumnDef, DataType, TableSchema};

    fn table(rows: &[(i64, i64)]) -> Table {
        let schema = TableSchema::new(
            "T",
            vec![
                ColumnDef::content("a", DataType::Int),
                ColumnDef::content("b", DataType::Int),
            ],
        );
        let rows: Vec<Vec<Value>> = rows
            .iter()
            .map(|(a, b)| vec![Value::Int(*a), Value::Int(*b)])
            .collect();
        Table::from_rows(schema, &rows).unwrap()
    }

    /// Perfectly correlated vs independent data: the correlated generator
    /// must score lower against a correlated original.
    #[test]
    fn detects_broken_correlation() {
        let correlated: Vec<(i64, i64)> = (0..200).map(|i| (i % 10, i % 10)).collect();
        let independent: Vec<(i64, i64)> = (0..200).map(|i| (i % 10, (i / 10) % 10)).collect();
        let orig = table(&correlated);
        let good = table(&correlated);
        let bad = table(&independent);
        let h_good = pairwise_cross_entropy(&orig, &good, 16);
        let h_bad = pairwise_cross_entropy(&orig, &bad, 16);
        assert!(
            h_good < h_bad,
            "correlated {h_good} should beat independent {h_bad}"
        );
    }

    #[test]
    fn identical_is_best_among_candidates() {
        let data: Vec<(i64, i64)> = (0..100).map(|i| (i % 7, (i * 3) % 5)).collect();
        let orig = table(&data);
        let shifted: Vec<(i64, i64)> = data.iter().map(|(a, b)| ((a + 3) % 7, *b)).collect();
        let h_same = pairwise_cross_entropy(&orig, &orig, 8);
        let h_shift = pairwise_cross_entropy(&orig, &table(&shifted), 8);
        assert!(h_same <= h_shift);
    }

    #[test]
    fn single_content_column_falls_back_to_marginal() {
        let schema = TableSchema::new("T", vec![ColumnDef::content("a", DataType::Int)]);
        let rows: Vec<Vec<Value>> = (0..50).map(|i| vec![Value::Int(i % 5)]).collect();
        let t = Table::from_rows(schema, &rows).unwrap();
        let h = pairwise_cross_entropy(&t, &t, 8);
        assert!(h.is_finite());
    }

    #[test]
    fn unseen_values_bucket_safely() {
        let orig = table(&[(0, 0), (5, 5)]);
        let wild = table(&[(100, -100)]);
        let h = pairwise_cross_entropy(&orig, &wild, 4);
        assert!(h.is_finite());
    }
}
