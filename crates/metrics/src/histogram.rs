//! Lock-free log-bucketed latency histogram for long-running services.
//!
//! [`LatencyHistogram`] records durations into 64 power-of-two buckets with
//! relaxed atomics, so many request threads can record concurrently without
//! a lock. Percentiles are reconstructed from the bucket counts with
//! geometric interpolation inside the winning bucket — a ≤2× worst-case
//! relative error, which is plenty for a `/metrics` endpoint — while the
//! count, sum (hence mean), and maximum are tracked exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const NUM_BUCKETS: usize = 64;

/// Concurrent latency histogram over nanosecond durations.
#[derive(Debug)]
pub struct LatencyHistogram {
    /// `buckets[b]` counts values with `floor(log2(ns)) == b` (0 ns joins
    /// bucket 0).
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Record one duration.
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record one duration given in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of recorded durations in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Raw per-bucket counts (64 log2 buckets; see [`Self::bucket_bounds_ns`]).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Index of the log2 bucket a nanosecond value falls into
    /// (`floor(log2(ns))`, 0 ns joins bucket 0). Companion structures that
    /// shadow the histogram's bucket layout — e.g. per-bucket exemplars —
    /// use this to stay aligned.
    pub fn bucket_index(ns: u64) -> usize {
        bucket_of(ns)
    }

    /// Number of log2 buckets (fixed at 64).
    pub const fn num_buckets() -> usize {
        NUM_BUCKETS
    }

    /// Exclusive upper bound of bucket `b` in nanoseconds (`2^(b+1)`, saturating
    /// at `u64::MAX` for the last bucket). Used by exposition formats that need
    /// cumulative `le` buckets.
    pub fn bucket_bounds_ns(b: usize) -> u64 {
        if b >= NUM_BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << (b + 1)
        }
    }

    /// Exact mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_ns.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Approximate `p`-th percentile (`p` in `[0, 1]`) in nanoseconds.
    ///
    /// Exact for the bucket choice; geometric interpolation within the
    /// bucket. Returns 0 when empty.
    pub fn percentile_ns(&self, p: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let rank = ((p * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = bucket_bounds(b);
                // Position of the rank inside this bucket, in (0, 1].
                let frac = (rank - seen) as f64 / c as f64;
                // Geometric interpolation between the bucket bounds.
                let estimate = lo * (hi / lo).powf(frac);
                // Never report beyond the exactly-tracked maximum.
                return estimate.min(self.max_ns.load(Ordering::Relaxed) as f64);
            }
            seen += c;
        }
        self.max_ns.load(Ordering::Relaxed) as f64
    }

    /// Consistent-enough snapshot for reporting (individual loads are
    /// relaxed, so a snapshot taken during heavy recording may be off by
    /// the few in-flight increments — fine for monitoring).
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            count: self.count(),
            mean_ms: self.mean_ns() / 1e6,
            p50_ms: self.percentile_ns(0.50) / 1e6,
            p90_ms: self.percentile_ns(0.90) / 1e6,
            p95_ms: self.percentile_ns(0.95) / 1e6,
            p99_ms: self.percentile_ns(0.99) / 1e6,
            max_ms: self.max_ns.load(Ordering::Relaxed) as f64 / 1e6,
        }
    }
}

/// Point-in-time view of a [`LatencyHistogram`], in milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySnapshot {
    /// Number of recorded durations.
    pub count: u64,
    /// Exact mean.
    pub mean_ms: f64,
    /// Approximate median.
    pub p50_ms: f64,
    /// Approximate 90th percentile.
    pub p90_ms: f64,
    /// Approximate 95th percentile.
    pub p95_ms: f64,
    /// Approximate 99th percentile.
    pub p99_ms: f64,
    /// Exact maximum.
    pub max_ms: f64,
}

/// `floor(log2(ns))`, with 0 mapping to bucket 0.
fn bucket_of(ns: u64) -> usize {
    (63 - (ns | 1).leading_zeros()) as usize
}

/// `[lo, hi)` value bounds of bucket `b` as floats (bucket 0 covers 0..2).
fn bucket_bounds(b: usize) -> (f64, f64) {
    if b == 0 {
        (1.0, 2.0)
    } else {
        ((1u64 << b) as f64, (1u128 << (b + 1)) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.percentile_ns(0.99), 0.0);
    }

    #[test]
    fn percentiles_are_within_bucket_error() {
        let h = LatencyHistogram::new();
        for ns in 1..=1000u64 {
            h.record_ns(ns * 1_000); // 1µs .. 1ms
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile_ns(0.5);
        // True median 500µs; log-bucket estimate must be within 2×.
        assert!(
            (250_000.0..=1_000_000.0).contains(&p50),
            "p50 estimate {p50}"
        );
        let p99 = h.percentile_ns(0.99);
        assert!(
            (495_000.0..=1_000_000.0).contains(&p99),
            "p99 estimate {p99}"
        );
        // Max is exact, and no percentile exceeds it.
        assert_eq!(h.snapshot().max_ms, 1.0);
        assert!(h.percentile_ns(1.0) <= 1_000_000.0);
    }

    #[test]
    fn mean_and_max_are_exact() {
        let h = LatencyHistogram::new();
        for ns in [10u64, 20, 30, 140] {
            h.record_ns(ns);
        }
        assert_eq!(h.mean_ns(), 50.0);
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.max_ms, 140.0 / 1e6);
    }

    #[test]
    fn percentile_is_monotone_in_p() {
        let h = LatencyHistogram::new();
        let mut x = 7u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record_ns(x % 10_000_000);
        }
        let mut last = 0.0;
        for i in 0..=20 {
            let p = h.percentile_ns(i as f64 / 20.0);
            assert!(p >= last, "percentile not monotone at {i}: {p} < {last}");
            last = p;
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        std::thread::scope(|scope| {
            for t in 0..8 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_ns(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 80_000);
    }
}
