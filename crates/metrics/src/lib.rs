//! # sam-metrics — evaluation metrics for the SAM reproduction
//!
//! Q-Error percentile summaries (§5.1), cross entropy between a relation and
//! its generated counterpart (Eq 1), performance deviation, and plain-text
//! table rendering for the experiment harness.

#![warn(missing_docs)]

pub mod pairwise;
pub mod qerror;
pub mod summary;
pub mod xentropy;

pub use pairwise::pairwise_cross_entropy;
pub use qerror::{q_error, q_errors};
pub use summary::{render_table, Percentiles};
pub use xentropy::cross_entropy;
