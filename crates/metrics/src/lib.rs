//! # sam-metrics — evaluation metrics for the SAM reproduction
//!
//! Q-Error percentile summaries (§5.1), cross entropy between a relation and
//! its generated counterpart (Eq 1), performance deviation, plain-text
//! table rendering for the experiment harness, and a lock-free latency
//! histogram backing the serving layer's `/metrics` endpoint.

#![warn(missing_docs)]

pub mod histogram;
pub mod pairwise;
pub mod qerror;
pub mod summary;
pub mod xentropy;

pub use histogram::{LatencyHistogram, LatencySnapshot};
pub use pairwise::pairwise_cross_entropy;
pub use qerror::{q_error, q_errors};
pub use summary::{render_table, Percentiles};
pub use xentropy::cross_entropy;
