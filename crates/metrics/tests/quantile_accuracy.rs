//! Property test for the histogram's percentile reconstruction: over
//! adversarial latency distributions, the reported p50/p95/p99 must land
//! within **one log2 bucket** of the exact nearest-rank quantile. That is
//! the strongest guarantee a log-bucketed histogram can make — the rank
//! selection over buckets is exact; only the position *inside* the winning
//! bucket is interpolated (and the interpolant may touch the bucket's
//! exclusive upper bound, i.e. the next bucket's floor).

use proptest::prelude::*;
use sam_metrics::LatencyHistogram;

/// Exact nearest-rank quantile (the definition `percentile_ns` buckets).
fn exact_quantile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// Latency populations a production service actually produces, each one a
/// known failure mode for naive quantile sketches.
fn arb_latencies() -> impl Strategy<Value = Vec<u64>> {
    prop_oneof![
        // Uniform noise across six decades.
        prop::collection::vec(1u64..1_000_000_000, 1..400),
        // Bimodal: fast cache hits + slow cold paths, nothing between.
        prop::collection::vec(prop_oneof![100u64..200, 50_000_000u64..100_000_000], 2..300),
        // Heavy tail: almost everything fast, rare catastrophic outliers.
        prop::collection::vec(
            prop_oneof![
                20 => 1_000u64..10_000,
                1 => 1_000_000_000u64..10_000_000_000
            ],
            1..300
        ),
        // Degenerate: every request identical (single occupied bucket).
        (1u64..1_000_000_000, 1usize..200).prop_map(|(v, n)| vec![v; n]),
        // Bucket-boundary adversary: exact powers of two and neighbours.
        prop::collection::vec(
            (0u32..40, 0i64..3)
                .prop_map(|(e, d)| { (1u64 << e).saturating_add_signed(d - 1).max(1) }),
            1..300
        ),
        // Zeros mixed in (0 ns joins bucket 0).
        prop::collection::vec(0u64..100, 1..100),
    ]
}

proptest! {
    #[test]
    fn reported_quantiles_within_one_bucket_of_exact(values in arb_latencies()) {
        let h = LatencyHistogram::new();
        for &v in &values {
            h.record_ns(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();

        for p in [0.50, 0.95, 0.99] {
            let exact = exact_quantile(&sorted, p);
            let reported = h.percentile_ns(p);
            prop_assert!(reported.is_finite() && reported >= 0.0);
            // Never beyond the exactly-tracked maximum.
            prop_assert!(
                reported <= *sorted.last().unwrap() as f64,
                "p{p}: reported {reported} above max {}",
                sorted.last().unwrap()
            );
            let exact_bucket = LatencyHistogram::bucket_index(exact) as i64;
            let reported_bucket =
                LatencyHistogram::bucket_index(reported.round() as u64) as i64;
            prop_assert!(
                (reported_bucket - exact_bucket).abs() <= 1,
                "p{p}: exact {exact} (bucket {exact_bucket}) vs reported \
                 {reported} (bucket {reported_bucket}) over {} values",
                sorted.len()
            );
        }
    }

    /// The snapshot's milliseconds views must agree with percentile_ns.
    #[test]
    fn snapshot_is_consistent_with_percentiles(values in arb_latencies()) {
        let h = LatencyHistogram::new();
        for &v in &values {
            h.record_ns(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert!((snap.p50_ms - h.percentile_ns(0.50) / 1e6).abs() < 1e-12);
        prop_assert!((snap.p99_ms - h.percentile_ns(0.99) / 1e6).abs() < 1e-12);
        prop_assert!(snap.p50_ms <= snap.p95_ms && snap.p95_ms <= snap.p99_ms);
        prop_assert!(snap.p99_ms <= snap.max_ms);
    }
}
