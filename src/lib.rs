//! # SAM — Database Generation from Query Workloads (SIGMOD 2022), in Rust
//!
//! A full reproduction of *SAM: Database Generation from Query Workloads
//! with Supervised Autoregressive Models*. Given a query workload — a set
//! of conjunctive queries with their true result cardinalities, collected
//! on a private database — SAM trains a deep autoregressive model of the
//! database's full-outer-join distribution (from the cardinalities alone)
//! and generates a synthetic database that satisfies the constraints and
//! approximates the original: the benchmarking / stress-testing scenario
//! of the paper's introduction.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`storage`] — relations, schemas, join graphs, full outer joins.
//! * [`query`] — predicates, queries, workload generators, exact evaluation.
//! * [`nn`] — matrices, tape autodiff, MADE, Gumbel-Softmax, Adam.
//! * [`ar`] — the AR model over schemas: DPS training, progressive sampling.
//! * [`core`] — the SAM pipeline: weighting, scaling, Group-and-Merge.
//! * [`pgm`] — the PGM baseline (Arasu et al.).
//! * [`datasets`] — synthetic Census / DMV / IMDB stand-ins.
//! * [`engine`] — an in-memory executor for latency experiments.
//! * [`metrics`] — Q-Error, cross entropy, percentile summaries.
//! * [`obs`] — metrics registry, hierarchical spans, Chrome trace export.
//! * [`serve`] — HTTP model serving: micro-batched estimates, async jobs.
//! * [`router`] — fault-tolerant sharded serving: router + worker pool.
//! * [`workgen`] — workload synthesis, hard-query mining, load generation.
//!
//! ## Quickstart
//!
//! ```
//! use sam::prelude::*;
//!
//! // The "private" database (here: a synthetic Census-like table).
//! let target = sam::datasets::census(500, 7);
//! let stats = DatabaseStats::from_database(&target);
//!
//! // A labelled query workload collected on it.
//! let mut gen = WorkloadGenerator::new(&target, 7);
//! let queries = gen.single_workload("census", 64);
//! let workload = label_workload(&target, queries).unwrap();
//!
//! // Learning stage: train SAM from the cardinality constraints only.
//! let mut config = SamConfig::default();
//! config.train.epochs = 2; // doc-test budget; use more in practice
//! let trained = Sam::fit(target.schema(), &stats, &workload, &config).unwrap();
//!
//! // Generation stage: a synthetic database of the same shape.
//! let (synthetic, _report) = trained.generate(&GenerationConfig::default()).unwrap();
//! assert_eq!(synthetic.tables()[0].num_rows(), 500);
//! ```

pub mod schema_file;
pub mod stats_file;

pub use sam_ar as ar;
pub use sam_core as core;
pub use sam_datasets as datasets;
pub use sam_engine as engine;
pub use sam_fault as fault;
pub use sam_metrics as metrics;
pub use sam_nn as nn;
pub use sam_obs as obs;
pub use sam_pgm as pgm;
pub use sam_query as query;
pub use sam_router as router;
pub use sam_serve as serve;
pub use sam_storage as storage;
pub use sam_workgen as workgen;

/// The most common imports for using SAM end to end.
pub mod prelude {
    pub use sam_ar::{ArModelConfig, EncodingOptions, TrainConfig};
    pub use sam_core::{GenerationConfig, JoinKeyStrategy, Sam, SamConfig, SamError, TrainedSam};
    pub use sam_metrics::{q_error, Percentiles};
    pub use sam_query::{
        evaluate_cardinality, label_workload, parse_query, CompareOp, LabeledQuery, Predicate,
        Query, Workload, WorkloadGenerator,
    };
    pub use sam_storage::{
        ColumnDef, ColumnRole, DataType, Database, DatabaseSchema, DatabaseStats, ForeignKeyEdge,
        Table, TableSchema, Value,
    };
}
