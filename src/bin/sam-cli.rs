//! `sam-cli` — drive the SAM pipeline from the command line.
//!
//! ```text
//! sam-cli demo     --dataset census|dmv|imdb [--rows N] [--queries N] [--epochs N] [--seed N]
//! sam-cli export   --dataset census|dmv|imdb --out DIR [--rows N] [--seed N]
//! sam-cli train    --schema schema.json --data DIR --model-out model.json
//!                  [--queries N | --workload FILE] [--epochs N] [--seed N]
//!                  [--checkpoint-dir DIR] [--checkpoint-every N]
//! sam-cli train    --addr HOST:PORT --workload FILE [--model NAME]
//!                  [--epochs N] [--batch N] [--lr F] [--seed N]
//!                  [--hidden W1,W2] [--holdout F] [--eval-samples N]
//!                  [--eval-seed N] [--checkpoint-every N] [--max-qerror Q]
//!                  [--data DIR] [--follow true] [--poll-ms N] [--retries N]
//! sam-cli generate --schema schema.json (--data DIR | --stats stats.json) --out DIR
//!                  [--model model.json] [--queries N | --workload FILE]
//!                  [--epochs N] [--foj-samples N] [--seed N] [--backend f32|f16|int8]
//! sam-cli evaluate --schema schema.json --original DIR --generated DIR
//!                  [--queries N | --workload FILE] [--seed N]
//! sam-cli estimate --schema schema.json --data DIR [--queries N] [--epochs N] [--seed N]
//!                  [--backend f32|f16|int8]  (then one SQL query per stdin line)
//! sam-cli serve    [--addr HOST:PORT] [--models name=model.json[=datadir],...]
//!                  [--workers N] [--queue N] [--max-batch N]
//!                  [--samples N] [--timeout-ms N] [--cache N]
//!                  [--backend f32|f16|int8] [--journal-dir DIR]
//!                  [--journal-compact-bytes N] [--idle-timeout-ms N]
//!                  [--conn-requests N] [--quality-sample F]
//!                  [--quality-window N] [--quality-alert-qerror Q]
//!                  [--quality-audit FILE] [--flight-capacity N]
//!                  [--slow-ms N] [--promote-max-qerror Q] [--job-id-base N]
//! sam-cli router   [--addr HOST:PORT] [--workers N]
//!                  [--models name[@slot]=model.json[=datadir],...]
//!                  [--store-root DIR] [--worker-cmd CMD] [--worker-flags F]
//!                  [--health-interval-ms N] [--probe-timeout-ms N]
//!                  [--proxy-timeout-ms N] [--restart-backoff-ms N]
//!                  [--restart-backoff-cap-ms N] [--retry-wait-ms N]
//! sam-cli journal  compact DIR
//! sam-cli workgen  synth [--profile FILE] [--seed N] [--count N] [--out FILE]
//!                  [--label true] (--schema schema.json --data DIR |
//!                  --dataset census|dmv|imdb [--rows N] [--data-seed N])
//! sam-cli workgen  mine  [--seeds FILE | --profile FILE --count N]
//!                  [--model model.json] [--top-k N] [--rounds N] [--pool N]
//!                  [--mutants N] [--samples N] [--seed N] [--out FILE]
//!                  [--epochs N] (data flags as for synth)
//! sam-cli workgen  load  --addr HOST:PORT --model NAME [--rate R]
//!                  [--connections N] [--duration-ms N] [--samples N]
//!                  [--timeout-ms N] [--workload FILE | data flags + --count N]
//!                  [--seeds FILE]
//! ```
//!
//! `router` fronts a pool of `sam-cli serve` worker processes with a
//! consistent-hash shard per worker: pass-through routing by model, health
//! probes with bounded-backoff restarts of dead workers, and draining
//! rebalance on join/leave. See `docs/SHARDING.md`.
//!
//! `--backend` picks the frozen-inference backend: `f32` (the exact
//! reference kernel, default), `f16` (blocked column-major kernel over
//! half-precision weights — faster, ~1e-2 relative error), or `int8`
//! (blocked kernel over per-block-quantised 8-bit weights — fastest,
//! ~1e-1 relative logit error, Q-Error parity in practice). An unknown
//! value is rejected up front — `serve` refuses to start — with the valid
//! kernel list in the error. For `serve` the flag applies to every model
//! loaded into the registry; for `generate` / `estimate` it retargets the
//! trained or loaded model before inference.
//!
//! `serve --journal-dir DIR` makes generation jobs restart-safe: every job
//! is journaled to `DIR/journal.jsonl` (CRC-framed records; torn tails and
//! corrupt lines are recovered on open), completed results are persisted as
//! CSV under `DIR/jobs/<id>/`, and on startup the journal is replayed —
//! completed jobs are re-servable (status + `GET /jobs/{id}/export`),
//! interrupted ones re-run from their recorded RNG seed. When the replayed
//! log exceeds `--journal-compact-bytes` (default 4 MiB; 0 disables) it is
//! folded into `snapshot.jsonl`; `sam-cli journal compact DIR` does the
//! same offline. `train --checkpoint-dir DIR` snapshots training state
//! every `--checkpoint-every` epochs; rerunning with identical flags
//! resumes bit-for-bit. See `docs/SERVING.md` for the full operator guide.
//!
//! With `--addr`, `train` instead submits the workload to a running
//! server's `POST /train` (train-as-a-service): the server trains a
//! candidate on a background thread, shadow-evaluates it against the
//! incumbent on a held-out slice, and hot-swaps the winner into the
//! registry if it clears the `--promote-max-qerror` gate. `--follow true`
//! polls the job to its terminal state. See `docs/TRAINING.md`.
//!
//! `serve` shadow-scores `--quality-sample` of answered estimates against
//! the truth (exact when a model was loaded as `name=path=datadir`, f32
//! backend parity otherwise) and serves drift stats at `GET /quality`;
//! estimates whose Q-Error crosses `--quality-alert-qerror` are appended to
//! `--quality-audit` as JSONL, which `workgen mine --seeds FILE` accepts
//! directly. A `--flight-capacity`-event ring of recent requests backs
//! `GET /debug/flight` and is dumped to stderr on a worker panic. See
//! `docs/OBSERVABILITY.md`.
//!
//! The pipeline subcommands (`demo`, `train`, `generate`, `serve`) also
//! accept `--log-level {silent,info,debug}` (structured span lines on
//! stderr) and `--trace-out PATH` (Chrome trace-event JSON, loadable in
//! `chrome://tracing` / Perfetto; `serve` rewrites the file every 30 s).
//!
//! Data directories hold one `<table>.csv` per schema table (header row,
//! `NULL` for SQL NULL). Workload files hold one `SELECT COUNT(*) …` query
//! per line (blank lines and `--` comments ignored), optionally suffixed
//! with its true cardinality as `-- card=N`; unlabelled queries are
//! labelled against `--data`. With `--stats` plus a fully labelled
//! workload, `generate` needs **no data at all** — the paper's scenario.

use sam::prelude::*;
use sam::schema_file::SchemaFile;
use sam::stats_file::StatsFile;
use sam::storage::csv::{read_csv, write_csv};
use std::collections::HashMap;
use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal flag parser: `--key value` pairs after the subcommand, plus bare
/// positional words (e.g. `journal compact DIR`) collected in order.
struct Args {
    command: String,
    flags: HashMap<String, String>,
    positional: Vec<String>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let command = argv.first().cloned().ok_or_else(usage)?;
        let mut flags = HashMap::new();
        let mut positional = Vec::new();
        let mut i = 1;
        while i < argv.len() {
            let Some(key) = argv[i].strip_prefix("--") else {
                positional.push(argv[i].clone());
                i += 1;
                continue;
            };
            // `--help` is the one valueless flag: it short-circuits into the
            // subcommand's flag table, so it must parse without a value.
            if key == "help" {
                flags.insert("help".to_string(), "true".to_string());
                i += 1;
                continue;
            }
            let value = argv
                .get(i + 1)
                .cloned()
                .ok_or_else(|| format!("--{key} needs a value"))?;
            flags.insert(key.to_string(), value);
            i += 2;
        }
        Ok(Args {
            command,
            flags,
            positional,
        })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("--{key} is required"))
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number {v:?}")),
            None => Ok(default),
        }
    }
}

fn usage() -> String {
    "usage: sam-cli <demo|export|train|generate|evaluate|estimate|serve|router|journal|workgen> [--flags]\n\
     run with a subcommand; `sam-cli <serve|router|train|workgen> --help` prints the flag table"
        .into()
}

/// `sam-cli serve --help`. `tests/docs_check.rs` asserts every flag listed
/// here also appears in `docs/SERVING.md` (and the training flags in
/// `docs/TRAINING.md`), so additions must land in both places.
fn serve_help() {
    println!(
        "usage: sam-cli serve [--flags]\n\n\
         listener:\n  \
           --addr HOST:PORT            listen address (default 127.0.0.1:8080)\n  \
           --models SPEC,SPEC          preload models: name=model.json or name=model.json=datadir\n  \
           --workers N                 estimate worker threads (default 2)\n  \
           --queue N                   batcher queue capacity; full queue = 429 (default 64)\n  \
           --max-batch N               max estimates fused per batch (default 16)\n  \
           --samples N                 default progressive-sampling count (default 200)\n  \
           --timeout-ms N              per-request deadline (default 10000)\n  \
           --cache N                   estimate cache entries (default 1024)\n  \
           --backend KIND              inference backend: f32 | f16 | int8 (default: checkpoint's)\n  \
           --idle-timeout-ms N         keep-alive idle connection timeout (default 30000)\n  \
           --conn-requests N           max requests per connection (default 1000)\n\n\
         durability:\n  \
           --journal-dir DIR           journal jobs + training runs for crash recovery\n  \
           --journal-compact-bytes N   auto-compact threshold on replay; 0 disables (default 4194304)\n  \
           --job-id-base N             start job ids after N (sharded workers: see docs/SHARDING.md)\n\n\
         training (POST /train):\n  \
           --promote-max-qerror Q      promotion gate: candidate holdout p95 Q-Error ceiling\n                              \
                                       (default 1000; per-job override via max_qerror)\n\n\
         quality + debug:\n  \
           --quality-sample F          fraction of estimates shadow-scored (default 0.01)\n  \
           --quality-window N          per-model sliding window size (default 256)\n  \
           --quality-alert-qerror Q    audit-log threshold (default 100)\n  \
           --quality-audit FILE        JSONL audit sink for threshold breaches\n  \
           --flight-capacity N         request flight-recorder ring size (default 512)\n  \
           --slow-ms N                 slow-request log threshold (default 250)\n\n\
         observability:\n  \
           --log-level LEVEL           silent | info | debug span lines on stderr\n  \
           --trace-out PATH            Chrome trace JSON, rewritten every 30 s\n\n\
         See docs/SERVING.md and docs/TRAINING.md for the operator guides."
    );
}

/// `sam-cli train --help` — local training plus the remote
/// train-as-a-service client mode (`--addr`).
fn train_help() {
    println!(
        "usage: sam-cli train --schema schema.json --data DIR --model-out model.json [--flags]\n       \
                sam-cli train --addr HOST:PORT --workload FILE [--flags]   (remote mode)\n\n\
         local mode (train in-process, save the model):\n  \
           --schema FILE               schema.json for the target database\n  \
           --data DIR                  directory of {{table}}.csv reference data\n  \
           --model-out FILE            where to save the trained model JSON\n  \
           --queries N                 synthesize a workload of N queries (default 2000)\n  \
           --workload FILE             use this workload file instead of synthesizing\n  \
           --epochs N                  training epochs (default 10)\n  \
           --seed N                    RNG seed for workload + training (default 0)\n  \
           --checkpoint-dir DIR        atomic training snapshots for bit-for-bit resume\n  \
           --checkpoint-every N        snapshot every N epochs (default 1)\n  \
           --log-level LEVEL           silent | info | debug span lines on stderr\n  \
           --trace-out PATH            Chrome trace JSON\n\n\
         remote mode (submit to a running sam-cli serve — see docs/TRAINING.md):\n  \
           --addr HOST:PORT            the server; presence of this flag selects remote mode\n  \
           --workload FILE             labelled workload to upload (SQL `-- card=N` or JSONL)\n  \
           --model NAME                registry name to retrain (default \"default\")\n  \
           --epochs N                  candidate training epochs (default 20)\n  \
           --batch N                   minibatch size (default 32)\n  \
           --lr F                      learning rate (default 0.005)\n  \
           --seed N                    training seed (default 0)\n  \
           --hidden W1,W2              candidate hidden widths (default 16)\n  \
           --holdout F                 held-out fraction for shadow eval (default 0.2)\n  \
           --eval-samples N            progressive samples per holdout estimate (default 200)\n  \
           --eval-seed N               shadow-eval RNG seed (default 0)\n  \
           --checkpoint-every N        journaled checkpoint cadence (default 1)\n  \
           --max-qerror Q              per-job promotion gate override\n  \
           --data DIR                  server-side reference data dir for statistics\n  \
           --follow true               poll GET /jobs/{{id}} until the job is terminal\n  \
           --poll-ms N                 polling interval with --follow (default 500)\n  \
           --retries N                 retries for transient connection failures, with\n                              \
                                       jittered exponential backoff (default 3)"
    );
}

/// `sam-cli router --help`. Like the other help tables, `tests/docs_check.rs`
/// asserts every flag listed here also appears in `docs/SHARDING.md`.
fn router_help() {
    println!(
        "usage: sam-cli router [--flags]\n\n\
         topology:\n  \
           --addr HOST:PORT            router listen address (default 127.0.0.1:8080)\n  \
           --workers N                 worker processes / shards to spawn (default 2)\n  \
           --models SPEC,SPEC          preload models: name[@slot]=model.json[=datadir]\n                              \
                                       (@slot pins the model to a shard; else hashed)\n  \
           --store-root DIR            per-shard job stores: DIR/shard-N (default sam-shards)\n  \
           --worker-cmd CMD            worker command (default: this binary + `serve`)\n  \
           --worker-flags FLAGS        extra flags appended to every worker command line\n\n\
         supervision:\n  \
           --health-interval-ms N      health-probe period (default 200)\n  \
           --probe-timeout-ms N        per-probe socket timeout (default 1000)\n  \
           --proxy-timeout-ms N        proxied request timeout (default 120000)\n  \
           --restart-backoff-ms N      restart backoff base after a worker death (default 100)\n  \
           --restart-backoff-cap-ms N  restart backoff ceiling (default 5000)\n  \
           --retry-wait-ms N           max wait for a shard to recover before retrying an\n                              \
                                       idempotent request against it (default 2000)\n\n\
         observability:\n  \
           --log-level LEVEL           silent | info | debug span lines on stderr\n  \
           --trace-out PATH            Chrome trace JSON, rewritten every 30 s\n\n\
         See docs/SHARDING.md for the operator guide."
    );
}

/// `sam-cli workgen --help` — flag table across `synth`, `mine`, `load`.
fn workgen_help() {
    println!(
        "usage: sam-cli workgen <synth|mine|load> [--flags]\n\n\
         target database (synth + mine, and load without --workload):\n  \
           --schema FILE               schema.json (with --data)\n  \
           --data DIR                  directory of {{table}}.csv files\n  \
           --dataset NAME              census | dmv | imdb synthetic fallback (default census)\n  \
           --rows N                    synthetic dataset size (default 2000)\n  \
           --data-seed N               synthetic dataset seed (default 0)\n\n\
         synth (deterministic query synthesis):\n  \
           --profile FILE              TOML synthesis profile\n  \
           --seed N                    synthesis RNG seed (default 0)\n  \
           --count N                   queries to emit (default: profile's)\n  \
           --label true                label each query with its true cardinality\n  \
           --out FILE                  write workload here instead of stdout\n\n\
         mine (adversarial hard-query mining):\n  \
           --model FILE                trained model to attack (else trains one: --epochs)\n  \
           --seeds FILE                seed queries (else synthesized: --profile --count)\n  \
           --top-k N                   hard queries to keep (default 10)\n  \
           --rounds N                  mutation rounds (default 8)\n  \
           --pool N                    survivor pool size (default 16)\n  \
           --mutants N                 mutants per survivor per round (default 4)\n  \
           --samples N                 estimation samples per score (default 64)\n  \
           --epochs N                  epochs when training the attack target (default 10)\n\n\
         load (open-loop replay against a live server):\n  \
           --addr HOST:PORT            the server (default 127.0.0.1:8080)\n  \
           --model NAME                registry model name (default \"default\")\n  \
           --rate R                    request rate per second (default 100)\n  \
           --connections N             concurrent connections (default 4)\n  \
           --duration-ms N             run length (default 10000)\n  \
           --timeout-ms N              per-request timeout (default 10000)\n  \
           --workload FILE             replay this trace instead of synthesizing\n  \
           --seeds FILE                also replay this mined hard-query set, interleaved\n                              \
                                       with the trace; reports per-class latency\n\n\
         See docs/WORKGEN.md for the operator guide."
    );
}

fn run() -> Result<(), String> {
    let args = Args::parse()?;
    match args.command.as_str() {
        "demo" => demo(&args),
        "export" => export(&args),
        "train" => train_cmd(&args),
        "generate" => generate(&args),
        "evaluate" => evaluate(&args),
        "estimate" => estimate(&args),
        "serve" => serve(&args),
        "router" => router_cmd(&args),
        "journal" => journal_cmd(&args),
        "workgen" => workgen_cmd(&args),
        other => Err(format!("unknown subcommand {other:?}\n{}", usage())),
    }
}

// ---------------------------------------------------------------- datasets

fn synthetic(dataset: &str, rows: usize, seed: u64) -> Result<Database, String> {
    match dataset {
        "census" => Ok(sam::datasets::census(rows, seed)),
        "dmv" => Ok(sam::datasets::dmv(rows, seed)),
        "imdb" => Ok(sam::datasets::imdb(&sam::datasets::ImdbConfig {
            titles: rows / 10,
            seed,
            ..Default::default()
        })),
        other => Err(format!("unknown dataset {other:?} (census|dmv|imdb)")),
    }
}

// ---------------------------------------------------------------- file I/O

fn load_database(schema_path: &str, data_dir: &str) -> Result<Database, String> {
    let text = fs::read_to_string(schema_path).map_err(|e| format!("read {schema_path}: {e}"))?;
    let schema = SchemaFile::from_json(&text)?.to_schema()?;
    let mut tables = Vec::new();
    for t in schema.tables() {
        let path = Path::new(data_dir).join(format!("{}.csv", t.name));
        let file = fs::File::open(&path).map_err(|e| format!("open {path:?}: {e}"))?;
        let table =
            read_csv(t.clone(), BufReader::new(file)).map_err(|e| format!("{path:?}: {e}"))?;
        tables.push(table);
    }
    Database::new(schema, tables, true).map_err(|e| e.to_string())
}

fn save_database(db: &Database, out_dir: &str) -> Result<Vec<PathBuf>, String> {
    fs::create_dir_all(out_dir).map_err(|e| format!("mkdir {out_dir}: {e}"))?;
    let schema_path = Path::new(out_dir).join("schema.json");
    fs::write(&schema_path, SchemaFile::from_schema(db.schema()).to_json())
        .map_err(|e| format!("write {schema_path:?}: {e}"))?;
    let mut written = vec![schema_path];
    for t in db.tables() {
        let path = Path::new(out_dir).join(format!("{}.csv", t.name()));
        let mut file = fs::File::create(&path).map_err(|e| format!("create {path:?}: {e}"))?;
        write_csv(t, &mut file).map_err(|e| format!("write {path:?}: {e}"))?;
        file.flush().map_err(|e| e.to_string())?;
        written.push(path);
    }
    Ok(written)
}

fn load_workload_queries(path: &str) -> Result<Vec<Query>, String> {
    let file = fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    sam::query::read_queries(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
}

/// Load a *fully labelled* workload file (every line must carry `-- card=`).
fn load_labelled_workload(path: &str) -> Result<Workload, String> {
    let file = fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    sam::query::read_labeled_workload(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
}

fn build_workload(db: &Database, args: &Args, default_n: usize) -> Result<Workload, String> {
    let queries = match args.get("workload") {
        Some(path) => load_workload_queries(path)?,
        None => {
            let n: usize = args.num("queries", default_n)?;
            let seed: u64 = args.num("seed", 0)?;
            let mut gen = WorkloadGenerator::new(db, seed);
            if db.tables().len() == 1 {
                gen.single_workload(db.tables()[0].name(), n)
            } else {
                gen.multi_workload(n, 2)
            }
        }
    };
    label_workload(db, queries).map_err(|e| e.to_string())
}

// ---------------------------------------------------------- observability

/// Apply the global observability flags shared by every subcommand:
/// `--log-level {silent,info,debug}` routes span lines to stderr, and
/// `--trace-out PATH` turns on Chrome trace collection. Returns the trace
/// path, if any; pass it to [`write_trace`] once the work is done.
fn setup_obs(args: &Args) -> Result<Option<String>, String> {
    if let Some(level) = args.get("log-level") {
        let level: sam::obs::LogLevel = level.parse()?;
        sam::obs::set_log_level(level);
        sam::obs::set_sink(sam::obs::Sink::Stderr);
    }
    match args.get("trace-out") {
        Some(path) => {
            sam::obs::enable_tracing();
            Ok(Some(path.to_string()))
        }
        None => Ok(None),
    }
}

fn write_trace(trace_out: &Option<String>) -> Result<(), String> {
    if let Some(path) = trace_out {
        sam::obs::write_chrome_trace(Path::new(path))
            .map_err(|e| format!("write trace {path}: {e}"))?;
        println!(
            "chrome trace written to {path} ({} events)",
            sam::obs::event_count()
        );
    }
    Ok(())
}

/// Parse the optional `--backend {f32,f16,int8}` flag shared by the
/// inference subcommands. `None` means "leave the model on whatever backend
/// it was frozen or loaded with".
fn backend_arg(args: &Args) -> Result<Option<sam::nn::BackendKind>, String> {
    match args.get("backend") {
        Some(v) => v.parse::<sam::nn::BackendKind>().map(Some),
        None => Ok(None),
    }
}

fn sam_config(args: &Args) -> Result<SamConfig, String> {
    let mut config = SamConfig::default();
    config.train.epochs = args.num("epochs", 10usize)?;
    config.train.seed = args.num("seed", 0u64)?;
    config.model.seed = config.train.seed;
    // `--checkpoint-dir DIR [--checkpoint-every N]`: atomic training
    // snapshots every N epochs; an interrupted run restarted with the same
    // flags auto-resumes bit-for-bit.
    if let Some(dir) = args.get("checkpoint-dir") {
        let every: usize = args.num("checkpoint-every", 1usize)?;
        config.train.checkpoint = Some(sam::ar::CheckpointConfig::new(Path::new(dir), every));
    }
    Ok(config)
}

fn fidelity_report(generated: &Database, workload: &Workload, label: &str) {
    let qe: Vec<f64> = workload
        .iter()
        .take(1000)
        .map(|lq| {
            let got = evaluate_cardinality(generated, &lq.query).unwrap_or(0) as f64;
            q_error(got, lq.cardinality as f64)
        })
        .collect();
    let p = Percentiles::from_values(&qe);
    println!(
        "{label}: Q-Error median {:.2}  75th {:.2}  90th {:.2}  mean {:.2}  max {:.1}  ({} queries)",
        p.median, p.p75, p.p90, p.mean, p.max, p.count
    );
}

// ------------------------------------------------------------- subcommands

fn demo(args: &Args) -> Result<(), String> {
    let trace_out = setup_obs(args)?;
    let dataset = args.get("dataset").unwrap_or("census");
    let rows: usize = args.num("rows", 8_000)?;
    let seed: u64 = args.num("seed", 0)?;
    let db = synthetic(dataset, rows, seed)?;
    let stats = DatabaseStats::from_database(&db);
    println!(
        "dataset {dataset}: {} tables, {} total rows",
        db.tables().len(),
        db.total_rows()
    );

    let workload = build_workload(&db, args, 1_500)?;
    println!("workload: {} labelled queries", workload.len());
    let config = sam_config(args)?;
    let trained = Sam::fit(db.schema(), &stats, &workload, &config).map_err(|e| e.to_string())?;
    println!("trained in {:.1}s", trained.report.wall_seconds);

    let (generated, report) = trained
        .generate(&GenerationConfig {
            seed,
            ..Default::default()
        })
        .map_err(|e| e.to_string())?;
    println!("generated in {:.1}s", report.wall_seconds);
    fidelity_report(&generated, &workload, "input constraints");
    write_trace(&trace_out)?;
    Ok(())
}

fn export(args: &Args) -> Result<(), String> {
    let dataset = args.required("dataset")?;
    let out = args.required("out")?;
    let rows: usize = args.num("rows", 8_000)?;
    let seed: u64 = args.num("seed", 0)?;
    let db = synthetic(dataset, rows, seed)?;
    let mut files = save_database(&db, out)?;

    // The no-data-access bundle: stats.json + a labelled workload sample.
    let stats = DatabaseStats::from_database(&db);
    let stats_path = Path::new(out).join("stats.json");
    fs::write(&stats_path, StatsFile::from_stats(&stats).to_json())
        .map_err(|e| format!("write {stats_path:?}: {e}"))?;
    files.push(stats_path);
    let workload = build_workload(&db, args, 1_000)?;
    let wl_path = Path::new(out).join("workload.sql");
    fs::write(&wl_path, sam::query::format_workload(&workload))
        .map_err(|e| format!("write {wl_path:?}: {e}"))?;
    files.push(wl_path);

    println!("wrote {} files to {out}/:", files.len());
    for f in files {
        println!("  {}", f.display());
    }
    Ok(())
}

fn train_cmd(args: &Args) -> Result<(), String> {
    if args.get("help").is_some() {
        train_help();
        return Ok(());
    }
    // `--addr` selects remote mode: submit the workload to a running
    // `sam-cli serve` as a train-as-a-service job instead of training here.
    if args.get("addr").is_some() {
        return train_remote(args);
    }
    let trace_out = setup_obs(args)?;
    let schema_path = args.required("schema")?;
    let data_dir = args.required("data")?;
    let model_out = args.required("model-out")?;
    let db = load_database(schema_path, data_dir)?;
    let stats = DatabaseStats::from_database(&db);
    let workload = build_workload(&db, args, 2_000)?;
    println!(
        "loaded {} tables; workload of {} queries",
        db.tables().len(),
        workload.len()
    );
    let config = sam_config(args)?;
    let trained = Sam::fit(db.schema(), &stats, &workload, &config).map_err(|e| e.to_string())?;
    println!("trained in {:.1}s", trained.report.wall_seconds);
    let json = sam::ar::save_model(trained.model(), db.schema());
    fs::write(model_out, json).map_err(|e| format!("write {model_out}: {e}"))?;
    println!("model saved to {model_out}");
    write_trace(&trace_out)?;
    Ok(())
}

// ------------------------------------------------- remote training client

/// One-shot HTTP/1.1 exchange over a fresh connection (`Connection: close`,
/// so the body is simply everything after the header block). Returns
/// `(status, body)`.
fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<(u16, String), String> {
    use std::io::Read;
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    let mut request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n",
        body.len()
    )
    .into_bytes();
    request.extend_from_slice(b"\r\n");
    request.extend_from_slice(body);
    stream.write_all(&request).map_err(|e| e.to_string())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| e.to_string())?;
    let text = String::from_utf8_lossy(&raw);
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed HTTP response from {addr}"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line from {addr}"))?;
    Ok((status, payload.to_string()))
}

/// [`http_request`] with bounded retries for *transient connection
/// failures* — connects that are refused or reset before any response
/// arrives, which `http_request` reports as `connect {addr}: …`. Those are
/// exactly what a worker restart or a router failover window looks like
/// from the client. Each retry backs off exponentially with jitter
/// (equal-jitter: delay in `[base/2, base]`, base doubling from 100 ms,
/// capped at 5 s). Anything the server actually answered — including
/// rejections — is returned as-is, so terminal HTTP errors keep their
/// non-zero exit and are never resubmitted.
fn http_request_with_retry(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    retries: u32,
) -> Result<(u16, String), String> {
    let mut attempt = 0u32;
    loop {
        match http_request(addr, method, path, body) {
            Ok(result) => return Ok(result),
            Err(e) if attempt < retries && e.starts_with("connect ") => {
                let base = 100u64.saturating_mul(1u64 << attempt.min(6)).min(5_000);
                let nanos = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| u64::from(d.subsec_nanos()))
                    .unwrap_or(0);
                let delay = base / 2 + nanos % (base / 2 + 1);
                attempt += 1;
                eprintln!(
                    "transient connection failure ({e}); retry {attempt}/{retries} in {delay} ms"
                );
                std::thread::sleep(std::time::Duration::from_millis(delay));
            }
            Err(e) => return Err(e),
        }
    }
}

/// `sam-cli train --addr HOST:PORT --workload FILE [--follow true]` — the
/// train-as-a-service client. Uploads the workload to `POST /train`, prints
/// the job id, and with `--follow true` polls `GET /jobs/{id}` until the job
/// reaches a terminal state (promoted / rejected / failed / cancelled).
/// Transient connection failures (server restarting, failover window) are
/// retried up to `--retries` times with jittered exponential backoff.
fn train_remote(args: &Args) -> Result<(), String> {
    let addr = args.required("addr")?;
    let retries: u32 = args.num("retries", 3u32)?;
    let workload_path = args.required("workload").map_err(|_| {
        "remote mode needs --workload FILE (a labelled workload to upload)".to_string()
    })?;
    let body = fs::read(workload_path).map_err(|e| format!("read {workload_path}: {e}"))?;

    // Assemble the /train query string from flags; only explicit flags are
    // forwarded so the server's defaults stay authoritative.
    let model = args.get("model").unwrap_or("default");
    let mut query = format!("model={model}");
    for (flag, param) in [
        ("epochs", "epochs"),
        ("batch", "batch"),
        ("lr", "lr"),
        ("seed", "seed"),
        ("hidden", "hidden"),
        ("holdout", "holdout"),
        ("eval-samples", "eval_samples"),
        ("eval-seed", "eval_seed"),
        ("checkpoint-every", "checkpoint_every"),
        ("max-qerror", "max_qerror"),
        ("data", "data"),
    ] {
        if let Some(v) = args.get(flag) {
            query.push_str(&format!("&{param}={v}"));
        }
    }

    let (status, response) =
        http_request_with_retry(addr, "POST", &format!("/train?{query}"), &body, retries)?;
    if status != 202 {
        return Err(format!(
            "POST /train returned {status}: {}",
            response.trim()
        ));
    }
    let doc =
        serde_json::parse_value(&response).map_err(|e| format!("bad /train response: {e}"))?;
    let job_id = doc
        .get("job_id")
        .and_then(serde_json::Value::as_u64)
        .ok_or("no job_id in /train response")?;
    println!(
        "training job {job_id} accepted (model {model:?}, {} workload bytes)",
        body.len()
    );

    let follow: bool = args.num("follow", false)?;
    if !follow {
        println!("poll GET http://{addr}/jobs/{job_id} for progress, or rerun with --follow true");
        return Ok(());
    }

    let poll = std::time::Duration::from_millis(args.num("poll-ms", 500u64)?.max(10));
    let mut last_line = String::new();
    loop {
        let (status, response) =
            http_request_with_retry(addr, "GET", &format!("/jobs/{job_id}"), b"", retries)?;
        if status != 200 {
            return Err(format!(
                "GET /jobs/{job_id} returned {status}: {}",
                response.trim()
            ));
        }
        let doc =
            serde_json::parse_value(&response).map_err(|e| format!("bad /jobs response: {e}"))?;
        let state = doc
            .get("state")
            .and_then(serde_json::Value::as_str)
            .unwrap_or("?");
        let stage = doc
            .get("stage")
            .and_then(serde_json::Value::as_str)
            .unwrap_or("?");
        let line = match doc.get("training") {
            Some(t) => {
                let epoch = t
                    .get("epoch")
                    .and_then(serde_json::Value::as_u64)
                    .unwrap_or(0);
                let total = t
                    .get("total_epochs")
                    .and_then(serde_json::Value::as_u64)
                    .unwrap_or(0);
                match t.get("loss").and_then(serde_json::Value::as_f64) {
                    Some(loss) => format!("{state} [{stage}] epoch {epoch}/{total} loss {loss:.4}"),
                    None => format!("{state} [{stage}] epoch {epoch}/{total}"),
                }
            }
            None => format!("{state} [{stage}]"),
        };
        if line != last_line {
            println!("job {job_id}: {line}");
            last_line = line;
        }
        match state {
            "promoted" => {
                let version = doc.get("model_version").and_then(serde_json::Value::as_u64);
                match version {
                    Some(v) => println!("candidate promoted: model {model:?} now v{v}"),
                    None => println!("candidate promoted"),
                }
                return Ok(());
            }
            "rejected" => {
                return Err(format!(
                    "candidate rejected by the promotion gate: {}",
                    doc.get("result")
                        .map(serde_json::Value::to_string)
                        .unwrap_or_default()
                ));
            }
            "failed" => {
                return Err(format!(
                    "training job failed: {}",
                    doc.get("error")
                        .and_then(serde_json::Value::as_str)
                        .unwrap_or("unknown")
                ));
            }
            "cancelled" => return Err("training job was cancelled".into()),
            _ => std::thread::sleep(poll),
        }
    }
}

fn generate(args: &Args) -> Result<(), String> {
    let trace_out = setup_obs(args)?;
    let schema_path = args.required("schema")?;
    let out = args.required("out")?;
    let seed: u64 = args.num("seed", 0)?;

    let schema_text =
        fs::read_to_string(schema_path).map_err(|e| format!("read {schema_path}: {e}"))?;
    let file_schema = SchemaFile::from_json(&schema_text)?.to_schema()?;

    // Two modes: with --data (stats + labels derived from the original), or
    // data-free with --stats plus a fully labelled --workload — the paper's
    // actual deployment scenario, where no row of the data is available.
    let (db_schema, stats, workload) = match (args.get("data"), args.get("stats")) {
        (Some(data_dir), _) => {
            let db = load_database(schema_path, data_dir)?;
            let stats = DatabaseStats::from_database(&db);
            let workload = build_workload(&db, args, 2_000)?;
            (db.schema().clone(), stats, workload)
        }
        (None, Some(stats_path)) => {
            let stats_text =
                fs::read_to_string(stats_path).map_err(|e| format!("read {stats_path}: {e}"))?;
            let stats = StatsFile::from_json(&stats_text)?.to_stats(&file_schema)?;
            let wl_path = args.required("workload").map_err(|_| {
                "data-free mode needs --workload with `-- card=N` labels".to_string()
            })?;
            let workload = load_labelled_workload(wl_path)?;
            (file_schema, stats, workload)
        }
        (None, None) => return Err("provide --data DIR or --stats stats.json".into()),
    };
    println!(
        "schema of {} tables; workload of {} queries",
        db_schema.tables().len(),
        workload.len()
    );

    let trained = match args.get("model") {
        Some(model_path) => {
            let json =
                fs::read_to_string(model_path).map_err(|e| format!("read {model_path}: {e}"))?;
            let (model, model_schema) = sam::ar::load_model(&json).map_err(|e| e.to_string())?;
            if model_schema != db_schema {
                return Err("model schema does not match --schema".into());
            }
            println!("loaded trained model from {model_path}");
            Sam::from_frozen(
                model_schema,
                model,
                sam::ar::TrainReport {
                    epoch_losses: vec![],
                    constraints_processed: 0,
                    wall_seconds: 0.0,
                },
            )
        }
        None => {
            let config = sam_config(args)?;
            let trained =
                Sam::fit(&db_schema, &stats, &workload, &config).map_err(|e| e.to_string())?;
            println!("trained in {:.1}s", trained.report.wall_seconds);
            trained
        }
    };
    let trained = match backend_arg(args)? {
        Some(kind) => {
            println!("inference backend: {kind}");
            trained.with_backend(kind)
        }
        None => trained,
    };

    let (generated, report) = trained
        .generate(&GenerationConfig {
            foj_samples: args.num("foj-samples", 20_000usize)?,
            seed,
            ..Default::default()
        })
        .map_err(|e| e.to_string())?;
    println!("generated in {:.1}s", report.wall_seconds);
    fidelity_report(&generated, &workload, "input constraints");
    save_database(&generated, out)?;
    println!("synthetic database written to {out}/");
    write_trace(&trace_out)?;
    Ok(())
}

fn evaluate(args: &Args) -> Result<(), String> {
    let schema_path = args.required("schema")?;
    let original = load_database(schema_path, args.required("original")?)?;
    let generated = load_database(schema_path, args.required("generated")?)?;
    let workload = build_workload(&original, args, 500)?;
    fidelity_report(&generated, &workload, "workload");

    let queries: Vec<Query> = workload
        .iter()
        .take(100)
        .map(|lq| lq.query.clone())
        .collect();
    let dev = sam::engine::performance_deviation(&original, &generated, &queries, 5)
        .map_err(|e| e.to_string())?;
    let p = Percentiles::from_values(&dev.iter().map(|d| d * 1e3).collect::<Vec<_>>());
    println!(
        "performance deviation: median {:.1} µs  90th {:.1} µs  mean {:.1} µs",
        p.median, p.p90, p.mean
    );
    Ok(())
}

fn estimate(args: &Args) -> Result<(), String> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let schema_path = args.required("schema")?;
    let db = load_database(schema_path, args.required("data")?)?;
    let stats = DatabaseStats::from_database(&db);
    let workload = build_workload(&db, args, 1_500)?;
    let config = sam_config(args)?;
    let trained = Sam::fit(db.schema(), &stats, &workload, &config).map_err(|e| e.to_string())?;
    let trained = match backend_arg(args)? {
        Some(kind) => {
            println!("inference backend: {kind}");
            trained.with_backend(kind)
        }
        None => trained,
    };
    println!("model trained; enter one SQL query per line (Ctrl-D to end):");

    let mut rng = StdRng::seed_from_u64(args.num("seed", 0u64)?);
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_query(line) {
            Ok(q) => match sam::ar::estimate_cardinality(trained.model(), &q, 512, &mut rng) {
                Ok(est) => {
                    let truth = evaluate_cardinality(&db, &q).map_err(|e| e.to_string())?;
                    println!("estimate {est:.1}  (true {truth})");
                }
                Err(e) => eprintln!("cannot estimate: {e}"),
            },
            Err(e) => eprintln!("parse error: {e}"),
        }
    }
    Ok(())
}

fn serve(args: &Args) -> Result<(), String> {
    if args.get("help").is_some() {
        serve_help();
        return Ok(());
    }
    let trace_out = setup_obs(args)?;
    let config = sam::serve::ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:8080").to_string(),
        workers: args.num("workers", 2usize)?,
        queue_capacity: args.num("queue", 64usize)?,
        max_batch: args.num("max-batch", 16usize)?,
        default_samples: args.num("samples", 200usize)?,
        default_timeout_ms: args.num("timeout-ms", 10_000u64)?,
        cache_capacity: args.num("cache", 1024usize)?,
        backend: backend_arg(args)?,
        idle_timeout_ms: args.num("idle-timeout-ms", 30_000u64)?,
        max_conn_requests: args.num("conn-requests", 1_000usize)?,
        journal_dir: args.get("journal-dir").map(PathBuf::from),
        journal_compact_bytes: match args.num("journal-compact-bytes", 4 * 1024 * 1024u64)? {
            0 => None, // 0 disables replay-time auto-compaction
            n => Some(n),
        },
        quality_sample: args.num("quality-sample", 0.01f64)?,
        quality_window: args.num("quality-window", 256usize)?,
        quality_alert_qerror: args.num("quality-alert-qerror", 100.0f64)?,
        quality_audit: args.get("quality-audit").map(PathBuf::from),
        flight_capacity: args.num("flight-capacity", 512usize)?,
        slow_query_ms: args.num("slow-ms", 250u64)?,
        promote_max_qerror: args.num("promote-max-qerror", 1000.0f64)?,
        job_id_base: args.num("job-id-base", 0u64)?,
    };
    let journalled = config.journal_dir.is_some();
    let server = sam::serve::Server::start(config).map_err(|e| e.to_string())?;
    if let Some(models) = args.get("models") {
        for spec in models.split(',') {
            // name=path loads the model alone; name=path=datadir also
            // attaches the reference relations ({table}.csv under datadir)
            // so the quality monitor scores in exact mode.
            let mut parts = spec.splitn(3, '=');
            let name = parts.next().unwrap_or_default().trim();
            let path = parts.next().map(str::trim);
            let data = parts.next().map(str::trim);
            let Some(path) = path.filter(|p| !name.is_empty() && !p.is_empty()) else {
                return Err(format!(
                    "--models entries are name=path or name=path=datadir, got {spec:?}"
                ));
            };
            let version = server
                .registry()
                .load_file_with_data(name, path, data)
                .map_err(|e| e.to_string())?;
            match data {
                Some(dir) => {
                    println!("loaded model {name} v{version} from {path} (reference data: {dir})")
                }
                None => println!("loaded model {name} v{version} from {path}"),
            }
        }
    }
    // Replay after model loading: interrupted jobs re-bind to the model
    // registered under their recorded name.
    if journalled {
        let replay = server.replay_journal().map_err(|e| e.to_string())?;
        println!(
            "journal replay: {} completed reloaded, {} interrupted resumed, {} failed/terminal",
            replay.completed, replay.resumed, replay.failed
        );
    }
    println!(
        "sam-serve listening on http://{} ({} models loaded; POST /models to add more)",
        server.addr(),
        server.registry().len()
    );
    // Serve until the process is terminated; all work happens on the
    // server's own threads. Embedders use `Server::shutdown` to drain.
    // With --trace-out the collected trace is re-exported periodically
    // (the collector is non-draining, so each write is the full trace).
    let interval = if trace_out.is_some() { 30 } else { 3600 };
    loop {
        std::thread::sleep(std::time::Duration::from_secs(interval));
        write_trace(&trace_out)?;
    }
}

/// `sam-cli router` — fault-tolerant sharded serving: spawn and supervise a
/// pool of `sam-cli serve` worker processes, each owning a consistent-hash
/// partition of the model namespace, and front them on one address speaking
/// the plain `sam-serve` HTTP surface. See `docs/SHARDING.md`.
fn router_cmd(args: &Args) -> Result<(), String> {
    if args.get("help").is_some() {
        router_help();
        return Ok(());
    }
    let trace_out = setup_obs(args)?;
    let mut config = sam::router::RouterConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:8080").to_string(),
        workers: args.num("workers", 2usize)?,
        store_root: PathBuf::from(args.get("store-root").unwrap_or("sam-shards")),
        health_interval_ms: args.num("health-interval-ms", 200u64)?,
        probe_timeout_ms: args.num("probe-timeout-ms", 1_000u64)?,
        proxy_timeout_ms: args.num("proxy-timeout-ms", 120_000u64)?,
        restart_backoff_ms: args.num("restart-backoff-ms", 100u64)?,
        restart_backoff_cap_ms: args.num("restart-backoff-cap-ms", 5_000u64)?,
        retry_wait_ms: args.num("retry-wait-ms", 2_000u64)?,
        ..Default::default()
    };
    // Workers default to this very binary's `serve` subcommand; an explicit
    // `--worker-cmd` swaps in anything speaking the same surface.
    config.worker_cmd = match args.get("worker-cmd") {
        Some(cmd) => cmd.split_whitespace().map(str::to_string).collect(),
        None => {
            let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
            vec![exe.display().to_string(), "serve".to_string()]
        }
    };
    if let Some(flags) = args.get("worker-flags") {
        config.worker_flags = flags.split_whitespace().map(str::to_string).collect();
    }
    if let Some(models) = args.get("models") {
        for spec in models.split(',') {
            config.models.push(sam::router::ModelSpec::parse(spec)?);
        }
    }
    let router = sam::router::Router::start(config).map_err(|e| e.to_string())?;
    let workers = router.workers();
    for worker in &workers {
        println!(
            "shard {}: worker at {} ({})",
            worker.slot,
            worker.addr(),
            worker.health().label()
        );
    }
    println!(
        "sam-router listening on http://{} ({} shards, {} models placed)",
        router.addr(),
        workers.len(),
        router.placement().len()
    );
    // Serve until terminated, like `serve`: supervision, routing, and
    // rebalance all run on the router's own threads.
    let interval = if trace_out.is_some() { 30 } else { 3600 };
    loop {
        std::thread::sleep(std::time::Duration::from_secs(interval));
        write_trace(&trace_out)?;
    }
}

/// `sam-cli journal compact DIR` — offline journal maintenance: replay the
/// job log (recovery runs first: torn tails truncated, corrupt records
/// quarantined), fold it into `snapshot.jsonl`, and truncate the log. Safe
/// to run only while no server is serving the directory.
fn journal_cmd(args: &Args) -> Result<(), String> {
    let (action, dir) = match args.positional.as_slice() {
        [action, dir] => (action.as_str(), dir),
        _ => return Err("usage: sam-cli journal compact DIR".into()),
    };
    if action != "compact" {
        return Err(format!(
            "unknown journal action {action:?} (expected \"compact\")"
        ));
    }
    let journal = sam::serve::Journal::open(
        Path::new(dir),
        sam::obs::counter("sam_journal_events_total"),
    )
    .map_err(|e| e.to_string())?;
    let before = journal.log_len();
    let jobs = journal.compact().map_err(|e| e.to_string())?;
    println!(
        "compacted {dir}: {jobs} jobs in snapshot, log {before} -> {} bytes",
        journal.log_len()
    );
    Ok(())
}

// ----------------------------------------------------------------- workgen

/// `sam-cli workgen <synth|mine|load>` — workload tooling built on
/// `sam-workgen`: deterministic query synthesis from a TOML profile,
/// adversarial hard-query mining against a trained model, and open-loop
/// load replay against a live `sam-cli serve`. See `docs/WORKGEN.md`.
fn workgen_cmd(args: &Args) -> Result<(), String> {
    if args.get("help").is_some() {
        workgen_help();
        return Ok(());
    }
    match args.positional.first().map(String::as_str) {
        Some("synth") => workgen_synth(args),
        Some("mine") => workgen_mine(args),
        Some("load") => workgen_load(args),
        _ => Err("usage: sam-cli workgen <synth|mine|load> [--flags]".into()),
    }
}

/// The database every workgen action runs against: `--schema` + `--data`
/// CSVs, or a synthetic `--dataset` (sized by `--rows`, seeded separately
/// from the synthesis `--seed` so workload and data vary independently).
fn workgen_database(args: &Args) -> Result<Database, String> {
    match (args.get("schema"), args.get("data")) {
        (Some(schema), Some(data)) => load_database(schema, data),
        (None, None) => {
            let dataset = args.get("dataset").unwrap_or("census");
            let rows: usize = args.num("rows", 2_000)?;
            let seed: u64 = args.num("data-seed", 0)?;
            synthetic(dataset, rows, seed)
        }
        _ => Err("provide both --schema and --data, or neither for --dataset".into()),
    }
}

fn workgen_profile(args: &Args) -> Result<sam::workgen::SynthProfile, String> {
    match args.get("profile") {
        Some(path) => {
            let text = fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            sam::workgen::SynthProfile::from_toml(&text).map_err(|e| e.to_string())
        }
        None => Ok(sam::workgen::SynthProfile::default()),
    }
}

fn workgen_synth(args: &Args) -> Result<(), String> {
    let profile = workgen_profile(args)?;
    let db = workgen_database(args)?;
    let seed: u64 = args.num("seed", 0)?;
    let count: u64 = args.num("count", profile.queries)?;
    let label: bool = args.num("label", false)?;
    let target =
        sam::workgen::SynthTarget::from_database(&db, &profile).map_err(|e| e.to_string())?;
    let label_db = if label { Some(&db) } else { None };

    let report = match args.get("out") {
        Some(path) => {
            let file = fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
            let mut out = std::io::BufWriter::new(file);
            let report =
                sam::workgen::synthesize_into(&target, &profile, seed, count, label_db, &mut out)
                    .map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            report
        }
        None => {
            let stdout = std::io::stdout();
            let mut out = std::io::BufWriter::new(stdout.lock());
            let report =
                sam::workgen::synthesize_into(&target, &profile, seed, count, label_db, &mut out)
                    .map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            report
        }
    };
    // Summary on stderr so `synth` pipes cleanly into files and tools.
    eprintln!(
        "profile {:?} seed {seed}: {} of {} distinct queries ({} attempts, {} duplicates, {} bytes{})",
        profile.name,
        report.emitted,
        report.requested,
        report.attempts,
        report.duplicates,
        report.bytes,
        if report.labeled { ", labelled" } else { "" }
    );
    Ok(())
}

fn workgen_mine(args: &Args) -> Result<(), String> {
    let db = workgen_database(args)?;
    let stats = DatabaseStats::from_database(&db);

    // A model to attack: load one, or train a fresh one on a generated
    // workload (the usual quick path for synthetic datasets).
    let trained = match args.get("model") {
        Some(path) => {
            let json = fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let (model, model_schema) = sam::ar::load_model(&json).map_err(|e| e.to_string())?;
            if &model_schema != db.schema() {
                return Err("model schema does not match the target database".into());
            }
            println!("loaded trained model from {path}");
            Sam::from_frozen(
                model_schema,
                model,
                sam::ar::TrainReport {
                    epoch_losses: vec![],
                    constraints_processed: 0,
                    wall_seconds: 0.0,
                },
            )
        }
        None => {
            let workload = build_workload(&db, args, 500)?;
            let config = sam_config(args)?;
            let trained =
                Sam::fit(db.schema(), &stats, &workload, &config).map_err(|e| e.to_string())?;
            println!(
                "trained attack target in {:.1}s",
                trained.report.wall_seconds
            );
            trained
        }
    };

    // Seed queries: an explicit file, or a synthesized baseline batch.
    let seed: u64 = args.num("seed", 0)?;
    let seeds = match args.get("seeds") {
        Some(path) => load_workload_queries(path)?,
        None => {
            let profile = workgen_profile(args)?;
            let target = sam::workgen::SynthTarget::from_database(&db, &profile)
                .map_err(|e| e.to_string())?;
            sam::workgen::synthesize(&target, &profile, seed, args.num("count", 64u64)?)
        }
    };

    let config = sam::workgen::MinerConfig {
        top_k: args.num("top-k", 10usize)?,
        rounds: args.num("rounds", 8usize)?,
        pool: args.num("pool", 16usize)?,
        mutants: args.num("mutants", 4usize)?,
        samples: args.num("samples", 64usize)?,
        seed,
    };
    let report = sam::workgen::mine_hard_queries(trained.model(), &db, &seeds, &config)
        .map_err(|e| e.to_string())?;

    println!(
        "baseline over {} seeds: mean Q-Error {:.2}, max {:.2}",
        seeds.len(),
        report.baseline_mean,
        report.baseline_max
    );
    println!(
        "mined {} hard queries ({} scored, {} rounds; worst climbed {:.2} -> {:.2}):",
        report.worst.len(),
        report.evaluated,
        report.rounds_run,
        report.worst_trail.first().copied().unwrap_or(f64::NAN),
        report.worst_trail.last().copied().unwrap_or(f64::NAN),
    );
    for m in &report.worst {
        println!(
            "  q-error {:10.2}  est {:12.1}  true {:10}  {}",
            m.q_error, m.estimate, m.truth, m.query
        );
    }

    // `--out` persists the worst set as a labelled workload file, ready to
    // feed back into training or `workgen load`.
    if let Some(path) = args.get("out") {
        let mut text = String::new();
        for m in &report.worst {
            text.push_str(&format!("{} -- card={}\n", m.query, m.truth));
        }
        fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
        println!("worst set written to {path}");
    }
    Ok(())
}

fn workgen_load(args: &Args) -> Result<(), String> {
    let trace = match args.get("workload") {
        Some(path) => load_workload_queries(path)?,
        None => {
            let db = workgen_database(args)?;
            let profile = workgen_profile(args)?;
            let target = sam::workgen::SynthTarget::from_database(&db, &profile)
                .map_err(|e| e.to_string())?;
            let seed: u64 = args.num("seed", 0)?;
            sam::workgen::synthesize(&target, &profile, seed, args.num("count", 256u64)?)
        }
    };
    // `--seeds FILE` replays a mined hard-query set (e.g. `workgen mine
    // --out`) interleaved with the trace; the report then carries per-class
    // latency percentiles for mined vs synthetic queries.
    let mined = match args.get("seeds") {
        Some(path) => load_workload_queries(path)?,
        None => Vec::new(),
    };

    let config = sam::workgen::LoadConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:8080").to_string(),
        model: args.get("model").unwrap_or("default").to_string(),
        rate: args.num("rate", 100.0f64)?,
        connections: args.num("connections", 4usize)?,
        duration: std::time::Duration::from_millis(args.num("duration-ms", 10_000u64)?),
        samples: args.num("samples", 64u64)?,
        timeout_ms: args.num("timeout-ms", 10_000u64)?,
    };
    eprintln!(
        "replaying {} trace queries{} at {} req/s over {} connections for {:.1}s against http://{}",
        trace.len(),
        if mined.is_empty() {
            String::new()
        } else {
            format!(" + {} mined seeds", mined.len())
        },
        config.rate,
        config.connections,
        config.duration.as_secs_f64(),
        config.addr
    );
    // Bracket the run with server-side /metrics scrapes: the delta shows
    // what the server saw (cache hits, panics, quality alerts) next to the
    // client-side numbers. A failed scrape never fails the run.
    let scrape_timeout = std::time::Duration::from_millis(config.timeout_ms.max(1));
    let before = sam::workgen::scrape_server_counters(&config.addr, scrape_timeout);
    let report =
        sam::workgen::run_load_with_seeds(&trace, &mined, &config).map_err(|e| e.to_string())?;
    let after = sam::workgen::scrape_server_counters(&config.addr, scrape_timeout);
    println!("{}", sam::workgen::LoadReport::markdown_header());
    println!("{}", report.markdown_row());
    if let Some(section) = report.markdown_class_section() {
        println!();
        println!("{section}");
    }
    match (before, after) {
        (Some(before), Some(after)) => {
            println!();
            println!("{}", after.delta(&before).markdown_section());
        }
        _ => eprintln!("note: /metrics scrape failed; no server-side delta section"),
    }
    eprintln!(
        "completed {} of {} scheduled ({} socket errors; {} 2xx / {} 4xx / {} 5xx) in {:.2}s",
        report.completed,
        report.scheduled,
        report.errors,
        report.status_2xx,
        report.status_4xx,
        report.status_5xx,
        report.elapsed_secs
    );
    Ok(())
}
