//! JSON stats files: the metadata summary a cloud provider actually has in
//! the paper's scenario — table sizes and per-column domains — without any
//! row of the customer's data. Together with a schema file and a labelled
//! workload file, this lets `sam-cli generate` run with **no `--data`
//! directory at all**.
//!
//! ```json
//! {
//!   "tables": [
//!     {"name": "census", "num_rows": 48000, "max_fanout": 0, "columns": [
//!       {"name": "age", "int_range": [17, 90]},
//!       {"name": "workclass", "values": [0, 1, 2, 3, 4, 5, 6, 7, 8]}
//!     ]}
//!   ],
//!   "foj_size": 48000
//! }
//! ```
//!
//! Columns declare either an inclusive `int_range` or an explicit `values`
//! list (ints, floats, or strings).

use sam_storage::{DatabaseSchema, DatabaseStats, Domain, TableStats, Value};
use serde::{Deserialize, Serialize};

/// One column's domain description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnStatsFile {
    /// Column name (must be a content column of the table).
    pub name: String,
    /// Inclusive integer range `[lo, hi]`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub int_range: Option<[i64; 2]>,
    /// Explicit domain values.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub values: Option<Vec<serde_json::Value>>,
}

/// One table's stats.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableStatsFile {
    /// Table name.
    pub name: String,
    /// `|T|` — the size the generated relation must have.
    pub num_rows: u64,
    /// Largest fk fanout into the parent (0 for the root / single tables).
    #[serde(default)]
    pub max_fanout: u64,
    /// Content-column domains, in schema order.
    pub columns: Vec<ColumnStatsFile>,
}

/// The stats file root.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsFile {
    /// Per-table stats (must cover every schema table, in schema order).
    pub tables: Vec<TableStatsFile>,
    /// Full-outer-join size (defaults to the single table's size).
    #[serde(default)]
    pub foj_size: Option<u128>,
}

fn value_from_json(v: &serde_json::Value) -> Result<Value, String> {
    match v {
        serde_json::Value::Null => Ok(Value::Null),
        serde_json::Value::Number(n) => {
            if let Some(i) = n.as_i64() {
                Ok(Value::Int(i))
            } else {
                Ok(Value::Float(n.as_f64().ok_or("bad number")?))
            }
        }
        serde_json::Value::String(s) => Ok(Value::str(s)),
        other => Err(format!("unsupported domain value {other}")),
    }
}

fn value_to_json(v: &Value) -> serde_json::Value {
    match v {
        Value::Null => serde_json::Value::Null,
        Value::Int(i) => serde_json::json!(i),
        Value::Float(f) => serde_json::json!(f),
        Value::Str(s) => serde_json::json!(s.to_string()),
    }
}

impl StatsFile {
    /// Parse from JSON text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("stats JSON: {e}"))
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("stats file serialises")
    }

    /// Validate against a schema and convert to [`DatabaseStats`].
    pub fn to_stats(&self, schema: &DatabaseSchema) -> Result<DatabaseStats, String> {
        let mut tables = Vec::new();
        for decl in schema.tables() {
            let tf = self
                .tables
                .iter()
                .find(|t| t.name == decl.name)
                .ok_or_else(|| format!("stats missing table {}", decl.name))?;
            let mut columns = Vec::new();
            for ci in decl.content_indices() {
                let col = &decl.columns[ci];
                let cf = tf
                    .columns
                    .iter()
                    .find(|c| c.name == col.name)
                    .ok_or_else(|| format!("stats missing column {}.{}", decl.name, col.name))?;
                let domain = match (&cf.int_range, &cf.values) {
                    (Some([lo, hi]), None) => {
                        if hi < lo {
                            return Err(format!("{}.{}: empty int_range", decl.name, col.name));
                        }
                        Domain::int_range(*lo, *hi)
                    }
                    (None, Some(values)) => {
                        let vs: Result<Vec<Value>, String> =
                            values.iter().map(value_from_json).collect();
                        Domain::new(vs?)
                    }
                    _ => {
                        return Err(format!(
                            "{}.{}: exactly one of int_range / values required",
                            decl.name, col.name
                        ))
                    }
                };
                columns.push(sam_storage::ColumnStats {
                    name: col.name.clone(),
                    dtype: col.dtype,
                    domain: domain.shared(),
                });
            }
            tables.push(TableStats {
                name: tf.name.clone(),
                num_rows: tf.num_rows,
                columns,
                max_fanout: tf.max_fanout,
            });
        }
        let foj_size = self
            .foj_size
            .unwrap_or_else(|| tables.first().map(|t| t.num_rows as u128).unwrap_or(0));
        Ok(DatabaseStats { tables, foj_size })
    }

    /// Export from computed [`DatabaseStats`] (used by `sam-cli export`).
    pub fn from_stats(stats: &DatabaseStats) -> Self {
        let tables = stats
            .tables
            .iter()
            .map(|t| TableStatsFile {
                name: t.name.clone(),
                num_rows: t.num_rows,
                max_fanout: t.max_fanout,
                columns: t
                    .columns
                    .iter()
                    .map(|c| ColumnStatsFile {
                        name: c.name.clone(),
                        int_range: None,
                        values: Some(c.domain.values().iter().map(value_to_json).collect()),
                    })
                    .collect(),
            })
            .collect();
        StatsFile {
            tables,
            foj_size: Some(stats.foj_size),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_storage::{paper_example, DatabaseStats};

    #[test]
    fn round_trips_figure3_stats() {
        let db = paper_example::figure3_database();
        let stats = DatabaseStats::from_database(&db);
        let file = StatsFile::from_stats(&stats);
        let json = file.to_json();
        let parsed = StatsFile::from_json(&json).unwrap();
        let back = parsed.to_stats(db.schema()).unwrap();
        assert_eq!(back.foj_size, stats.foj_size);
        for (a, b) in back.tables.iter().zip(&stats.tables) {
            assert_eq!(a.num_rows, b.num_rows);
            assert_eq!(a.max_fanout, b.max_fanout);
            for (ca, cb) in a.columns.iter().zip(&b.columns) {
                assert_eq!(ca.domain.values(), cb.domain.values());
            }
        }
    }

    #[test]
    fn int_range_domains() {
        let json = r#"{
          "tables": [
            {"name": "census", "num_rows": 100, "columns": [
              {"name": "age", "int_range": [17, 20]}
            ]}
          ]
        }"#;
        let schema = sam_storage::DatabaseSchema::single(sam_storage::TableSchema::new(
            "census",
            vec![sam_storage::ColumnDef::content(
                "age",
                sam_storage::DataType::Int,
            )],
        ));
        let stats = StatsFile::from_json(json)
            .unwrap()
            .to_stats(&schema)
            .unwrap();
        assert_eq!(stats.tables[0].columns[0].domain.len(), 4);
        assert_eq!(stats.foj_size, 100);
    }

    #[test]
    fn rejects_missing_pieces() {
        let schema = sam_storage::DatabaseSchema::single(sam_storage::TableSchema::new(
            "t",
            vec![sam_storage::ColumnDef::content(
                "a",
                sam_storage::DataType::Int,
            )],
        ));
        let missing_table = r#"{"tables": []}"#;
        assert!(StatsFile::from_json(missing_table)
            .unwrap()
            .to_stats(&schema)
            .is_err());
        let missing_col = r#"{"tables": [{"name": "t", "num_rows": 5, "columns": []}]}"#;
        assert!(StatsFile::from_json(missing_col)
            .unwrap()
            .to_stats(&schema)
            .is_err());
        let both = r#"{"tables": [{"name": "t", "num_rows": 5, "columns": [
            {"name": "a", "int_range": [0, 1], "values": [1]}
        ]}]}"#;
        assert!(StatsFile::from_json(both)
            .unwrap()
            .to_stats(&schema)
            .is_err());
    }
}
