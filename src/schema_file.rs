//! JSON schema files for the CLI: a serde DTO layer over
//! [`sam_storage::DatabaseSchema`].
//!
//! ```json
//! {
//!   "tables": [
//!     {"name": "title", "columns": [
//!       {"name": "id", "type": "int", "role": "primary_key"},
//!       {"name": "kind_id", "type": "int", "role": "content"}
//!     ]},
//!     {"name": "cast_info", "columns": [
//!       {"name": "movie_id", "type": "int", "role": "foreign_key",
//!        "references": "title"},
//!       {"name": "role_id", "type": "int", "role": "content"}
//!     ]}
//!   ]
//! }
//! ```
//!
//! Foreign-key edges are derived from the column declarations.

use sam_storage::{
    ColumnDef, ColumnRole, DataType, DatabaseSchema, ForeignKeyEdge, StorageError, TableSchema,
};
use serde::{Deserialize, Serialize};

/// One column in the schema file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnFile {
    /// Column name.
    pub name: String,
    /// `int` | `float` | `text`.
    #[serde(rename = "type")]
    pub dtype: String,
    /// `content` (default) | `primary_key` | `foreign_key`.
    #[serde(default = "default_role")]
    pub role: String,
    /// Referenced table for foreign keys.
    #[serde(default)]
    pub references: Option<String>,
}

fn default_role() -> String {
    "content".into()
}

/// One table in the schema file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableFile {
    /// Table name (its CSV is `<name>.csv`).
    pub name: String,
    /// Ordered columns.
    pub columns: Vec<ColumnFile>,
}

/// The schema file root.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemaFile {
    /// All tables.
    pub tables: Vec<TableFile>,
}

impl SchemaFile {
    /// Parse from JSON text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("schema JSON: {e}"))
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("schema file serialises")
    }

    /// Convert into a validated [`DatabaseSchema`].
    pub fn to_schema(&self) -> Result<DatabaseSchema, String> {
        let mut tables = Vec::new();
        let mut edges = Vec::new();
        for t in &self.tables {
            let mut columns = Vec::new();
            for c in &t.columns {
                let dtype = match c.dtype.as_str() {
                    "int" => DataType::Int,
                    "float" => DataType::Float,
                    "text" | "str" | "string" => DataType::Str,
                    other => return Err(format!("unknown type {other:?} in {}", t.name)),
                };
                let role = match c.role.as_str() {
                    "content" => ColumnRole::Content,
                    "primary_key" | "pk" => ColumnRole::PrimaryKey,
                    "foreign_key" | "fk" => {
                        let references = c.references.clone().ok_or_else(|| {
                            format!("column {}.{} needs \"references\"", t.name, c.name)
                        })?;
                        edges.push(ForeignKeyEdge {
                            pk_table: references.clone(),
                            fk_table: t.name.clone(),
                            fk_column: c.name.clone(),
                        });
                        ColumnRole::ForeignKey { references }
                    }
                    other => return Err(format!("unknown role {other:?} in {}", t.name)),
                };
                columns.push(ColumnDef {
                    name: c.name.clone(),
                    dtype,
                    role,
                });
            }
            tables.push(TableSchema::new(t.name.clone(), columns));
        }
        DatabaseSchema::new(tables, edges).map_err(|e: StorageError| e.to_string())
    }

    /// Build a schema file from an existing [`DatabaseSchema`] (for
    /// exporting synthetic datasets).
    pub fn from_schema(schema: &DatabaseSchema) -> Self {
        let tables = schema
            .tables()
            .iter()
            .map(|t| TableFile {
                name: t.name.clone(),
                columns: t
                    .columns
                    .iter()
                    .map(|c| {
                        let (role, references) = match &c.role {
                            ColumnRole::Content => ("content".into(), None),
                            ColumnRole::PrimaryKey => ("primary_key".into(), None),
                            ColumnRole::ForeignKey { references } => {
                                ("foreign_key".into(), Some(references.clone()))
                            }
                        };
                        ColumnFile {
                            name: c.name.clone(),
                            dtype: match c.dtype {
                                DataType::Int => "int".into(),
                                DataType::Float => "float".into(),
                                DataType::Str => "text".into(),
                            },
                            role,
                            references,
                        }
                    })
                    .collect(),
            })
            .collect();
        SchemaFile { tables }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_storage::paper_example;

    #[test]
    fn round_trips_figure3_schema() {
        let schema = paper_example::figure3_schema();
        let file = SchemaFile::from_schema(&schema);
        let json = file.to_json();
        let parsed = SchemaFile::from_json(&json).unwrap();
        let back = parsed.to_schema().unwrap();
        assert_eq!(&back, &schema);
    }

    #[test]
    fn parses_handwritten_json() {
        let json = r#"{
          "tables": [
            {"name": "t", "columns": [
              {"name": "id", "type": "int", "role": "primary_key"},
              {"name": "v", "type": "text"}
            ]},
            {"name": "child", "columns": [
              {"name": "tid", "type": "int", "role": "foreign_key", "references": "t"},
              {"name": "x", "type": "float"}
            ]}
          ]
        }"#;
        let schema = SchemaFile::from_json(json).unwrap().to_schema().unwrap();
        assert_eq!(schema.tables().len(), 2);
        assert_eq!(schema.edges().len(), 1);
    }

    #[test]
    fn rejects_bad_role_and_missing_reference() {
        let bad_role =
            r#"{"tables":[{"name":"t","columns":[{"name":"a","type":"int","role":"wat"}]}]}"#;
        assert!(SchemaFile::from_json(bad_role)
            .unwrap()
            .to_schema()
            .is_err());
        let no_ref = r#"{"tables":[{"name":"t","columns":[{"name":"a","type":"int","role":"foreign_key"}]}]}"#;
        assert!(SchemaFile::from_json(no_ref).unwrap().to_schema().is_err());
    }
}
